"""E8 (Fig. 7): one-way latency and perceived call quality.

Paper: "In the absence of packet loss, latencies between Europe, North
America, and South America were of high or perfect quality, and
latencies between Australia and the rest of the world were of medium
quality. [...] Herd incurs a small, additional one-way latency of
approximately 100ms over Drac [H=0]."

This bench runs the packet-level deployment simulation (4 zones with
EC2 geography, chaffed-hop clock alignment) and prints the Fig. 7
series: one-way delay plus MOS band per zone pair for Drac (direct)
and Herd.
"""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.simulation.deployment import (
    DeploymentConfig,
    herd_extra_latency_ms,
    measure_pair_latencies,
)
from repro.voip.emodel import EModel

from conftest import print_table

#: Constant-rate chaffed streams have near-zero jitter, so a small
#: playout buffer suffices (the deployment measures actual jitter).
QUALITY_MODEL = EModel(jitter_buffer_ms=20.0)


@pytest.fixture(scope="module")
def registry():
    """One herdscope registry aggregating the whole Fig. 7 run."""
    return MetricsRegistry()


@pytest.fixture(scope="module")
def results(registry):
    return measure_pair_latencies(DeploymentConfig(n_probe_packets=400),
                                  registry=registry)


def test_bench_fig7(benchmark, results):
    benchmark(measure_pair_latencies,
              DeploymentConfig(n_probe_packets=50, regions=("EU", "NA")))
    rows = []
    for (src, dst, system), m in sorted(results.items()):
        if src > dst:
            continue  # one direction per pair, as in the paper
        quality = m.quality(QUALITY_MODEL)
        rows.append((f"{src}-{dst}", system,
                     f"{m.mean_owd_ms:.0f} ms",
                     f"{m.loss_fraction:.2%}",
                     f"{quality.r:.0f}", quality.band))
    print_table("E8 / Fig. 7: one-way latency and MOS bands",
                ("pair", "system", "owd", "loss", "R", "band"), rows)
    extra = herd_extra_latency_ms(results)
    print_table("E8: Herd's extra one-way latency",
                ("ours", "paper"),
                [(f"{extra:.0f} ms", "~100 ms")])


def test_fig7_au_pairs_medium_or_low(results):
    for (src, dst, system), m in results.items():
        if system == "herd" and "AU" in (src, dst):
            assert m.quality(QUALITY_MODEL).band in ("medium", "low")


def test_fig7_atlantic_pairs_high_or_perfect_direct(results):
    for (src, dst, system), m in results.items():
        if system == "drac" and "AU" not in (src, dst):
            assert m.quality(QUALITY_MODEL).band in ("high", "perfect")


def test_fig7_herd_extra_latency(results):
    extra = herd_extra_latency_ms(results)
    # "approximately 100ms"; our simulator's chaff-alignment model
    # yields 40–120 ms depending on hop count.
    assert 30.0 < extra < 130.0


def test_fig7_herd_within_one_band_of_direct(results):
    order = ["poor", "low", "medium", "high", "perfect"]
    for (src, dst, system), m in results.items():
        if system != "herd":
            continue
        direct = results[(src, dst, "drac")]
        drop = (order.index(direct.quality(QUALITY_MODEL).band)
                - order.index(m.quality(QUALITY_MODEL).band))
        assert drop <= 1, (src, dst)


def test_fig7_loss_few_percent(results):
    # "the packet loss never exceeded a few percents"
    for m in results.values():
        assert m.loss_fraction < 0.05


def test_fig7_measurements_backed_by_registry(results, registry):
    """The reported values ARE the registry's: sent/received come from
    herd_probes_*_total and the OWD histogram sums every sample."""
    for (src, dst, system), m in results.items():
        labels = {"src": src, "dst": dst, "system": system}
        sent = registry.value("herd_probes_sent_total", labels)
        received = registry.value("herd_probes_received_total", labels)
        assert sent == m.sent == 400
        assert received == m.received == len(m.owd_samples_ms)
        hist = registry.series("herd_probe_owd_ms")
        (h,) = [s for s in hist if dict(s.labels) == labels]
        assert h.count == m.received
        assert h.sum == pytest.approx(sum(m.owd_samples_ms))

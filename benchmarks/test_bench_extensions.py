"""Benches for the paper's extension features.

Covers the mechanisms the paper specifies but does not evaluate
directly:

* FEC on lossy SP paths (§3.6.4) — residual loss and MOS rescue.
* Sybil economics (§3.7) — channel capture vs adversary spend.
* The wired full-protocol deployment — real encrypted calls timed over
  the simulated WAN (the executable version of the EC2 prototype).
* Churn exposure (§3.1/§3.7) — what always-on connectivity buys
  against long-term intersection.
"""

import random


from repro.analysis.sybil import (
    channel_capture_probability,
    sybil_attack_cost,
    sybils_needed_for_capture,
)
from repro.attacks.longterm import long_term_intersection
from repro.simulation.churn import AvailabilityModel, exposure_rounds
from repro.simulation.wired import WiredHerd
from repro.voip.emodel import EModel
from repro.voip.fec import effective_loss, k_for_target_loss

from conftest import print_table


def test_bench_fec_rescues_lossy_sps(benchmark):
    """§3.6.4: error-correcting codes reduce a lossy SP's effective
    loss "to acceptable levels" — quantified via the E-Model."""
    model = EModel()
    benchmark(effective_loss, 0.05, 8)
    rows = []
    for raw in (0.02, 0.05, 0.10):
        no_fec = model.evaluate(120.0, raw)
        k = k_for_target_loss(raw, 0.01) or 1
        with_fec = model.evaluate(120.0, effective_loss(raw, k))
        rows.append((f"{raw:.0%}", no_fec.band, k,
                     f"{effective_loss(raw, k):.2%}", with_fec.band,
                     f"{1.0 / k:.0%}"))
    print_table("FEC on lossy SP paths (120 ms path)",
                ("raw loss", "band w/o FEC", "k", "residual loss",
                 "band w/ FEC", "overhead"), rows)
    # Shape: FEC must recover at least one band at 5% raw loss.
    order = ["poor", "low", "medium", "high", "perfect"]
    raw_band = model.evaluate(120.0, 0.05).band
    k = k_for_target_loss(0.05, 0.01)
    fec_band = model.evaluate(120.0, effective_loss(0.05, k)).band
    assert order.index(fec_band) > order.index(raw_band)


def test_bench_sybil_economics(benchmark):
    """§3.7: capturing channels requires flooding the zone, and sign-up
    fees make that expensive."""
    benchmark(channel_capture_probability, 0.5, 10)
    rows = []
    for fraction in (0.1, 0.3, 0.5, 0.7, 0.9):
        p10 = channel_capture_probability(fraction, 10)
        cost = sybil_attack_cost(int(fraction * 100_000))
        rows.append((f"{fraction:.0%}", f"{p10:.2e}",
                     f"${cost.first_month_total:,.0f}"))
    print_table("Sybil capture vs spend (100k-user zone, c=10)",
                ("zone fraction", "P(channel captured)",
                 "first-month cost"), rows)
    needed = sybils_needed_for_capture(0.5, 10, 100_000)
    print_table("Sybils for 50% capture of one channel",
                ("needed", "as fraction"),
                [(f"{needed:,}", f"{needed / 100_000:.0%}")])
    assert needed > 70_000


def test_bench_wired_protocol_latency(benchmark):
    """The full encrypted protocol over the simulated WAN: every layer
    peel on every hop, timed end to end."""
    def run():
        net = WiredHerd({"zone-EU": "dc-eu", "zone-NA": "dc-na"},
                        mixes_per_zone=2)
        net.add_client("alice", "zone-EU")
        net.add_client("bob", "zone-NA")
        call = net.call("alice", "bob")
        for i in range(50):
            call.send_voice("caller_to_callee", bytes([i]) * 160,
                            at=i * 0.02)
        net.loop.run(until=10.0)
        owds = call.owd_ms("callee")
        return sum(owds) / len(owds), len(owds)

    mean_owd, delivered = benchmark(run)
    quality = EModel(jitter_buffer_ms=20.0).evaluate(mean_owd, 0.0)
    print_table("Wired EU→NA Herd call (real crypto, simulated WAN)",
                ("frames", "mean one-way", "R", "band"),
                [(delivered, f"{mean_owd:.0f} ms", f"{quality.r:.0f}",
                  quality.band)])
    assert delivered == 50
    assert quality.band in ("medium", "high", "perfect")


def test_bench_churn_exposure(benchmark):
    """Always-on connectivity vs realistic availability: how fast a
    long-term intersection shrinks if presence were observable."""
    model = AvailabilityModel(n_users=400, seed=5,
                              median_availability=0.8)
    rng = random.Random(6)
    events = [rng.uniform(0, 30 * 86400.0) for _ in range(30)]

    def run():
        rounds = exposure_rounds(model, target=0, event_times=events,
                                 horizon_s=30 * 86400.0)
        return long_term_intersection(rounds)

    exposed = benchmark(run)
    herd = long_term_intersection([set(range(400)) for _ in events])
    print_table("Long-term intersection over 30 days, 30 events",
                ("system", "final candidate set"),
                [("observable presence (no Herd)",
                  exposed.final_anonymity),
                 ("Herd (always-on clients)", herd.final_anonymity)])
    assert exposed.final_anonymity < herd.final_anonymity
    assert herd.final_anonymity == 400

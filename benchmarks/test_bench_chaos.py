"""Chaos benchmarks: call survival and re-join latency under faults.

Not a paper table — Herd's evaluation assumes a stable deployment — but
the failure model §3.1/§3.5/§3.6.4 describe, quantified: for each
fault class we measure mid-call survival (legs re-allocated to a
surviving SP and still carrying voice) and re-join latency/attempts of
clients orphaned by an unclean mix crash.
"""

import pytest

from repro.simulation.chaos import (
    ChaosConfig,
    blacklist_plan,
    default_plan,
    run_chaos,
)

from conftest import print_table


def _cfg(**overrides):
    defaults = dict(horizon_s=6.0, n_clients=8, n_direct_clients=4,
                    round_interval_s=0.05)
    defaults.update(overrides)
    return ChaosConfig(**defaults)


@pytest.fixture(scope="module")
def chaos_reports():
    return {
        "mix-crash + sp-crash": run_chaos(_cfg(plan=default_plan())),
        "mix-crash + degrade-blacklist":
            run_chaos(_cfg(plan=blacklist_plan())),
    }


def test_bench_chaos_call_survival(benchmark, chaos_reports):
    benchmark.pedantic(run_chaos, args=(_cfg(horizon_s=4.0),),
                       iterations=1, rounds=1)
    rows = []
    for name, report in chaos_reports.items():
        voice = sum(report.post_failover_voice.values())
        rows.append((
            name,
            len(report.failovers),
            len(report.survived_failovers),
            f"{report.call_survival_rate:.0%}",
            voice,
        ))
    print_table(
        "Chaos: mid-call failover per fault class",
        ("fault class", "legs hit", "survived", "survival",
         "post-failover cells"),
        rows)
    for name, report in chaos_reports.items():
        # ≥1 documented successful mid-call failover per fault class,
        # with voice actually flowing after the channel switch.
        assert len(report.survived_failovers) >= 1, name
        assert report.mid_call_failover_demonstrated, name
        assert any(e.action == "failover" for e in report.timeline), name
    # The blacklist run must show the monitor doing the killing.
    bl = chaos_reports["mix-crash + degrade-blacklist"]
    assert "zone-live/sp-1" in bl.blacklisted_sps
    assert any(e.action == "blacklisted" for e in bl.timeline)


def test_bench_chaos_rejoin_latency(chaos_reports):
    rows = []
    for name, report in chaos_reports.items():
        lat = [r.latency_s for r in report.rejoins]
        att = [r.attempts for r in report.rejoins]
        rows.append((
            name,
            len(report.rejoins),
            f"{min(lat):.2f}s" if lat else "-",
            f"{max(lat):.2f}s" if lat else "-",
            f"{sum(att) / len(att):.1f}" if att else "-",
        ))
    print_table(
        "Chaos: re-join through surviving mixes (backoff)",
        ("fault class", "orphans", "min latency", "max latency",
         "mean attempts"),
        rows)
    for name, report in chaos_reports.items():
        assert report.rejoins, name
        assert report.all_rejoined, name
        for stats in report.rejoins:
            assert stats.attempts >= 1
            assert stats.latency_s > 0


def test_bench_chaos_determinism(chaos_reports):
    # Replaying the same seed + plan reproduces the exact timeline and
    # event count — the property that makes chaos runs debuggable.
    again = run_chaos(_cfg(plan=default_plan()))
    first = chaos_reports["mix-crash + sp-crash"]
    assert again.determinism_key() == first.determinism_key()
    assert again.events_processed == first.events_processed

"""E2 (Fig. 4): anonymity-set sizes for Drac, Herd, and Tor.

Paper: "The median anonymity set sizes for the Mobile, Twitter, and
Facebook datasets [...] are 12, 8, and 343 for H = 1, and 1728, 512,
and 40 million for H = 3, respectively. [...] the size of Herd's
anonymity set with the mobile workload corresponds to 10.8 millions."
"""

import pytest

from repro.analysis.anonymity import anonymity_figure
from repro.workload.datasets import FACEBOOK, MOBILE, TWITTER

from conftest import print_table

PAPER_MEDIANS = {
    ("Drac", "Mobile,H=1"): 12,
    ("Drac", "Twitter,H=1"): 8,
    ("Drac", "Facebook,H=1"): 343,
    ("Drac", "Mobile,H=3"): 1_728,
    ("Drac", "Twitter,H=3"): 512,
    ("Drac", "Facebook,H=3"): 40_353_607,
    ("Herd", "zone"): 10_800_000,
}


@pytest.fixture(scope="module")
def figure(bench_day_trace):
    return anonymity_figure(bench_day_trace,
                            [MOBILE, TWITTER, FACEBOOK],
                            zone_population=MOBILE.paper_n_users)


def test_bench_fig4(benchmark, bench_day_trace, figure):
    benchmark(anonymity_figure, bench_day_trace, [MOBILE],
              zone_population=MOBILE.paper_n_users)
    rows = []
    for row in figure.rows:
        paper = PAPER_MEDIANS.get((row.system, row.label), "—")
        rows.append((row.system, row.label, f"{row.median:,.0f}",
                     f"{row.p10:,.0f}", f"{row.p90:,.0f}",
                     f"{paper:,}" if paper != "—" else "—"))
    print_table("E2 / Fig. 4: anonymity-set sizes",
                ("system", "series", "median", "p10", "p90",
                 "paper median"), rows)


def test_fig4_drac_medians_match_paper(figure):
    for (system, label), paper in PAPER_MEDIANS.items():
        if system != "Drac":
            continue
        ours = figure.row(system, label).median
        assert ours == pytest.approx(paper, rel=0.5), (label, ours)


def test_fig4_herd_dwarfs_drac(figure):
    herd = figure.row("Herd", "zone").median
    for row in figure.rows:
        if row.system == "Drac" and "H=1" in row.label:
            assert herd > 1000 * row.median


def test_fig4_tor_effectively_deanonymized(figure):
    # Under the intersection attack the median Tor "anonymity set" is
    # exactly the communicating pair.
    assert figure.row("Tor", "intersection").median == 2.0

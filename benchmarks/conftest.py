"""Shared fixtures and reporting helpers for the benchmark harness.

Each ``test_bench_*.py`` file regenerates one table or figure from the
paper's evaluation (see DESIGN.md §2 for the experiment index).  The
benchmarks print the same rows/series the paper reports, so running

    pytest benchmarks/ --benchmark-only -s

reproduces the full evaluation.  Shape assertions (who wins, by what
order) are embedded so regressions fail loudly; absolute values are
recorded in EXPERIMENTS.md.
"""


import pytest

from repro.workload.generator import SyntheticTraceConfig, generate_trace

#: Scaled-down stand-ins for the paper's 10.8M-user month.
BENCH_USERS = 10_000
BENCH_DAYS = 7


@pytest.fixture(scope="session")
def bench_trace():
    """One week of the synthetic mobile workload (the paper also uses
    'one week of the phone call data' for the cost simulations)."""
    cfg = SyntheticTraceConfig(n_users=BENCH_USERS, days=BENCH_DAYS,
                               seed=20150817)
    return generate_trace(cfg)


@pytest.fixture(scope="session")
def bench_day_trace(bench_trace):
    """The first day of the week, for the heavier per-call analyses."""
    return bench_trace.window(0.0, 86400.0)


def print_table(title, headers, rows):
    """Render one experiment's output table."""
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
              for i, h in enumerate(headers)]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))

"""E5 (§4.1.6): superpeer offload of the trusted infrastructure.

Paper: "SPs have the potential to greatly offload mixes.  In our
simulations, these savings varied between 80% and 98% with 5 and 50
clients per channel, respectively.  This low blocking rate and high
savings are explained by low instantaneous system utilization for
voice workloads — in the day-long trace we considered, the peak duty
cycle was 1.6%."
"""

import pytest

from repro.analysis.bandwidth import sp_savings_fraction
from repro.simulation.herd_sim import provision_zone

from conftest import BENCH_USERS, print_table

CPC_VALUES = (5, 10, 25, 50)


def test_bench_offload_savings(benchmark, bench_day_trace):
    def compute():
        return {cpc: sp_savings_fraction(BENCH_USERS, cpc)
                for cpc in CPC_VALUES}

    savings = benchmark(compute)
    rows = [(cpc, f"{savings[cpc]:.0%}",
             {5: "80%", 50: "98%"}.get(cpc, "—"))
            for cpc in CPC_VALUES]
    print_table("E5: mix bandwidth savings from SPs",
                ("clients/channel", "savings (ours)", "paper"), rows)
    assert savings[5] == pytest.approx(0.80, abs=0.01)
    assert savings[50] == pytest.approx(0.98, abs=0.005)


def test_bench_peak_duty_cycle(bench_day_trace):
    duty = bench_day_trace.peak_duty_cycle(BENCH_USERS)
    print_table("E5: peak duty cycle (day-long trace)",
                ("ours", "paper"), [(f"{duty:.2%}", "1.6%")])
    # Same order as the paper's 1.6%.
    assert 0.005 < duty < 0.03


def test_bench_offload_factor(bench_day_trace):
    prov = provision_zone(bench_day_trace, n_users=BENCH_USERS)
    print_table(
        "E5: provisioning for the day-long trace",
        ("users", "peak calls", "channels", "SPs", "mixes", "n/a",
         "realized n/C"),
        [(prov.n_users, prov.peak_calls, prov.n_channels, prov.n_sps,
          prov.n_mixes, f"{prov.offload_factor:.0f}",
          f"{prov.bandwidth_reduction:.0f}")])
    # §3.6: n/a "is likely to be large (above 10)".
    assert prov.offload_factor > 10
    assert prov.bandwidth_reduction >= 10

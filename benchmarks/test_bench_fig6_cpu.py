"""E7 (Fig. 6): CPU utilization of a mix and an SP vs client count.

Paper: "without an SP, the mix's network process has a CPU utilization
of 59% for 100 clients, while an SP [...] reduces that utilization to
only 3%.  The marginal CPU utilization for supporting an additional
client is .01% and .6% with and without the SP, respectively. [...]
the mix without an SP uses 3.4MB of virtual memory for 100 clients."

Alongside the calibrated analytical model, this bench *measures* the
real implementation: the per-round cost of terminating chaffed client
connections (AEAD per client packet) versus decoding one XOR round —
confirming the mechanism ("network coding for an SP requires far fewer
CPU cycles than maintaining a chaffed connection with multiple
clients") on our own crypto stack.
"""

import random

import pytest

from repro.analysis.cpu import CpuModel
from repro.core.network_coding import (
    ChaffPredictor,
    decode_round,
    make_chaff_packet,
    xor_bytes,
)
from repro.crypto.chacha20 import ChaCha20Poly1305
from repro.crypto.keys import SessionKey

from conftest import print_table

CLIENT_COUNTS = (0, 10, 25, 50, 75, 100)


def test_bench_fig6_model(benchmark):
    model = CpuModel()
    benchmark(model.mix_without_sp, 100)
    rows = []
    for n in CLIENT_COUNTS:
        rows.append((n, f"{model.mix_without_sp(n):.1%}",
                     f"{model.mix_with_sp(n):.1%}",
                     f"{model.sp(n):.1%}"))
    print_table("E7 / Fig. 6: CPU utilization vs clients",
                ("clients", "mix (no SP)", "mix (SP)", "SP"), rows)
    print_table("E7 / Fig. 6: anchors",
                ("metric", "ours", "paper"),
                [("mix no SP @100", f"{model.mix_without_sp(100):.0%}",
                  "59%"),
                 ("mix with SP @100", f"{model.mix_with_sp(100):.1%}",
                  "3%"),
                 ("marginal no SP",
                  f"{model.marginal_per_client(False):.2%}", "0.6%"),
                 ("marginal with SP",
                  f"{model.marginal_per_client(True):.3%}", "0.01%"),
                 ("mix memory @100",
                  f"{model.mix_memory_mb(100):.1f} MB", "3.4 MB")])
    assert model.mix_without_sp(100) == pytest.approx(0.59, abs=0.05)
    assert model.mix_with_sp(100) == pytest.approx(0.03, abs=0.02)


def _chaffed_connection_round(keys, aeads):
    """Mix work without an SP: one AEAD open + one AEAD seal per
    client per round (bidirectional chaffed DTLS links)."""
    for i, aead in enumerate(aeads):
        nonce = b"\x00\x00\x00\x00" + i.to_bytes(8, "little")
        sealed = aead.encrypt(nonce, b"\xa5" * 160)
        aead.decrypt(nonce, sealed)


def _xor_decode_round(keys, predictor, xor_packet, manifests):
    """Mix work with an SP: one XOR-round decode for the channel."""
    decode_round(xor_packet, manifests, predictor)


@pytest.fixture(scope="module")
def crypto_state():
    rng = random.Random(1)
    n = 100
    keys = {i: SessionKey.generate(rng) for i in range(n)}
    aeads = [ChaCha20Poly1305(keys[i].key) for i in range(n)]
    predictor = ChaffPredictor(keys)
    packets = [make_chaff_packet(keys[i], i) for i in range(n)]
    manifests = [(i, i, False) for i in range(n)]
    return keys, aeads, predictor, xor_bytes(*packets), manifests


def test_bench_mix_round_without_sp(benchmark, crypto_state):
    keys, aeads, _, _, _ = crypto_state
    benchmark(_chaffed_connection_round, keys, aeads)


def test_bench_mix_round_with_sp(benchmark, crypto_state):
    keys, _, predictor, xor_packet, manifests = crypto_state
    benchmark(_xor_decode_round, keys, predictor, xor_packet, manifests)


def test_sp_cpu_grows_with_clients():
    model = CpuModel()
    series = [model.sp(n) for n in CLIENT_COUNTS]
    assert series == sorted(series)

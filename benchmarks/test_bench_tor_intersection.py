"""E1 (§4.1.4): the intersection attack against Tor-carried calls.

Paper: "after one month, an attacker can trace 98.3% of all calls when
using 1-second granularity for tracking call start and end times."

This bench runs the attack against the synthetic mobile workload via
the Tor baseline (whose observable trace is the call trace itself) and
against Herd (whose observable trace is empty), and prints the traced
fractions at several granularities.
"""

import pytest

from repro.attacks.intersection import (
    herd_observable_trace,
    intersection_attack,
)
from repro.baselines.tor import TorModel

from conftest import print_table


@pytest.fixture(scope="module")
def attack_result(bench_day_trace):
    return TorModel().run_intersection_attack(bench_day_trace,
                                              bin_width=1.0)


def test_bench_tor_traced_fraction(benchmark, bench_day_trace):
    """The headline number: fraction of calls traced at 1-s bins."""
    tor = TorModel()
    result = benchmark(tor.run_intersection_attack, bench_day_trace, 1.0)
    rows = [("Tor", "1 s", f"{result.traced_fraction:.1%}", "98.3%")]
    herd_result = intersection_attack(
        herd_observable_trace(bench_day_trace), 1.0)
    rows.append(("Herd", "1 s", f"{herd_result.traced_fraction:.1%}",
                 "0% (no observables)"))
    print_table("E1: intersection attack on voice calls",
                ("system", "bin", "traced (ours)", "traced (paper)"),
                rows)
    # Shape: Tor ≳ 95% traced; Herd exposes nothing.
    assert result.traced_fraction > 0.95
    assert herd_result.traced_calls == 0


def test_bench_granularity_sweep(bench_day_trace):
    """Supporting series: coarser adversary clocks trace fewer calls."""
    rows = []
    fractions = []
    for bin_width in (1.0, 10.0, 60.0, 600.0):
        result = intersection_attack(bench_day_trace, bin_width)
        fractions.append(result.traced_fraction)
        rows.append((f"{bin_width:.0f} s",
                     f"{result.traced_fraction:.1%}",
                     f"{result.anonymity_set_percentile(50):.0f}"))
    print_table("E1 sweep: granularity vs traced fraction",
                ("bin", "traced", "median anonymity set"), rows)
    assert fractions == sorted(fractions, reverse=True)

"""Ablations of Herd's design choices (DESIGN.md §4).

Not a paper table, but the design decisions §3 calls out, quantified:

* k (channels per client): blocking vs client bandwidth.
* RANKING vs first-fit dynamic matching.
* Chaff-rate multiple on client links: bandwidth vs burst absorption.
* Rendezvous interposition: hops/latency cost of zone anonymity.
"""

import pytest

from repro.analysis.bandwidth import herd_client_bandwidth_kbps
from repro.simulation.spsim import SPSimConfig, simulate_blocking
from repro.simulation.testbed import build_testbed

from conftest import BENCH_USERS, print_table


@pytest.fixture(scope="module")
def k_sweep(bench_trace):
    results = {}
    for k in (1, 2, 3, 4):
        cfg = SPSimConfig(n_clients=BENCH_USERS,
                          clients_per_channel=25, k=k, seed=2)
        results[k] = simulate_blocking(bench_trace, cfg)
    return results


def test_bench_ablation_k(benchmark, bench_trace, k_sweep):
    cfg = SPSimConfig(n_clients=BENCH_USERS, clients_per_channel=25,
                      k=1, seed=2)
    benchmark(simulate_blocking, bench_trace, cfg)
    rows = [(k, f"{r.blocking_rate:.3%}",
             f"{herd_client_bandwidth_kbps(k):.0f} KB/s")
            for k, r in sorted(k_sweep.items())]
    print_table("Ablation: channels per client (k)",
                ("k", "blocking rate", "client bandwidth"), rows)
    # Blocking decreases in k; bandwidth increases linearly — the
    # paper's "k = 3 provides a good balance".
    rates = [k_sweep[k].blocking_rate for k in (1, 2, 3, 4)]
    assert rates[0] >= rates[1] >= rates[2] >= rates[3]


def test_bench_ablation_matcher(bench_trace):
    rows = []
    rates = {}
    for matcher in ("ranking", "first-fit"):
        cfg = SPSimConfig(n_clients=BENCH_USERS,
                          clients_per_channel=40, k=2, seed=2,
                          matcher=matcher)
        result = simulate_blocking(bench_trace, cfg)
        rates[matcher] = result.blocking_rate
        rows.append((matcher, f"{result.blocking_rate:.3%}"))
    print_table("Ablation: dynamic matcher", ("matcher", "blocking"),
                rows)
    # RANKING is the optimal online algorithm; it must not lose to
    # first-fit by more than noise.
    assert rates["ranking"] <= rates["first-fit"] * 1.3 + 1e-6


def test_bench_ablation_chaff_multiple():
    from repro.core.chaffing import ConstantRateChaffer
    rows = []
    for multiple in (1, 2, 3):
        chaffer = ConstantRateChaffer(rate_multiple=multiple)
        # Burst of 10 cells arriving at once: how many ticks to drain?
        for _ in range(10):
            chaffer.enqueue_payload(b"cell")
        ticks = 0
        while chaffer.pending():
            chaffer.tick()
            ticks += 1
        rows.append((multiple,
                     f"{herd_client_bandwidth_kbps(multiple):.0f} KB/s",
                     f"{ticks * chaffer.interval * 1000:.0f} ms"))
    print_table("Ablation: client-link rate multiple",
                ("multiple", "bandwidth", "10-cell burst drain"), rows)


def test_bench_ablation_rendezvous_interposition():
    """Hops with and without the rendezvous mechanism: interposing
    rendezvous mixes costs hops (and hence alignment latency) but is
    what hides each party's entry mix (invariant I5)."""
    bed = build_testbed()
    caller = bed.add_client("alice", "zone-EU")
    callee = bed.add_client("bob", "zone-NA")
    # Force the typical configuration: entry and rendezvous distinct.
    builder = bed.service.circuit_builder()
    caller.build_circuit(builder, [caller.mix_id,
                                   bed.directories["zone-EU"].pick_mix(
                                       exclude=caller.mix_id)])
    callee.build_circuit(builder, [callee.mix_id,
                                   bed.directories["zone-NA"].pick_mix(
                                       exclude=callee.mix_id)])
    bed.service.register_callee(callee)
    session = bed.call("alice", "bob")
    with_rdv = session.link_hops()
    # Without rendezvous, a mutually-anonymous circuit would still need
    # entry mixes: client→entry→entry→client = 3 links.
    without_rdv = 3
    print_table("Ablation: rendezvous interposition",
                ("configuration", "links caller→callee"),
                [("with rendezvous (zone anonymity)", with_rdv),
                 ("entry mixes only (no zone anonymity)", without_rdv)])
    assert with_rdv <= 5
    assert with_rdv > without_rdv

"""E9 (§4.2): prototype performance — SP bandwidth reduction n/a.

Paper: "As expected, using an SP reduces the bandwidth required at the
mix to support n clients by a factor of nearly n/a, where a is the
number of concurrent active calls (one in our experiment)."

This bench measures actual bytes through our protocol objects: it runs
real upstream rounds (client packets → SP XOR → mix decode) with and
without an SP in the path, and reports the measured reduction.
"""

import pytest

from repro.core.channel import decode_manifest
from repro.simulation.testbed import build_testbed

from conftest import print_table


def _sp_round_bytes(n_clients: int, seed: int = 3):
    """Bytes crossing the mix's client-side interface for one round,
    with and without an SP (one channel, a = 1 as in the paper)."""
    bed = build_testbed(zone_specs=[("zone-EU", "dc-eu", 1)], seed=seed)
    mix = bed.mixes["zone-EU/mix-0"]
    mix.configure_channels(1)
    sp = bed.add_superpeer("sp-0", mix.mix_id, channels=[0])
    clients = []
    for i in range(n_clients):
        client = bed.add_client(f"c{i}", "zone-EU", k=1,
                                via_superpeers=True)
        clients.append(client)

    # One round: every client emits one packet + manifest.
    packets, manifests = [], []
    for client in clients:
        pkt, mf = client.upstream_packet(client.attachments[0])
        packets.append(pkt)
        manifests.append(mf)

    without_sp = sum(len(p) for p in packets)  # mix terminates all
    up = sp.combine_upstream(0, 0, packets, manifests)
    with_sp = len(up.xor_packet) + sum(len(m) for m in up.manifests)

    # The mix can actually decode the SP round.
    entries = []
    for slot, raw in enumerate(up.manifests):
        client_id = mix.client_at_slot(0, slot)
        key = mix.client_keys[client_id]
        numeric = mix.channels[0].members[slot]
        m = decode_manifest(raw, key, slot, expected_sequence=0)
        entries.append((numeric, m.sequence, m.signal))
    active, payload, _ = mix.decode_channel_round(0, up.xor_packet,
                                                  entries)
    assert active is None and payload == b""
    return without_sp, with_sp


@pytest.mark.parametrize("n_clients", (10, 25, 50))
def test_bench_sp_bandwidth_reduction(benchmark, n_clients):
    if n_clients == 25:
        without_sp, with_sp = benchmark(_sp_round_bytes, n_clients)
    else:
        without_sp, with_sp = _sp_round_bytes(n_clients)
    reduction = without_sp / with_sp
    print_table(
        f"E9: mix client-side bytes per round, n={n_clients} (a=1)",
        ("without SP", "with SP", "reduction", "paper"),
        [(without_sp, with_sp, f"{reduction:.1f}x",
          f"~n/a = {n_clients}x")])
    # "a factor of nearly n/a": manifests cost a little, so the
    # reduction is somewhat below n but scales with it.
    assert reduction > 0.5 * n_clients
    assert reduction <= n_clients

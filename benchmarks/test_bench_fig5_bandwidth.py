"""E3 (Fig. 5): CDF of client bandwidth requirements.

Paper: "the median bandwidth required with the Mobile, Twitter and
Facebook datasets are 96KB/s, 64KB/s, and 2.6MB/s, respectively, and
the maxima are 12MB/s, 39MB/s, and 6.2GB/s. [...] Even with three
channels, a client's bandwidth requirement is only 24KB/s (3*8KB/s)."
"""

import random

import numpy as np
import pytest

from repro.analysis.bandwidth import herd_client_bandwidth_kbps
from repro.baselines.drac import DracModel
from repro.workload.datasets import FACEBOOK, MOBILE, TWITTER

from conftest import print_table

PAPER = {
    "Mobile": (96.0, 12_000.0),
    "Twitter": (64.0, 39_000.0),
    "Facebook": (2_744.0, 6.2e6),
}


@pytest.fixture(scope="module")
def models():
    return {spec.name: DracModel(spec, rng=random.Random(4))
            for spec in (MOBILE, TWITTER, FACEBOOK)}


def test_bench_fig5(benchmark, models):
    def cdf_points():
        out = {}
        for name, model in models.items():
            bw = np.sort(model.client_bandwidths_kbps())
            out[name] = bw
        return out

    cdfs = benchmark(cdf_points)
    rows = [("Herd (k=3)", f"{herd_client_bandwidth_kbps(3):.0f}",
             f"{herd_client_bandwidth_kbps(3):.0f}", "24 / 24")]
    for name, bw in cdfs.items():
        paper_med, paper_max = PAPER[name]
        rows.append((f"Drac ({name})",
                     f"{np.median(bw):,.0f}", f"{bw.max():,.0f}",
                     f"{paper_med:,.0f} / {paper_max:,.0f}"))
    print_table("E3 / Fig. 5: client bandwidth (KB/s)",
                ("series", "median", "max", "paper median/max"), rows)
    # CDF series for the figure: deciles of each distribution.
    decile_rows = []
    for name, bw in cdfs.items():
        deciles = [f"{np.percentile(bw, q):,.0f}"
                   for q in range(10, 100, 20)]
        decile_rows.append((name, *deciles))
    print_table("E3 / Fig. 5: Drac bandwidth CDF deciles (KB/s)",
                ("dataset", "p10", "p30", "p50", "p70", "p90"),
                decile_rows)


def test_fig5_medians_match_paper(models):
    for name, model in models.items():
        paper_med, _ = PAPER[name]
        assert model.bandwidth_percentile_kbps(50) == pytest.approx(
            paper_med, rel=0.35), name


def test_fig5_maxima_match_paper(models):
    for name, model in models.items():
        _, paper_max = PAPER[name]
        assert model.client_bandwidths_kbps().max() == pytest.approx(
            paper_max, rel=0.01), name


def test_fig5_herd_up_to_two_orders_below_drac(models):
    herd = herd_client_bandwidth_kbps(3)
    # "reduces client bandwidth by up to two orders of magnitude"
    facebook_median = models["Facebook"].bandwidth_percentile_kbps(50)
    assert facebook_median > 100 * herd
    # and Herd is flat: every client pays the same 24 KB/s.
    assert herd == 24.0

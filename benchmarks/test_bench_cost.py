"""E6 (§4.1.6): dollar cost per user/month on EC2-style pricing.

Paper: "The cost ranges from $0.10 to $1.14 per month per subscriber.
[...] Our estimates show that it will cost two orders of magnitude more
per user to run Herd [without SPs] ($10-100 per month per user). [...]
the cost per paying subscriber is an additional $0.14 per dollar we
pay SPs."
"""

import pytest

from repro.analysis.cost import CostModel

from conftest import print_table

N_USERS = 1_000_000


@pytest.fixture(scope="module")
def model():
    return CostModel()


def test_bench_cost_sweep(benchmark, model):
    def sweep():
        rows = []
        for cpc in (50, 10, 5):
            m = CostModel(clients_per_channel=cpc)
            for duty in (0.01, 0.02):
                for inter in (0.1, 1.0):
                    cost = m.monthly_cost(N_USERS, duty_cycle=duty,
                                          interzone_fraction=inter,
                                          use_sps=True)
                    rows.append((cpc, duty, inter, cost.per_user))
        return rows

    rows = benchmark(sweep)
    printable = [(cpc, f"{duty:.0%}", f"{inter:.0%}",
                  f"${per_user:.2f}")
                 for cpc, duty, inter, per_user in rows]
    print_table("E6: $/user/month with SPs (sweep)",
                ("clients/channel", "duty", "interzone", "$/user"),
                printable)
    per_user = [r[3] for r in rows]
    lo, hi = min(per_user), max(per_user)
    print_table("E6: cost range per user/month",
                ("config", "ours", "paper"),
                [("with SPs", f"${lo:.2f} – ${hi:.2f}",
                  "$0.10 – $1.14")])
    # Shape: the with-SP range overlaps the paper's band.
    assert lo < 1.14 and hi > 0.10


def test_cost_without_sps_two_orders_higher(model):
    sp_lo, sp_hi = model.per_user_range(N_USERS, use_sps=True)
    no_lo, no_hi = model.per_user_range(N_USERS, use_sps=False)
    print_table("E6: with vs without SPs ($/user/month)",
                ("config", "ours", "paper"),
                [("with SPs", f"${sp_lo:.2f} – ${sp_hi:.2f}",
                  "$0.10 – $1.14"),
                 ("without SPs", f"${no_lo:.2f} – ${no_hi:.2f}",
                  "$10 – $100")])
    assert no_lo > 3.0            # dollars, not dimes
    assert no_lo > 10 * sp_hi     # "two orders of magnitude more"
    assert sp_lo > 0.01


def test_cost_breakdown_structure(model):
    cost = model.monthly_cost(N_USERS, use_sps=True)
    print_table("E6: with-SP cost breakdown ($/month)",
                ("instances", "internet egress", "inter-region",
                 "intra-DC"),
                [(f"${cost.instances:,.0f}",
                  f"${cost.internet_egress:,.0f}",
                  f"${cost.inter_region:,.0f}",
                  f"${cost.intra_dc:,.0f}")])
    # "traffic to SPs and clients costs the most" / intra-DC is free.
    assert cost.internet_egress > cost.inter_region
    assert cost.intra_dc == 0.0


def test_sp_payment_overhead():
    assert CostModel.sp_payment_overhead(1.0) == pytest.approx(0.14)

"""E4 (§4.1.6): call blocking vs clients/channel and k.

Paper: "the blocking rate for 2 channels varied between 5% and 0.1%
with 50 and 5 clients per channel, respectively.  We observed that the
average blocking rate decreased by an order of magnitude when clients
attached to 3 channels instead of 2."
"""

import numpy as np
import pytest

from repro.simulation.spsim import SPSimConfig, blocking_sweep

from conftest import BENCH_USERS, print_table

CPC_VALUES = (5, 10, 25, 50)
K_VALUES = (2, 3)


@pytest.fixture(scope="module")
def sweep(bench_trace):
    return blocking_sweep(bench_trace, n_clients=BENCH_USERS,
                          clients_per_channel_values=CPC_VALUES,
                          k_values=K_VALUES)


def test_bench_blocking_sweep(benchmark, bench_trace, sweep):
    config = SPSimConfig(n_clients=BENCH_USERS, clients_per_channel=25,
                         k=2)
    from repro.simulation.spsim import simulate_blocking
    benchmark(simulate_blocking, bench_trace, config)
    rows = []
    for cpc in CPC_VALUES:
        row = [cpc]
        for k in K_VALUES:
            row.append(f"{sweep[(cpc, k)].blocking_rate:.3%}")
        row.append({5: "0.1% (k=2)", 50: "5% (k=2)"}.get(cpc, "—"))
        rows.append(tuple(row))
    print_table("E4: blocking rate vs clients/channel and k",
                ("clients/channel", "k=2", "k=3", "paper"), rows)


def test_blocking_increases_with_packing(sweep):
    for k in K_VALUES:
        rates = [sweep[(cpc, k)].blocking_rate for cpc in CPC_VALUES]
        assert rates == sorted(rates), f"k={k}: {rates}"


def test_blocking_band_matches_paper(sweep):
    # Paper band for k=2: 0.1% (cpc=5) to 5% (cpc=50).  Accept the
    # same order of magnitude at both ends.
    assert sweep[(5, 2)].blocking_rate < 0.02
    assert 0.005 < sweep[(50, 2)].blocking_rate < 0.20


def test_k3_substantially_beats_k2(sweep):
    # "decreased by an order of magnitude": require at least 2× better
    # on average across the sweep (simulator floors differ).
    improvements = []
    for cpc in CPC_VALUES:
        k2 = sweep[(cpc, 2)].blocking_rate
        k3 = sweep[(cpc, 3)].blocking_rate
        if k2 > 0:
            improvements.append(k3 / k2)
    assert np.mean(improvements) < 0.6

"""Engine scaling: per-cell event execution vs round-synchronous batch.

The tentpole claim of the batch engine (DESIGN.md §9): Herd's
constant-rate data plane makes the per-cell schedule pure overhead —
one Packet, two closures, and two heap events per cell for a schedule
that is a function of the clock.  This bench sweeps the client count
over the same synthetic constant-rate workload on both engines and
records cells/sec and events/sec into ``BENCH_scaling.json``.

The workload and the timing loop live in the unified herdprof runner
(:mod:`repro.obs.prof.bench`) — this test, the ``repro bench`` CLI,
and CI perf-smoke all execute the same code.  The entry written here
is schema-versioned and provenance-stamped (commit, python, machine
fingerprint, UTC timestamp — stamped here in the harness layer, never
inside seeded code) and carries the per-phase breakdown of a profiled
headline run, so ``repro bench compare`` can gate any later commit
against it.

Acceptance gates: at >= 500 clients the batch engine moves at least 5x
the cells/sec of the event engine, and the phase profiler's attached
overhead on the headline batch run stays small (the detached hooks are
single ``is not None`` tests — the 5x gate holding with hooks compiled
into the hot path is the detached-overhead regression check).
"""

import json
from pathlib import Path

from repro.obs.prof import bench
from repro.obs.prof.perfclock import utc_timestamp
from repro.obs.prof.provenance import BENCH_SCHEMA_VERSION

CLIENT_COUNTS = bench.DEFAULT_CLIENT_COUNTS
ROUNDS = bench.DEFAULT_ROUNDS
RESULT_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_scaling.json"


def test_bench_scaling_engines():
    entry = bench.run_scaling_bench(CLIENT_COUNTS, ROUNDS,
                                    timestamp_utc=utc_timestamp())
    results = entry["engines"]
    speedups = {int(k): v
                for k, v in entry["speedup_cells_per_sec"].items()}

    rows = []
    for ev, ba in zip(results["event"], results["batch"]):
        assert ev["cells"] == ba["cells"] == ev["observed_cells"] \
            == ba["observed_cells"] == 2 * ev["clients"] * ROUNDS
        rows.append((ev["clients"], ev["cells"],
                     f"{ev['cells_per_sec']:,.0f}",
                     f"{ba['cells_per_sec']:,.0f}",
                     ev["events"], ba["events"],
                     f"{speedups[ev['clients']]:.1f}x"))

    from conftest import print_table
    print_table("Engine scaling (constant-rate zone backbone)",
                ("clients", "cells", "event cells/s", "batch cells/s",
                 "event evts", "batch evts", "speedup"), rows)

    # Provenance: the entry is comparable across commits and machines.
    prov = entry["provenance"]
    assert prov["schema"] == BENCH_SCHEMA_VERSION
    assert prov["machine_fingerprint"]
    assert prov["python"]
    assert prov["timestamp_utc"]

    # Phase breakdown: the profiled headline runs saw real work in the
    # wire phases on both engines.
    for engine in ("event", "batch"):
        phases = entry["phases"][engine]["phases"]
        assert phases["deliver"]["cells"] == \
            2 * max(CLIENT_COUNTS) * ROUNDS
        assert phases["adversary-observe"]["calls"] > 0
        assert entry["phases"][engine]["rounds_profiled"] == ROUNDS

    RESULT_PATH.write_text(json.dumps(entry, indent=2,
                                      sort_keys=True) + "\n")

    # The batch engine collapses the heap: O(rounds), not O(cells).
    for ev, ba in zip(results["event"], results["batch"]):
        assert ba["events"] == ROUNDS
        assert ev["events"] == 2 * ev["cells"]

    # Acceptance: >= 5x cells/sec at >= 500 clients — with the prof
    # hook points compiled into the hot path (detached here for the
    # timed sweep), so detached-hook overhead cannot silently erode
    # the headline speedup.
    big = [s for n, s in speedups.items() if n >= 500]
    assert big and all(s >= 5.0 for s in big), speedups

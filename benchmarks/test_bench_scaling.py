"""Engine scaling: per-cell event execution vs round-synchronous batch.

The tentpole claim of the batch engine (DESIGN.md §9): Herd's
constant-rate data plane makes the per-cell schedule pure overhead —
one Packet, two closures, and two heap events per cell for a schedule
that is a function of the clock.  This bench sweeps the client count
over the same synthetic constant-rate workload on both engines and
records cells/sec and events/sec into ``BENCH_scaling.json``.

The workload is the zone *backbone* at netsim speed (no crypto): the
SP↔mix trunk links, provisioned at a multiple of the unit rate
(§3.4.2), carry one fixed-size cell per attached client per round in
each direction.  On the batch engine each trunk's round is one
``CellBatch`` built with ``append_repeated`` (one shared payload
buffer) and one ``transmit_batch`` call; on the event engine it is one
``Packet`` plus heap events per cell — the refactor's before/after.
Client access links carry exactly one cell per round by design
(invariant I6), so they batch trivially and are exercised by the
equivalence tests instead; the trunks are where the cell volume —
and the engine cost — concentrates.

The adversary is a batch-aware tally observer, so observation cost is
O(batches) on the batch engine and O(cells) on the event engine, as
with the real taps.

Acceptance gate: at >= 500 clients the batch engine moves at least 5x
the cells/sec of the event engine.
"""

import json
import time
from pathlib import Path

from repro.simulation.roundsync import WireFabric

CELL = b"\x00" * 160
CLIENT_COUNTS = (100, 250, 500)
ROUNDS = 25
CLIENTS_PER_SP = 50
RESULT_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_scaling.json"


class TallyObserver:
    """A global passive adversary that aggregates instead of storing:
    one update per batch when the link offers vectors, one per cell on
    the per-packet path."""

    def __init__(self):
        self.cells = 0
        self.bytes = 0

    def record(self, time, packet, src, dst):
        self.cells += 1
        self.bytes += packet.size

    def record_batch(self, time, batch, src, dst):
        self.cells += len(batch)
        self.bytes += batch.total_bytes()


def _run_backbone(execution: str, n_clients: int,
                  rounds: int = ROUNDS):
    """Drive the zone backbone for ``rounds``; returns measurements."""
    fabric = WireFabric(seed=1, execution=execution,
                        observer=TallyObserver())
    n_sps = max(1, n_clients // CLIENTS_PER_SP)
    members = [n_clients // n_sps + (1 if s < n_clients % n_sps else 0)
               for s in range(n_sps)]
    started = time.perf_counter()
    for r in range(rounds):
        for s in range(n_sps):
            fabric.emit_repeated(f"sp-{s}", "mix", CELL, members[s],
                                 kind="up")
        for s in range(n_sps):
            fabric.emit_repeated("mix", f"sp-{s}", CELL, members[s],
                                 kind="down")
        fabric.flush_round(r)
    elapsed = time.perf_counter() - started
    return {
        "clients": n_clients,
        "rounds": rounds,
        "cells": fabric.cells_carried,
        "events": fabric.events_processed,
        "elapsed_s": elapsed,
        "cells_per_sec": fabric.cells_carried / elapsed,
        "events_per_sec": fabric.events_processed / elapsed
        if elapsed else 0.0,
        "observed_cells": fabric.observer.cells,
    }


def test_bench_scaling_engines():
    results = {"event": [], "batch": []}
    for n in CLIENT_COUNTS:
        for engine in ("event", "batch"):
            results[engine].append(_run_backbone(engine, n))

    rows, speedups = [], {}
    for ev, ba in zip(results["event"], results["batch"]):
        assert ev["cells"] == ba["cells"] == ev["observed_cells"] \
            == ba["observed_cells"] == 2 * ev["clients"] * ROUNDS
        speedup = ba["cells_per_sec"] / ev["cells_per_sec"]
        speedups[ev["clients"]] = speedup
        rows.append((ev["clients"], ev["cells"],
                     f"{ev['cells_per_sec']:,.0f}",
                     f"{ba['cells_per_sec']:,.0f}",
                     ev["events"], ba["events"],
                     f"{speedup:.1f}x"))

    from conftest import print_table
    print_table("Engine scaling (constant-rate zone backbone)",
                ("clients", "cells", "event cells/s", "batch cells/s",
                 "event evts", "batch evts", "speedup"), rows)

    RESULT_PATH.write_text(json.dumps({
        "workload": "constant-rate zone backbone (SP-mix trunks), "
                    f"{ROUNDS} rounds, {CLIENTS_PER_SP} clients/SP",
        "client_counts": list(CLIENT_COUNTS),
        "engines": results,
        "speedup_cells_per_sec": {str(k): v
                                  for k, v in speedups.items()},
    }, indent=2) + "\n")

    # The batch engine collapses the heap: O(rounds), not O(cells).
    for ev, ba in zip(results["event"], results["batch"]):
        assert ba["events"] == ROUNDS
        assert ev["events"] == 2 * ev["cells"]

    # Acceptance: >= 5x cells/sec at >= 500 clients.
    big = [s for n, s in speedups.items() if n >= 500]
    assert big and all(s >= 5.0 for s in big), speedups

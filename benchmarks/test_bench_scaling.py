"""Engine scaling: event vs batch vs the vectorized batch-v2 plane.

The tentpole claims (DESIGN.md §9, §13): Herd's constant-rate data
plane makes the per-cell schedule pure overhead — one Packet, two
closures, and two heap events per cell for a schedule that is a
function of the clock — and once rounds are batched, the remaining
per-cell work (list extends, per-cell observation) is itself overhead
for a wire image that is fully described by run-length aggregates.
This bench sweeps the client count over the same synthetic
constant-rate workload on every registered engine and records
cells/sec and events/sec into ``BENCH_scaling.json``.

Each engine climbs the ladder to its own cap (event 500, batch 100k,
batch-v2 1M — :data:`repro.obs.prof.bench.ENGINE_CAPS`): the point of
the vectorized plane is precisely that it still moves at the scale
where the per-cell planes stop being measurable.

The workload and the timing loop live in the unified herdprof runner
(:mod:`repro.obs.prof.bench`) — this test, the ``repro bench`` CLI,
and CI perf-smoke/scaling-smoke all execute the same code.  The entry
written here is schema-versioned and provenance-stamped (commit,
python, machine fingerprint, UTC timestamp — stamped here in the
harness layer, never inside seeded code) and carries the per-phase
breakdown of a profiled headline run per engine, so ``repro bench
compare`` can gate any later commit against it.

Acceptance gates: at >= 500 clients the batch engine moves at least
5x the cells/sec of the event engine; at >= 100k clients batch-v2
moves at least 5x the cells/sec of the batch engine; and the
million-client batch-v2 point is recorded in the published curve.
"""

import json
from pathlib import Path

from repro.obs.prof import bench
from repro.obs.prof.perfclock import utc_timestamp
from repro.obs.prof.provenance import BENCH_SCHEMA_VERSION

CLIENT_COUNTS = (100, 250, 500, 10_000, 100_000, 1_000_000)
ROUNDS = bench.DEFAULT_ROUNDS
RESULT_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_scaling.json"


def test_bench_scaling_engines():
    entry = bench.run_scaling_bench(CLIENT_COUNTS, ROUNDS,
                                    timestamp_utc=utc_timestamp())
    results = entry["engines"]

    rows = []
    for engine in bench.DEFAULT_ENGINES:
        for run in results[engine]:
            # Workload integrity at every ladder point: every emitted
            # cell was carried and observed by the aggregate tap.
            assert run["cells"] == run["observed_cells"] == \
                2 * run["clients"] * run["rounds"]
            assert run["rounds"] == bench.rounds_for(run["clients"],
                                                     ROUNDS)
            rows.append((engine, f"{run['clients']:,}", run["rounds"],
                         f"{run['cells']:,}",
                         f"{run['cells_per_sec']:,.0f}",
                         run["events"]))

    from conftest import print_table
    print_table("Engine scaling (constant-rate zone backbone)",
                ("engine", "clients", "rounds", "cells", "cells/s",
                 "events"), rows)

    # Ladder caps: each engine stops where its cost model stops.
    for engine, cap in bench.ENGINE_CAPS.items():
        assert all(r["clients"] <= cap for r in results[engine])
    assert results["batch-v2"][-1]["clients"] == 1_000_000

    # Provenance: the entry is comparable across commits and machines.
    prov = entry["provenance"]
    assert prov["schema"] == BENCH_SCHEMA_VERSION
    assert prov["machine_fingerprint"]
    assert prov["python"]
    assert prov["timestamp_utc"]

    # Phase breakdown: the profiled headline run per engine saw real
    # work in the wire phases.
    for engine in bench.DEFAULT_ENGINES:
        headline = results[engine][-1]
        phases = entry["phases"][engine]["phases"]
        assert phases["deliver"]["cells"] == \
            2 * headline["clients"] * headline["rounds"]
        assert phases["adversary-observe"]["calls"] > 0
        assert entry["phases"][engine]["rounds_profiled"] == \
            headline["rounds"]

    RESULT_PATH.write_text(json.dumps(entry, indent=2,
                                      sort_keys=True) + "\n")

    # Event cost O(cells); round engines O(rounds), not O(cells).
    for run in results["event"]:
        assert run["events"] == 2 * run["cells"]
    for engine in ("batch", "batch-v2"):
        for run in results[engine]:
            assert run["events"] == run["rounds"]

    # Acceptance gate 1: >= 5x batch over event at >= 500 clients —
    # with the prof hook points compiled into the hot path (detached
    # here for the timed sweep), so detached-hook overhead cannot
    # silently erode the headline speedup.
    speedups = {int(k): v
                for k, v in entry["speedup_cells_per_sec"].items()}
    big = [s for n, s in speedups.items() if n >= 500]
    assert big and all(s >= 5.0 for s in big), speedups

    # Acceptance gate 2 (§13): >= 5x batch-v2 over batch at >= 100k
    # clients — aggregate chaff accounting beats the per-cell loop
    # exactly where constant-rate fill dominates the wire.
    v2 = {int(k): v
          for k, v in entry["speedup_v2_over_batch"].items()}
    big_v2 = [s for n, s in v2.items() if n >= 100_000]
    assert big_v2 and all(s >= 5.0 for s in big_v2), v2

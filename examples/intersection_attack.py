#!/usr/bin/env python3
"""The §4.1.4 experiment: intersection attacks on voice metadata.

Generates a synthetic mobile call trace (the stand-in for the paper's
370M-call dataset), then mounts the start/end-time intersection attack
against three targets:

* **Tor** — no chaffing, flow start/end visible: ~98% of calls traced.
* **Herd** — clients chaffed 24/7: no observables, nothing traced.
* A **long-term intersection attack** against one user, unchaffed vs
  Herd.

Run:  python examples/intersection_attack.py
"""

from repro.attacks.intersection import herd_observable_trace
from repro.attacks.longterm import (
    herd_candidate_rounds,
    long_term_intersection,
    unchaffed_candidate_rounds,
)
from repro.baselines.tor import TorModel
from repro.workload.generator import SyntheticTraceConfig, generate_trace


def main() -> None:
    print("=== Intersection attacks on voice calls ===\n")
    cfg = SyntheticTraceConfig(n_users=5_000, days=3, seed=42,
                               max_degree=150)
    trace = generate_trace(cfg)
    print(f"workload: {len(trace):,} calls among {cfg.n_users:,} users "
          f"over {cfg.days} days "
          f"(peak duty cycle {trace.peak_duty_cycle(cfg.n_users):.1%})\n")

    # --- Tor: the adversary sees every flow's start and end. ---
    tor = TorModel()
    for bin_width in (1.0, 60.0):
        result = tor.run_intersection_attack(trace, bin_width)
        print(f"Tor, {bin_width:4.0f}s bins: "
              f"{result.traced_fraction:6.1%} of calls traced "
              f"(paper: 98.3% at 1s)")

    # --- Herd: chaffed links produce no per-call observables. ---
    herd_result = tor.run_intersection_attack(
        herd_observable_trace(trace), 1.0)
    print(f"Herd,    1s bins: {herd_result.traced_calls} calls traced "
          "(clients are connected and chaffed continuously)\n")

    # --- Long-term intersection against one busy user. ---
    target = max(trace.contact_degrees(), key=lambda u:
                 trace.contact_degrees()[u])
    rounds = unchaffed_candidate_rounds(trace, target)
    unchaffed = long_term_intersection(rounds)
    print(f"long-term attack on user {target} "
          f"({len(rounds)} observation rounds):")
    print(f"  unchaffed: candidate set "
          f"{unchaffed.set_sizes[0]} -> {unchaffed.final_anonymity} "
          f"(identified: {unchaffed.identified or unchaffed.final_anonymity <= 2})")
    herd_lt = long_term_intersection(
        herd_candidate_rounds(set(range(cfg.n_users)), len(rounds)))
    print(f"  Herd:      candidate set stays at "
          f"{herd_lt.final_anonymity:,} across every round "
          "(call activity is unobservable)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Traffic-analysis resistance, demonstrated on the wire (§3.4, §3.7).

Sets up chaffed client links on the network simulator, taps every link
with a global passive adversary, and shows:

1. **I6** — an active caller's link time series is indistinguishable
   from an idle client's (constant rate, payload-independent);
2. the **correlation attack** succeeds against unchaffed flows and
   returns nothing against Herd's;
3. **I7** — an active adversary dropping packets upstream does not
   perturb the downstream rate (the next hop just sends more chaff).

Run:  python examples/traffic_analysis_resistance.py
"""

from repro.attacks.adversary import ActiveAdversary
from repro.attacks.correlation import correlate_flows
from repro.core.chaffing import ConstantRateChaffer
from repro.netsim.engine import EventLoop
from repro.netsim.link import Link
from repro.netsim.node import Node
from repro.netsim.packet import Packet
from repro.voip.codec import G711

DURATION = 10.0  # seconds of simulated traffic
PACKET = b"\xa5" * 301  # one coded Herd packet


def chaffed_sender(loop, node, peer, chaffer, talk: bool):
    """Drive a chaffed link: one fixed-size packet per frame, payload
    substituted when talking (the payload is itself encrypted, so the
    wire image is identical either way)."""
    def tick():
        if talk:
            chaffer.enqueue_payload(PACKET)
        for slot in chaffer.tick():
            kind = "voip" if slot is not None else "chaff"
            node.send(peer.name, Packet(PACKET, node.name, peer.name,
                                        kind=kind))
    loop.schedule_periodic(chaffer.interval, tick)


def unchaffed_sender(loop, node, peer, talk_start, talk_end):
    """An unprotected VoIP flow: packets only while talking."""
    def tick():
        if talk_start <= loop.now < talk_end:
            node.send(peer.name, Packet(PACKET, node.name, peer.name,
                                        kind="voip"))
    loop.schedule_periodic(0.02, tick)


def main() -> None:
    print("=== Traffic-analysis resistance on the wire ===\n")
    loop = EventLoop(seed=1)
    adversary = ActiveAdversary()

    mix = Node("mix", loop)
    mix.on_packet(lambda p: None)

    # Two chaffed Herd clients: alice talks from t=2 to t=6, carol is
    # idle the whole time.
    alice, carol = Node("alice", loop), Node("carol", loop)
    for client, talk in ((alice, True), (carol, False)):
        link = Link(loop, client, mix, one_way_delay=0.02)
        adversary.tap(link)
        chaffed_sender(loop, client, mix, ConstantRateChaffer(G711),
                       talk)

    # Two unprotected clients with distinct talk windows.
    dave, erin = Node("dave", loop), Node("erin", loop)
    out_dave, out_erin = Node("x-dave", loop), Node("x-erin", loop)
    for n in (out_dave, out_erin):
        n.on_packet(lambda p: None)
    for client, out, (t0, t1) in ((dave, out_dave, (2.0, 6.0)),
                                  (erin, out_erin, (5.0, 9.0))):
        link_in = Link(loop, client, mix, one_way_delay=0.02)
        link_out = Link(loop, mix, out, one_way_delay=0.02)
        adversary.tap(link_in)
        adversary.tap(link_out)
        unchaffed_sender(loop, client, mix, t0, t1)

        def relay(p, out=out):
            if p.src in ("dave", "erin") and p.kind == "voip":
                mix.send(out.name, Packet(p.payload, "mix", out.name,
                                          kind="voip"))
    # Simple mirroring of unprotected flows through the mix:
    original_handler = lambda p: None

    def mix_handler(p):
        if p.src == "dave":
            mix.send("x-dave", Packet(p.payload, "mix", "x-dave"))
        elif p.src == "erin":
            mix.send("x-erin", Packet(p.payload, "mix", "x-erin"))
    mix.on_packet(mix_handler)

    loop.run(until=DURATION)

    series = adversary.link_series(bin_width=1.0)

    # 1. I6: alice (talking) vs carol (idle) — identical wire image.
    a = series["alice->mix"]
    c = series["carol->mix"]
    print("chaffed links, bytes per second (alice talks 2s-6s):")
    print("  alice:", [a.get(i, 0) for i in range(10)])
    print("  carol:", [c.get(i, 0) for i in range(10)])
    print("  -> indistinguishable: the adversary cannot tell who "
          "is on a call\n")

    # 2. Correlation attack: works on unchaffed, fails on chaffed.
    matches = correlate_flows(
        {"dave": series["dave->mix"], "erin": series["erin->mix"]},
        {"x-dave": series["mix->x-dave"],
         "x-erin": series["mix->x-erin"]})
    print(f"correlation attack on unprotected flows: {matches}")
    from repro.core.invariants import series_identical
    print("chaffed flows: alice's and carol's series are "
          f"bin-for-bin identical: {series_identical(a, c)}")
    print("  -> unchaffed flows are matched end-to-end; chaffed flows "
          "give the adversary nothing to discriminate on\n")

    # 3. I7: drop 30% upstream; downstream keeps its constant rate.
    loop2 = EventLoop(seed=2)
    adv2 = ActiveAdversary()
    up_client, relay_node, down_peer = (Node("client", loop2),
                                        Node("relay", loop2),
                                        Node("down", loop2))
    down_peer.on_packet(lambda p: None)
    up_link = Link(loop2, up_client, relay_node, one_way_delay=0.02)
    down_link = Link(loop2, relay_node, down_peer, one_way_delay=0.02)
    adv2.tap(up_link)
    adv2.tap(down_link)
    adv2.compromise(up_link)
    adv2.inject_loss(0.3)
    relay_chaffer = ConstantRateChaffer(G711)
    relay_node.on_packet(lambda p: relay_chaffer.enqueue_payload(
        p.payload))
    chaffed_sender(loop2, up_client, relay_node,
                   ConstantRateChaffer(G711), talk=True)

    def relay_tick():
        for slot in relay_chaffer.tick():
            relay_node.send("down", Packet(PACKET, "relay", "down"))
    loop2.schedule_periodic(relay_chaffer.interval, relay_tick)
    loop2.run(until=DURATION)
    down_series = adv2.observer.time_series("relay", "down", 1.0)
    print("active attack: 30% loss injected on the upstream link;")
    print("  downstream bytes/s:",
          [down_series.get(i, 0) for i in range(1, 10)])
    print("  -> constant: tampering upstream is invisible downstream "
          "(invariant I7)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The Fig. 7 experiment: perceived call quality across continents.

Runs the packet-level deployment simulation (4 zones on EC2 geography,
chaffed-hop clock alignment, last-mile jitter and loss) and scores each
zone pair with the ITU-T G.107 E-Model, for Herd and for direct calls
(Drac with H=0).

Run:  python examples/call_quality.py
"""

from repro.simulation.deployment import (
    DeploymentConfig,
    herd_extra_latency_ms,
    measure_pair_latencies,
)
from repro.voip.emodel import EModel


def main() -> None:
    print("=== Perceived call quality (Fig. 7) ===\n")
    config = DeploymentConfig(n_probe_packets=300)
    results = measure_pair_latencies(config)
    model = EModel(jitter_buffer_ms=20.0)

    print(f"{'pair':8s} {'system':6s} {'one-way':>9s} {'loss':>6s} "
          f"{'R':>5s} {'MOS':>5s}  band")
    for (src, dst, system), m in sorted(results.items()):
        if src > dst:
            continue
        q = m.quality(model)
        print(f"{src}-{dst:5s} {system:6s} {m.mean_owd_ms:7.0f}ms "
              f"{m.loss_fraction:6.2%} {q.r:5.0f} {q.mos:5.2f}  "
              f"{q.band}")

    extra = herd_extra_latency_ms(results)
    print(f"\nHerd adds {extra:.0f} ms one-way over a direct call "
          "(paper: ~100 ms),")
    print("dropping at most one MOS band; Australia pairs sit one band "
          "below the")
    print("Atlantic pairs, exactly the Fig. 7 picture.")

    # The 7-hop configuration: one SP on each side.
    sp_config = DeploymentConfig(n_probe_packets=300, with_sps=True,
                                 regions=("EU", "NA"))
    sp_results = measure_pair_latencies(sp_config, systems=("herd",))
    m = sp_results[("EU", "NA", "herd")]
    q = m.quality(model)
    print(f"\nwith SPs (7 links), EU-NA: {m.mean_owd_ms:.0f} ms, "
          f"band {q.band} — SPs cost two extra chaffed hops.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Group calls: the paper's future work (§5), implemented.

A host in Europe bridges a three-continent conference.  Each leg is an
independent zone-anonymous Herd call (own circuit, own rendezvous
splice, own end-to-end key), so participants never learn each other's
entry mixes or zones — only the host, who invited them, knows who is
in the room.

Run:  python examples/group_conference.py
"""

from repro.core.groupcall import GroupCall
from repro.simulation.testbed import build_testbed


def tone(level: int, n: int = 160) -> bytes:
    """A flat 8-bit PCM 'tone' at the given level (128 = silence)."""
    return bytes([level]) * n


def main() -> None:
    print("=== Herd group conference ===\n")
    bed = build_testbed([("zone-EU", "dc-eu", 2),
                         ("zone-NA", "dc-na", 2),
                         ("zone-SA", "dc-sa", 2)])
    for name, zone in (("host", "zone-EU"), ("ana", "zone-NA"),
                       ("beto", "zone-SA"), ("chloe", "zone-NA")):
        bed.add_client(name, zone)
        bed.ready_for_calls(name)

    conference = GroupCall(bed.service, bed.clients["host"])
    for name in ("ana", "beto", "chloe"):
        leg = conference.invite(bed.clients[name])
        print(f"invited {name}: leg of {leg.session.link_hops()} links, "
              f"e2e keys {'OK' if leg.session.established else 'FAIL'}")
    print(f"\nconference size: {conference.size} "
          f"(host + {len(conference.participants)} participants)")
    print("host client-link rate multiple needed:",
          conference.required_rate_multiple(), "call units\n")

    # Three rounds of audio: different speakers each round.
    rounds = [
        ({"ana": tone(150)}, None),
        ({"beto": tone(110)}, tone(135)),
        ({"ana": tone(140), "chloe": tone(122)}, None),
    ]
    for i, (speaking, host_frame) in enumerate(rounds):
        delivered = conference.round(speaking, host_frame=host_frame)
        speakers = sorted(speaking) + (["host"] if host_frame else [])
        print(f"round {i}: speakers {', '.join(speakers)}")
        for listener in sorted(delivered):
            frame = delivered[listener]
            print(f"  {listener:6s} hears level {frame[0]:3d}")

    # Anonymity: ana's rendezvous mix never sees the other guests.
    ana = bed.clients["ana"]
    rdv = bed.mixes[ana.circuit.rendezvous_mix]
    state = rdv.circuit_state(ana.circuit.circuit_id)
    print(f"\nana's rendezvous mix sees prev={state.prev_hop}, "
          f"next={state.next_hop}")
    print("— no trace of beto or chloe: legs are mutually "
          "zone-anonymous.")


if __name__ == "__main__":
    main()

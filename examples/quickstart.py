#!/usr/bin/env python3
"""Quickstart: run a Herd zone through the `repro.api` facade.

One `Simulation` call stands up a live zone (clients, superpeers, a
mix), places anonymous VoIP calls, and drives 50 constant-rate mix
rounds — with every onion layer, DTLS record, and XOR round really
executing.  The run comes back as a `RunReport` whose metrics and
trace were collected by herdscope (`repro.obs`) in *virtual* time, so
the same seed always reproduces the same bytes.

Run:  python examples/quickstart.py
"""

from repro import SimConfig, Simulation


def main() -> None:
    print("=== Herd quickstart ===\n")

    # 1. Configure a run.  SimConfig is keyword-only and validated;
    # the same object also drives the "testbed" and "chaos" scenarios.
    # execution picks the engine: "event" schedules per cell, "batch"
    # runs round-synchronous vectors — observationally equivalent.
    config = SimConfig(seed=7, n_clients=12, n_channels=4, call_pairs=2,
                       execution="event")
    report = Simulation(config).run(rounds=50)
    print(f"scenario={report.scenario} seed={report.seed} "
          f"rounds={report.rounds_run}")
    print(f"clients in call: {report.detail['clients_in_call']}")

    # 2. The unobservability invariant (§3.6), read straight from the
    # metrics registry: every enabled channel emits exactly one
    # downstream cell per round — payload, chaff, or control — so the
    # wire census never depends on who is talking.
    payload = report.counter_value("herd_mix_cells_total",
                                   {"kind": "payload"})
    chaff = report.counter_value("herd_mix_cells_total",
                                 {"kind": "chaff"})
    control = report.counter_value("herd_mix_cells_total",
                                   {"kind": "control"})
    total = payload + chaff + control
    print(f"\ndownstream cells: payload={payload:.0f} chaff={chaff:.0f} "
          f"control={control:.0f} (total {total:.0f} = "
          f"{report.rounds_run} rounds x {config.n_channels} channels)")
    assert total == report.rounds_run * config.n_channels

    # 3. What actually crossed each link, by byte count.
    sp_mix = report.counter_value(
        "herd_link_bytes_total",
        {"link": "zone-EU/sp-0->zone-EU/mix-0"})
    print(f"superpeer->mix bytes: {sp_mix:.0f}")

    # 4. The trace bus recorded call setups as spans with virtual
    # start/end times; the full stream can also be written to JSONL
    # via SimConfig(trace_path=...).
    begins = {e.span_id: dict(e.labels) for e in report.trace_events
              if e.name == "call_setup" and e.phase == "begin"}
    setups = [e for e in report.trace_events
              if e.name == "call_setup" and e.phase == "end"]
    print(f"call setups traced: {len(setups)}")
    for evt in setups:
        caller = begins[evt.span_id]["client"]
        print(f"  {caller}: {dict(evt.labels)['outcome']} "
              f"at round {evt.time:.0f}")

    # 5. Determinism: an identically-seeded run reproduces the exact
    # same measurements (the herdscope contract — no wall clock, no
    # unseeded RNG anywhere in the instrumented path).  Running the
    # round-synchronous batch engine instead changes *how* the rounds
    # execute, not what they produce: the snapshot is still identical
    # byte for byte (DESIGN.md §9, the observational-equivalence
    # contract).
    again = Simulation(config).run(rounds=50)
    assert again.metrics == report.metrics
    batch_cfg = SimConfig(seed=7, n_clients=12, n_channels=4,
                          call_pairs=2, execution="batch")
    batched = Simulation(batch_cfg).run(rounds=50)
    assert batched.metrics == report.metrics
    print("\nre-ran same seed (event + batch engines): metrics "
          "snapshots identical.")

    # 6. Export for dashboards or diffing.
    print("\nPrometheus sample:")
    for line in report.to_prometheus().splitlines():
        if line.startswith("herd_mix_cells_total"):
            print(" ", line)


if __name__ == "__main__":
    main()

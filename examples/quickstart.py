#!/usr/bin/env python3
"""Quickstart: an anonymous end-to-end encrypted VoIP call over Herd.

Builds a two-zone Herd deployment (EU and NA, two mixes each), joins a
caller and a callee, establishes their standing circuits, publishes the
callee's rendezvous, places a call, and streams voice frames both ways
— every onion layer, DTLS record, and rendezvous splice really happens.

Run:  python examples/quickstart.py
"""

from repro.core.invariants import mix_knowledge
from repro.simulation.testbed import build_testbed
from repro.voip.codec import G711
from repro.voip.rtp import RtpPacketizer


def main() -> None:
    print("=== Herd quickstart ===\n")

    # 1. Deploy two trust zones with two mixes each.
    bed = build_testbed([("zone-EU", "dc-eu", 2),
                         ("zone-NA", "dc-na", 2)])
    print("zones:", ", ".join(bed.zones))
    print("mixes:", ", ".join(bed.mixes))

    # 2. Alice and Bob join their chosen zones (the §3.5 join
    # protocol: directory redirect, key establishment, certification).
    alice = bed.add_client("alice", "zone-EU")
    bob = bed.add_client("bob", "zone-NA")
    print(f"\nalice joined via {alice.mix_id}; "
          f"certificate zone = {alice.certificate.zone_id}")
    print(f"bob joined via {bob.mix_id}; "
          f"certificate zone = {bob.certificate.zone_id}")

    # 3. Standing circuits + rendezvous registration (§3.3).  The
    # rendezvous mix is a random mix of the zone — here we pick one
    # distinct from the entry mix (the typical configuration; the same
    # mix may play both roles in a single-mix zone).
    builder = bed.service.circuit_builder()
    for client, zone in ((alice, "zone-EU"), (bob, "zone-NA")):
        rendezvous = bed.directories[zone].pick_mix(
            exclude=client.mix_id)
        client.build_circuit(builder, [client.mix_id, rendezvous])
        bed.service.register_callee(client)
    print(f"\nalice circuit: client -> {' -> '.join(alice.circuit.path)}")
    print(f"bob circuit:   client -> {' -> '.join(bob.circuit.path)}")

    # 4. Place the call: directory lookup, rendezvous splice, and an
    # end-to-end X25519 key agreement over the concatenated circuits.
    session = bed.call("alice", "bob")
    print(f"\ncall established; {session.link_hops()} links "
          "caller->callee (paper: at most 5 without SPs)")

    # 5. Stream one second of G.711 voice in each direction.
    tx = RtpPacketizer(G711)
    delivered = 0
    for pkt in tx.stream(1.0):
        out = session.send_voice("caller_to_callee", pkt.payload)
        assert out == pkt.payload
        delivered += 1
    reply = session.send_voice("callee_to_caller", b"\x42" * 160)
    assert reply == b"\x42" * 160
    print(f"streamed {delivered} voice frames alice->bob and a reply "
          "bob->alice, all decrypted correctly")

    # 6. What did the network learn?  (Invariants I2/I3.)
    entry = bed.mixes[alice.circuit.entry_mix]
    knowledge = mix_knowledge(entry, alice.circuit.circuit_id)
    print(f"\nalice's entry mix knows only: {knowledge}")
    rdv = bed.mixes[alice.circuit.rendezvous_mix]
    knowledge = mix_knowledge(rdv, alice.circuit.circuit_id)
    print(f"alice's rendezvous mix knows only: {knowledge}")
    print("\nneither names bob, bob's mix, nor bob's zone: the call is "
          "zone-anonymous.")


if __name__ == "__main__":
    main()

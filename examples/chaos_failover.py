#!/usr/bin/env python3
"""Chaos: mix crash, SP loss mid-call, failover, and re-join.

Runs the Herd failure model (§3.1, §3.5, §3.6.4) end to end on virtual
time: a live zone carries a real call at codec-frame granularity while
a fault plan (1) crashes a mix *uncleanly* — its direct clients are
orphaned and re-join through the surviving mix with exponential
backoff, retrying while the directory still lists the dead mix — and
(2) kills a superpeer mid-call, so the active call leg fails over to a
channel of the surviving SP via a re-GRANT and the voice stream
resumes.  Every action lands on a structured timeline, and the whole
run replays bit-for-bit from its seed.

Run:  PYTHONPATH=src python examples/chaos_failover.py
"""

from repro.simulation.chaos import ChaosConfig, default_plan, run_chaos


def main() -> None:
    print("=== Herd chaos: crash, failover, recovery ===\n")

    # seed 7: one orphan needs 4 join attempts (directory still lists
    # the dead mix until detection), so the backoff path is visible.
    cfg = ChaosConfig(seed=7, horizon_s=7.5, n_clients=8,
                      n_direct_clients=4, round_interval_s=0.05,
                      plan=default_plan())
    plan = cfg.plan
    print("fault plan (signature %s...):" % plan.signature()[:12])
    for spec in plan:
        window = f" for {spec.duration_s}s" if spec.duration_s else ""
        detect = (f", detected after {spec.detection_delay_s}s"
                  if spec.detection_delay_s else "")
        print(f"  t={spec.at_s:>4}s  {spec.kind.value:<11} "
              f"{spec.target}{window}{detect}")

    print("\nrunning: 1 call pair live, faults firing mid-run ...")
    report = run_chaos(cfg)

    print("\nfault/recovery timeline:")
    for entry in report.timeline:
        detail = f"  ({entry.detail})" if entry.detail else ""
        print(f"  t={entry.time_s:>6.3f}s  {entry.action:<11} "
              f"{entry.kind:<10} {entry.target}{detail}")

    print("\nmid-call failover:")
    for record in report.failovers:
        if record.survived:
            print(f"  call leg on channel {record.old_channel} "
                  f"re-allocated to channel {record.new_channel} "
                  "and resumed")
        else:
            print(f"  call leg on channel {record.old_channel} "
                  "dropped (no surviving free channel)")
    for client_id, cells in sorted(report.post_failover_voice.items()):
        print(f"  {client_id}: {cells} voice cells received "
              "AFTER the failover")

    print("\nre-joins after the mix crash:")
    for stats in report.rejoins:
        print(f"  {stats.client_id}: rejoined in "
              f"{stats.latency_s:.2f}s after {stats.attempts} "
              f"attempt(s), {stats.backoff_s:.2f}s of backoff")

    print(f"\ncall survival rate: {report.call_survival_rate:.0%}")
    print(f"all orphans re-joined: {report.all_rejoined}")
    print(f"events processed: {report.events_processed}, "
          f"rounds: {report.rounds_run}")

    assert report.mid_call_failover_demonstrated
    assert report.all_rejoined
    print("\nOK: the call survived an SP loss and every orphan "
          "re-joined.")


if __name__ == "__main__":
    main()

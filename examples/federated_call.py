#!/usr/bin/env python3
"""The complete Herd data path: SP channels on both ends of a circuit.

Two zones (EU, NA), each with a mix and a superpeer; the caller and
callee both sit behind their zone's SP.  Every voice frame:

  1. is end-to-end encrypted and onion-wrapped by the caller,
  2. rides a chaffed SP channel (XOR-combined with the other members'
     chaff, recovered by the caller's mix),
  3. crosses the rendezvous splice to the callee's mix,
  4. gains the backward onion layer and goes out as an authenticated
     downstream envelope on the callee's channel,
  5. is trial-decrypted, unwrapped, and AEAD-verified by the callee.

That is the paper's "up to seven [hops] if optional SPs are used" path,
executing for real.

Run:  python examples/federated_call.py
"""

from repro.simulation.federation import FederatedHerd


def main() -> None:
    print("=== Federated Herd call: SPs on both ends ===\n")
    net = FederatedHerd(n_clients_per_zone=6, n_channels=3, k=2,
                        seed=2015)
    print("zones:", ", ".join(net.zones))
    for zone_id, zone in net.zones.items():
        print(f"  {zone_id}: mix {zone.mix.mix_id}, SP {zone.sp.sp_id}, "
              f"{len(zone.clients)} clients on "
              f"{len(zone.mix.channels)} channels")

    call = net.call(("zone-EU", "eu-0"), ("zone-NA", "na-0"))
    print("\ncall established:")
    print(f"  caller circuit: {call.caller.client.circuit.path}")
    print(f"  callee circuit: {call.callee.client.circuit.path}")
    caller_agent = net.zones["zone-EU"].clients["eu-0"].agent
    callee_agent = net.zones["zone-NA"].clients["na-0"].agent
    print(f"  caller granted channel {caller_agent.active_channel}, "
          f"callee ringing on channel {callee_agent.active_channel}")

    for i in range(10):
        call.say("caller_to_callee", bytes([65 + i]) * 160)
        call.say("callee_to_caller", bytes([97 + i]) * 160)
    net.run(14)
    call.drain_received()

    callee_heard = "".join(chr(f[0]) for f in
                           call.callee.received_frames)
    caller_heard = "".join(chr(f[0]) for f in
                           call.caller.received_frames)
    print(f"\ncallee decrypted frames: {callee_heard}")
    print(f"caller decrypted frames: {caller_heard}")

    idle = [cid for zone in net.zones.values()
            for cid, live in zone.clients.items()
            if live.agent.received_cells]
    print(f"\nbystanders that decrypted anything: {idle or 'none'}")
    print("both SPs forwarded identical fixed-size XOR rounds the "
          "whole time —")
    print("they carried the call without ever being able to see it.")


if __name__ == "__main__":
    main()

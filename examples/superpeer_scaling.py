#!/usr/bin/env python3
"""The superpeer story (§3.6, §4.1.6, §4.2): offload, blocking, cost.

Walks through what superpeers buy a Herd deployment:

1. a live SP round — clients' packets XOR-combined by an untrusted SP
   and decoded by the mix, with the measured bandwidth reduction;
2. the blocking-rate sweep (clients/channel × k) on a synthetic trace;
3. mix CPU with and without SPs (the Fig. 6 model);
4. the $/user/month consequences (the §4.1.6 cost model).

Run:  python examples/superpeer_scaling.py
"""

from repro.analysis.bandwidth import sp_savings_fraction
from repro.analysis.cost import CostModel
from repro.analysis.cpu import CpuModel
from repro.core.channel import decode_manifest
from repro.simulation.spsim import blocking_sweep
from repro.simulation.testbed import build_testbed
from repro.workload.generator import SyntheticTraceConfig, generate_trace


def live_sp_round(n_clients: int = 20) -> None:
    bed = build_testbed([("zone-EU", "dc-eu", 1)], seed=7)
    mix = bed.mixes["zone-EU/mix-0"]
    mix.configure_channels(1)
    sp = bed.add_superpeer("sp-0", mix.mix_id, channels=[0])
    clients = [bed.add_client(f"c{i}", "zone-EU", k=1,
                              via_superpeers=True)
               for i in range(n_clients)]

    # The first client is on a call; everyone else sends chaff.
    talker = clients[0]
    mix.channels[0].start_call(talker.attachments[0].slot)
    cell = b"VOICE" * 50
    packets, manifests = [], []
    for client in clients:
        payload = cell if client is talker else None
        pkt, mf = client.upstream_packet(client.attachments[0], payload)
        packets.append(pkt)
        manifests.append(mf)
    up = sp.combine_upstream(0, 0, packets, manifests)

    entries = []
    for slot, raw in enumerate(up.manifests):
        key = mix.client_keys[mix.client_at_slot(0, slot)]
        numeric = mix.channels[0].members[slot]
        m = decode_manifest(raw, key, slot, expected_sequence=0)
        entries.append((numeric, m.sequence, m.signal))
    active, payload, _ = mix.decode_channel_round(0, up.xor_packet,
                                                  entries)
    assert payload[:len(cell)] == cell

    without = sum(len(p) for p in packets)
    with_sp = len(up.xor_packet) + sum(len(m) for m in up.manifests)
    print(f"live round with {n_clients} clients, 1 active call:")
    print(f"  mix receives {with_sp} bytes via the SP instead of "
          f"{without} bytes directly ({without / with_sp:.1f}x less)")
    print(f"  the mix recovered the talker's cell from the XOR; the SP "
          "learned nothing about who talked\n")


def main() -> None:
    print("=== Superpeers: scalability for free ===\n")
    live_sp_round()

    print("blocking-rate sweep (10,000 clients, 2-day trace):")
    cfg = SyntheticTraceConfig(n_users=10_000, days=2, seed=11)
    trace = generate_trace(cfg)
    sweep = blocking_sweep(trace, n_clients=10_000,
                           clients_per_channel_values=(5, 25, 50),
                           k_values=(2, 3))
    print("  clients/channel   k=2       k=3      savings")
    for cpc in (5, 25, 50):
        print(f"  {cpc:15d}   {sweep[(cpc, 2)].blocking_rate:6.2%}   "
              f"{sweep[(cpc, 3)].blocking_rate:6.2%}   "
              f"{sp_savings_fraction(10_000, cpc):5.0%}")
    print("  (paper: 0.1%–5% blocking for k=2; k=3 an order better; "
          "savings 80%–98%)\n")

    cpu = CpuModel()
    print("mix CPU at 100 clients (Fig. 6):")
    print(f"  without SP: {cpu.mix_without_sp(100):5.1%}  (paper 59%)")
    print(f"  with SP:    {cpu.mix_with_sp(100):5.1%}  (paper 3%)\n")

    cost = CostModel()
    sp_lo, sp_hi = cost.per_user_range(1_000_000, use_sps=True)
    no_lo, no_hi = cost.per_user_range(1_000_000, use_sps=False)
    print("operational cost per user/month (1M-user zone):")
    print(f"  with SPs:    ${sp_lo:.2f} - ${sp_hi:.2f}   "
          "(paper $0.10 - $1.14)")
    print(f"  without SPs: ${no_lo:.2f} - ${no_hi:.2f}   "
          "(paper $10 - $100)")


if __name__ == "__main__":
    main()

"""HL003 regression tests: every MAC/confirmation verification in the
crypto and wire layers is constant-time, and tampered tags are
rejected.

The audit for this gate found no ``==`` digest comparisons (onion
cells, obfuscation tags, and hop confirmations already used
``hmac.compare_digest``); these tests pin that state so a regression
fails both at runtime (tampering accepted) and statically (HL003).
"""

from pathlib import Path

import pytest

from repro.core.circuit import ClientHopHandshake, mix_process_create
from repro.core.obfuscation import Bridge, ObfuscatedChannel
from repro.crypto.onion import decode_cell, encode_cell
from repro.lint import LintConfig, run_lint

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_hl003_clean_in_crypto_and_wire_layers():
    paths = [
        REPO_ROOT / "src" / "repro" / "crypto",
        REPO_ROOT / "src" / "repro" / "core" / "wire.py",
        REPO_ROOT / "src" / "repro" / "core" / "circuit.py",
        REPO_ROOT / "src" / "repro" / "core" / "obfuscation.py",
        REPO_ROOT / "src" / "repro" / "core" / "signaling.py",
    ]
    result = run_lint([str(p) for p in paths],
                      LintConfig(select=("HL003",)))
    assert result.findings == []


def test_tampered_cell_mac_rejected_bytewise():
    """Flipping any single byte of the MAC must reject the cell — a
    prefix-sensitive (variable-time ==) implementation typically breaks
    this only for early bytes."""
    mac_key = b"\x11" * 32
    cell = encode_cell(b"voice frame", mac_key)
    assert decode_cell(cell, mac_key) == b"voice frame"
    for i in range(1, 9):  # the MAC is the cell's trailing bytes
        tampered = bytearray(cell)
        tampered[-i] ^= 0x01
        with pytest.raises(ValueError, match="MAC invalid"):
            decode_cell(bytes(tampered), mac_key)


def test_tampered_obfuscation_tag_rejected():
    bridge = Bridge(bridge_id="b-1", address="198.51.100.7",
                    secret=b"\x22" * 32)
    sender = ObfuscatedChannel(bridge)
    receiver = ObfuscatedChannel(bridge)
    datagram = sender.wrap(b"rtp payload")
    assert receiver.unwrap(datagram) == b"rtp payload"
    tampered = bytearray(datagram)
    tampered[-1] ^= 0x80
    with pytest.raises(ValueError, match="failed authentication"):
        receiver.unwrap(bytes(tampered))


def test_tampered_hop_confirmation_rejected():
    import random
    rng = random.Random(1234)
    handshake = ClientHopHandshake(circuit_id=5, rng=rng)
    reply, _mix_keys = mix_process_create(handshake.request(), rng=rng)
    bad = type(reply)(reply.circuit_id, reply.mix_ephemeral,
                     bytes(b ^ 0x01 for b in reply.confirmation))
    with pytest.raises(ValueError, match="confirmation failed"):
        handshake.finish(bad)
    # the untampered reply still completes the handshake
    good_handshake = ClientHopHandshake(circuit_id=6, rng=rng)
    good_reply, mix_keys = mix_process_create(good_handshake.request(),
                                              rng=rng)
    assert good_handshake.finish(good_reply) == mix_keys

"""Tests for the VoIP substrate: codecs, RTP, and the E-Model."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.voip.codec import CODECS, G711, G729
from repro.voip.emodel import (
    EModel,
    delay_impairment,
    mos_from_r,
    quality_band,
    r_factor,
)
from repro.voip.rtp import RTP_HEADER_BYTES, RtpPacketizer, RtpReceiver


class TestCodec:
    def test_g711_is_the_papers_unit_rate(self):
        # §4.1.3: "the rate of a VoIP call using the G.711 codec (8KB/s)"
        assert G711.payload_rate_bps == 8000.0
        assert G711.bitrate_kbps == 64.0

    def test_g711_packet_rate(self):
        assert G711.packets_per_second == 50.0
        assert G711.payload_bytes == 160

    def test_g729_low_bitrate(self):
        assert G729.bitrate_kbps == 8.0

    def test_loss_impairment_zero_at_no_loss(self):
        assert G711.loss_impairment(0.0) == 0.0
        # G.729 has nonzero baseline impairment (γ1 = 11).
        assert G729.loss_impairment(0.0) == pytest.approx(11.0)

    def test_loss_impairment_monotone(self):
        values = [G711.loss_impairment(e) for e in (0.0, 0.01, 0.05, 0.2)]
        assert values == sorted(values)

    def test_loss_impairment_range_check(self):
        with pytest.raises(ValueError):
            G711.loss_impairment(-0.1)
        with pytest.raises(ValueError):
            G711.loss_impairment(1.1)

    def test_codec_registry(self):
        assert CODECS["G.711"] is G711
        assert set(CODECS) == {"G.711", "G.729a", "Opus-NB"}

    def test_cole_rosenbluth_g711_formula(self):
        # Ie = 30 ln(1 + 15 e): spot-check at 5% loss.
        assert G711.loss_impairment(0.05) == pytest.approx(
            30.0 * math.log(1.75), rel=1e-9)


class TestRtp:
    def test_sequence_and_timestamps(self):
        packets = RtpPacketizer(G711).stream(0.1)
        assert len(packets) == 5
        assert [p.sequence for p in packets] == [0, 1, 2, 3, 4]
        assert packets[3].timestamp_ms == 60.0

    def test_marker_only_on_first(self):
        packets = RtpPacketizer(G711).stream(0.1)
        assert packets[0].marker
        assert not any(p.marker for p in packets[1:])

    def test_packet_size_includes_header(self):
        pkt = RtpPacketizer(G711).next_packet()
        assert pkt.size == RTP_HEADER_BYTES + 160

    def test_fill_byte_validation(self):
        with pytest.raises(ValueError):
            RtpPacketizer(G711, fill_byte=b"ab")

    def test_receiver_no_loss(self):
        rx = RtpReceiver(G711)
        for pkt in RtpPacketizer(G711).stream(1.0):
            rx.on_packet(pkt, arrival_ms=pkt.timestamp_ms + 50.0)
        assert rx.loss_fraction == 0.0
        assert rx.jitter_ms == pytest.approx(0.0)

    def test_receiver_counts_loss(self):
        rx = RtpReceiver(G711)
        packets = RtpPacketizer(G711).stream(1.0)
        for i, pkt in enumerate(packets):
            if i % 10 == 0:  # drop 10%
                continue
            rx.on_packet(pkt, arrival_ms=pkt.timestamp_ms + 50.0)
        assert rx.loss_fraction == pytest.approx(0.1, abs=0.02)

    def test_receiver_jitter_nonzero_with_variable_delay(self):
        rx = RtpReceiver(G711)
        for i, pkt in enumerate(RtpPacketizer(G711).stream(1.0)):
            delay = 50.0 + (5.0 if i % 2 else 0.0)
            rx.on_packet(pkt, arrival_ms=pkt.timestamp_ms + delay)
        assert rx.jitter_ms > 1.0

    def test_receiver_empty(self):
        rx = RtpReceiver(G711)
        assert rx.expected == 0
        assert rx.loss_fraction == 0.0


class TestEModelFormulas:
    def test_delay_impairment_linear_below_knee(self):
        assert delay_impairment(100.0) == pytest.approx(2.4)

    def test_delay_impairment_knee_at_177ms(self):
        below = delay_impairment(177.0)
        above = delay_impairment(178.0)
        # Above the knee the slope jumps from 0.024 to 0.134.
        assert above - below > 0.1

    def test_delay_impairment_negative_rejected(self):
        with pytest.raises(ValueError):
            delay_impairment(-1.0)

    def test_r_factor_max_at_zero_delay_zero_loss(self):
        assert r_factor(0.0) == pytest.approx(94.2)

    def test_r_factor_clamped_to_zero(self):
        assert r_factor(2000.0, 0.5) == 0.0

    def test_r_factor_decreasing_in_delay(self):
        rs = [r_factor(d) for d in (0, 50, 100, 200, 400)]
        assert rs == sorted(rs, reverse=True)

    def test_r_factor_decreasing_in_loss(self):
        rs = [r_factor(100.0, e) for e in (0.0, 0.01, 0.05, 0.1)]
        assert rs == sorted(rs, reverse=True)

    def test_mos_range(self):
        assert mos_from_r(-5) == 1.0
        assert mos_from_r(120) == 4.5
        assert 4.3 < mos_from_r(93) < 4.5

    def test_mos_monotone(self):
        values = [mos_from_r(r) for r in range(0, 101, 10)]
        assert values == sorted(values)

    def test_quality_bands(self):
        assert quality_band(95) == "perfect"
        assert quality_band(85) == "high"
        assert quality_band(75) == "medium"
        assert quality_band(65) == "low"
        assert quality_band(30) == "poor"


class TestEModelEvaluator:
    def test_direct_transatlantic_call_is_high_or_better(self):
        # ~45 ms network OWD (EU-NA): the paper's Fig. 7 shows direct
        # calls between EU/NA/SA at high or perfect quality.
        quality = EModel().evaluate(45.0)
        assert quality.band in ("high", "perfect")

    def test_australia_call_is_medium(self):
        # AU↔EU client-to-client: ~165 ms backbone + 2×20 ms last mile
        # → medium band in Fig. 7 ("latencies between Australia and the
        # rest of the world were of medium quality").
        quality = EModel().evaluate(205.0)
        assert quality.band == "medium"

    def test_herd_extra_100ms_drops_at_most_one_band(self):
        # §4.3.3: Herd adds ~100 ms; quality drops ≤ 1 MOS level.
        bands = [b for _, b in reversed(
            [(t, b) for t, b in
             __import__("repro.voip.emodel", fromlist=["MOS_BANDS"])
             .MOS_BANDS])]
        direct = EModel().evaluate(45.0)
        herd = EModel().evaluate(145.0)
        assert abs(bands.index(direct.band) - bands.index(herd.band)) <= 1

    def test_loss_costs_at_most_one_band_at_few_percent(self):
        # §4.3.3: "packet loss never exceeded a few percents which
        # would result in the loss of at most one MOS level".
        clean = EModel().evaluate(45.0, 0.0)
        lossy = EModel().evaluate(45.0, 0.02)
        order = ["poor", "low", "medium", "high", "perfect"]
        assert order.index(clean.band) - order.index(lossy.band) <= 1

    def test_mouth_to_ear_adds_endpoint_delays(self):
        model = EModel()
        assert model.mouth_to_ear_ms(100.0) == pytest.approx(160.0)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EModel().evaluate(-1.0)

    def test_custom_codec(self):
        q711 = EModel(G711).evaluate(50.0, 0.02)
        q729 = EModel(G729).evaluate(50.0, 0.02)
        assert q729.r < q711.r  # G.729 strictly worse at equal loss


@given(delay=st.floats(min_value=0, max_value=1000),
       loss=st.floats(min_value=0, max_value=1))
def test_r_factor_always_in_range(delay, loss):
    assert 0.0 <= r_factor(delay, loss) <= 100.0


@given(r=st.floats(min_value=0, max_value=100))
def test_mos_always_in_range(r):
    assert 1.0 <= mos_from_r(r) <= 4.5


@given(delay=st.floats(min_value=0, max_value=500),
       loss=st.floats(min_value=0, max_value=0.5))
def test_band_consistent_with_r(delay, loss):
    codec = G711
    r = r_factor(delay, loss, codec)
    band = quality_band(r)
    thresholds = {"perfect": 90, "high": 80, "medium": 70, "low": 60,
                  "poor": 0}
    assert r >= thresholds[band]

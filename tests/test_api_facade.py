"""The repro.api facade: SimConfig validation, scenario runs, the
acceptance determinism criteria, and the deprecation shims on the old
entry points."""

import warnings

import pytest

from repro import (
    MetricsRegistry,
    RunReport,
    SimConfig,
    Simulation,
    build_testbed,
)
from repro.simulation.chaos import ChaosConfig, run_chaos
from repro.simulation.live import LiveZone


class TestSimConfig:
    def test_keyword_only(self):
        with pytest.raises(TypeError):
            SimConfig("live")  # noqa: keyword-only by design

    def test_rejects_unknown_scenario(self):
        with pytest.raises(ValueError):
            SimConfig(scenario="wat")

    def test_rejects_impossible_call_pairs(self):
        with pytest.raises(ValueError):
            SimConfig(n_clients=2, call_pairs=2)


class TestLiveScenario:
    @pytest.fixture(scope="class")
    def report(self):
        return Simulation(SimConfig(seed=7, call_pairs=2)).run(rounds=50)

    def test_runs_and_reports(self, report):
        assert isinstance(report, RunReport)
        assert report.rounds_run == 50
        assert report.detail["clients_in_call"] == 4

    def test_metrics_cover_links_and_cells(self, report):
        assert report.counter_value(
            "herd_link_bytes_total",
            {"link": "zone-EU/sp-0->zone-EU/mix-0"}) > 0
        payload = report.counter_value("herd_mix_cells_total",
                                       {"kind": "payload"})
        chaff = report.counter_value("herd_mix_cells_total",
                                     {"kind": "chaff"})
        control = report.counter_value("herd_mix_cells_total",
                                       {"kind": "control"})
        # Unobservability: one cell per enabled channel per round.
        assert payload + chaff + control == 50 * 4
        assert payload > 0 and chaff > 0

    def test_trace_has_call_spans(self, report):
        setups = [e for e in report.trace_events
                  if e.name == "call_setup" and e.phase == "end"]
        assert len(setups) == 2

    def test_prometheus_dump(self, report):
        text = report.to_prometheus()
        assert "herd_link_bytes_total{" in text
        assert 'herd_mix_cells_total{kind="chaff"}' in text

    def test_simulation_is_one_shot(self):
        sim = Simulation(SimConfig(n_clients=4, call_pairs=0))
        sim.run(rounds=1)
        with pytest.raises(RuntimeError):
            sim.run(rounds=1)


def test_acceptance_identical_seeds_identical_outputs(tmp_path):
    """The PR's acceptance criterion: two identically-seeded runs give
    identical metrics snapshots and byte-identical JSONL traces."""
    paths = [str(tmp_path / f"run{i}.jsonl") for i in (1, 2)]
    reports = [
        Simulation(SimConfig(seed=7, trace_path=p)).run(rounds=50)
        for p in paths
    ]
    assert reports[0].metrics == reports[1].metrics
    blobs = [open(p, "rb").read() for p in paths]
    assert blobs[0] == blobs[1] and blobs[0]
    assert reports[0].trace_events == reports[1].trace_events


def test_different_seed_changes_trace(tmp_path):
    runs = [Simulation(SimConfig(seed=s, call_pairs=2)).run(rounds=30)
            for s in (1, 2)]
    assert runs[0].metrics != runs[1].metrics or \
        runs[0].trace_events != runs[1].trace_events


class TestTestbedScenario:
    def test_end_to_end_frames(self):
        report = Simulation(SimConfig(
            scenario="testbed", seed=3, n_clients=4,
            call_pairs=2)).run(rounds=10)
        # 2 calls x 2 directions x 10 rounds, minus nothing (lossless).
        assert report.counter_value("herd_e2e_frames_total") == 40
        assert report.detail["frames_delivered"] == 40


class TestChaosScenario:
    def test_chaos_produces_fault_metrics(self):
        report = Simulation(SimConfig(
            scenario="chaos", seed=11, n_channels=6)).run()
        assert report.scenario == "chaos"
        assert report.rounds_run > 0
        assert report.counter_value(
            "herd_fault_events_total",
            {"action": "injected", "kind": "mix_crash"}) == 1
        assert report.detail.plan_signature  # the full ChaosReport

    def test_until_overrides_horizon(self):
        report = Simulation(SimConfig(
            scenario="chaos", seed=11, n_channels=6)).run(until=1.0)
        # 1 s horizon at 20 ms rounds, before any fault fires.
        assert report.rounds_run <= 55
        assert report.counter_value(
            "herd_fault_events_total",
            {"action": "injected", "kind": "mix_crash"}) == 0


class TestDeprecationShims:
    """The PR-3 positional/alias shims completed their deprecation
    cycle and are removed: the facade API is keyword-only.  These
    tests pin the *removal* — the old spellings now fail loudly with
    ``TypeError``, not silently misbind."""

    def test_livezone_positional_removed(self):
        with pytest.raises(TypeError):
            LiveZone(8, 4)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            zone = LiveZone(n_clients=8, n_channels=4)
        assert len(zone.clients) == 8

    def test_build_testbed_positional_seed_removed(self):
        specs = [("zone-X", "dc-x", 1)]
        with pytest.raises(TypeError):
            build_testbed(specs, 99)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            bed = build_testbed(specs, seed=99)
        assert "zone-X/mix-0" in bed.mixes

    def test_chaos_config_alias_removed(self):
        with pytest.raises(TypeError):
            ChaosConfig(n_live_clients=8)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert ChaosConfig(n_clients=8).n_clients == 8

    def test_run_chaos_keyword_overrides(self):
        report = run_chaos(ChaosConfig(horizon_s=0.5), seed=5,
                           n_clients=8, n_channels=6)
        assert report.rounds_run > 0

    def test_run_chaos_routes_through_scenario_engine(self,
                                                      monkeypatch):
        """``run_chaos`` is now a thin adapter over the scenario
        engine: it compiles its config to a Scenario and executes it
        through :func:`repro.scenario.engine.execute`."""
        import repro.scenario.engine as engine_mod
        from repro.simulation.chaos import scenario_from_chaos_config

        cfg = ChaosConfig(horizon_s=0.5, n_clients=8, n_channels=6)
        scenario = scenario_from_chaos_config(cfg)
        assert scenario.name == "chaos"
        assert scenario.horizon_s == 0.5
        assert scenario.zone.n_clients == 8

        seen = {}
        real_execute = engine_mod.execute

        def spying_execute(sc, **kwargs):
            seen["scenario"] = sc
            seen["execution"] = kwargs.get("execution")
            return real_execute(sc, **kwargs)

        monkeypatch.setattr(engine_mod, "execute", spying_execute)
        report = run_chaos(cfg)
        assert seen["scenario"].signature() == scenario.signature()
        assert seen["execution"] == "event"
        assert report.rounds_run > 0


def test_run_rejects_rounds_and_until_together():
    with pytest.raises(ValueError):
        Simulation(SimConfig()).run(rounds=10, until=5.0)


def test_metrics_registry_reexported():
    assert MetricsRegistry().counter("x").value == 0.0

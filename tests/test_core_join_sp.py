"""Integration tests: join protocol, superpeer rounds, signaling,
blacklisting, and the SP-facing invariants."""

import random

import pytest

from repro.core.blacklist import SPMonitor
from repro.core.client import HerdClient
from repro.core.channel import decode_manifest
from repro.core.invariants import (
    looks_uniform,
    series_identical,
    sp_state_is_activity_free,
)
from repro.core.join import join_zone
from repro.core.network_coding import CODED_PACKET_SIZE
from repro.core.signaling import (
    ChannelGrant,
    DOWNSTREAM_PACKET_SIZE,
    IncomingCallAnnouncement,
    KIND_INCOMING,
    KIND_VOIP,
    make_downstream_chaff,
    make_downstream_packet,
    open_downstream_packet,
)
from repro.core.superpeer import SuperPeer

from conftest import build_testbed


def _sp_testbed(n_clients=6, n_channels=3, k=2, seed=7):
    """One zone, one mix with channels, one SP hosting them, clients
    joined through the SP path."""
    bed = build_testbed(zone_specs=[("zone-EU", "dc-eu", 1)], seed=seed)
    mix = bed.mixes["zone-EU/mix-0"]
    mix.configure_channels(n_channels)
    sp = SuperPeer("sp-0", mix.mix_id)
    for ch in range(n_channels):
        sp.host_channel(ch, [])
    bed.superpeers["sp-0"] = sp
    clients = []
    for i in range(n_clients):
        client = HerdClient(f"client-{i}", "zone-EU", rng=bed.rng, k=k)
        join_zone(client, bed.directories["zone-EU"], bed.mixes,
                  superpeers=bed.superpeers, rng=bed.rng)
        bed.clients[client.client_id] = client
        clients.append(client)
    return bed, mix, sp, clients


class TestJoinProtocol:
    def test_direct_join_without_sps(self, testbed):
        client = testbed.add_client("alice", "zone-EU")
        assert client.joined
        assert client.mix_id in testbed.mixes
        mix = testbed.mixes[client.mix_id]
        assert "alice" in mix.client_keys

    def test_join_key_agreement(self, testbed):
        client = testbed.add_client("alice", "zone-EU")
        mix = testbed.mixes[client.mix_id]
        assert mix.client_keys["alice"].key == client.session_key.key

    def test_join_issues_certificate(self, testbed):
        client = testbed.add_client("alice", "zone-EU")
        assert client.certificate.zone_id == "zone-EU"
        assert client.certificate.role == "client"
        assert testbed.root.verify_chain(
            client.certificate,
            testbed.directories["zone-EU"].certificate)

    def test_double_join_rejected(self, testbed):
        client = testbed.add_client("alice", "zone-EU")
        with pytest.raises(RuntimeError):
            join_zone(client, testbed.directories["zone-EU"],
                      testbed.mixes)

    def test_wrong_zone_directory_rejected(self, testbed):
        client = HerdClient("alice", "zone-EU", rng=testbed.rng)
        with pytest.raises(ValueError):
            join_zone(client, testbed.directories["zone-NA"],
                      testbed.mixes)

    def test_sp_join_attaches_k_channels(self):
        bed, mix, sp, clients = _sp_testbed(n_clients=4, n_channels=4,
                                            k=2)
        for client in clients:
            assert len(client.attachments) == 2
            channels = {a.channel_id for a in client.attachments}
            assert len(channels) == 2

    def test_sp_join_balances_channels(self):
        _, mix, sp, _ = _sp_testbed(n_clients=6, n_channels=3, k=2)
        occupancy = [ch.member_count() for ch in mix.channels.values()]
        assert max(occupancy) - min(occupancy) <= 1

    def test_mix_and_sp_slots_agree(self):
        bed, mix, sp, clients = _sp_testbed()
        for client in clients:
            for att in client.attachments:
                assert sp.channel_clients[att.channel_id][att.slot] \
                    == client.client_id
                assert mix.client_at_slot(att.channel_id, att.slot) \
                    == client.client_id


class TestSuperPeerRounds:
    def test_idle_round_roundtrip(self):
        bed, mix, sp, clients = _sp_testbed(n_clients=4, n_channels=2,
                                            k=1)
        channel_id = 0
        members = sp.channel_clients[channel_id]
        packets, manifests = [], []
        for client_id in members:
            client = bed.clients[client_id]
            att = next(a for a in client.attachments
                       if a.channel_id == channel_id)
            pkt, mf = client.upstream_packet(att)
            packets.append(pkt)
            manifests.append(mf)
        up = sp.combine_upstream(channel_id, 0, packets, manifests)
        assert len(up.xor_packet) == CODED_PACKET_SIZE
        # Mix decodes manifests by slot, then the round.
        entries = []
        for slot, raw in enumerate(up.manifests):
            client_id = mix.client_at_slot(channel_id, slot)
            key = mix.client_keys[client_id]
            numeric = mix.channels[channel_id].members[slot]
            m = decode_manifest(raw, key, slot, expected_sequence=0)
            entries.append((numeric, m.sequence, m.signal))
        active, payload, signalers = mix.decode_channel_round(
            channel_id, up.xor_packet, entries)
        assert active is None
        assert payload == b""
        assert signalers == []

    def test_active_round_recovers_cell(self):
        bed, mix, sp, clients = _sp_testbed(n_clients=4, n_channels=2,
                                            k=1)
        channel_id = 0
        members = sp.channel_clients[channel_id]
        talker_id = members[0]
        talker = bed.clients[talker_id]
        talker_att = next(a for a in talker.attachments
                          if a.channel_id == channel_id)
        # Mix allocates the call to the talker on this channel.
        mix.channels[channel_id].start_call(talker_att.slot)
        cell = b"ONION-CELL" * 4
        packets, manifests = [], []
        for client_id in members:
            client = bed.clients[client_id]
            att = next(a for a in client.attachments
                       if a.channel_id == channel_id)
            payload = cell if client_id == talker_id else None
            pkt, mf = client.upstream_packet(att, payload)
            packets.append(pkt)
            manifests.append(mf)
        up = sp.combine_upstream(channel_id, 0, packets, manifests)
        entries = []
        for slot, raw in enumerate(up.manifests):
            client_id = mix.client_at_slot(channel_id, slot)
            key = mix.client_keys[client_id]
            numeric = mix.channels[channel_id].members[slot]
            m = decode_manifest(raw, key, slot, expected_sequence=0)
            entries.append((numeric, m.sequence, m.signal))
        active, payload, _ = mix.decode_channel_round(
            channel_id, up.xor_packet, entries)
        assert active == mix.channels[channel_id].members[
            talker_att.slot]
        assert payload[:len(cell)] == cell

    def test_signal_bit_travels_in_manifest(self):
        bed, mix, sp, clients = _sp_testbed(n_clients=2, n_channels=1,
                                            k=1)
        caller = clients[0]
        caller.request_outgoing_call()
        members = sp.channel_clients[0]
        packets, manifests = [], []
        for client_id in members:
            client = bed.clients[client_id]
            att = client.attachments[0]
            pkt, mf = client.upstream_packet(att)
            packets.append(pkt)
            manifests.append(mf)
        up = sp.combine_upstream(0, 0, packets, manifests)
        entries = []
        for slot, raw in enumerate(up.manifests):
            client_id = mix.client_at_slot(0, slot)
            key = mix.client_keys[client_id]
            numeric = mix.channels[0].members[slot]
            m = decode_manifest(raw, key, slot, expected_sequence=0)
            entries.append((numeric, m.sequence, m.signal))
        _, _, signalers = mix.decode_channel_round(0, up.xor_packet,
                                                   entries)
        caller_numeric = mix.channels[0].members[
            caller.attachments[0].slot]
        assert signalers == [caller_numeric]

    def test_packet_count_mismatch_rejected(self):
        bed, mix, sp, clients = _sp_testbed(n_clients=2, n_channels=1,
                                            k=1)
        with pytest.raises(ValueError):
            sp.combine_upstream(0, 0, [b"\x00" * CODED_PACKET_SIZE], [])

    def test_wrong_packet_size_rejected(self):
        bed, mix, sp, clients = _sp_testbed(n_clients=2, n_channels=1,
                                            k=1)
        n = len(sp.channel_clients[0])
        with pytest.raises(ValueError):
            sp.combine_upstream(0, 0, [b"\x00" * 7] * n, [b"\x00"] * n)

    def test_audit_buffer_keeps_recent_rounds(self):
        bed, mix, sp, clients = _sp_testbed(n_clients=2, n_channels=1,
                                            k=1)
        members = sp.channel_clients[0]
        for rnd in range(5):
            packets, manifests = [], []
            for client_id in members:
                client = bed.clients[client_id]
                att = client.attachments[0]
                pkt, mf = client.upstream_packet(att)
                packets.append(pkt)
                manifests.append(mf)
            sp.combine_upstream(0, rnd, packets, manifests)
        assert len(sp.audit_packets(0, 4)) == len(members)
        with pytest.raises(KeyError):
            sp.audit_packets(0, 0)  # evicted

    def test_downstream_broadcast_reaches_all(self):
        bed, mix, sp, clients = _sp_testbed(n_clients=4, n_channels=2,
                                            k=1)
        packet = make_downstream_chaff(random.Random(0))
        out = sp.broadcast_downstream(0, packet)
        assert len(out) == len(sp.channel_clients[0])
        assert all(pkt == packet for _, pkt in out)


class TestSignaling:
    def test_announcement_only_callee_decrypts(self):
        bed, mix, sp, clients = _sp_testbed(n_clients=3, n_channels=1,
                                            k=1)
        callee = clients[0]
        key = mix.client_keys[callee.client_id]
        packet = make_downstream_packet(
            key, channel_id=0, round_index=9, kind=KIND_INCOMING,
            payload=IncomingCallAnnouncement(call_id=42).encode())
        assert len(packet) == DOWNSTREAM_PACKET_SIZE
        got = open_downstream_packet(callee.session_key, 0, 9, packet)
        assert got is not None
        kind, payload = got
        assert kind == KIND_INCOMING
        assert IncomingCallAnnouncement.decode(payload).call_id == 42
        for other in clients[1:]:
            assert open_downstream_packet(other.session_key, 0, 9,
                                          packet) is None

    def test_wrong_round_index_fails(self):
        bed, mix, sp, clients = _sp_testbed(n_clients=1, n_channels=1,
                                            k=1)
        key = mix.client_keys[clients[0].client_id]
        packet = make_downstream_packet(key, 0, 5, KIND_VOIP, b"cell")
        assert open_downstream_packet(clients[0].session_key, 0, 6,
                                      packet) is None

    def test_grant_roundtrip(self):
        grant = ChannelGrant(channel_id=3, call_id=77)
        assert ChannelGrant.decode(grant.encode()) == grant

    def test_chaff_looks_uniform_and_never_decrypts(self):
        bed, mix, sp, clients = _sp_testbed(n_clients=2, n_channels=1,
                                            k=1)
        rng = random.Random(1)
        chaff = make_downstream_chaff(rng)
        assert looks_uniform(chaff)
        for client in clients:
            assert open_downstream_packet(client.session_key, 0, 0,
                                          chaff) is None

    def test_oversized_payload_rejected(self):
        bed, mix, sp, clients = _sp_testbed(n_clients=1, n_channels=1,
                                            k=1)
        key = mix.client_keys[clients[0].client_id]
        with pytest.raises(ValueError):
            make_downstream_packet(key, 0, 0, KIND_VOIP, b"\x00" * 400)

    def test_unknown_kind_rejected(self):
        bed, mix, sp, clients = _sp_testbed(n_clients=1, n_channels=1,
                                            k=1)
        key = mix.client_keys[clients[0].client_id]
        with pytest.raises(ValueError):
            make_downstream_packet(key, 0, 0, 0x99, b"")


class TestBlacklist:
    def test_good_sp_stays(self):
        mon = SPMonitor()
        for _ in range(20):
            mon.record_quality("sp-0", loss=0.001, jitter_ms=5.0)
        assert not mon.is_blacklisted("sp-0")

    def test_lossy_sp_blacklisted(self):
        mon = SPMonitor()
        for _ in range(10):
            mon.record_quality("sp-0", loss=0.10, jitter_ms=5.0)
        assert mon.is_blacklisted("sp-0")

    def test_jittery_sp_blacklisted(self):
        mon = SPMonitor()
        for _ in range(10):
            mon.record_quality("sp-0", loss=0.0, jitter_ms=100.0)
        assert mon.is_blacklisted("sp-0")

    def test_no_judgement_before_min_samples(self):
        mon = SPMonitor()
        for _ in range(5):
            mon.record_quality("sp-0", loss=0.5, jitter_ms=200.0)
        assert not mon.is_blacklisted("sp-0")

    def test_unavailable_sp_blacklisted(self):
        mon = SPMonitor()
        for i in range(20):
            mon.record_availability("sp-0", is_up=(i % 2 == 0))
        assert mon.is_blacklisted("sp-0")

    def test_validation(self):
        mon = SPMonitor()
        with pytest.raises(ValueError):
            mon.record_quality("sp", loss=1.5, jitter_ms=0)
        with pytest.raises(ValueError):
            mon.record_quality("sp", loss=0.0, jitter_ms=-1)

    def test_audit_identifies_lying_client(self):
        mon = SPMonitor()
        culprit = mon.audit_round(
            "sp-0",
            packets_by_client={"c1": b"expected", "c2": b"forged"},
            expected_by_client={"c1": b"expected", "c2": b"other"})
        assert culprit == "c2"
        assert "c2" in mon.blacklisted_clients
        assert not mon.is_blacklisted("sp-0")

    def test_audit_blames_sp_when_clients_honest(self):
        mon = SPMonitor()
        culprit = mon.audit_round(
            "sp-0",
            packets_by_client={"c1": b"expected"},
            expected_by_client={"c1": b"expected"})
        assert culprit is None
        assert mon.is_blacklisted("sp-0")


class TestInvariantI8:
    def test_sp_state_contains_no_activity(self):
        bed, mix, sp, clients = _sp_testbed()
        assert sp_state_is_activity_free(sp)

    def test_sp_traffic_identical_active_vs_idle(self):
        """I8 behaviourally: the byte volume an SP forwards per round is
        identical whether or not a call is active."""
        def run_rounds(active: bool) -> dict:
            bed, mix, sp, clients = _sp_testbed(n_clients=4,
                                                n_channels=2, k=1,
                                                seed=13)
            members = sp.channel_clients[0]
            talker = bed.clients[members[0]]
            att = talker.attachments[0]
            if active:
                mix.channels[0].start_call(att.slot)
            volume = {}
            for rnd in range(20):
                packets, manifests = [], []
                for client_id in members:
                    client = bed.clients[client_id]
                    a = client.attachments[0]
                    payload = (b"CELL" if active and
                               client is talker else None)
                    pkt, mf = client.upstream_packet(a, payload)
                    packets.append(pkt)
                    manifests.append(mf)
                up = sp.combine_upstream(0, rnd, packets, manifests)
                volume[rnd] = (len(up.xor_packet)
                               + sum(len(m) for m in up.manifests))
            return volume

        assert series_identical(run_rounds(False), run_rounds(True))

    def test_client_upstream_ciphertext_uniform(self):
        bed, mix, sp, clients = _sp_testbed(n_clients=1, n_channels=1,
                                            k=1)
        client = clients[0]
        att = client.attachments[0]
        chaff_pkt, _ = client.upstream_packet(att)
        voip_pkt, _ = client.upstream_packet(att, b"frame")
        assert looks_uniform(chaff_pkt)
        assert looks_uniform(voip_pkt)

"""`repro lint --fix` tests: the HL003 digest-comparison autofix is
byte-exact against the before/after fixture pair, idempotent, and
wired through the CLI."""

import shutil
from pathlib import Path

from repro.lint import LintConfig, run_lint
from repro.lint.cli import main as lint_main
from repro.lint.fixes import fix_source

FIXTURES = Path(__file__).parent / "lint_fixtures" / "autofix"
BEFORE = FIXTURES / "digest_before.py"
AFTER = FIXTURES / "digest_after.py"


def test_fix_matches_golden_output():
    fixed, count = fix_source(BEFORE.read_text(encoding="utf-8"))
    assert count == 3
    assert fixed == AFTER.read_text(encoding="utf-8")


def test_fix_is_idempotent():
    once, _ = fix_source(BEFORE.read_text(encoding="utf-8"))
    twice, count = fix_source(once)
    assert count == 0
    assert twice == once


def test_fixed_source_is_hl003_clean(tmp_path):
    fixed, _ = fix_source(BEFORE.read_text(encoding="utf-8"))
    target = tmp_path / "fixed.py"
    target.write_text(fixed, encoding="utf-8")
    result = run_lint([str(target)], LintConfig(select=("HL003",)))
    assert result.findings == []


def test_fix_leaves_clean_files_untouched(tmp_path):
    source = '"""No digests here."""\n\nx = 1\nassert x == 1\n'
    fixed, count = fix_source(source)
    assert count == 0
    assert fixed == source


def test_fix_skips_chained_comparisons():
    source = "ok = first_mac == second_mac == third_mac\n"
    fixed, count = fix_source(source)
    assert count == 0
    assert fixed == source


def test_fix_preserves_none_guards():
    source = "missing = mac == None\n"
    fixed, count = fix_source(source)
    assert count == 0


def test_fix_reuses_existing_hmac_import():
    source = ("import hmac\n"
              "\n"
              "def check(mac, expected_mac):\n"
              "    return mac == expected_mac\n")
    fixed, count = fix_source(source)
    assert count == 1
    assert fixed.count("import hmac") == 1
    assert "hmac.compare_digest(mac, expected_mac)" in fixed


def test_cli_fix_rewrites_in_place_and_gates_remainder(tmp_path, capsys):
    target = tmp_path / "digest_before.py"
    shutil.copy(BEFORE, target)
    # After fixing, the file is clean: exit 0.
    assert lint_main([str(target), "--fix",
                      "--select", "HL003"]) == 0
    out = capsys.readouterr().out
    assert "fixed 3 digest comparisons" in out
    assert target.read_text(encoding="utf-8") == \
        AFTER.read_text(encoding="utf-8")

"""Tests: timeout/retry/backoff primitives (§3.1, §3.5)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.retry import (
    BackoffPolicy,
    Deadline,
    LoopRetry,
    RetryError,
    TimeoutExpired,
    VirtualClock,
    call_with_retries,
)
from repro.netsim.engine import EventLoop


class TestVirtualClock:
    def test_starts_at_zero_and_advances(self):
        clock = VirtualClock()
        assert clock.now == 0.0
        clock.advance(2.5)
        assert clock.now == 2.5

    def test_cannot_go_backwards(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)


class TestDeadline:
    def test_remaining_and_expiry(self):
        clock = VirtualClock()
        deadline = Deadline(clock, 3.0)
        assert deadline.remaining == 3.0
        clock.advance(2.0)
        assert deadline.remaining == 1.0
        assert not deadline.expired
        clock.advance(1.0)
        assert deadline.expired
        with pytest.raises(TimeoutExpired):
            deadline.check()

    def test_works_against_event_loop_clock(self):
        loop = EventLoop()
        deadline = Deadline(loop, 1.0)
        loop.schedule(2.0, lambda: None)
        loop.run()
        assert deadline.expired

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ValueError):
            Deadline(VirtualClock(), 0.0)


class TestBackoffPolicy:
    def test_exponential_schedule(self):
        policy = BackoffPolicy(base_delay_s=1.0, multiplier=2.0,
                               max_delay_s=5.0, jitter=0.0)
        assert [policy.delay_for(n) for n in (1, 2, 3, 4)] == \
            [1.0, 2.0, 4.0, 5.0]  # capped at max_delay_s

    def test_jitter_is_bounded_and_deterministic(self):
        policy = BackoffPolicy(base_delay_s=1.0, jitter=0.25)
        delays = [policy.delay_for(1, random.Random(7)) for _ in range(3)]
        assert delays[0] == delays[1] == delays[2]
        assert 0.75 <= delays[0] <= 1.25

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base_delay_s=-1.0)
        with pytest.raises(ValueError):
            BackoffPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(max_delay_s=0.1, base_delay_s=0.2)
        with pytest.raises(ValueError):
            BackoffPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            BackoffPolicy().delay_for(0)


class TestCallWithRetries:
    def test_succeeds_after_failures_accounting_backoff(self):
        clock = VirtualClock()
        calls = []

        def flaky():
            calls.append(clock.now)
            if len(calls) < 3:
                raise KeyError("dead mix still listed")
            return "joined"

        outcome = call_with_retries(
            flaky, policy=BackoffPolicy(base_delay_s=1.0, jitter=0.0),
            clock=clock, retry_on=(KeyError,))
        assert outcome.value == "joined"
        assert outcome.attempts == 3
        assert outcome.backoff_s == 3.0  # 1.0 + 2.0
        assert calls == [0.0, 1.0, 3.0]

    def test_gives_up_after_max_attempts(self):
        def always_fails():
            raise KeyError("down")

        with pytest.raises(RetryError) as err:
            call_with_retries(
                always_fails,
                policy=BackoffPolicy(max_attempts=3, jitter=0.0),
                retry_on=(KeyError,))
        assert err.value.attempts == 3
        assert isinstance(err.value.last_error, KeyError)

    def test_unlisted_exception_propagates(self):
        def boom():
            raise ZeroDivisionError

        with pytest.raises(ZeroDivisionError):
            call_with_retries(boom, retry_on=(KeyError,))

    def test_deadline_cuts_retries_short(self):
        clock = VirtualClock()

        def always_fails():
            raise KeyError("down")

        with pytest.raises(RetryError) as err:
            call_with_retries(
                always_fails,
                policy=BackoffPolicy(base_delay_s=10.0, max_delay_s=10.0,
                                     jitter=0.0, max_attempts=5),
                clock=clock, deadline=Deadline(clock, 5.0),
                retry_on=(KeyError,))
        assert err.value.attempts == 1  # backoff would overrun deadline

    def test_on_retry_hook_observes_failures(self):
        seen = []
        clock = VirtualClock()

        def flaky():
            if not seen:
                raise KeyError("once")
            return 1

        call_with_retries(
            flaky, policy=BackoffPolicy(base_delay_s=0.5, jitter=0.0),
            clock=clock, retry_on=(KeyError,),
            on_retry=lambda n, exc, delay: seen.append((n, delay)))
        assert seen == [(1, 0.5)]


class TestLoopRetry:
    def test_succeeds_on_loop_with_backoff(self):
        loop = EventLoop(seed=3)
        attempts = []

        def flaky():
            attempts.append(loop.now)
            if len(attempts) < 3:
                raise RuntimeError("not yet")
            return "ok"

        done = []
        task = LoopRetry(
            loop=loop, fn=flaky,
            policy=BackoffPolicy(base_delay_s=1.0, jitter=0.0),
            retry_on=(RuntimeError,),
            on_success=lambda t: done.append(t.value))
        loop.run()
        assert done == ["ok"]
        assert task.succeeded and task.done
        assert task.attempts == 3
        assert task.backoff_s == 3.0
        assert attempts == [0.0, 1.0, 3.0]
        assert task.elapsed_s == 3.0

    def test_gives_up_and_reports(self):
        loop = EventLoop(seed=3)

        def always_fails():
            raise RuntimeError("down for good")

        failures = []
        task = LoopRetry(
            loop=loop, fn=always_fails,
            policy=BackoffPolicy(max_attempts=2, base_delay_s=0.5,
                                 jitter=0.0),
            retry_on=(RuntimeError,),
            on_give_up=lambda t: failures.append(t.attempts))
        loop.run()
        assert failures == [2]
        assert task.done and not task.succeeded
        assert isinstance(task.failure, RuntimeError)

    def test_start_delay_defers_first_attempt(self):
        loop = EventLoop()
        times = []
        LoopRetry(loop=loop, fn=lambda: times.append(loop.now),
                  start_delay_s=2.0)
        loop.run()
        assert times == [2.0]

    @given(fail_n=st.integers(0, 5), seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_attempts_accounting_property(self, fail_n, seed):
        """A function that fails ``fail_n`` times then succeeds is
        called exactly ``fail_n + 1`` times, and the task agrees."""
        loop = EventLoop(seed=seed)
        calls = []

        def flaky():
            calls.append(loop.now)
            if len(calls) <= fail_n:
                raise RuntimeError("not yet")
            return "ok"

        task = LoopRetry(
            loop=loop, fn=flaky,
            policy=BackoffPolicy(base_delay_s=0.1, max_attempts=6,
                                 jitter=0.2),
            retry_on=(RuntimeError,))
        loop.run()
        assert task.succeeded
        assert task.attempts == len(calls) == fail_n + 1
        # Attempt times are strictly increasing virtual times.
        assert calls == sorted(calls)

    def test_jitter_uses_loop_rng_by_default(self):
        def run_once():
            loop = EventLoop(seed=11)
            calls = []

            def flaky():
                calls.append(loop.now)
                if len(calls) < 2:
                    raise RuntimeError("once")

            LoopRetry(loop=loop, fn=flaky,
                      policy=BackoffPolicy(base_delay_s=1.0, jitter=0.3),
                      retry_on=(RuntimeError,))
            loop.run()
            return calls

        assert run_once() == run_once()  # same seed, same jitter


class TestBackoffProperties:
    """Hypothesis sweep of the §3.5 backoff contract: delays stay in
    the policy's cap, and seeded jitter replays bit-for-bit."""

    policies = st.builds(
        BackoffPolicy,
        base_delay_s=st.floats(0.01, 2.0),
        multiplier=st.floats(1.0, 4.0),
        max_delay_s=st.floats(2.0, 30.0),
        jitter=st.floats(0.0, 0.9),
        max_attempts=st.integers(1, 10))

    @given(policy=policies, failures=st.integers(1, 40),
           seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=80, deadline=None)
    def test_delays_bounded_by_cap(self, policy, failures, seed):
        delay = policy.delay_for(failures, random.Random(seed))
        assert delay >= 0.0
        assert delay <= policy.max_delay_s * (1.0 + policy.jitter)

    @given(policy=policies, seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_equal_seeds_bit_identical_sequences(self, policy, seed):
        def sequence():
            rng = random.Random(seed)
            return [policy.delay_for(n, rng) for n in range(1, 12)]

        first, second = sequence(), sequence()
        assert first == second  # float-exact, not approximate

    @given(max_attempts=st.integers(1, 8),
           seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_retry_error_counts_every_attempt(self, max_attempts,
                                              seed):
        calls = []

        def always_fails():
            calls.append(1)
            raise KeyError("down")

        with pytest.raises(RetryError) as err:
            call_with_retries(
                always_fails,
                policy=BackoffPolicy(base_delay_s=0.1,
                                     max_attempts=max_attempts,
                                     jitter=0.3),
                clock=VirtualClock(), rng=random.Random(seed),
                retry_on=(KeyError,))
        assert err.value.attempts == max_attempts == len(calls)
        assert isinstance(err.value.last_error, KeyError)

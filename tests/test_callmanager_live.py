"""Integration tests: call manager, signaling, and the live zone."""

import pytest

from repro.core.callmanager import CallState, MixCallManager
from repro.core.invariants import sp_state_is_activity_free
from repro.simulation.live import LiveZone


def _zone(**kwargs):
    defaults = dict(n_clients=12, n_channels=4, k=2, seed=5)
    defaults.update(kwargs)
    return LiveZone(**defaults)


class TestCallManagerBasics:
    def test_requires_channels(self):
        from repro.simulation.testbed import build_testbed
        bed = build_testbed([("zone-EU", "dc-eu", 1)])
        with pytest.raises(ValueError):
            MixCallManager(bed.mixes["zone-EU/mix-0"])

    def test_signal_allocates_channel(self):
        zone = _zone()
        live = zone.clients["client-0"]
        call = zone.manager.handle_signal(live.numeric_id)
        assert call is not None
        assert call.channel_id in \
            dict.fromkeys(a.channel_id for a in live.client.attachments)
        assert zone.mix.channels[call.channel_id].is_busy

    def test_duplicate_signal_idempotent(self):
        zone = _zone()
        live = zone.clients["client-0"]
        first = zone.manager.handle_signal(live.numeric_id)
        second = zone.manager.handle_signal(live.numeric_id)
        assert first is second

    def test_incoming_blocked_when_busy(self):
        zone = _zone()
        live = zone.clients["client-0"]
        zone.manager.handle_signal(live.numeric_id)
        assert zone.manager.place_incoming(live.numeric_id) is None
        assert zone.manager.calls_blocked == 1

    def test_end_call_frees_channel(self):
        zone = _zone()
        live = zone.clients["client-0"]
        call = zone.manager.handle_signal(live.numeric_id)
        zone.manager.end_call(live.numeric_id)
        assert not zone.mix.channels[call.channel_id].is_busy
        assert live.numeric_id not in zone.manager.calls

    def test_end_unknown_call_noop(self):
        zone = _zone()
        zone.manager.end_call(999)

    def test_enqueue_voice_requires_call(self):
        zone = _zone()
        with pytest.raises(KeyError):
            zone.manager.enqueue_voice(0, b"cell")

    def test_downstream_round_covers_all_channels(self):
        zone = _zone(n_channels=4)
        packets = zone.manager.downstream_round(0)
        assert set(packets) == set(zone.mix.channels)

    def test_blocking_when_all_client_channels_busy(self):
        # 2 channels, k=2: two concurrent calls exhaust everything.
        zone = _zone(n_clients=6, n_channels=2, k=2)
        a = zone.clients["client-0"]
        b = zone.clients["client-1"]
        c = zone.clients["client-2"]
        assert zone.manager.handle_signal(a.numeric_id) is not None
        assert zone.manager.handle_signal(b.numeric_id) is not None
        assert zone.manager.handle_signal(c.numeric_id) is None


class TestLiveSignalingFlow:
    def test_outgoing_call_granted_via_rounds(self):
        zone = _zone()
        zone.clients["client-0"].agent.start_outgoing()
        assert zone.state_of("client-0") is CallState.SIGNALING
        zone.run(2)  # round 1: signal travels up; grant comes down
        assert zone.state_of("client-0") is CallState.IN_CALL
        assert not zone.clients["client-0"].client.signal_pending

    def test_full_call_setup_and_ring(self):
        zone = _zone()
        zone.start_call("client-0", "client-1")
        zone.run(4)
        assert zone.state_of("client-0") is CallState.IN_CALL
        assert zone.state_of("client-1") is CallState.IN_CALL

    def test_voice_flows_both_ways(self):
        zone = _zone()
        zone.start_call("client-0", "client-1")
        zone.run(4)
        for i in range(10):
            zone.say("client-0", b"ALICE%03d" % i)
            zone.say("client-1", b"BOB%05d" % i)
        zone.run(15)
        got_b = zone.received_by("client-1")
        got_a = zone.received_by("client-0")
        assert [c[:8] for c in got_b] == \
            [b"ALICE%03d" % i for i in range(10)]
        assert [c[:8] for c in got_a] == \
            [b"BOB%05d" % i for i in range(10)]

    def test_other_clients_stay_idle_and_learn_nothing(self):
        zone = _zone()
        zone.start_call("client-0", "client-1")
        zone.run(6)
        for cid, live in zone.clients.items():
            if cid in ("client-0", "client-1"):
                continue
            assert live.agent.state is CallState.IDLE
            assert live.agent.received_cells == []

    def test_hang_up_frees_both_channels(self):
        zone = _zone()
        zone.start_call("client-0", "client-1")
        zone.run(4)
        busy_before = sum(1 for ch in zone.mix.channels.values()
                          if ch.is_busy)
        assert busy_before == 2
        zone.hang_up("client-0")
        assert all(not ch.is_busy for ch in zone.mix.channels.values())
        assert zone.state_of("client-0") is CallState.IDLE
        assert zone.state_of("client-1") is CallState.IDLE

    def test_sequential_calls_reuse_channels(self):
        zone = _zone(n_clients=8, n_channels=2, k=2)
        for trial in range(3):
            zone.start_call("client-0", "client-1")
            zone.run(4)
            assert zone.state_of("client-0") is CallState.IN_CALL
            zone.hang_up("client-0")
            zone.run(1)

    def test_concurrent_calls_on_distinct_channels(self):
        zone = _zone(n_clients=12, n_channels=4, k=3)
        zone.start_call("client-0", "client-1")
        zone.start_call("client-2", "client-3")
        zone.run(5)
        channels = {zone.clients[c].agent.active_channel
                    for c in ("client-0", "client-1", "client-2",
                              "client-3")}
        assert None not in channels
        assert len(channels) == 4  # one channel per call leg

    def test_cannot_start_while_in_call(self):
        zone = _zone()
        zone.start_call("client-0", "client-1")
        zone.run(4)
        with pytest.raises(RuntimeError):
            zone.clients["client-0"].agent.start_outgoing()


class TestLiveZoneInvariants:
    def test_sp_activity_free_during_calls(self):
        zone = _zone()
        zone.start_call("client-0", "client-1")
        zone.run(4)
        assert sp_state_is_activity_free(zone.sp)

    def test_sp_round_volume_constant_regardless_of_calls(self):
        """The SP forwards identical byte volumes per round whether the
        zone is idle or mid-call — I8 at the data plane."""
        def volumes(make_call: bool):
            zone = _zone(seed=9)
            if make_call:
                zone.start_call("client-0", "client-1")
            before = zone.sp.rounds_forwarded
            zone.run(10)
            for _ in range(5):
                zone.say("client-0", b"X" * 100) if make_call else None
            zone.run(10)
            return zone.sp.rounds_forwarded - before

        assert volumes(False) == volumes(True)

    def test_client_emits_every_round_on_every_channel(self):
        zone = _zone(n_clients=6, n_channels=3, k=2)
        zone.run(10)
        for live in zone.clients.values():
            for attachment in live.client.attachments:
                assert attachment.sequence == 10

    def test_rounds_deterministic_given_seed(self):
        def run():
            zone = _zone(seed=21)
            zone.start_call("client-0", "client-1")
            zone.run(4)
            zone.say("client-0", b"hello voice")
            zone.run(3)
            return zone.received_by("client-1")
        assert run() == run()


class TestLiveRateOrchestration:
    def test_epoch_scales_with_call_volume(self):
        zone = _zone(n_clients=12, n_channels=4, k=3)
        idle_rates = zone.run_rate_epoch(0)
        assert idle_rates["sp_links"] == 1  # floor: chaff never stops
        zone.start_call("client-0", "client-1")
        zone.start_call("client-2", "client-3")
        zone.run(5)
        busy_rates = zone.run_rate_epoch(1)
        # 4 active call legs at rate 1 → heavy over-utilization → the
        # directory scales the zone's link groups up simultaneously.
        assert busy_rates["sp_links"] >= 4
        assert busy_rates["sp_links"] == busy_rates["intra_links"]

    def test_rates_scale_back_down_after_hangup(self):
        zone = _zone(n_clients=12, n_channels=4, k=3)
        zone.start_call("client-0", "client-1")
        zone.run(5)
        up = zone.run_rate_epoch(0)
        zone.hang_up("client-0")
        zone.run(1)
        down = zone.run_rate_epoch(1)
        assert down["sp_links"] <= up["sp_links"]
        assert down["sp_links"] >= 1


class TestMultiSPZone:
    def test_channels_partitioned_across_sps(self):
        zone = _zone(n_clients=12, n_channels=4, k=2, n_sps=2)
        hosted = [set(sp.channel_clients) for sp in zone.sps]
        assert hosted[0] == {0, 2}
        assert hosted[1] == {1, 3}

    def test_calls_work_across_sps(self):
        zone = _zone(n_clients=12, n_channels=4, k=3, n_sps=4)
        zone.start_call("client-0", "client-1")
        zone.run(4)
        assert zone.state_of("client-0") is CallState.IN_CALL
        assert zone.state_of("client-1") is CallState.IN_CALL
        zone.say("client-0", b"multi-sp voice")
        zone.run(3)
        received = zone.received_by("client-1")
        assert received and received[0][:14] == b"multi-sp voice"

    def test_every_sp_carries_rounds(self):
        zone = _zone(n_clients=8, n_channels=4, k=2, n_sps=2)
        zone.run(5)
        for sp in zone.sps:
            assert sp.rounds_forwarded == 5 * len(sp.channel_clients)

    def test_validation(self):
        with pytest.raises(ValueError):
            _zone(n_sps=0)
        with pytest.raises(ValueError):
            _zone(n_channels=2, n_sps=3)


class TestMidCallFailover:
    def _in_call_zone(self, **kwargs):
        zone = _zone(n_clients=12, n_channels=6, k=3, n_sps=2, **kwargs)
        zone.start_call("client-0", "client-1")
        zone.run(4)
        assert zone.state_of("client-0") is CallState.IN_CALL
        assert zone.state_of("client-1") is CallState.IN_CALL
        return zone

    def test_fail_channels_regrants_on_surviving_channel(self):
        zone = self._in_call_zone()
        victim = zone.clients["client-0"]
        old_channel = victim.agent.active_channel
        records = zone.manager.fail_channels([old_channel])
        assert len(records) == 1
        record = records[0]
        assert record.survived
        assert record.old_channel == old_channel
        assert record.new_channel != old_channel
        assert old_channel in zone.manager.disabled_channels
        call = zone.manager.calls[victim.numeric_id]
        assert call.channel_id == record.new_channel
        assert call.failed_over_from == [old_channel]
        # The re-GRANT rides the next downstream round and the client
        # switches channels.
        zone.run(2)
        assert victim.agent.active_channel == record.new_channel
        assert victim.agent.state is CallState.IN_CALL

    def test_disabled_channels_never_reallocated(self):
        zone = self._in_call_zone()
        dead = zone.clients["client-0"].agent.active_channel
        zone.manager.fail_channels([dead])
        zone.hang_up("client-0")
        for cid in ("client-2", "client-3", "client-4"):
            zone.start_call(cid, f"client-{int(cid[-1]) + 4}")
            zone.run(3)
        for call in zone.manager.calls.values():
            assert call.channel_id != dead

    def test_live_sp_failure_call_resumes_on_surviving_sp(self):
        zone = self._in_call_zone()
        victim = zone.clients["client-0"]
        dead_sp = zone._sp_of_channel[victim.agent.active_channel]
        survivors = [sp for sp in zone.sps if sp is not dead_sp]
        records = zone.fail_superpeer(dead_sp.sp_id)
        assert dead_sp.sp_id not in zone.bed.superpeers
        assert dead_sp not in zone.sps
        regranted = [r for r in records
                     if r.numeric_id == victim.numeric_id]
        assert len(regranted) == 1 and regranted[0].survived
        new_channel = regranted[0].new_channel
        assert new_channel in survivors[0].channel_clients
        # Voice flows again after the switch, both directions.
        zone.run(2)
        assert victim.agent.active_channel == new_channel
        before_0 = len(zone.received_by("client-0"))
        before_1 = len(zone.received_by("client-1"))
        for i in range(5):
            zone.say("client-0", b"after-failover-%d" % i)
            zone.say("client-1", b"reply-%d" % i)
        zone.run(10)
        assert len(zone.received_by("client-1")) >= before_1 + 5
        assert len(zone.received_by("client-0")) >= before_0 + 5
        assert zone.received_by("client-1")[-1][:14] == b"after-failover"

    def test_dropped_leg_tears_down_both_sides(self):
        # Two channels, one per SP, k=2: when the caller's SP dies the
        # only surviving channel is busy with the callee's leg, so the
        # caller's leg is dropped and both sides hang up.
        zone = _zone(n_clients=6, n_channels=2, k=2, n_sps=2)
        zone.start_call("client-0", "client-1")
        zone.run(4)
        caller = zone.clients["client-0"]
        dead_sp = zone._sp_of_channel[caller.agent.active_channel]
        records = zone.fail_superpeer(dead_sp.sp_id)
        dropped = [r for r in records if not r.survived]
        assert len(dropped) == 1
        assert zone.state_of("client-0") is CallState.IDLE
        assert zone.state_of("client-1") is CallState.IDLE
        assert zone.manager.calls == {}
        assert zone.peers == {}

    def test_failover_records_accumulate_on_manager(self):
        zone = self._in_call_zone()
        dead = zone.clients["client-0"].agent.active_channel
        zone.manager.fail_channels([dead])
        assert len(zone.manager.failovers) == 1
        assert zone.manager.failovers[0].old_channel == dead

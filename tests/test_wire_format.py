"""Property tests for the wire codecs (control messages + frames).

Two satellite contracts pinned here:

* encode→decode is the identity for every entry in
  :data:`repro.core.wire.MESSAGE_TYPES` — the codec table stays
  exhaustive as new MSG_ constants land (herdlint HL006 checks the
  dispatch side; this checks the codec side);
* the datagram frame codec of the real-network plane is total on
  hostile input: truncated, oversized, or garbage datagrams raise the
  typed :class:`~repro.core.wire.WireFormatError` — never a raw
  ``struct.error`` or ``UnicodeDecodeError`` — because a socket
  endpoint feeds it whatever arrives on the port.
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.circuit import CreateReply, CreateRequest
from repro.core.wire import (
    MAX_FRAME_PAYLOAD,
    MESSAGE_TYPES,
    CallSetup,
    CellFrame,
    FRAME_KINDS,
    JoinRequest,
    JoinResponse,
    RendezvousRegister,
    WireFormatError,
    decode_call_setup,
    decode_cell_frame,
    decode_create,
    decode_created,
    decode_join_request,
    decode_join_response,
    decode_rendezvous_register,
    encode_call_setup,
    encode_cell_frame,
    encode_create,
    encode_created,
    encode_join_request,
    encode_join_response,
    encode_rendezvous_register,
)

u64 = st.integers(min_value=0, max_value=2**64 - 1)
u32 = st.integers(min_value=0, max_value=2**32 - 1)
u16 = st.integers(min_value=0, max_value=2**16 - 1)
key32 = st.binary(min_size=32, max_size=32)
confirmation16 = st.binary(min_size=16, max_size=16)
name = st.text(min_size=0, max_size=64)


# One round-trip strategy per MESSAGE_TYPES entry.  MSG_INVITE and
# MSG_ACCEPT share the CallSetup codec, switched by ``is_accept``.
_ROUNDTRIPS = {
    "MSG_CREATE": (
        st.builds(CreateRequest, u64, key32),
        encode_create, decode_create),
    "MSG_CREATED": (
        st.builds(CreateReply, u64, key32, confirmation16),
        encode_created, decode_created),
    "MSG_JOIN_REQUEST": (
        st.builds(JoinRequest, name, key32),
        encode_join_request, decode_join_request),
    "MSG_JOIN_RESPONSE": (
        st.builds(JoinResponse, u64, key32,
                  st.lists(st.tuples(name, u16, u16),
                           max_size=8).map(tuple)),
        encode_join_response, decode_join_response),
    "MSG_RENDEZVOUS_REGISTER": (
        st.builds(RendezvousRegister, key32, name),
        encode_rendezvous_register, decode_rendezvous_register),
    "MSG_INVITE": (
        st.builds(CallSetup, st.just(False), u64, key32),
        encode_call_setup, decode_call_setup),
    "MSG_ACCEPT": (
        st.builds(CallSetup, st.just(True), u64, key32),
        encode_call_setup, decode_call_setup),
}


def test_roundtrip_table_is_exhaustive():
    # A new MSG_ constant must grow a strategy here, or this fails
    # before the property tests silently skip it.
    assert set(_ROUNDTRIPS) == set(MESSAGE_TYPES)


@pytest.mark.parametrize("msg_name", sorted(MESSAGE_TYPES))
@settings(max_examples=50, deadline=None)
@given(data=st.data())
def test_control_message_roundtrip(msg_name, data):
    strategy, encode, decode = _ROUNDTRIPS[msg_name]
    message = data.draw(strategy)
    assert decode(encode(message)) == message


frames = st.builds(
    CellFrame,
    round_index=u32, run=u32, seq=u32,
    kind=st.sampled_from(FRAME_KINDS),
    src=name, dst=name,
    payload=st.binary(max_size=512))


class TestCellFrameCodec:
    @settings(max_examples=100, deadline=None)
    @given(frame=frames)
    def test_roundtrip_identity(self, frame):
        assert decode_cell_frame(encode_cell_frame(frame)) == frame

    @settings(max_examples=50, deadline=None)
    @given(frame=frames, data=st.data())
    def test_truncation_raises_typed(self, frame, data):
        wire = encode_cell_frame(frame)
        cut = data.draw(st.integers(min_value=0,
                                    max_value=len(wire) - 1))
        with pytest.raises(WireFormatError):
            decode_cell_frame(wire[:cut])

    @settings(max_examples=50, deadline=None)
    @given(frame=frames, junk=st.binary(min_size=1, max_size=16))
    def test_trailing_bytes_raise_typed(self, frame, junk):
        with pytest.raises(WireFormatError):
            decode_cell_frame(encode_cell_frame(frame) + junk)

    def test_oversized_payload_rejected_both_ways(self):
        fat = CellFrame(round_index=0, run=0, seq=0, kind="data",
                        src="a", dst="b",
                        payload=b"\x00" * (MAX_FRAME_PAYLOAD + 1))
        with pytest.raises(WireFormatError):
            encode_cell_frame(fat)
        # A hand-crafted frame that *declares* an oversized payload
        # (the u16 length field tops out above MAX_FRAME_PAYLOAD)
        # must be rejected on decode too.
        size = MAX_FRAME_PAYLOAD + 1
        wire = (b"HD" + bytes([1, 0]) +
                struct.pack("<III", 0, 0, 0) +
                struct.pack("<H", 1) + b"a" +
                struct.pack("<H", 1) + b"b" +
                struct.pack("<H", size) + b"\x00" * size)
        with pytest.raises(WireFormatError):
            decode_cell_frame(wire)

    @settings(max_examples=200, deadline=None)
    @given(data=st.binary(max_size=64))
    def test_garbage_never_leaks_struct_error(self, data):
        # Total on arbitrary input: decode either succeeds or raises
        # the typed error — struct.error / UnicodeDecodeError are
        # implementation details that must never reach the socket
        # plane's malformed-datagram counter.
        try:
            decode_cell_frame(data)
        except WireFormatError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(frame=frames, data=st.data())
    def test_mutated_header_never_leaks_struct_error(self, frame,
                                                     data):
        # Flip one byte anywhere in a valid frame: still total.
        wire = bytearray(encode_cell_frame(frame))
        pos = data.draw(st.integers(min_value=0,
                                    max_value=len(wire) - 1))
        wire[pos] ^= data.draw(st.integers(min_value=1,
                                           max_value=255))
        try:
            decode_cell_frame(bytes(wire))
        except WireFormatError:
            pass

    def test_bad_magic_version_kind(self):
        good = encode_cell_frame(CellFrame(
            round_index=1, run=2, seq=3, kind="chaff",
            src="sp-0", dst="mix", payload=b"x" * 16))
        with pytest.raises(WireFormatError, match="magic"):
            decode_cell_frame(b"XX" + good[2:])
        with pytest.raises(WireFormatError, match="version"):
            decode_cell_frame(good[:2] + b"\x09" + good[3:])
        with pytest.raises(WireFormatError, match="kind"):
            decode_cell_frame(good[:3] + b"\x7f" + good[4:])

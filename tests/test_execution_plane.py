"""The ExecutionPlane registry: engines resolve by name, not string-if.

DESIGN.md §13: ``SimConfig(execution=...)`` and every CLI ``--engine``
flag resolve through :mod:`repro.execution` — one registry owning the
mapping from an engine name to how the zone steps (``zone_mode``),
how the wire plane carries a round (``wire_mode``), and whether the
plane shards across worker processes — plus, since the real-network
plane landed, which *transport* carries the wire image (``sim`` in
memory vs ``udp`` loopback datagrams).  These tests pin the registry
surface, its validation errors, the facade integration
(``RunReport.engine`` / ``RunReport.shards`` everywhere), and the
*completed* deprecation cycle: ``ScenarioReport.execution`` and the
``--execution`` CLI flag warned for one cycle (PR 9) and now raise.
"""

import pytest

from repro import execution
from repro.api import RunReport, SimConfig, Simulation


class TestRegistry:
    def test_registered_planes(self):
        assert set(execution.plane_names()) >= {"event", "batch",
                                                "batch-v2", "asyncio"}

    def test_plane_specs(self):
        event = execution.get_plane("event")
        assert (event.zone_mode, event.wire_mode) == ("event", "event")
        assert not event.supports_shards
        batch = execution.get_plane("batch")
        assert (batch.zone_mode, batch.wire_mode) == ("batch", "batch")
        assert not batch.supports_shards
        v2 = execution.get_plane("batch-v2")
        assert (v2.zone_mode, v2.wire_mode) == ("batch", "vector")
        assert v2.supports_shards

    def test_transport_axis(self):
        # Every simulator plane runs on the "sim" transport; the
        # asyncio plane is the only one on real sockets.
        for name in ("event", "batch", "batch-v2"):
            assert execution.get_plane(name).transport == "sim"
        net = execution.get_plane("asyncio")
        assert net.transport == "udp"
        assert (net.zone_mode, net.wire_mode) == ("batch", "socket")
        assert not net.supports_shards

    def test_create_wire_fabric_seam(self):
        # The transport seam hands protocol code a CellTransport
        # without it importing the simulator or socket module.
        from repro.core.transport import CellTransport
        fabric = execution.create_wire_fabric("batch-v2", seed=1)
        assert isinstance(fabric, CellTransport)
        assert fabric.net_report() is None
        net = execution.create_wire_fabric("asyncio", seed=1)
        assert isinstance(net, CellTransport)
        assert type(net).__name__ == "UdpFabric"
        net.finalize()

    def test_wirefabric_rejects_udp_planes(self):
        from repro.simulation.roundsync import WireFabric
        with pytest.raises(ValueError, match="create_wire_fabric"):
            WireFabric(seed=1, execution="asyncio")

    def test_unknown_name_suggests(self):
        with pytest.raises(ValueError, match="batch-v2"):
            execution.get_plane("batch-v3")
        with pytest.raises(ValueError, match="event"):
            execution.resolve("events")

    def test_resolve_defaults_and_shards(self):
        spec = execution.resolve("event")
        assert spec.name == "event" and spec.shards == 1
        spec = execution.resolve("batch-v2", 4)
        assert spec.name == "batch-v2" and spec.shards == 4
        # shards=1 is the no-op spelling every plane accepts.
        assert execution.resolve("batch", 1).shards == 1

    def test_resolve_rejects_bad_shards(self):
        with pytest.raises(ValueError, match="shards"):
            execution.resolve("batch-v2", 0)
        with pytest.raises(ValueError, match="shard"):
            execution.resolve("event", 2)
        with pytest.raises(ValueError, match="shard"):
            execution.resolve("batch", 4)


class TestFacadeIntegration:
    def test_simconfig_resolves_plane(self):
        cfg = SimConfig(seed=1, execution="batch-v2", shards=2)
        assert cfg.execution == "batch-v2" and cfg.shards == 2
        assert SimConfig(seed=1).shards == 1
        with pytest.raises(ValueError):
            SimConfig(seed=1, execution="batch", shards=2)
        with pytest.raises(ValueError):
            SimConfig(seed=1, execution="nope")

    def test_runreport_engine_vocabulary(self):
        report = Simulation(SimConfig(seed=3, n_clients=6,
                                      execution="batch")).run(rounds=5)
        assert report.engine == "batch"
        assert report.shards == 1
        assert report.detail["engine"] == "batch"

    def test_scenario_report_execution_alias_removed(self):
        from repro.scenario import run_scenario
        from repro.scenario.loader import load_scenario
        scenario = load_scenario("scenarios/00-baseline.toml")
        report = run_scenario(scenario, execution="batch")
        assert report.engine == "batch"
        # The PR-9 deprecation cycle is complete: the alias raises.
        with pytest.raises(AttributeError, match="engine"):
            report.execution
        artifact = report.to_artifact_dict()
        assert artifact["engine"] == "batch"
        assert "execution" not in artifact
        assert artifact["shards"] == 1

    def test_simconfig_net_processes_validation(self):
        with pytest.raises(ValueError, match="transport"):
            SimConfig(seed=1, execution="batch-v2",
                      net_processes=True)
        cfg = SimConfig(seed=1, execution="asyncio",
                        net_processes=True)
        assert cfg.net_processes is True
        assert SimConfig(seed=1, execution="asyncio").net_processes \
            is False

    def test_runreport_engine_default(self):
        report = RunReport(scenario="live", seed=0, rounds_run=0,
                           metrics={}, trace_events=[],
                           trace_path=None, detail=None)
        assert report.engine == "event" and report.shards == 1


class TestCLIVocabulary:
    """Satellite: ``repro metrics`` / ``repro scenario`` / ``repro
    bench`` all speak ``--engine`` / ``--shards``; ``--execution``
    finished its deprecation cycle and is now a hard parse error."""

    def test_metrics_engine_flag(self, capsys):
        from repro.cli import main
        assert main(["metrics", "--engine", "batch-v2", "--shards",
                     "2", "--rounds", "5", "--format", "json"]) == 0
        out = capsys.readouterr().out
        assert "herd_" in out

    def test_metrics_execution_alias_removed(self, capsys):
        from repro.cli import main
        with pytest.raises(SystemExit) as exc:
            main(["metrics", "--execution", "batch", "--rounds",
                  "5", "--format", "json"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "removed" in err and "--engine" in err

    def test_scenario_execution_alias_removed(self, capsys):
        from repro.cli import main
        with pytest.raises(SystemExit) as exc:
            main(["scenario", "run", "scenarios/00-baseline.toml",
                  "--execution", "batch"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "removed" in err and "--engine" in err

    def test_scenario_engine_flag(self, capsys):
        from repro.cli import main
        code = main(["scenario", "run", "scenarios/00-baseline.toml",
                     "--engine", "batch-v2", "--shards", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "[batch-v2]" in out

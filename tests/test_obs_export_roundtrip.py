"""Prometheus exporter round-trip: parse the exposition text back.

The herdscope exporter claims its output "follows the exposition
conventions closely enough to be scraped".  This file holds it to
that: a minimal scrape-side parser reads the rendered text back into
``{name: {kind, series}}`` and the result must match the registry
snapshot exactly — cumulative histogram buckets with the implicit
``+Inf``, ``_sum``/``_count`` series, stable label sorting, and the
non-finite value spellings (``NaN``/``+Inf``/``-Inf``) a scraper
expects.
"""

import math
import re

from repro.obs.export import _format_value, render_prometheus
from repro.obs.metrics import MetricsRegistry

_SAMPLE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
                     r"(?:\{(.*)\})? (.+)$")
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"')


def _parse_value(text):
    if text == "NaN":
        return float("nan")
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def parse_exposition(text):
    """A minimal scrape-side parser: exposition text back into
    ``{name: {"kind": str, "samples": [(labels, value)]}}``."""
    out = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            out.setdefault(name, {"kind": kind, "samples": []})
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        name, labels_text, value_text = match.groups()
        labels = dict(_LABEL.findall(labels_text or ""))
        # _bucket/_sum/_count samples belong to their histogram.
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        family = base if base in out else name
        out.setdefault(family, {"kind": None, "samples": []})
        out[family]["samples"].append((name, labels,
                                       _parse_value(value_text)))
    return out


def _build_registry():
    reg = MetricsRegistry()
    # Multiple label sets, inserted in non-sorted order, to exercise
    # the exporter's stable label ordering.
    reg.counter("herd_cells_total", {"kind": "voice", "zone": "EU"},
                help="cells carried").inc(7)
    reg.counter("herd_cells_total", {"kind": "chaff", "zone": "EU"},
                ).inc(3)
    reg.counter("herd_cells_total", {"kind": "chaff", "zone": "AS"},
                ).inc(2)
    reg.gauge("herd_queue_depth", {"sp": "sp-0"}).set(4.5)
    hist = reg.histogram("herd_latency_s", {"path": "up"},
                         buckets=(0.01, 0.05, 0.25),
                         help="one-way latency")
    hist.observe_many([0.004, 0.004, 0.03, 0.10, 9.0])
    return reg


class TestRoundTrip:
    def test_counters_and_gauges_round_trip(self):
        reg = _build_registry()
        snap = reg.snapshot()
        parsed = parse_exposition(render_prometheus(snap))

        assert parsed["herd_cells_total"]["kind"] == "counter"
        got = {tuple(sorted(labels.items())): value
               for _n, labels, value
               in parsed["herd_cells_total"]["samples"]}
        want = {tuple(sorted(s["labels"].items())): s["value"]
                for s in snap["herd_cells_total"]["series"]}
        assert got == want and len(got) == 3

        assert parsed["herd_queue_depth"]["kind"] == "gauge"
        (_n, labels, value), = parsed["herd_queue_depth"]["samples"]
        assert labels == {"sp": "sp-0"} and value == 4.5

    def test_histogram_buckets_sum_count_round_trip(self):
        reg = _build_registry()
        snap = reg.snapshot()
        parsed = parse_exposition(render_prometheus(snap))

        assert parsed["herd_latency_s"]["kind"] == "histogram"
        samples = parsed["herd_latency_s"]["samples"]
        series, = snap["herd_latency_s"]["series"]

        buckets = [(labels["le"], value) for name, labels, value
                   in samples if name == "herd_latency_s_bucket"]
        # Finite bounds in ascending order, then the implicit +Inf.
        assert [b for b, _ in buckets] == \
            [_format_value(b) for b in series["buckets"]] + ["+Inf"]
        # ``cumulative`` already carries the implicit +Inf bucket as
        # its last entry; the exporter re-emits it as the le="+Inf"
        # line.
        counts = [c for _, c in buckets]
        assert counts == series["cumulative"]
        # Cumulative means monotone, ending at the total count.
        assert counts == sorted(counts)
        assert counts[-1] == series["count"] == 5

        (_n, _l, total_sum), = [s for s in samples
                                if s[0] == "herd_latency_s_sum"]
        (_n, _l, total_count), = [s for s in samples
                                  if s[0] == "herd_latency_s_count"]
        assert total_sum == series["sum"] == \
            0.004 + 0.004 + 0.03 + 0.10 + 9.0
        assert total_count == 5

    def test_label_sorting_is_stable_and_insertion_independent(self):
        text_a = render_prometheus(_build_registry().snapshot())

        reg = MetricsRegistry()  # same series, reversed insertion
        reg.gauge("herd_queue_depth", {"sp": "sp-0"}).set(4.5)
        hist = reg.histogram("herd_latency_s", {"path": "up"},
                             buckets=(0.01, 0.05, 0.25),
                             help="one-way latency")
        hist.observe_many([0.004, 0.004, 0.03, 0.10, 9.0])
        reg.counter("herd_cells_total",
                    {"zone": "AS", "kind": "chaff"}).inc(2)
        reg.counter("herd_cells_total",
                    {"zone": "EU", "kind": "chaff"}).inc(3)
        reg.counter("herd_cells_total",
                    {"zone": "EU", "kind": "voice"},
                    help="cells carried").inc(7)
        assert render_prometheus(reg.snapshot()) == text_a

        # Inside every brace pair the label names are sorted, with
        # the histogram ``le`` label appended last by convention.
        for line in text_a.splitlines():
            match = _SAMPLE.match(line)
            if not match or not match.group(2):
                continue
            names = [n for n, _v in _LABEL.findall(match.group(2))]
            plain = [n for n in names if n != "le"]
            assert plain == sorted(plain), line
            if "le" in names:
                assert names[-1] == "le", line

    def test_nonfinite_values_render_per_convention(self):
        assert _format_value(float("nan")) == "NaN"
        assert _format_value(float("inf")) == "+Inf"
        assert _format_value(float("-inf")) == "-Inf"
        assert _format_value(3.0) == "3"
        assert _format_value(0.25) == "0.25"

        reg = MetricsRegistry()
        reg.gauge("herd_ratio", {"case": "nan"}).set(float("nan"))
        reg.gauge("herd_ratio", {"case": "pinf"}).set(float("inf"))
        reg.gauge("herd_ratio", {"case": "ninf"}).set(float("-inf"))
        text = render_prometheus(reg.snapshot())
        assert 'herd_ratio{case="nan"} NaN' in text
        assert 'herd_ratio{case="pinf"} +Inf' in text
        assert 'herd_ratio{case="ninf"} -Inf' in text

        parsed = parse_exposition(text)
        by_case = {labels["case"]: value for _n, labels, value
                   in parsed["herd_ratio"]["samples"]}
        assert math.isnan(by_case["nan"])
        assert by_case["pinf"] == math.inf
        assert by_case["ninf"] == -math.inf

"""Tests for ChaCha20 / Poly1305 / AEAD against RFC 8439 vectors."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.chacha20 import (
    ChaCha20Poly1305,
    chacha20_block,
    chacha20_encrypt,
    chacha20_keystream,
    poly1305_mac,
)


KEY = bytes(range(32))
NONCE = bytes.fromhex("000000090000004a00000000")


class TestChaCha20Block:
    def test_rfc8439_block_vector(self):
        # RFC 8439 §2.3.2
        out = chacha20_block(KEY, 1, NONCE)
        expected = bytes.fromhex(
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e")
        assert out == expected

    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            chacha20_block(b"\x00" * 31, 0, NONCE)

    def test_bad_nonce_length(self):
        with pytest.raises(ValueError):
            chacha20_block(KEY, 0, b"\x00" * 8)

    def test_bad_counter(self):
        with pytest.raises(ValueError):
            chacha20_block(KEY, 2 ** 32, NONCE)


class TestChaCha20Encrypt:
    def test_rfc8439_encryption_vector(self):
        # RFC 8439 §2.4.2
        nonce = bytes.fromhex("000000000000004a00000000")
        plaintext = (b"Ladies and Gentlemen of the class of '99: If I could "
                     b"offer you only one tip for the future, sunscreen "
                     b"would be it.")
        ciphertext = chacha20_encrypt(KEY, nonce, plaintext, counter=1)
        expected = bytes.fromhex(
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42874d")
        assert ciphertext == expected

    def test_roundtrip(self):
        msg = b"herd voip cell" * 10
        ct = chacha20_encrypt(KEY, NONCE, msg)
        assert chacha20_encrypt(KEY, NONCE, ct) == msg

    def test_keystream_prefix_consistency(self):
        long = chacha20_keystream(KEY, NONCE, 200)
        short = chacha20_keystream(KEY, NONCE, 64)
        assert long[:64] == short

    def test_keystream_negative_length(self):
        with pytest.raises(ValueError):
            chacha20_keystream(KEY, NONCE, -1)

    def test_zero_length(self):
        assert chacha20_encrypt(KEY, NONCE, b"") == b""


class TestPoly1305:
    def test_rfc8439_mac_vector(self):
        # RFC 8439 §2.5.2
        key = bytes.fromhex(
            "85d6be7857556d337f4452fe42d506a8"
            "0103808afb0db2fd4abff6af4149f51b")
        msg = b"Cryptographic Forum Research Group"
        assert poly1305_mac(msg, key) == bytes.fromhex(
            "a8061dc1305136c6c22b8baf0c0127a9")

    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            poly1305_mac(b"x", b"\x00" * 16)


class TestAEAD:
    def test_rfc8439_aead_vector(self):
        # RFC 8439 §2.8.2
        key = bytes.fromhex(
            "808182838485868788898a8b8c8d8e8f"
            "909192939495969798999a9b9c9d9e9f")
        nonce = bytes.fromhex("070000004041424344454647")
        aad = bytes.fromhex("50515253c0c1c2c3c4c5c6c7")
        plaintext = (b"Ladies and Gentlemen of the class of '99: If I could "
                     b"offer you only one tip for the future, sunscreen "
                     b"would be it.")
        aead = ChaCha20Poly1305(key)
        out = aead.encrypt(nonce, plaintext, aad)
        expected_ct = bytes.fromhex(
            "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6"
            "3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36"
            "92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc"
            "3ff4def08e4b7a9de576d26586cec64b6116")
        expected_tag = bytes.fromhex("1ae10b594f09e26a7e902ecbd0600691")
        assert out == expected_ct + expected_tag
        assert aead.decrypt(nonce, out, aad) == plaintext

    def test_tamper_detected(self):
        aead = ChaCha20Poly1305(KEY)
        out = bytearray(aead.encrypt(NONCE, b"payload", b"aad"))
        out[0] ^= 1
        with pytest.raises(ValueError):
            aead.decrypt(NONCE, bytes(out), b"aad")

    def test_wrong_aad_detected(self):
        aead = ChaCha20Poly1305(KEY)
        out = aead.encrypt(NONCE, b"payload", b"aad")
        with pytest.raises(ValueError):
            aead.decrypt(NONCE, out, b"other")

    def test_truncated_ciphertext(self):
        aead = ChaCha20Poly1305(KEY)
        with pytest.raises(ValueError):
            aead.decrypt(NONCE, b"\x00" * 8)

    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            ChaCha20Poly1305(b"\x00" * 16)


@given(data=st.binary(max_size=512), aad=st.binary(max_size=64))
def test_aead_roundtrip_property(data, aad):
    aead = ChaCha20Poly1305(KEY)
    assert aead.decrypt(NONCE, aead.encrypt(NONCE, data, aad), aad) == data


@given(data=st.binary(max_size=512))
def test_stream_cipher_involution_property(data):
    """Encrypting twice with the same key/nonce is the identity."""
    once = chacha20_encrypt(KEY, NONCE, data)
    assert chacha20_encrypt(KEY, NONCE, once) == data

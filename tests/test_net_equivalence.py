"""The §9/§13 equivalence contract extended to real sockets.

The ``asyncio`` plane's verification anchor (DESIGN.md §14): the same
scenario runs on ``batch-v2`` (in-memory vectors) and on ``asyncio``
(every cell a real loopback UDP datagram), and the report rows match —
delivered/chaff counts exactly, survival verdicts identically, one
determinism key.  Wall-clock latency is the one new side channel and
lives only in ``net_report()`` / the artifact's ``net`` section,
excluded from every determinism surface.

Also pinned here (satellite): a tap implementing only the per-cell
``record()`` protocol observes byte-identical traffic whether the run
table came from batch-v2's vector plane or from datagrams reassembled
off the socket.
"""

import pytest

from repro import execution as execution_registry
from repro.api import SimConfig, Simulation
from repro.scenario.loader import load_scenario
from repro.scenario.report import run_scenario

BASELINE = "scenarios/00-baseline.toml"
WIRETAP_SCENARIO = "scenarios/04-loss-jitter-storm.toml"


class RecordOnlyTap:
    """A tap speaking only the oldest protocol: one ``record()`` call
    per cell.  The dispatch helpers must expand run tables for it."""

    def __init__(self):
        self.seen = []

    def record(self, time, packet, src, dst):
        self.seen.append((time, src, dst, packet.size))


def _drive(fabric, rounds=4):
    for r in range(rounds):
        fabric.emit("client-0", "sp-0", b"\x01" * 64, kind="data")
        fabric.emit_repeated("sp-0", "mix-0", b"\x02" * 128, 3,
                             kind="up")
        fabric.emit_repeated("mix-0", "sp-0", b"\x03" * 128, 5,
                             kind="down")
        fabric.flush_round(r)
    return fabric.finalize()


class TestRecordOnlyTapBridge:
    def _tap_stream(self, engine, **kwargs):
        fabric = execution_registry.create_wire_fabric(
            engine, seed=1, interval=0.02, **kwargs)
        tap = RecordOnlyTap()
        fabric.add_tap(tap)
        stats = _drive(fabric)
        return tap.seen, stats

    def test_socket_bridge_matches_batch_v2(self):
        sim_seen, sim_stats = self._tap_stream("batch-v2")
        net_seen, net_stats = self._tap_stream("asyncio")
        assert net_seen == sim_seen
        assert len(net_seen) == 36
        assert net_stats == sim_stats

    def test_socket_bridge_matches_across_process_boundary(self):
        sim_seen, sim_stats = self._tap_stream("batch-v2")
        net_seen, net_stats = self._tap_stream(
            "asyncio", net_processes=True)
        assert net_seen == sim_seen
        assert net_stats == sim_stats


class TestFacadeEquivalence:
    def test_wiretap_observations_byte_identical(self):
        def run(engine):
            report = Simulation(SimConfig(
                seed=3, n_clients=6, execution=engine,
                wiretap=True)).run(rounds=10)
            return report

        sim = run("batch-v2")
        net = run("asyncio")
        assert net.detail["wiretap"]["observations"] == \
            sim.detail["wiretap"]["observations"]
        assert net.detail["wiretap"]["cells_carried"] == \
            sim.detail["wiretap"]["cells_carried"]
        assert net.metrics == sim.metrics
        # The side channel exists only on the socket plane, and the
        # simulator report carries no net section at all.
        assert net.detail["net"]["transport"] == "udp"
        assert "net" not in sim.detail


class TestScenarioEquivalence:
    @pytest.mark.parametrize("path", [BASELINE, WIRETAP_SCENARIO])
    def test_report_rows_match_batch_v2(self, path):
        scenario = load_scenario(path)
        sim = run_scenario(scenario, execution="batch-v2")
        net = run_scenario(scenario, execution="asyncio")
        # One determinism key: timeline, metrics, wiretap
        # observations, invariants — everything engine-invariant.
        assert net.determinism_key == sim.determinism_key
        assert net.survival == sim.survival
        assert net.criteria_failures == sim.criteria_failures
        assert net.invariant_violations == sim.invariant_violations
        assert net.passed == sim.passed
        assert net.timeline == sim.timeline

    def test_artifact_differs_only_in_net_section(self):
        scenario = load_scenario(BASELINE)
        sim = run_scenario(scenario,
                           execution="batch-v2").to_artifact_dict()
        net = run_scenario(scenario,
                           execution="asyncio").to_artifact_dict()
        net_section = net.pop("net")
        sim.pop("engine")
        net.pop("engine")
        assert net == sim
        assert net_section["transport"] == "udp"
        assert net_section["datagrams_sent"] >= \
            net_section["retransmits"]
        assert "wall_send_seconds" in net_section

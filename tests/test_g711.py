"""Tests for the G.711 µ-law transcoder."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.voip.g711 import (
    mix_linear,
    signal_to_noise_db,
    tone_frame,
    ulaw_decode,
    ulaw_decode_sample,
    ulaw_encode,
    ulaw_encode_sample,
)


class TestSamples:
    def test_zero_encodes_to_ff(self):
        # µ-law 0xFF is (near-)zero by convention (inverted bits).
        assert ulaw_encode_sample(0) == 0xFF
        assert abs(ulaw_decode_sample(0xFF)) <= 8

    def test_sign_symmetry(self):
        for value in (100, 1000, 8000, 30000):
            pos = ulaw_decode_sample(ulaw_encode_sample(value))
            neg = ulaw_decode_sample(ulaw_encode_sample(-value))
            assert pos == -neg

    def test_decode_encode_identity_on_codewords(self):
        # Every µ-law codeword survives decode→encode exactly, except
        # 0x7F ("negative zero"), which decodes to 0 and canonically
        # re-encodes as positive zero 0xFF — the standard ±0 collapse.
        for byte in range(256):
            decoded = ulaw_decode_sample(byte)
            reencoded = ulaw_encode_sample(decoded)
            if byte == 0x7F:
                assert reencoded == 0xFF
            else:
                assert reencoded == byte, byte

    def test_clipping(self):
        assert ulaw_encode_sample(32767) == ulaw_encode_sample(32700)

    def test_validation(self):
        with pytest.raises(ValueError):
            ulaw_encode_sample(40000)
        with pytest.raises(ValueError):
            ulaw_decode_sample(300)

    def test_companding_is_monotone(self):
        decoded = [ulaw_decode_sample(ulaw_encode_sample(v))
                   for v in range(-32000, 32001, 500)]
        assert decoded == sorted(decoded)


class TestFrames:
    def test_encode_decode_roundtrip_snr(self):
        # G.711 achieves > 30 dB SQNR on speech-level sine input.
        pcm = [int(16000 * math.sin(2 * math.pi * 440 * i / 8000))
               for i in range(160)]
        decoded = ulaw_decode(ulaw_encode(pcm))
        assert signal_to_noise_db(pcm, decoded) > 30.0

    def test_tone_frame_size(self):
        assert len(tone_frame(440.0)) == 160

    def test_tone_frames_continuous(self):
        # Consecutive frames continue the same sine (no phase reset).
        f0 = ulaw_decode(tone_frame(440.0, frame_index=0))
        f1 = ulaw_decode(tone_frame(440.0, frame_index=1))
        joined = f0 + f1
        reference = [int(0.5 * 32000
                         * math.sin(2 * math.pi * 440 * i / 8000))
                     for i in range(320)]
        assert signal_to_noise_db(reference, joined) > 30.0

    def test_tone_amplitude_validation(self):
        with pytest.raises(ValueError):
            tone_frame(440.0, amplitude=1.5)

    def test_mix_linear_saturates(self):
        loud = [30000] * 4
        assert mix_linear([loud, loud]) == [32767] * 4
        assert mix_linear([[-30000] * 4, [-30000] * 4]) == [-32768] * 4

    def test_mix_validation(self):
        with pytest.raises(ValueError):
            mix_linear([])
        with pytest.raises(ValueError):
            mix_linear([[1], [1, 2]])

    def test_snr_validation(self):
        with pytest.raises(ValueError):
            signal_to_noise_db([], [])
        with pytest.raises(ValueError):
            signal_to_noise_db([1], [1, 2])

    def test_snr_perfect(self):
        assert signal_to_noise_db([5, 5], [5, 5]) == float("inf")


class TestAudioThroughHerdCall:
    def test_tone_survives_an_anonymous_call(self):
        """Real µ-law audio through the full encrypted call path."""
        from repro.simulation.testbed import build_testbed
        bed = build_testbed()
        bed.add_client("alice", "zone-EU")
        bed.add_client("bob", "zone-NA")
        bed.ready_for_calls("alice")
        bed.ready_for_calls("bob")
        session = bed.call("alice", "bob")
        reference = []
        received = []
        for i in range(10):
            frame = tone_frame(440.0, frame_index=i)
            reference.extend(ulaw_decode(frame))
            out = session.send_voice("caller_to_callee", frame)
            received.extend(ulaw_decode(out))
        assert received == reference  # bit-exact through the network


@given(sample=st.integers(min_value=-32768, max_value=32767))
def test_roundtrip_error_bounded_property(sample):
    """µ-law quantization error is bounded by the segment step size
    (≤ 1/16 of the magnitude + bias, coarsest at the top segment)."""
    decoded = ulaw_decode_sample(ulaw_encode_sample(sample))
    clipped = max(-32635, min(32635, sample))
    assert abs(decoded - clipped) <= max(16, abs(clipped) / 16 + 64)

"""Meta-tests: the shipped tree must satisfy its own lint gate.

These are the in-repo mirror of the CI herdlint job — if a change
introduces a wall-clock read, a global-RNG draw, a variable-time MAC
comparison, a secret in a log line, a blocking sleep, or an unhandled
wire message type, the failure shows up here before it reaches CI.
"""

from pathlib import Path

from repro.lint import LintConfig, all_rules, run_lint

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def test_src_is_herdlint_clean():
    result = run_lint([str(SRC)], LintConfig())
    formatted = "\n".join(
        f"{f.path}:{f.line}: {f.rule_id} {f.message}"
        for f in result.active)
    assert result.active == [], f"herdlint findings in src/:\n{formatted}"
    assert result.files_scanned >= 80


def test_at_least_six_rules_active():
    assert len(all_rules()) >= 6


def test_tests_and_benchmarks_warn_only_burndown():
    """tests/ and benchmarks/ are held to the same rules in warn-only
    mode; the deliberate violations live in tests/lint_fixtures only.
    This pins the burn-down at zero findings outside the fixture
    corpus."""
    result = run_lint(
        [str(REPO_ROOT / "tests"), str(REPO_ROOT / "benchmarks")],
        LintConfig(exclude=("*/lint_fixtures/*",)))
    formatted = "\n".join(
        f"{f.path}:{f.line}: {f.rule_id} {f.message}"
        for f in result.active)
    assert result.active == [], f"warn-only burndown regressed:\n{formatted}"


def test_every_rule_documented_in_design_md():
    design = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
    for rule in all_rules():
        assert rule.rule_id in design, (
            f"{rule.rule_id} missing from DESIGN.md §7")

"""Tests: churn/failover (§3.5), Sybil analysis (§3.7), and the
bridge/obfuscation extension (§3.1 future work)."""

import random

import pytest

from repro.analysis.sybil import (
    channel_capture_probability,
    effective_anonymity,
    expected_captured_channels,
    sybil_attack_cost,
    sybils_needed_for_capture,
)
from repro.attacks.longterm import long_term_intersection
from repro.core.obfuscation import (
    GAME_PROFILE,
    QUIC_PROFILE,
    BridgeDirectory,
    CoverProfile,
    ObfuscatedChannel,
)
from repro.simulation.churn import (
    AvailabilityModel,
    exposure_rounds,
    fail_mix,
    fail_superpeer,
    recover_mix,
    recover_superpeer,
    rejoin_clients,
)

from conftest import build_testbed


class TestFailover:
    def test_fail_mix_orphans_its_clients(self):
        bed = build_testbed()
        clients = [bed.add_client(f"c{i}", "zone-EU") for i in range(6)]
        target = clients[0].mix_id
        orphans = fail_mix(bed, target)
        assert orphans
        for cid in orphans:
            assert not bed.clients[cid].joined
        assert target not in bed.mixes
        assert target not in bed.zones["zone-EU"].mix_ids

    def test_rejoin_lands_on_surviving_mix(self):
        bed = build_testbed()
        for i in range(6):
            bed.add_client(f"c{i}", "zone-EU")
        target = bed.clients["c0"].mix_id
        orphans = fail_mix(bed, target)
        results = rejoin_clients(bed, orphans, failed_mix=target)
        for cid, result in results.items():
            client = bed.clients[cid]
            assert client.joined
            assert client.mix_id != target
            assert client.mix_id in bed.mixes
            assert result.mix_id == client.mix_id

    def test_rejoined_client_keeps_certificate(self):
        bed = build_testbed()
        bed.add_client("c0", "zone-EU")
        client = bed.clients["c0"]
        cert_before = client.certificate
        target = client.mix_id
        orphans = fail_mix(bed, target)
        if "c0" in orphans:
            rejoin_clients(bed, ["c0"], failed_mix=target)
        assert client.certificate == cert_before

    def test_rejoined_client_can_call(self):
        bed = build_testbed()
        bed.add_client("alice", "zone-EU")
        bed.add_client("bob", "zone-NA")
        alice = bed.clients["alice"]
        failed = alice.mix_id
        orphans = fail_mix(bed, failed)
        rejoin_clients(bed, orphans, failed_mix=failed)
        bed.ready_for_calls("alice")
        bed.ready_for_calls("bob")
        session = bed.call("alice", "bob")
        assert session.send_voice("caller_to_callee", b"x" * 80) \
            == b"x" * 80

    def test_fail_unknown_mix_raises(self):
        bed = build_testbed()
        with pytest.raises(KeyError):
            fail_mix(bed, "nope")

    def test_double_mix_failure_raises_keyerror(self):
        # A second failure of the same mix is a KeyError ("no such
        # mix"), never a ValueError from the zone's membership list.
        bed = build_testbed()
        target = bed.zones["zone-EU"].mix_ids[0]
        fail_mix(bed, target)
        with pytest.raises(KeyError):
            fail_mix(bed, target)

    def test_fail_mix_already_pruned_from_directory(self):
        # The directory pruned the mix first (e.g. an operator action);
        # failing it afterwards must not blow up on the zone removal.
        bed = build_testbed()
        target = bed.zones["zone-EU"].mix_ids[0]
        bed.zones["zone-EU"].remove_mix(target)
        orphans = fail_mix(bed, target)
        assert orphans == []
        assert target not in bed.mixes

    def test_unclean_crash_keeps_directory_listing(self):
        bed = build_testbed()
        target = bed.zones["zone-EU"].mix_ids[0]
        fail_mix(bed, target, prune_directory=False)
        assert target not in bed.mixes
        assert target in bed.zones["zone-EU"].mix_ids

    def test_remove_unregistered_mix_raises_keyerror(self):
        bed = build_testbed()
        with pytest.raises(KeyError):
            bed.zones["zone-EU"].remove_mix("ghost")

    def test_recover_mix_round_trip(self):
        bed = build_testbed()
        bed.add_client("c0", "zone-EU")
        target = bed.clients["c0"].mix_id
        mix = bed.mixes[target]
        fail_mix(bed, target)
        recover_mix(bed, mix)
        assert target in bed.mixes
        assert target in bed.zones["zone-EU"].mix_ids
        assert mix.client_keys == {}  # sessions gone; clients re-join
        with pytest.raises(ValueError):
            recover_mix(bed, mix)  # already running
        # A re-join through the recovered mix works.
        results = rejoin_clients(bed, ["c0"])
        assert bed.clients["c0"].joined
        assert results["c0"].mix_id in bed.mixes

    def test_fail_superpeer(self):
        bed = build_testbed(zone_specs=[("zone-EU", "dc-eu", 1)])
        mix = bed.mixes["zone-EU/mix-0"]
        mix.configure_channels(2)
        bed.add_superpeer("sp-0", mix.mix_id, channels=[0, 1])
        c = bed.add_client("c0", "zone-EU", k=2, via_superpeers=True)
        affected = fail_superpeer(bed, "sp-0")
        assert affected == ["c0"]
        assert not c.joined
        with pytest.raises(KeyError):
            fail_superpeer(bed, "sp-0")

    def test_fail_superpeer_without_clients_returns_empty_list(self):
        bed = build_testbed(zone_specs=[("zone-EU", "dc-eu", 1)])
        mix = bed.mixes["zone-EU/mix-0"]
        mix.configure_channels(2)
        bed.add_superpeer("sp-0", mix.mix_id, channels=[0, 1])
        affected = fail_superpeer(bed, "sp-0")
        assert affected == []  # a list, never None

    def test_fail_superpeer_detach_only_keeps_session(self):
        bed = build_testbed(zone_specs=[("zone-EU", "dc-eu", 1)])
        mix = bed.mixes["zone-EU/mix-0"]
        mix.configure_channels(4)
        bed.add_superpeer("sp-0", mix.mix_id, channels=[0, 1])
        bed.add_superpeer("sp-1", mix.mix_id, channels=[2, 3])
        c = bed.add_client("c0", "zone-EU", k=4, via_superpeers=True)
        affected = fail_superpeer(bed, "sp-1", full_leave=False)
        assert affected == ["c0"]
        assert c.joined  # still in the zone on the surviving SP
        assert sorted(a.channel_id for a in c.attachments) == [0, 1]

    def test_recover_superpeer_round_trip(self):
        bed = build_testbed(zone_specs=[("zone-EU", "dc-eu", 1)])
        mix = bed.mixes["zone-EU/mix-0"]
        mix.configure_channels(2)
        sp = bed.add_superpeer("sp-0", mix.mix_id, channels=[0, 1])
        bed.add_client("c0", "zone-EU", k=2, via_superpeers=True)
        fail_superpeer(bed, "sp-0")
        recover_superpeer(bed, sp)
        assert bed.superpeers["sp-0"] is sp
        assert sp.channel_clients == {0: [], 1: []}
        with pytest.raises(ValueError):
            recover_superpeer(bed, sp)  # already running


class TestAvailabilityModel:
    def test_matches_skype_statistic(self):
        # §3.1 cites "half of Skype users are available more than 80%".
        model = AvailabilityModel(n_users=2000, seed=1)
        assert model.fraction_above(0.80) == pytest.approx(0.5, abs=0.1)

    def test_online_periods_within_horizon(self):
        model = AvailabilityModel(n_users=5, seed=2)
        periods = model.online_periods(0, horizon_s=86400.0)
        for a, b in periods:
            assert 0.0 <= a <= b <= 86400.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AvailabilityModel(n_users=0)
        with pytest.raises(ValueError):
            AvailabilityModel(n_users=5, median_availability=1.5)

    def test_offline_gaps_enable_intersection_without_herd(self):
        """Without always-on connections, offline users drop out of the
        candidate sets and the intersection shrinks; Herd removes this
        signal by keeping everyone connected."""
        model = AvailabilityModel(n_users=300, seed=3,
                                  median_availability=0.6)
        rng = random.Random(4)
        events = [rng.uniform(0, 30 * 86400.0) for _ in range(40)]
        rounds = exposure_rounds(model, target=0, event_times=events,
                                 horizon_s=30 * 86400.0)
        exposed = long_term_intersection(rounds)
        assert exposed.final_anonymity < 300 * 0.5
        herd_rounds = [set(range(300)) for _ in events]
        protected = long_term_intersection(herd_rounds)
        assert protected.final_anonymity == 300


class TestSybilAnalysis:
    def test_effective_anonymity(self):
        assert effective_anonymity(1000, 400) == 600
        with pytest.raises(ValueError):
            effective_anonymity(100, 100)
        with pytest.raises(ValueError):
            effective_anonymity(100, -1)

    def test_capture_probability_bounds(self):
        assert channel_capture_probability(0.0, 10) == 0.0
        assert channel_capture_probability(1.0, 10) == 1.0

    def test_capture_harder_with_bigger_channels(self):
        p_small = channel_capture_probability(0.5, 5)
        p_big = channel_capture_probability(0.5, 50)
        assert p_big < p_small

    def test_capture_probability_increases_with_sybils(self):
        values = [channel_capture_probability(f, 10)
                  for f in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert values == sorted(values)

    def test_expected_captured_channels(self):
        expected = expected_captured_channels(0.5, 100, 10)
        assert expected == pytest.approx(
            100 * channel_capture_probability(0.5, 10))

    def test_targeting_one_channel_needs_zone_scale_sybils(self):
        # §3.7: the mix controls placement, so capturing a specific
        # channel with even 50% probability requires flooding a large
        # share of the whole zone.
        needed = sybils_needed_for_capture(0.5, clients_per_channel=10,
                                           zone_population=10_000)
        assert needed is not None
        assert needed > 0.7 * 10_000

    def test_attack_cost_scales(self):
        cost = sybil_attack_cost(10_000, signup_fee=5.0,
                                 monthly_fee=1.0)
        assert cost.signup_fees == 50_000.0
        assert cost.first_month_total == 60_000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            channel_capture_probability(1.5, 10)
        with pytest.raises(ValueError):
            channel_capture_probability(0.5, 0)
        with pytest.raises(ValueError):
            sybil_attack_cost(-1)
        with pytest.raises(ValueError):
            sybils_needed_for_capture(0.0, 10, 100)


class TestBridgeDirectory:
    def _directory(self):
        d = BridgeDirectory(max_users_per_bridge=2,
                            rng=random.Random(1))
        for i in range(3):
            d.register_bridge(f"bridge-{i}", f"198.51.100.{i}:443")
        return d

    def test_token_redemption(self):
        d = self._directory()
        token = d.mint_token()
        bridge = d.redeem(token)
        assert bridge.bridge_id.startswith("bridge-")

    def test_replay_returns_same_bridge(self):
        d = self._directory()
        token = d.mint_token()
        assert d.redeem(token) == d.redeem(token)

    def test_invalid_token_rejected(self):
        d = self._directory()
        with pytest.raises(PermissionError):
            d.redeem(b"\x00" * 16)

    def test_load_balanced_assignment(self):
        d = self._directory()
        seen = [d.redeem(d.mint_token()).bridge_id for _ in range(6)]
        assert all(seen.count(b) == 2 for b in set(seen))

    def test_capacity_exhaustion(self):
        d = self._directory()
        for _ in range(6):
            d.redeem(d.mint_token())
        with pytest.raises(RuntimeError):
            d.redeem(d.mint_token())

    def test_censor_exposure_bounded(self):
        d = self._directory()
        assert d.exposure(burned_tokens=100) == 3
        assert d.exposure(burned_tokens=1) == 1


class TestObfuscatedChannel:
    def _channel(self, profile=GAME_PROFILE):
        d = BridgeDirectory(rng=random.Random(2))
        bridge = d.register_bridge("b0", "203.0.113.7:443")
        return ObfuscatedChannel(bridge, profile)

    def test_roundtrip(self):
        ch = self._channel()
        packet = b"\xa5" * 301  # one Herd coded packet
        assert ch.unwrap(ch.wrap(packet)) == packet

    def test_wire_size_from_profile(self):
        ch = self._channel()
        out = ch.wrap(b"\xa5" * 301)
        assert len(out) - 8 in GAME_PROFILE.sizes

    def test_sizes_vary_across_packets(self):
        ch = self._channel()
        sizes = {len(ch.wrap(b"\xa5" * 301)) for _ in range(40)}
        assert len(sizes) > 1  # morphed, not constant

    def test_no_herd_framing_on_wire(self):
        ch = self._channel()
        packet = b"\xa5" * 301
        assert packet not in ch.wrap(packet)

    def test_packet_too_big_for_profile(self):
        ch = self._channel(CoverProfile("tiny", (64,)))
        with pytest.raises(ValueError):
            ch.wrap(b"\x00" * 301)

    def test_quic_profile_fits_big_packets(self):
        ch = self._channel(QUIC_PROFILE)
        assert ch.unwrap(ch.wrap(b"\x00" * 1100)) == b"\x00" * 1100

    def test_corrupt_length_detected(self):
        ch = self._channel()
        out = bytearray(ch.wrap(b"\xa5" * 301))
        out[8] ^= 0xFF  # garble the encrypted length field
        with pytest.raises(ValueError):
            ch.unwrap(bytes(out))

    def test_short_datagram_rejected(self):
        with pytest.raises(ValueError):
            self._channel().unwrap(b"\x00" * 4)

    def test_wire_sizes_preview_matches(self):
        ch = self._channel()
        preview = ch.wire_sizes(5, 301)
        actual = [len(ch.wrap(b"\xa5" * 301)) for _ in range(5)]
        assert preview == actual

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            CoverProfile("bad", ())
        with pytest.raises(ValueError):
            CoverProfile("bad", (0,))

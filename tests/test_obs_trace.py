"""Unit coverage for the trace-event bus: spans, sinks, and the
drain-on-teardown contract with EventLoop.cancel_all."""

import json

import pytest

from repro.netsim.engine import EventLoop
from repro.obs.instrument import Herdscope
from repro.obs.trace import (
    JsonlTraceSink,
    RingBufferTraceSink,
    TraceEvent,
    Tracer,
)


def make_tracer():
    t = {"now": 0.0}
    ring = RingBufferTraceSink(16)
    tracer = Tracer(lambda: t["now"], sinks=(ring,))
    return t, ring, tracer


def test_instant_event_carries_time_and_labels():
    t, ring, tracer = make_tracer()
    t["now"] = 2.0
    tracer.event("failover", outcome="survived")
    (evt,) = ring.events
    assert (evt.time, evt.name, evt.phase) == (2.0, "failover", "instant")
    assert dict(evt.labels) == {"outcome": "survived"}


def test_span_lifecycle_and_duration():
    t, ring, tracer = make_tracer()
    span = tracer.begin_span("call", caller="a")
    assert span.open and span.span_id == 1
    t["now"] = 5.0
    tracer.end_span(span, outcome="hangup")
    assert span.duration == 5.0
    begin, end = ring.events
    assert (begin.phase, end.phase) == ("begin", "end")
    assert begin.span_id == end.span_id == 1


def test_end_span_is_idempotent():
    t, ring, tracer = make_tracer()
    span = tracer.begin_span("s")
    tracer.end_span(span)
    tracer.end_span(span)  # e.g. both call parties hanging up
    assert len(ring.events) == 2


def test_span_ids_are_deterministic_per_tracer():
    _, _, tracer1 = make_tracer()
    _, _, tracer2 = make_tracer()
    for tracer in (tracer1, tracer2):
        assert [tracer.begin_span("s").span_id for _ in range(3)] == \
            [1, 2, 3]


def test_drain_open_spans():
    t, ring, tracer = make_tracer()
    tracer.begin_span("a")
    done = tracer.begin_span("b")
    tracer.end_span(done)
    assert tracer.drain_open_spans(reason="cancelled") == 1
    assert tracer.open_spans == []
    last = ring.events[-1]
    assert last.phase == "end" and dict(last.labels) == \
        {"reason": "cancelled"}


def test_ring_buffer_drops_oldest():
    ring = RingBufferTraceSink(2)
    for i in range(5):
        ring.emit(TraceEvent(time=float(i), name=f"e{i}",
                             phase="instant"))
    assert [e.name for e in ring.events] == ["e3", "e4"]
    assert ring.dropped == 3


def test_jsonl_sink_canonical_lines(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    sink = JsonlTraceSink(path)
    sink.emit(TraceEvent(time=1.0, name="x", phase="instant",
                         labels=(("b", "2"), ("a", "1"))))
    sink.close()
    with pytest.raises(RuntimeError):
        sink.emit(TraceEvent(time=2.0, name="y", phase="instant"))
    (line,) = open(path).read().splitlines()
    assert line == json.dumps(json.loads(line), sort_keys=True,
                              separators=(",", ":"))
    assert json.loads(line) == {"time": 1.0, "name": "x",
                                "phase": "instant",
                                "labels": {"a": "1", "b": "2"}}


def test_cancel_all_drains_spans_through_loop_hook():
    """The satellite fix: tearing a loop down mid-run force-closes
    every span a cancelled event would have closed."""
    scope = Herdscope(trace_buffer=32)
    loop = EventLoop(seed=1)
    scope.attach_loop(loop)
    span = scope.tracer.begin_span("inflight")
    loop.schedule(1.0, lambda: scope.tracer.end_span(span))
    loop.schedule(2.0, lambda: None)
    loop.cancel_all()
    assert not span.open
    assert dict(span.end_labels) == {"reason": "cancelled"}
    assert scope.registry.value("herd_spans_drained_total") == 1
    assert scope.registry.value("herd_loop_events_cancelled_total") == 2
    assert loop.pending() == 0


def test_attach_loop_adopts_loop_clock():
    scope = Herdscope(trace_buffer=4)
    loop = EventLoop(seed=1)
    scope.attach_loop(loop)
    loop.schedule(3.5, lambda: scope.tracer.event("tick"))
    loop.run()
    assert scope.ring.events[-1].time == 3.5


def test_tracer_close_drains_and_closes_sinks(tmp_path):
    path = str(tmp_path / "t.jsonl")
    scope = Herdscope(trace_path=path, trace_buffer=8)
    scope.tracer.begin_span("open")
    scope.close()
    lines = [json.loads(x) for x in open(path).read().splitlines()]
    assert lines[-1]["phase"] == "end"
    assert lines[-1]["labels"] == {"reason": "tracer-closed"}

"""Tests for the playout-buffer model."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.voip.jitterbuffer import (
    PlayoutBuffer,
    optimal_buffer_ms,
    quality_with_buffer,
)


class TestPlayoutBuffer:
    def test_constant_delays_never_late(self):
        result = PlayoutBuffer(0.0).replay([50.0] * 100)
        assert result.late_loss == 0.0
        assert result.playout_delay_ms == 50.0

    def test_jitter_beyond_buffer_is_late(self):
        delays = [50.0, 50.0, 90.0, 50.0]
        result = PlayoutBuffer(20.0).replay(delays)
        assert result.late_frames == 1
        assert result.late_loss == 0.25

    def test_bigger_buffer_fewer_late(self):
        rng = random.Random(1)
        delays = [50.0 + rng.expovariate(1 / 15.0) for _ in range(500)]
        small = PlayoutBuffer(10.0).replay(delays)
        big = PlayoutBuffer(80.0).replay(delays)
        assert big.late_loss < small.late_loss

    def test_empty_series(self):
        result = PlayoutBuffer(20.0).replay([])
        assert result.frames == 0
        assert result.late_loss == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PlayoutBuffer(-1.0)
        with pytest.raises(ValueError):
            PlayoutBuffer(10.0).replay([5.0, -1.0])

    def test_base_is_minimum(self):
        result = PlayoutBuffer(0.0).replay([70.0, 60.0, 80.0])
        assert result.base_delay_ms == 60.0


class TestQualityWithBuffer:
    def test_clean_path_high_quality(self):
        q = quality_with_buffer([45.0] * 100, buffer_ms=20.0)
        assert q.band in ("high", "perfect")

    def test_network_loss_combines_with_late_loss(self):
        q_clean = quality_with_buffer([50.0] * 100, 20.0,
                                      network_loss=0.0)
        q_lossy = quality_with_buffer([50.0] * 100, 20.0,
                                      network_loss=0.05)
        assert q_lossy.r < q_clean.r

    def test_buffer_tradeoff_visible(self):
        rng = random.Random(2)
        delays = [50.0 + rng.expovariate(1 / 25.0) for _ in range(500)]
        tiny = quality_with_buffer(delays, 0.0)     # heavy late loss
        huge = quality_with_buffer(delays, 400.0)   # heavy delay
        best_buffer, best = optimal_buffer_ms(delays)
        assert best.r >= tiny.r
        assert best.r >= huge.r
        assert 0.0 < best_buffer < 400.0

    def test_optimal_buffer_zero_for_constant_delay(self):
        buffer_ms, quality = optimal_buffer_ms([60.0] * 50)
        assert buffer_ms == 0.0
        assert quality.band in ("high", "perfect")

    def test_optimal_requires_samples(self):
        with pytest.raises(ValueError):
            optimal_buffer_ms([])

    def test_chaffed_path_needs_small_buffer(self):
        """Herd's clocked hops bound jitter to < one frame per hop, so
        a ~1-frame buffer suffices — the justification for the 20 ms
        buffer used in the Fig. 7 bench."""
        from repro.simulation.wired import WiredHerd
        net = WiredHerd({"zone-EU": "dc-eu", "zone-NA": "dc-na"})
        net.add_client("alice", "zone-EU")
        net.add_client("bob", "zone-NA")
        call = net.call("alice", "bob")
        for i in range(60):
            call.send_voice("caller_to_callee", bytes([i]) * 160,
                            at=i * 0.02)
        net.loop.run(until=10.0)
        buffer_ms, quality = optimal_buffer_ms(call.owd_ms("callee"))
        assert buffer_ms <= 40.0
        assert quality.band in ("medium", "high", "perfect")


@settings(max_examples=30, deadline=None)
@given(delays=st.lists(st.floats(min_value=0.0, max_value=500.0),
                       min_size=1, max_size=100),
       buffer_ms=st.floats(min_value=0.0, max_value=200.0))
def test_late_loss_bounds_property(delays, buffer_ms):
    result = PlayoutBuffer(buffer_ms).replay(delays)
    assert 0.0 <= result.late_loss < 1.0  # the min-delay frame is never late
    assert result.playout_delay_ms >= min(delays)

"""HL102 violation fixture: blocking calls on the event loop —
directly and through a sync helper."""

import subprocess
import time


async def poll_peers():
    time.sleep(0.1)
    return True


async def shell_out(cmd):
    subprocess.run(cmd)


def _spin():
    time.sleep(1.0)


async def relay_round():
    _spin()
    return None

"""HL003 suppressed fixture: test-only tag equality, waived."""


def verify(tag, expected_mac):
    return tag == expected_mac  # herdlint: disable=HL003

"""HL003 positive fixture: variable-time MAC/digest comparisons."""

import hashlib


def verify(tag, expected_mac, payload):
    if tag == expected_mac:
        return True
    if hashlib.sha256(payload).digest() != tag:
        return False
    return payload.digest() == expected_mac

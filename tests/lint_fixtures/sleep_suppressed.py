"""HL005 suppressed fixture."""

import time


def wait_for_round():
    time.sleep(0.25)  # herdlint: disable=HL005

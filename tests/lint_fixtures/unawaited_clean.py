"""HL103 clean fixture: every coroutine is awaited, scheduled, or run
by the loop entry point."""

import asyncio


async def send_join(node):
    return node


async def run_protocol(node):
    await send_join(node)
    task = asyncio.create_task(send_join(node))
    return await task


def entry_point(node):
    asyncio.run(run_protocol(node))

"""HL007 clean fixture: every RNG seed data-flows from a seeded
surface — a seed parameter, a constant, a config field, or another
seeded RNG."""

import random

import numpy as np


def seeded(seed):
    return random.Random(seed)


def from_config(cfg):
    return random.Random(cfg.seed)


def pinned():
    return random.Random(1234)


def split(seed, index):
    return random.Random(seed + index * 1000)


def child_stream(rng):
    return np.random.default_rng(rng.randrange(2 ** 32))

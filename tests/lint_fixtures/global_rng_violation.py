"""HL002 positive fixture: global and unseeded RNG use."""

import random
from random import randint

import numpy as np


def draw_samples():
    a = random.random()
    b = randint(0, 10)
    unseeded = random.Random()
    np.random.seed(4)
    c = np.random.rand(3)
    return a, b, unseeded, c

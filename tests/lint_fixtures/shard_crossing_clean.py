"""HL104 clean fixture: picklable fields only on declared classes;
undeclared classes may hold anything."""

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.sharding import shard_crossing


@shard_crossing
@dataclass(frozen=True)
class ZoneSample:
    zone_id: str
    sizes: List[int] = field(default_factory=list)
    weights: Dict[str, float] = field(default_factory=dict)
    window: Optional[Tuple[float, float]] = None


@dataclass
class LoopLocal:
    # Not declared shard-crossing: free to hold anything.
    on_drop: Callable[[str], None] = print

"""HL005 positive fixture: blocking sleep in callback code."""

import time
from time import sleep


def wait_for_round():
    time.sleep(0.25)
    sleep(1)

"""HL104 suppressed fixture."""

from dataclasses import dataclass
from typing import Callable

from repro.core.sharding import shard_crossing


@shard_crossing
@dataclass
class WaivedRecord:
    zone_id: str
    on_drop: Callable[[str], None]  # herdlint: disable=HL104

"""HL003 clean fixture: constant-time comparison."""

import hmac


def verify(tag, expected_mac, version):
    if version == 2:  # ordinary comparison, not a digest
        return hmac.compare_digest(tag, expected_mac)
    return False

"""HL103 suppressed fixture."""


async def send_join(node):
    return node


async def run_protocol(node):
    send_join(node)  # herdlint: disable=HL103

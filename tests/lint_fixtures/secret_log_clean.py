"""HL004 clean fixture: log lengths and public halves only."""

import logging

logger = logging.getLogger(__name__)


def describe(session_key, public_key):
    logger.info("derived a %d-byte key", len(session_key))
    return f"public half {public_key.hex()}"

"""HL001 suppressed fixture: same reads, explicitly waived."""

import time
from datetime import datetime


def timestamp_events():
    started = time.time()  # herdlint: disable=HL001
    stamped = datetime.now()  # herdlint: disable
    return started, stamped

"""HL101 violation fixture: mutable module-level state in protocol
scope — mutated tables and non-constant-styled containers."""

_pending = {}

SESSIONS = dict()

route_cache = []


def enqueue(message_id, message):
    _pending[message_id] = message


def register(session_id, session):
    SESSIONS.update({session_id: session})


def remember(route):
    route_cache.append(route)

"""HL001 positive fixture: wall-clock reads in a core/ path."""

import time
from datetime import datetime
from time import monotonic as mono


def timestamp_events():
    started = time.time()
    elapsed = mono()
    stamped = datetime.now()
    return started, elapsed, stamped

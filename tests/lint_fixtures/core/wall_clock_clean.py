"""HL001 clean fixture: time comes from the virtual clock."""


def timestamp_events(loop):
    started = loop.now
    loop.schedule(1.5, lambda: None)
    return started

"""HL101 suppressed fixture."""

_registry = {}  # herdlint: disable=HL101


def register(name, value):
    _registry[name] = value

"""HL101 clean fixture: frozen constant tables (never mutated,
CONSTANT_STYLED) and per-instance state are both fine."""

DISPATCH_TABLE = {"join": 1, "relay": 2}

WINDOW_SIZES = [64, 128, 256]

__all__ = ["Registry"]


class Registry:
    """Mutable state belongs on instances that cross the shard
    boundary explicitly."""

    def __init__(self):
        self._pending = {}

    def enqueue(self, message_id, message):
        self._pending[message_id] = message

"""HL007 suppressed fixture."""

import os
import random


def entropy_rng():
    entropy = os.urandom(8)
    return random.Random(entropy)  # herdlint: disable=HL007

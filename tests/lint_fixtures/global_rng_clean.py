"""HL002 clean fixture: seeded RNGs threaded explicitly."""

import random

import numpy as np


def draw_samples(rng: random.Random):
    gen = np.random.default_rng(7)
    fallback = random.Random(0)
    return rng.random(), gen.random(), fallback.random()

"""HL102 suppressed fixture."""

import time


async def drain():
    time.sleep(0.05)  # herdlint: disable=HL102,HL005

"""Interprocedural HL004 fixture: a session key renamed to a neutral
name and passed through two helpers before reaching a log sink.

The pre-flow, name-matching HL004 sees ``logger.info(..., value)`` —
no secret-shaped name at the sink — and stays silent.  The flow
version tracks the taint from ``session_key`` through ``token`` into
``relay`` and ``emit`` and flags the call in ``derive``."""

import logging

logger = logging.getLogger(__name__)


def derive():
    session_key = b"\x00" * 32
    token = session_key
    return relay(token)


def relay(material):
    return emit(material)


def emit(value):
    logger.info("channel state %s", value)
    return len(value)

"""HL104 violation fixture: shard-crossing dataclasses holding fields
that cannot cross a pickle boundary."""

from dataclasses import dataclass
from typing import Callable, TextIO

from repro.core.sharding import shard_crossing


def make_ephemeral():
    class Ephemeral:
        pass

    return Ephemeral


@shard_crossing
@dataclass
class HandoffRecord:
    zone_id: str
    on_drop: Callable[[str], None]
    log_handle: TextIO


@dataclass
class MergeInput:
    __shard_crossing__ = True

    payload: "Ephemeral"
    render: object = lambda value: value

"""HL004 suppressed fixture."""


def describe(session_key):
    return f"key {session_key}"  # herdlint: disable=HL004

"""HL005 clean fixture: delay modelled as a scheduled event."""


def wait_for_round(loop, callback):
    loop.schedule(0.25, callback)

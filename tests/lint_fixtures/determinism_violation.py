"""HL007 violation fixture: RNG seeds that cannot be traced to a
seeded config — OS entropy, the clock, or an opaque provenance."""

import os
import random
import time

import numpy as np
from external_util import transform


def entropy_rng():
    entropy = os.urandom(8)
    return random.Random(entropy)


def clock_rng():
    stamp = time.time_ns()
    return random.Random(stamp)


def opaque_rng(payload):
    material = transform(payload)
    return random.Random(material)


def numpy_default():
    return np.random.default_rng()

"""HL006 fixture: message types defined but no dispatch table in the
scanned set at all."""

MSG_HELLO = 0x01
MSG_GOODBYE = 0x02

"""HL003 autofix fixture (input): ==/!= on digests, no hmac import."""

import hashlib


def verify(message, expected_mac):
    digest = hashlib.sha256(message).digest()
    if digest == expected_mac:
        return True
    return False


def reject(message, tag):
    computed_tag = hashlib.sha256(message).hexdigest()
    if computed_tag != tag:
        raise ValueError("bad tag")
    return True


def compare_inline(payload, mac):
    return hashlib.sha256(payload).digest() == mac

"""HL006 clean fixture: every type handled or explicitly rejected."""

from wire import MSG_DATA, MSG_PING, MSG_PONG


def handle_ping(data):
    return data


def handle_data(data):
    return data


REJECT = object()

NODE_DISPATCH = {
    MSG_PING: handle_ping,
    MSG_PONG: REJECT,
    MSG_DATA: handle_data,
}

"""HL006 clean fixture wire module."""

MSG_PING = 0x01
MSG_PONG = 0x02
MSG_DATA = 0x03

"""HL006 positive fixture: the dispatch table forgets MSG_DATA."""

from wire import MSG_PING, MSG_PONG


def handle_ping(data):
    return data


REJECT = object()

NODE_DISPATCH = {
    MSG_PING: handle_ping,
    MSG_PONG: REJECT,
}

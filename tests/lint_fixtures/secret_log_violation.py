"""HL004 positive fixture: secrets reaching logs and messages."""

import logging

logger = logging.getLogger(__name__)


def leak(session_key, ikm):
    logger.info("derived %s", session_key)
    banner = f"using key {session_key}"
    shown = repr(ikm)
    raise ValueError(session_key)
    return banner, shown

"""HL002 suppressed fixture."""

import random


def draw_samples():
    a = random.random()  # herdlint: disable=HL002
    unseeded = random.Random()  # herdlint: disable=HL002,HL001
    return a, unseeded

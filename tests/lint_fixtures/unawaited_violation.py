"""HL103 violation fixture: coroutines called and dropped — the body
never runs and Python only warns at GC time."""


async def send_join(node):
    return node


async def run_protocol(node):
    send_join(node)
    return True


def kickoff(node):
    send_join(node)

"""HL102 clean fixture: awaiting the asyncio equivalents."""

import asyncio


async def wait_round(interval):
    await asyncio.sleep(interval)


async def connect(loop, sock, addr):
    await loop.sock_connect(sock, addr)


def offline_tool(path):
    # Sync code may block; HL102 only polices coroutines.
    with open(path, "rb") as handle:  # herdlint: disable=HL102
        return handle.read()

"""Tests for static channel assignment and online matching (§3.6.3)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.allocation import (
    ChannelAssignment,
    FirstFitMatcher,
    RankingMatcher,
    assign_clients_to_channels,
)


class TestChannelAssignment:
    def test_add_and_lookup(self):
        a = ChannelAssignment(4)
        a.add_client(0, (1, 3))
        assert a.channels_of[0] == (1, 3)
        assert a.clients_of[1] == [0]
        assert a.clients_of[3] == [0]
        assert a.n_clients == 1

    def test_duplicate_client_rejected(self):
        a = ChannelAssignment(4)
        a.add_client(0, (0,))
        with pytest.raises(ValueError):
            a.add_client(0, (1,))

    def test_duplicate_channels_rejected(self):
        a = ChannelAssignment(4)
        with pytest.raises(ValueError):
            a.add_client(0, (2, 2))

    def test_out_of_range_channel_rejected(self):
        a = ChannelAssignment(4)
        with pytest.raises(ValueError):
            a.add_client(0, (4,))

    def test_occupancy(self):
        a = ChannelAssignment(3)
        a.add_client(0, (0, 1))
        a.add_client(1, (0, 2))
        assert a.occupancy() == [2, 1, 1]


class TestGreedyAssignment:
    def test_every_client_gets_k_distinct_channels(self):
        a = assign_clients_to_channels(100, 20, 3, random.Random(1))
        for client, channels in a.channels_of.items():
            assert len(channels) == 3
            assert len(set(channels)) == 3

    def test_balanced_occupancy(self):
        a = assign_clients_to_channels(200, 10, 2, random.Random(2))
        occ = a.occupancy()
        # Greedy least-occupied keeps channels within one client.
        assert max(occ) - min(occ) <= 1

    def test_paper_fig3_configuration(self):
        # k=2, N=6, C=4 (Fig. 3): 12 attachment stubs over 4 channels
        # → perfectly balanced at 3 clients per channel.
        a = assign_clients_to_channels(6, 4, 2, random.Random(3))
        assert a.occupancy() == [3, 3, 3, 3]

    def test_k_validation(self):
        with pytest.raises(ValueError):
            assign_clients_to_channels(10, 5, 0)
        with pytest.raises(ValueError):
            assign_clients_to_channels(10, 5, 6)

    def test_deterministic_with_seed(self):
        a = assign_clients_to_channels(50, 10, 3, random.Random(9))
        b = assign_clients_to_channels(50, 10, 3, random.Random(9))
        assert a.channels_of == b.channels_of


class TestRankingMatcher:
    def _matcher(self, n_clients=20, n_channels=10, k=2, seed=0):
        a = assign_clients_to_channels(n_clients, n_channels, k,
                                       random.Random(seed))
        return RankingMatcher(a, random.Random(seed))

    def test_allocates_free_channel_from_clients_set(self):
        m = self._matcher()
        ch = m.try_allocate(0)
        assert ch in m.assignment.channels_of[0]
        assert m.is_busy(ch)

    def test_highest_rank_preferred(self):
        a = ChannelAssignment(2)
        a.add_client(0, (0, 1))
        m = RankingMatcher(a, random.Random(0))
        ch = m.try_allocate(0)
        # The chosen channel must be the better-ranked of the two.
        other = 1 - ch
        assert m.rank(ch) < m.rank(other)

    def test_blocked_when_all_channels_busy(self):
        a = ChannelAssignment(1)
        a.add_client(0, (0,))
        a.add_client(1, (0,))
        m = RankingMatcher(a)
        assert m.try_allocate(0) == 0
        assert m.try_allocate(1) is None
        assert m.calls_blocked == 1

    def test_release_frees_channel(self):
        a = ChannelAssignment(1)
        a.add_client(0, (0,))
        a.add_client(1, (0,))
        m = RankingMatcher(a)
        m.try_allocate(0)
        m.release(0)
        assert m.try_allocate(1) == 0

    def test_client_cannot_hold_two_calls(self):
        m = self._matcher()
        assert m.try_allocate(0) is not None
        assert m.try_allocate(0) is None

    def test_release_unknown_client_is_noop(self):
        m = self._matcher()
        m.release(99)  # no exception

    def test_unassigned_client_raises(self):
        m = self._matcher(n_clients=5)
        with pytest.raises(KeyError):
            m.try_allocate(1000)

    def test_blocking_rate(self):
        a = ChannelAssignment(1)
        a.add_client(0, (0,))
        a.add_client(1, (0,))
        m = RankingMatcher(a)
        m.try_allocate(0)
        m.try_allocate(1)
        assert m.blocking_rate == 0.5
        assert m.channels_in_use == 1

    def test_blocking_rate_empty(self):
        assert self._matcher().blocking_rate == 0.0

    def test_more_channels_per_client_reduces_blocking(self):
        # The paper: attaching to 3 channels instead of 2 cuts average
        # blocking by an order of magnitude.  Directionally: k=3 must
        # not block more than k=2 under identical load.
        rates = {}
        for k in (2, 3):
            rng = random.Random(5)
            a = assign_clients_to_channels(300, 30, k, rng)
            m = RankingMatcher(a, rng)
            blocked = attempts = 0
            active = []
            for step in range(2000):
                client = rng.randrange(300)
                attempts += 1
                if m.try_allocate(client) is None:
                    blocked += 1
                else:
                    active.append(client)
                if len(active) > 20:  # keep ~20 concurrent calls
                    m.release(active.pop(0))
            rates[k] = blocked / attempts
        assert rates[3] <= rates[2]


class TestFirstFitMatcher:
    def test_allocates_lowest_channel(self):
        a = ChannelAssignment(3)
        a.add_client(0, (2, 0, 1))
        m = FirstFitMatcher(a)
        assert m.try_allocate(0) == 0

    def test_blocks_like_ranking(self):
        a = ChannelAssignment(1)
        a.add_client(0, (0,))
        a.add_client(1, (0,))
        m = FirstFitMatcher(a)
        m.try_allocate(0)
        assert m.try_allocate(1) is None


@settings(max_examples=25, deadline=None)
@given(n_clients=st.integers(2, 60), n_channels=st.integers(1, 20),
       k=st.integers(1, 5), seed=st.integers(0, 99))
def test_matcher_never_double_books_property(n_clients, n_channels, k, seed):
    k = min(k, n_channels)
    rng = random.Random(seed)
    a = assign_clients_to_channels(n_clients, n_channels, k, rng)
    m = RankingMatcher(a, rng)
    active = {}
    for _ in range(200):
        client = rng.randrange(n_clients)
        if client in active:
            m.release(client)
            del active[client]
        else:
            ch = m.try_allocate(client)
            if ch is not None:
                assert ch not in active.values()
                active[client] = ch
    assert m.channels_in_use == len(active)

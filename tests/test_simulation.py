"""Tests for the trace-driven and packet-level simulations."""

import pytest

from repro.simulation.deployment import (
    DeploymentConfig,
    herd_extra_latency_ms,
    measure_pair_latencies,
)
from repro.simulation.herd_sim import (
    interzone_traffic_matrix,
    provision_zone,
    rate_epoch_series,
)
from repro.simulation.spsim import (
    BlockingResult,
    SPSimConfig,
    blocking_sweep,
    simulate_blocking,
)
from repro.workload.cdr import CallRecord, CallTrace
from repro.workload.generator import SyntheticTraceConfig, generate_trace


@pytest.fixture(scope="module")
def day_trace():
    cfg = SyntheticTraceConfig(n_users=2000, days=1, seed=17,
                               max_degree=100)
    return generate_trace(cfg)


class TestSPSimConfig:
    def test_channel_count(self):
        cfg = SPSimConfig(n_clients=100, clients_per_channel=10)
        assert cfg.n_channels == 10

    def test_channel_count_at_least_k(self):
        cfg = SPSimConfig(n_clients=4, clients_per_channel=10, k=3)
        assert cfg.n_channels == 3


class TestBlockingSimulation:
    def test_low_load_low_blocking(self, day_trace):
        cfg = SPSimConfig(n_clients=2000, clients_per_channel=5, k=2,
                          seed=1)
        result = simulate_blocking(day_trace, cfg)
        assert result.calls_attempted > 100
        assert result.blocking_rate < 0.02

    def test_tighter_packing_blocks_more(self, day_trace):
        loose = simulate_blocking(day_trace, SPSimConfig(
            n_clients=2000, clients_per_channel=5, k=2))
        tight = simulate_blocking(day_trace, SPSimConfig(
            n_clients=2000, clients_per_channel=50, k=2))
        assert tight.blocking_rate >= loose.blocking_rate

    def test_k3_beats_k2(self, day_trace):
        k2 = simulate_blocking(day_trace, SPSimConfig(
            n_clients=2000, clients_per_channel=50, k=2))
        k3 = simulate_blocking(day_trace, SPSimConfig(
            n_clients=2000, clients_per_channel=50, k=3))
        assert k3.blocking_rate <= k2.blocking_rate

    def test_offered_savings(self):
        cfg = SPSimConfig(n_clients=1000, clients_per_channel=10)
        result = BlockingResult(cfg, 0, 0, 0)
        assert result.offered_savings == pytest.approx(0.9)

    def test_blocking_rate_zero_when_no_calls(self):
        cfg = SPSimConfig(n_clients=10, clients_per_channel=2)
        result = simulate_blocking(CallTrace([]), cfg)
        assert result.blocking_rate == 0.0

    def test_ends_release_channels(self):
        # Serial calls between the same pair never block even with one
        # channel each.
        records = [CallRecord(0, 1, i * 200.0, 60.0) for i in range(10)]
        cfg = SPSimConfig(n_clients=2, clients_per_channel=1, k=1,
                          bin_width=60.0)
        result = simulate_blocking(CallTrace(records), cfg)
        assert result.calls_blocked == 0

    def test_overlap_blocks_without_capacity(self):
        # Two simultaneous calls, but the four users share 2 channels
        # per side pool of... n_clients=4, cpc=4 → 1 channel → the
        # second call must block.
        records = [CallRecord(0, 1, 0.0, 600.0),
                   CallRecord(2, 3, 10.0, 600.0)]
        cfg = SPSimConfig(n_clients=4, clients_per_channel=4, k=1,
                          bin_width=60.0)
        result = simulate_blocking(CallTrace(records), cfg)
        assert result.calls_blocked == 1

    def test_first_fit_ablation_runs(self, day_trace):
        cfg = SPSimConfig(n_clients=2000, clients_per_channel=20, k=2,
                          matcher="first-fit")
        result = simulate_blocking(day_trace, cfg)
        assert 0.0 <= result.blocking_rate <= 1.0

    def test_sweep_shapes(self, day_trace):
        results = blocking_sweep(day_trace, n_clients=2000,
                                 clients_per_channel_values=(5, 50),
                                 k_values=(2, 3))
        assert set(results) == {(5, 2), (5, 3), (50, 2), (50, 3)}
        # The paper's two headline shapes:
        assert results[(5, 2)].blocking_rate <= \
            results[(50, 2)].blocking_rate + 1e-9
        assert results[(50, 3)].blocking_rate <= \
            results[(50, 2)].blocking_rate + 1e-9


class TestProvisioning:
    def test_channels_cover_peak(self, day_trace):
        result = provision_zone(day_trace, n_users=2000)
        assert result.n_channels >= result.peak_calls
        assert result.n_sps >= 1
        assert result.n_mixes >= 1

    def test_duty_cycle_reported(self, day_trace):
        result = provision_zone(day_trace, n_users=2000)
        assert 0.0 < result.peak_duty_cycle < 0.05

    def test_offload_factor_large(self, day_trace):
        # §3.6: "n/a is likely to be large (above 10)".
        result = provision_zone(day_trace, n_users=2000)
        assert result.offload_factor >= 10

    def test_validation(self, day_trace):
        with pytest.raises(ValueError):
            provision_zone(day_trace, n_users=0)


class TestRateEpochs:
    def test_rates_cover_load(self, day_trace):
        series = rate_epoch_series(day_trace, epoch_seconds=3600.0)
        assert len(series) >= 24
        # After the first adjustment, the provisioned rate covers the
        # epoch's observed peak in all but transition epochs.
        violations = sum(1 for _, load, rate in series[1:]
                         if load > rate)
        assert violations <= len(series) * 0.2

    def test_rate_changes_infrequent(self, day_trace):
        from repro.core.chaffing import RateController
        controller = RateController()
        rate_epoch_series(day_trace, epoch_seconds=3600.0,
                          controller=controller)
        # "Changes take place at time scales of hours": a day-long
        # trace must see far fewer changes than epochs.
        assert controller.adjustments <= 12

    def test_diurnal_rates_differ(self, day_trace):
        series = rate_epoch_series(day_trace, epoch_seconds=3600.0)
        rates = [rate for _, _, rate in series]
        assert max(rates) > min(rates)


class TestInterzoneMatrix:
    def test_matrix_shape_and_total(self, day_trace):
        matrix = interzone_traffic_matrix(day_trace, 4)
        assert matrix.shape == (4, 4)
        assert matrix.sum() == len(day_trace)

    def test_interzone_fraction_honoured(self, day_trace):
        matrix = interzone_traffic_matrix(day_trace, 4,
                                          interzone_fraction=0.5)
        off_diag = matrix.sum() - sum(matrix[i, i] for i in range(4))
        assert off_diag / matrix.sum() == pytest.approx(0.5, abs=0.05)

    def test_single_zone(self, day_trace):
        matrix = interzone_traffic_matrix(day_trace, 1)
        assert matrix[0, 0] == len(day_trace)

    def test_validation(self, day_trace):
        with pytest.raises(ValueError):
            interzone_traffic_matrix(day_trace, 0)


class TestDeployment:
    @pytest.fixture(scope="class")
    def results(self):
        cfg = DeploymentConfig(n_probe_packets=150)
        return measure_pair_latencies(cfg)

    def test_all_pairs_measured(self, results):
        pairs = {(s, d) for s, d, _ in results}
        assert len(pairs) == 12  # 4 regions, ordered pairs

    def test_herd_slower_than_direct(self, results):
        for (s, d, sys), m in results.items():
            if sys != "herd":
                continue
            drac = results[(s, d, "drac")]
            assert m.mean_owd_ms > drac.mean_owd_ms

    def test_herd_extra_latency_modest(self, results):
        # Fig. 7: "approximately 100ms" over direct.  Accept 30–120 ms.
        extra = herd_extra_latency_ms(results)
        assert 30.0 < extra < 120.0

    def test_au_pairs_worst(self, results):
        au = [m.mean_owd_ms for (s, d, sys), m in results.items()
              if sys == "herd" and "AU" in (s, d)]
        rest = [m.mean_owd_ms for (s, d, sys), m in results.items()
                if sys == "herd" and "AU" not in (s, d)]
        assert min(au) > max(rest) - 30.0

    def test_quality_drops_at_most_one_band(self, results):
        order = ["poor", "low", "medium", "high", "perfect"]
        for (s, d, sys), m in results.items():
            if sys != "herd":
                continue
            drac = results[(s, d, "drac")]
            drop = (order.index(drac.quality().band)
                    - order.index(m.quality().band))
            assert drop <= 1, (s, d)

    def test_non_au_pairs_medium_or_better(self, results):
        for (s, d, sys), m in results.items():
            if sys == "herd" and "AU" not in (s, d):
                assert m.quality().band in ("medium", "high", "perfect")

    def test_loss_stays_low(self, results):
        # §4.3.3: "the packet loss never exceeded a few percents".
        for m in results.values():
            assert m.loss_fraction < 0.05

    def test_with_sps_adds_two_hops_latency(self):
        cfg = DeploymentConfig(n_probe_packets=100, regions=("EU", "NA"))
        plain = measure_pair_latencies(cfg, systems=("herd",))
        cfg_sp = DeploymentConfig(n_probe_packets=100, with_sps=True,
                                  regions=("EU", "NA"))
        with_sp = measure_pair_latencies(cfg_sp, systems=("herd",))
        assert with_sp[("EU", "NA", "herd")].mean_owd_ms > \
            plain[("EU", "NA", "herd")].mean_owd_ms

    def test_sink_percentiles(self, results):
        m = results[("EU", "NA", "herd")]
        assert m.p95_owd_ms >= m.mean_owd_ms

"""Tests: FIFO link queueing, entropy anonymity metric, and example
smoke tests (every shipped example must run end to end)."""

import runpy
from pathlib import Path

import pytest

from repro.analysis.anonymity import effective_anonymity_entropy
from repro.netsim.engine import EventLoop
from repro.netsim.link import Link
from repro.netsim.node import Node
from repro.netsim.packet import IP_UDP_HEADER_BYTES, Packet

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py"))


def _pair(loop, **kwargs):
    a, b = Node("a", loop), Node("b", loop)
    b.on_packet(lambda p: None)
    return a, b, Link(loop, a, b, **kwargs)


class TestFifoLink:
    def test_burst_serializes(self):
        loop = EventLoop()
        a, b, _ = _pair(loop, bandwidth_bps=1000.0, fifo=True)
        arrivals = []
        b.on_packet(lambda p: arrivals.append(loop.now))
        size = 100 - IP_UDP_HEADER_BYTES  # 100 B on the wire = 0.1 s
        for _ in range(3):
            a.send("b", Packet(b"x" * size, "a", "b"))
        loop.run()
        assert arrivals == [pytest.approx(0.1), pytest.approx(0.2),
                            pytest.approx(0.3)]

    def test_non_fifo_burst_overlaps(self):
        loop = EventLoop()
        a, b, _ = _pair(loop, bandwidth_bps=1000.0, fifo=False)
        arrivals = []
        b.on_packet(lambda p: arrivals.append(loop.now))
        size = 100 - IP_UDP_HEADER_BYTES
        for _ in range(3):
            a.send("b", Packet(b"x" * size, "a", "b"))
        loop.run()
        assert arrivals == [pytest.approx(0.1)] * 3

    def test_queue_drains_between_bursts(self):
        loop = EventLoop()
        a, b, _ = _pair(loop, bandwidth_bps=1000.0, fifo=True)
        arrivals = []
        b.on_packet(lambda p: arrivals.append(loop.now))
        size = 100 - IP_UDP_HEADER_BYTES
        a.send("b", Packet(b"x" * size, "a", "b"))
        loop.schedule(1.0, lambda: a.send("b", Packet(b"x" * size,
                                                      "a", "b")))
        loop.run()
        assert arrivals == [pytest.approx(0.1), pytest.approx(1.1)]

    def test_directions_independent(self):
        loop = EventLoop()
        a, b, _ = _pair(loop, bandwidth_bps=1000.0, fifo=True)
        a.on_packet(lambda p: None)
        arrivals = []
        b.on_packet(lambda p: arrivals.append(("b", loop.now)))
        size = 100 - IP_UDP_HEADER_BYTES
        a.send("b", Packet(b"x" * size, "a", "b"))
        b.send("a", Packet(b"x" * size, "b", "a"))
        loop.run()
        # b's transmit queue is not blocked by a's.
        assert arrivals == [("b", pytest.approx(0.1))]

    def test_fifo_requires_bandwidth(self):
        loop = EventLoop()
        a, b = Node("a", loop), Node("b", loop)
        with pytest.raises(ValueError):
            Link(loop, a, b, fifo=True)


class TestEntropyAnonymity:
    def test_uniform_gives_set_size(self):
        assert effective_anonymity_entropy([0.25] * 4) == \
            pytest.approx(4.0)

    def test_point_mass_gives_one(self):
        assert effective_anonymity_entropy([1.0]) == pytest.approx(1.0)

    def test_skew_reduces_effective_size(self):
        skewed = effective_anonymity_entropy([0.7, 0.1, 0.1, 0.1])
        assert skewed < 4.0
        assert skewed > 1.0

    def test_unnormalized_input_accepted(self):
        assert effective_anonymity_entropy([2, 2, 2, 2]) == \
            pytest.approx(4.0)

    def test_zeroes_ignored(self):
        assert effective_anonymity_entropy([0.5, 0.5, 0.0]) == \
            pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            effective_anonymity_entropy([])

    def test_herd_sda_scores_full_entropy(self):
        from repro.attacks.disclosure import (herd_sda_rounds,
                                              statistical_disclosure)
        online = set(range(50))
        target_rounds, background = herd_sda_rounds(online, 0, 10, 10)
        result = statistical_disclosure(target_rounds, background)
        # Convert (uniform) target frequencies to a distribution.
        freqs = [1.0] * len(result.scores)
        assert effective_anonymity_entropy(freqs) == pytest.approx(49.0)


@pytest.mark.parametrize("example", EXAMPLES,
                         ids=[e.stem for e in EXAMPLES])
def test_example_runs(example, capsys, monkeypatch):
    """Every shipped example executes end to end without error."""
    # Shrink the heavyweight knobs so the smoke test stays fast.
    import repro.simulation.deployment as deployment
    original = deployment.DeploymentConfig
    monkeypatch.setattr(
        deployment, "DeploymentConfig",
        lambda *a, **kw: original(*a, **{**kw, "n_probe_packets": 30}))
    runpy.run_path(str(example), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{example.stem} produced no output"

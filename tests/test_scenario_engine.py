"""Scenario engine end-to-end: graceful degradation under OVERLOAD,
client backpressure under DIRECTORY_STALL, the facade's scenario_def
plumbing, and report determinism (§10)."""

import pytest

from repro.api import SimConfig, Simulation
from repro.faults.plan import FaultKind, FaultSpec
from repro.scenario import (
    Adversary,
    ChurnEvent,
    Scenario,
    SurvivalCriteria,
    Workload,
    ZoneShape,
    run_scenario,
)
from repro.scenario.engine import execute
from repro.scenario.report import evaluate_criteria


def _small_zone(**kwargs):
    shape = dict(n_clients=8, n_channels=4, n_sps=2, k=3,
                 n_direct_clients=2)
    shape.update(kwargs)
    return ZoneShape(**shape)


class TestOverloadDegradation:
    def test_overload_sheds_and_calls_survive(self):
        scenario = Scenario(
            name="overload-unit", horizon_s=3.0,
            zone=_small_zone(),
            workload=Workload(call_pairs=2, call_start_s=0.4),
            faults=(FaultSpec(kind=FaultKind.OVERLOAD, at_s=1.0,
                              target="zone", duration_s=1.0,
                              capacity_fraction=0.0),))
        outcome = execute(scenario)
        # Backpressure engaged: payload cells were deferred (queued at
        # the clients), none dropped, and both calls stayed up.
        assert outcome.shedding_engaged
        assert outcome.cells_deferred > 0
        assert outcome.shed_stats["windows"] == 1
        assert outcome.call_survival_rate == 1.0
        assert not outcome.invariant_violations
        # The shed window is visible on the timeline with its totals.
        sheds = [e for e in outcome.timeline if e.action == "shed"]
        assert len(sheds) == 1 and "deferred=" in sheds[0].detail

    def test_voice_resumes_after_overload_window(self):
        scenario = Scenario(
            name="overload-resume", horizon_s=3.0,
            zone=_small_zone(),
            workload=Workload(call_pairs=1, call_start_s=0.4),
            faults=(FaultSpec(kind=FaultKind.OVERLOAD, at_s=1.0,
                              target="zone", duration_s=0.8,
                              capacity_fraction=0.0),))
        full = execute(scenario)
        # A full-backpressure window costs throughput but not the
        # call: legs stay established and frames flow again after.
        assert full.call_legs_established == 2
        assert full.cells_deferred > 0


class TestDirectoryStall:
    def test_rejoins_back_off_through_stall(self):
        scenario = Scenario(
            name="stall-unit", horizon_s=6.0,
            zone=_small_zone(n_direct_clients=4),
            workload=Workload(call_pairs=1, call_start_s=0.4),
            faults=(
                FaultSpec(kind=FaultKind.DIRECTORY_STALL, at_s=1.4,
                          target="zone-ctl", duration_s=2.0),
                FaultSpec(kind=FaultKind.MIX_CRASH, at_s=1.5,
                          target="zone-ctl/mix-0", duration_s=4.0,
                          detection_delay_s=0.5),
            ))
        outcome = execute(scenario)
        # Orphans retried against the stalled directory (client
        # backpressure), then landed once it recovered: multiple
        # attempts, everyone back in.
        assert outcome.rejoins and outcome.all_rejoined
        assert all(r.attempts >= 2 for r in outcome.rejoins)
        assert max(r.latency_s for r in outcome.rejoins) > 1.0
        assert not outcome.invariant_violations

    def test_stall_without_recovery_gives_up(self):
        scenario = Scenario(
            name="stall-forever", horizon_s=4.0,
            zone=_small_zone(n_direct_clients=4),
            workload=Workload(call_pairs=0),
            faults=(
                FaultSpec(kind=FaultKind.DIRECTORY_STALL, at_s=0.5,
                          target="zone-ctl", duration_s=30.0),
                FaultSpec(kind=FaultKind.MIX_CRASH, at_s=0.6,
                          target="zone-ctl/mix-0", duration_s=30.0,
                          detection_delay_s=0.5),
            ))
        outcome = execute(scenario)
        assert outcome.rejoins and not outcome.all_rejoined
        failures = evaluate_criteria(
            SurvivalCriteria(require_all_rejoined=True), outcome)
        assert any("re-joined" in f for f in failures)


class TestWorkloadsAndChurn:
    def test_poisson_workload_counts_calls(self):
        scenario = Scenario(
            name="poisson-unit", horizon_s=4.0,
            zone=_small_zone(),
            workload=Workload(kind="poisson", call_pairs=0,
                              arrival_rate_per_s=2.0,
                              call_hold_s=0.8))
        outcome = execute(scenario)
        assert outcome.calls_started > 0
        assert outcome.calls_completed > 0
        assert outcome.calls_started >= outcome.calls_completed

    def test_poisson_arrivals_helper_is_deterministic(self):
        from repro.workload.arrivals import poisson_arrival_times
        a = poisson_arrival_times(2.0, 0.3, 4.0, seed=7)
        b = poisson_arrival_times(2.0, 0.3, 4.0, seed=7)
        assert a == b and a  # bit-identical for equal seeds
        assert all(0.3 < t < 4.0 for t in a)
        assert a == sorted(a)
        assert a != poisson_arrival_times(2.0, 0.3, 4.0, seed=8)
        with pytest.raises(ValueError):
            poisson_arrival_times(0.0, 0.3, 4.0, seed=7)

    def test_trace_replay_arrivals_bridge(self):
        from repro.workload.arrivals import arrival_times_from_trace
        from repro.workload.cdr import CallRecord, CallTrace
        trace = CallTrace([
            CallRecord(caller=1, callee=2, start=10.0, duration=5.0),
            CallRecord(caller=3, callee=4, start=12.0, duration=5.0),
            CallRecord(caller=5, callee=6, start=90.0, duration=5.0),
        ])
        times = arrival_times_from_trace(trace, 10.0, 20.0,
                                         time_scale=0.5)
        assert times == [0.0, 1.0]  # shifted to 0, scaled, windowed

    def test_churn_events_tracked(self):
        scenario = Scenario(
            name="churn-unit", horizon_s=3.0,
            zone=_small_zone(n_direct_clients=3),
            workload=Workload(call_pairs=0),
            churn=(ChurnEvent(at_s=0.5, action="client_join", count=2),
                   ChurnEvent(at_s=1.5, action="client_leave")))
        outcome = execute(scenario)
        assert outcome.churn_stats["joined"] == 2
        assert outcome.churn_stats["left"] == 1


class TestFacadePlumbing:
    def test_scenario_def_promotes_scenario_kind(self):
        cfg = SimConfig(scenario_def=Scenario(name="promo"))
        assert cfg.scenario == "scenario"

    def test_scenario_kind_requires_definition(self):
        with pytest.raises(ValueError, match="scenario_def"):
            SimConfig(scenario="scenario")

    def test_until_truncates_horizon(self):
        scenario = Scenario(name="short", horizon_s=6.0,
                            zone=_small_zone(),
                            workload=Workload(call_pairs=1,
                                              call_start_s=0.2))
        report = Simulation(SimConfig(
            scenario_def=scenario)).run(until=1.0)
        assert report.detail.rounds_run == 20  # 1.0s / 0.05s


class TestScenarioReportDeterminism:
    SCENARIO = Scenario(
        name="report-unit", horizon_s=3.0,
        zone=_small_zone(),
        workload=Workload(call_pairs=1, call_start_s=0.4),
        faults=(FaultSpec(kind=FaultKind.OVERLOAD, at_s=1.0,
                          target="zone", duration_s=1.0,
                          capacity_fraction=0.0),),
        adversary=Adversary(kind="wiretap"),
        criteria=SurvivalCriteria(min_call_survival_rate=1.0,
                                  require_shedding=True,
                                  min_call_legs_established=2))

    def test_report_passes_and_pins_key_across_engines(self):
        event = run_scenario(self.SCENARIO, execution="event")
        batch = run_scenario(self.SCENARIO, execution="batch")
        assert event.passed and batch.passed
        assert event.determinism_key == batch.determinism_key
        assert event.scenario_signature == batch.scenario_signature
        artifact = event.to_artifact_dict()
        assert artifact["passed"] is True
        assert artifact["survival"]["cells_deferred"] > 0

    def test_failed_criteria_surface_in_report(self):
        import dataclasses
        strict = dataclasses.replace(
            self.SCENARIO, criteria=SurvivalCriteria(
                min_call_legs_established=99))
        report = run_scenario(strict)
        assert not report.passed
        assert any("99" in f for f in report.criteria_failures)

"""The observational-equivalence contract between execution engines.

DESIGN.md §9: a seeded run produces *byte-identical* adversary
observations, metrics snapshots, and JSONL traces whether it executes
on the per-cell event engine, the round-synchronous batch engine, or
the vectorized ``batch-v2`` plane (DESIGN.md §13) at any shard count.
The engines may differ in anything an adversary cannot see — events
processed, objects allocated, wall-clock speed — and nothing else.

This file pins that contract:

* an exact cross-engine comparison of all three output surfaces for
  the live scenario (plus a pinned digest, so a change that breaks
  all engines in lockstep still trips a review);
* ``batch-v2`` at shards 1, 2, and 4 held to the same surfaces and
  the same pinned digest;
* testbed and chaos scenarios compared across engines;
* a hypothesis sweep over random seeds and zone shapes comparing the
  E9 constant-rate census and the wiretap size/time sequences.
"""

import hashlib
import json

from hypothesis import given, settings, strategies as st

from repro.api import SimConfig, Simulation
from repro.faults.plan import FaultKind, FaultSpec
from repro.scenario import (
    Adversary,
    Scenario,
    SurvivalCriteria,
    Workload,
    ZoneShape,
    run_scenario,
)

#: Pinned digest of the seed-20150817 adversary observation stream
#: (shared by both engines).  If this changes, the wire image of the
#: default live scenario changed — that is a protocol change, not a
#: refactor, and needs a deliberate re-pin.
PINNED_WIRETAP_SHA256 = \
    "85931d8b808ca071e5c95d8b36a93e1b073525136de3889f6fd40b480e09ed4f"


def _live_run(execution, trace_path=None, **cfg):
    defaults = dict(seed=20150817, n_clients=8, n_channels=4,
                    n_sps=2, k=2, call_pairs=2, wiretap=True)
    defaults.update(cfg)
    config = SimConfig(execution=execution,
                       trace_path=str(trace_path) if trace_path
                       else None, **defaults)
    return Simulation(config).run(rounds=25)


def _wiretap_digest(report):
    stream = json.dumps(report.detail["wiretap"]["observations"],
                        separators=(",", ":")).encode()
    return hashlib.sha256(stream).hexdigest()


class TestLiveEquivalence:
    def test_all_three_surfaces_byte_identical(self, tmp_path):
        event = _live_run("event", trace_path=tmp_path / "event.jsonl")
        batch = _live_run("batch", trace_path=tmp_path / "batch.jsonl")
        # 1. The adversary's view.
        assert event.detail["wiretap"]["observations"] == \
            batch.detail["wiretap"]["observations"]
        # 2. The metrics snapshot, down to rendered bytes.
        assert event.metrics == batch.metrics
        assert event.to_json() == batch.to_json()
        assert event.to_prometheus() == batch.to_prometheus()
        # 3. The JSONL trace files.
        assert (tmp_path / "event.jsonl").read_bytes() == \
            (tmp_path / "batch.jsonl").read_bytes()
        # The engines really are different under the hood: batch
        # schedules O(rounds) wire events, event O(cells).
        assert batch.detail["wiretap"]["wire_events_processed"] < \
            event.detail["wiretap"]["wire_events_processed"]
        assert event.detail["wiretap"]["cells_carried"] == \
            batch.detail["wiretap"]["cells_carried"] > 0

    def test_pinned_wiretap_digest(self):
        event = _live_run("event")
        batch = _live_run("batch")
        assert _wiretap_digest(event) == _wiretap_digest(batch) == \
            PINNED_WIRETAP_SHA256

    def test_batch_v2_all_surfaces_at_shards_1_2_4(self, tmp_path):
        """§13: the vectorized plane — at every shard count — holds
        the same three-surface contract and the same pinned digest as
        the per-cell engines."""
        event = _live_run("event", trace_path=tmp_path / "event.jsonl")
        for shards in (1, 2, 4):
            v2 = _live_run("batch-v2", shards=shards,
                           trace_path=tmp_path / f"v2-{shards}.jsonl")
            assert v2.engine == "batch-v2" and v2.shards == shards
            assert v2.detail["wiretap"]["observations"] == \
                event.detail["wiretap"]["observations"]
            assert v2.metrics == event.metrics
            assert v2.to_prometheus() == event.to_prometheus()
            assert (tmp_path / f"v2-{shards}.jsonl").read_bytes() == \
                (tmp_path / "event.jsonl").read_bytes()
            assert _wiretap_digest(v2) == PINNED_WIRETAP_SHA256
            # Vector plane: O(rounds) wire events, like batch.
            assert v2.detail["wiretap"]["wire_events_processed"] < \
                event.detail["wiretap"]["wire_events_processed"]

    def test_equivalence_survives_mid_run_sp_failure(self):
        def run(execution):
            from repro.simulation.live import LiveZone
            zone = LiveZone(n_clients=8, n_channels=4, n_sps=2,
                            seed=99, execution=execution)
            fabric = zone.attach_wire()
            zone.start_call("client-0", "client-1")
            for r in range(30):
                if r == 12:
                    zone.fail_superpeer("zone-EU/sp-1")
                zone.say("client-0", b"after-failover")
                zone.step()
            fabric.finalize()
            return [(o.time, o.size, o.src, o.dst)
                    for o in fabric.observer.observations], \
                zone.received_by("client-1")

        obs_event, voice_event = run("event")
        obs_batch, voice_batch = run("batch")
        obs_v2, voice_v2 = run("batch-v2")
        assert obs_event == obs_batch == obs_v2
        assert voice_event == voice_batch == voice_v2


class TestProfilerEquivalence:
    """DESIGN.md §11: profiling is a host-time side channel.  A seeded
    run with the phase profiler attached produces byte-identical
    adversary observations, metrics, traces, and determinism keys to
    the same run with profiling off — on both engines."""

    def test_profiled_run_byte_identical_on_both_engines(self,
                                                         tmp_path):
        for execution in ("event", "batch"):
            plain = _live_run(execution,
                              trace_path=tmp_path /
                              f"{execution}-off.jsonl")
            profiled = _live_run(execution,
                                 trace_path=tmp_path /
                                 f"{execution}-on.jsonl",
                                 profile=True)
            # The profiler really ran...
            assert profiled.perf is not None
            assert profiled.perf["rounds_profiled"] == 25
            assert profiled.perf["phases"]["chaff"]["cells"] > 0
            assert plain.perf is None
            # ...and every determinism surface is byte-identical.
            assert profiled.detail["wiretap"]["observations"] == \
                plain.detail["wiretap"]["observations"]
            assert profiled.metrics == plain.metrics
            assert profiled.to_prometheus() == plain.to_prometheus()
            assert (tmp_path / f"{execution}-on.jsonl").read_bytes() \
                == (tmp_path / f"{execution}-off.jsonl").read_bytes()
            assert _wiretap_digest(profiled) == PINNED_WIRETAP_SHA256

    def test_profiled_scenario_determinism_key_unchanged(self):
        scenario = TestScenarioEquivalence.DEGRADATION_SCENARIO
        for execution in ("event", "batch"):
            plain = run_scenario(scenario, execution=execution)
            profiled = run_scenario(scenario, execution=execution,
                                    profile=True)
            assert profiled.perf is not None
            assert profiled.perf["phases"]
            assert profiled.determinism_key == plain.determinism_key
            assert profiled.metrics == plain.metrics
            assert profiled.timeline == plain.timeline
            # The artifact carries perf beside (not inside) the
            # determinism surface.
            artifact = profiled.to_artifact_dict()
            assert artifact["perf"] is profiled.perf
            assert "perf" not in plain.to_artifact_dict()


class TestTestbedAndChaosEquivalence:
    def test_testbed_metrics_identical(self):
        def run(execution):
            config = SimConfig(scenario="testbed", seed=5,
                               n_clients=6, call_pairs=2,
                               execution=execution)
            return Simulation(config).run(rounds=20)

        event, batch = run("event"), run("batch")
        assert event.metrics == batch.metrics
        assert event.detail["frames_delivered"] == \
            batch.detail["frames_delivered"] > 0

    def test_chaos_determinism_key_identical(self):
        def run(execution):
            config = SimConfig(scenario="chaos", seed=20150817,
                               n_clients=12, n_channels=6,
                               execution=execution)
            return Simulation(config).run(until=6.0)

        event, batch = run("event"), run("batch")
        assert event.detail.determinism_key() == \
            batch.detail.determinism_key()
        assert event.metrics == batch.metrics


class TestScenarioEquivalence:
    """The §10 contract: a declared scenario's determinism key — which
    folds in the wiretap observation stream, the fault timeline, and
    the metrics snapshot — is identical across engines, including
    under every windowed degradation kind."""

    #: All three link-degradation kinds active at overlapping windows,
    #: watched by a passive global wiretap.
    DEGRADATION_SCENARIO = Scenario(
        name="equivalence-degradations",
        description="loss + jitter + degrade windows under a wiretap",
        seed=20150817,
        horizon_s=3.0,
        round_interval_s=0.05,
        zone=ZoneShape(n_clients=12, n_channels=6, n_sps=2, k=3,
                       n_direct_clients=2),
        workload=Workload(kind="constant", call_pairs=1,
                          call_start_s=0.4),
        faults=(
            FaultSpec(kind=FaultKind.LOSS_BURST, at_s=0.8,
                      target="zone-live/sp-0", duration_s=1.5,
                      loss=0.25),
            FaultSpec(kind=FaultKind.JITTER_BURST, at_s=1.0,
                      target="zone-live/sp-1", duration_s=1.5,
                      jitter_ms=70.0),
            FaultSpec(kind=FaultKind.LINK_DEGRADE, at_s=1.2,
                      target="zone-live/sp-0", duration_s=1.0,
                      loss=0.10, jitter_ms=30.0),
        ),
        adversary=Adversary(kind="wiretap"),
        criteria=SurvivalCriteria(min_call_survival_rate=1.0,
                                  min_call_legs_established=2),
    )

    def test_degradation_faults_equivalent_across_engines(self):
        event = run_scenario(self.DEGRADATION_SCENARIO,
                             execution="event")
        batch = run_scenario(self.DEGRADATION_SCENARIO,
                             execution="batch")
        for shards in (1, 4):
            v2 = run_scenario(self.DEGRADATION_SCENARIO,
                              execution="batch-v2", shards=shards)
            assert v2.determinism_key == event.determinism_key
            assert v2.metrics == event.metrics
            assert v2.timeline == event.timeline
        # The adversary's view is byte-identical, even while loss,
        # jitter, and degradation windows churn link state.
        obs_event = event.detail.wiretap["observations"]
        obs_batch = batch.detail.wiretap["observations"]
        assert obs_event == obs_batch
        assert len(obs_event) > 0
        # The fault timeline replays identically: same onsets, same
        # reverts, same virtual times.
        assert event.timeline == batch.timeline
        actions = [entry[1] for entry in event.timeline]
        assert actions.count("injected") == 3
        assert actions.count("recovered") == 3
        # The sustained loss/degrade windows on sp-0 trip the monitor's
        # blacklist, and the live call leg fails over and survives.
        assert "blacklisted" in actions and "failover" in actions
        # Metrics and the whole determinism key agree.
        assert event.metrics == batch.metrics
        assert event.determinism_key == batch.determinism_key
        assert event.passed and batch.passed
        # The engines still differ where they are allowed to: the
        # batch engine schedules O(rounds) wire events, not O(cells).
        assert batch.detail.wiretap["wire_events_processed"] < \
            event.detail.wiretap["wire_events_processed"]

    def test_scenario_key_stable_across_replays(self):
        first = run_scenario(self.DEGRADATION_SCENARIO)
        second = run_scenario(self.DEGRADATION_SCENARIO)
        assert first.determinism_key == second.determinism_key


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000),
       n_channels=st.integers(2, 6),
       n_sps=st.integers(1, 3),
       call_pairs=st.integers(0, 2))
def test_equivalence_property_random_shapes(seed, n_channels, n_sps,
                                            call_pairs):
    """Random seeds and zone shapes: the E9 constant-rate census rows
    and the wiretap (time, size) sequences match across engines."""
    n_sps = min(n_sps, n_channels)
    n_clients = max(6, 2 * call_pairs)
    rounds = 15

    def run(execution):
        config = SimConfig(seed=seed, n_clients=n_clients,
                           n_channels=n_channels, n_sps=n_sps,
                           call_pairs=call_pairs, trace_buffer=0,
                           wiretap=True, execution=execution)
        return Simulation(config).run(rounds=rounds)

    event, batch = run("event"), run("batch")
    vector = run("batch-v2")

    # The E9 report row: downstream cells per round, by kind.
    def census(report):
        return {s["labels"]["kind"]: s["value"]
                for s in report.metrics["herd_mix_cells_total"]
                ["series"]}

    assert census(event) == census(batch) == census(vector)
    assert sum(census(event).values()) == n_channels * rounds

    # The adversary's size/time sequences.
    assert event.detail["wiretap"]["observations"] == \
        batch.detail["wiretap"]["observations"] == \
        vector.detail["wiretap"]["observations"]

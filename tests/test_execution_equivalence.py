"""The observational-equivalence contract between execution engines.

DESIGN.md §9: a seeded run produces *byte-identical* adversary
observations, metrics snapshots, and JSONL traces whether it executes
on the per-cell event engine or the round-synchronous batch engine.
The engines may differ in anything an adversary cannot see — events
processed, objects allocated, wall-clock speed — and nothing else.

This file pins that contract:

* an exact cross-engine comparison of all three output surfaces for
  the live scenario (plus a pinned digest, so a change that breaks
  both engines in lockstep still trips a review);
* testbed and chaos scenarios compared across engines;
* a hypothesis sweep over random seeds and zone shapes comparing the
  E9 constant-rate census and the wiretap size/time sequences.
"""

import hashlib
import json

from hypothesis import given, settings, strategies as st

from repro.api import SimConfig, Simulation

#: Pinned digest of the seed-20150817 adversary observation stream
#: (shared by both engines).  If this changes, the wire image of the
#: default live scenario changed — that is a protocol change, not a
#: refactor, and needs a deliberate re-pin.
PINNED_WIRETAP_SHA256 = \
    "85931d8b808ca071e5c95d8b36a93e1b073525136de3889f6fd40b480e09ed4f"


def _live_run(execution, trace_path=None, **cfg):
    defaults = dict(seed=20150817, n_clients=8, n_channels=4,
                    n_sps=2, k=2, call_pairs=2, wiretap=True)
    defaults.update(cfg)
    config = SimConfig(execution=execution,
                       trace_path=str(trace_path) if trace_path
                       else None, **defaults)
    return Simulation(config).run(rounds=25)


def _wiretap_digest(report):
    stream = json.dumps(report.detail["wiretap"]["observations"],
                        separators=(",", ":")).encode()
    return hashlib.sha256(stream).hexdigest()


class TestLiveEquivalence:
    def test_all_three_surfaces_byte_identical(self, tmp_path):
        event = _live_run("event", trace_path=tmp_path / "event.jsonl")
        batch = _live_run("batch", trace_path=tmp_path / "batch.jsonl")
        # 1. The adversary's view.
        assert event.detail["wiretap"]["observations"] == \
            batch.detail["wiretap"]["observations"]
        # 2. The metrics snapshot, down to rendered bytes.
        assert event.metrics == batch.metrics
        assert event.to_json() == batch.to_json()
        assert event.to_prometheus() == batch.to_prometheus()
        # 3. The JSONL trace files.
        assert (tmp_path / "event.jsonl").read_bytes() == \
            (tmp_path / "batch.jsonl").read_bytes()
        # The engines really are different under the hood: batch
        # schedules O(rounds) wire events, event O(cells).
        assert batch.detail["wiretap"]["wire_events_processed"] < \
            event.detail["wiretap"]["wire_events_processed"]
        assert event.detail["wiretap"]["cells_carried"] == \
            batch.detail["wiretap"]["cells_carried"] > 0

    def test_pinned_wiretap_digest(self):
        event = _live_run("event")
        batch = _live_run("batch")
        assert _wiretap_digest(event) == _wiretap_digest(batch) == \
            PINNED_WIRETAP_SHA256

    def test_equivalence_survives_mid_run_sp_failure(self):
        def run(execution):
            from repro.simulation.live import LiveZone
            zone = LiveZone(n_clients=8, n_channels=4, n_sps=2,
                            seed=99, execution=execution)
            fabric = zone.attach_wire()
            zone.start_call("client-0", "client-1")
            for r in range(30):
                if r == 12:
                    zone.fail_superpeer("zone-EU/sp-1")
                zone.say("client-0", b"after-failover")
                zone.step()
            return [(o.time, o.size, o.src, o.dst)
                    for o in fabric.observer.observations], \
                zone.received_by("client-1")

        obs_event, voice_event = run("event")
        obs_batch, voice_batch = run("batch")
        assert obs_event == obs_batch
        assert voice_event == voice_batch


class TestTestbedAndChaosEquivalence:
    def test_testbed_metrics_identical(self):
        def run(execution):
            config = SimConfig(scenario="testbed", seed=5,
                               n_clients=6, call_pairs=2,
                               execution=execution)
            return Simulation(config).run(rounds=20)

        event, batch = run("event"), run("batch")
        assert event.metrics == batch.metrics
        assert event.detail["frames_delivered"] == \
            batch.detail["frames_delivered"] > 0

    def test_chaos_determinism_key_identical(self):
        def run(execution):
            config = SimConfig(scenario="chaos", seed=20150817,
                               n_clients=12, n_channels=6,
                               execution=execution)
            return Simulation(config).run(until=6.0)

        event, batch = run("event"), run("batch")
        assert event.detail.determinism_key() == \
            batch.detail.determinism_key()
        assert event.metrics == batch.metrics


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000),
       n_channels=st.integers(2, 6),
       n_sps=st.integers(1, 3),
       call_pairs=st.integers(0, 2))
def test_equivalence_property_random_shapes(seed, n_channels, n_sps,
                                            call_pairs):
    """Random seeds and zone shapes: the E9 constant-rate census rows
    and the wiretap (time, size) sequences match across engines."""
    n_sps = min(n_sps, n_channels)
    n_clients = max(6, 2 * call_pairs)
    rounds = 15

    def run(execution):
        config = SimConfig(seed=seed, n_clients=n_clients,
                           n_channels=n_channels, n_sps=n_sps,
                           call_pairs=call_pairs, trace_buffer=0,
                           wiretap=True, execution=execution)
        return Simulation(config).run(rounds=rounds)

    event, batch = run("event"), run("batch")

    # The E9 report row: downstream cells per round, by kind.
    def census(report):
        return {s["labels"]["kind"]: s["value"]
                for s in report.metrics["herd_mix_cells_total"]
                ["series"]}

    assert census(event) == census(batch)
    assert sum(census(event).values()) == n_channels * rounds

    # The adversary's size/time sequences.
    assert event.detail["wiretap"]["observations"] == \
        batch.detail["wiretap"]["observations"]

"""The real-network plane in isolation: introducer, collector, fabric.

:mod:`repro.net` carries the same cell protocol as the simulator
planes over real loopback UDP (DESIGN.md §14).  These tests pin its
three layers without the facade on top:

* the introducer's request/reply codec and bootstrap protocol
  (tahoe-style: nodes announce, senders fetch the directory);
* :class:`~repro.net.transport.RoundCollector`, the receive-side
  round barrier that rebuilds the batch-v2 run table from unordered
  datagrams and names what is missing for retransmission;
* :class:`~repro.net.transport.UdpFabric` end to end, in-process and
  with the ``--processes`` worker, including the
  :meth:`~repro.core.transport.CellTransport.net_report` side channel.
"""

import asyncio

import pytest

from repro.core.wire import CellFrame, WireFormatError, \
    encode_cell_frame
from repro.net import introducer as intro
from repro.net.transport import IP_UDP_HEADER_BYTES, RoundCollector, \
    UdpFabric


class TestIntroducerCodec:
    def test_announce_roundtrip(self):
        wire = intro.encode_announce(7, "mix-0", "127.0.0.1", 4711)
        assert intro.decode_intro(wire) == \
            ("announce", 7, ("mix-0", "127.0.0.1", 4711))

    def test_ack_getdir_directory_roundtrip(self):
        assert intro.decode_intro(intro.encode_ack(3, 2)) == \
            ("ack", 3, (2,))
        assert intro.decode_intro(intro.encode_getdir(9)) == \
            ("getdir", 9, ())
        entries = {"sp-0": ("127.0.0.1", 1000),
                   "mix-0": ("127.0.0.1", 1001)}
        kind, seq, body = intro.decode_intro(
            intro.encode_directory(4, entries))
        assert (kind, seq) == ("directory", 4)
        assert body[0] == entries

    def test_malformed_raises_typed(self):
        for bad in (b"", b"HI", b"XX\x01\x00" + b"\x00" * 8,
                    intro.encode_getdir(1) + b"junk",
                    intro.encode_ack(1, 1)[:-1]):
            with pytest.raises(WireFormatError):
                intro.decode_intro(bad)

    def test_intro_namespace_disjoint_from_cell_frames(self):
        # An introducer datagram must never decode as a cell frame
        # and vice versa: different magics, different namespaces.
        from repro.core.wire import decode_cell_frame
        with pytest.raises(WireFormatError):
            decode_cell_frame(intro.encode_getdir(1))
        with pytest.raises(WireFormatError):
            intro.decode_intro(encode_cell_frame(CellFrame(
                round_index=0, run=0, seq=0, kind="data",
                src="a", dst="b", payload=b"")))


class TestIntroducerProtocol:
    def test_announce_then_fetch(self):
        async def scenario():
            server = intro.Introducer()
            address = await server.start()
            try:
                size = await intro.announce(
                    address, 1, "sp-0", "127.0.0.1", 5000,
                    timeout=0.5, attempts=4)
                assert size == 1
                size = await intro.announce(
                    address, 2, "mix-0", "127.0.0.1", 5001,
                    timeout=0.5, attempts=4)
                assert size == 2
                directory = await intro.fetch_directory(
                    address, 3, timeout=0.5, attempts=4)
                return directory, server.announcements
            finally:
                server.close()
                await asyncio.sleep(0)

        directory, announcements = asyncio.run(scenario())
        assert directory == {"sp-0": ("127.0.0.1", 5000),
                             "mix-0": ("127.0.0.1", 5001)}
        assert announcements == 2

    def test_unreachable_raises_after_attempts(self):
        async def scenario():
            # Bind then close to get a port with nothing behind it.
            server = intro.Introducer()
            address = await server.start()
            server.close()
            await asyncio.sleep(0)
            await intro.announce(address, 1, "sp-0", "127.0.0.1",
                                 5000, timeout=0.05, attempts=2)

        with pytest.raises(intro.IntroducerUnreachable,
                           match="2 attempts"):
            asyncio.run(scenario())


def _frame(round_index, run, seq, payload=b"\x00" * 64,
           src="sp-0", dst="mix-0", kind="up"):
    return CellFrame(round_index=round_index, run=run, seq=seq,
                     kind=kind, src=src, dst=dst, payload=payload)


class TestRoundCollector:
    def test_rebuilds_run_table(self):
        collector = RoundCollector()
        collector.arm(5, {0: 2, 1: 1})
        # Out-of-order arrival: the table still comes out canonical.
        collector.add(_frame(5, 1, 0, b"\x01" * 32,
                             src="mix-0", dst="sp-0", kind="down"))
        collector.add(_frame(5, 0, 1))
        assert not collector.complete
        assert collector.missing() == [(0, 0)]
        collector.add(_frame(5, 0, 0))
        assert collector.complete
        assert collector.table_rows() == [
            (0, "sp-0", "mix-0", 64 + IP_UDP_HEADER_BYTES, 2),
            (1, "mix-0", "sp-0", 32 + IP_UDP_HEADER_BYTES, 1),
        ]

    def test_duplicates_and_stray_accounting(self):
        collector = RoundCollector()
        collector.arm(1, {0: 1})
        collector.add(_frame(1, 0, 0))
        collector.add(_frame(1, 0, 0))          # retransmit dup
        assert collector.duplicates == 1
        collector.add(_frame(0, 0, 0))          # stale round
        collector.add(_frame(1, 9, 0))          # unknown run
        collector.add(_frame(1, 0, 5))          # seq past expected
        assert collector.stray == 3
        assert collector.complete

    def test_ingest_counts_malformed(self):
        collector = RoundCollector()
        collector.arm(0, {0: 1})
        collector.ingest(b"not a frame")
        assert collector.malformed == 1
        collector.ingest(encode_cell_frame(_frame(0, 0, 0)))
        assert collector.complete


def _drive(fabric, rounds=3):
    for r in range(rounds):
        fabric.emit("client-0", "sp-0", b"\x01" * 64, kind="data")
        fabric.emit_repeated("sp-0", "mix-0", b"\x02" * 128, 1,
                             kind="up")
        fabric.emit_repeated("mix-0", "sp-0", b"\x03" * 128, 5,
                             kind="down")
        fabric.flush_round(r)
    return fabric.finalize()


class TestUdpFabric:
    def test_loopback_round_trip(self):
        fabric = UdpFabric(seed=1, interval=0.02)
        stats = _drive(fabric)
        assert fabric.cells_carried == 21
        assert stats["cells"] == 21
        assert stats["link_stats"][("mix-0", "sp-0")] == \
            (15, 15 * (128 + IP_UDP_HEADER_BYTES))
        # The observer saw every cell at its round's *virtual* time.
        times = {obs.time for obs in fabric.observer.observations}
        assert times == {0.0, 0.02, 0.04}
        report = fabric.net_report()
        assert report["transport"] == "udp"
        assert report["processes"] is False
        assert report["endpoints"] == 3
        assert report["datagrams_sent"] >= 21
        assert report["datagrams_received"] >= 21
        assert report["announcements"] == 3
        # finalize() is idempotent after teardown.
        assert fabric.finalize() is stats

    def test_empty_rounds_need_no_network(self):
        fabric = UdpFabric(seed=1)

        class RoundCounter:
            rounds = 0

            def record_round_runs(self, time, keys, sizes, counts):
                RoundCounter.rounds += 1
                assert keys == [] and sizes == [] and counts == []

        fabric.add_tap(RoundCounter())
        fabric.flush_round(0)
        fabric.flush_round(1)
        stats = fabric.finalize()
        # Taps are offered every round, even empty ones — but no
        # socket was ever opened for them.
        assert RoundCounter.rounds == 2
        assert stats["cells"] == 0
        assert fabric.net_report()["endpoints"] == 0

    def test_processes_mode_crosses_a_real_boundary(self):
        fabric = UdpFabric(seed=1, processes=True)
        stats = _drive(fabric, rounds=2)
        assert stats["cells"] == 14
        report = fabric.net_report()
        assert report["processes"] is True
        # The worker's receive endpoints saw the datagrams in its
        # own process and reported back over the pipe.
        assert report["worker_datagrams_received"] >= 14

"""herdflow tests: CFG construction, taint propagation through the
fixpoint, interprocedural summaries, the content-hash cache, and the
regression pinning what the flow HL004 catches that the legacy
name-matcher misses."""

import ast
import textwrap
from pathlib import Path

from repro.lint import LintConfig, run_lint
from repro.lint.engine import FileContext, ImportMap, SuppressionIndex
from repro.lint.flow.cfg import HeaderStmt, build_cfg
from repro.lint.rules import SecretLeakRule

FIXTURES = Path(__file__).parent / "lint_fixtures"


def _cfg(source):
    tree = ast.parse(textwrap.dedent(source))
    func = tree.body[0]
    return build_cfg(func)


def _edges(cfg):
    return {(b.block_id, s)
            for b in cfg.blocks.values() for s in b.successors}


# -- CFG construction -------------------------------------------------


def test_cfg_straight_line_is_single_block():
    cfg = _cfg("""
        def f(x):
            y = x + 1
            z = y * 2
            return z
    """)
    reachable = cfg.reachable_blocks()
    # entry holds all three statements, then the exit.
    statements = [s for bid in reachable
                  for s in cfg.blocks[bid].statements]
    assert len(statements) == 3
    assert cfg.exit in cfg.blocks[cfg.entry].successors


def test_cfg_if_else_branches_and_rejoin():
    cfg = _cfg("""
        def f(flag):
            if flag:
                x = 1
            else:
                x = 2
            return x
    """)
    entry = cfg.blocks[cfg.entry]
    assert isinstance(entry.statements[-1], HeaderStmt)
    assert entry.statements[-1].kind == "if"
    assert len(entry.successors) == 2
    # Both arms flow into the same join block.
    joins = {succ
             for arm in entry.successors
             for succ in cfg.blocks[arm].successors}
    assert len(joins) == 1
    (join,) = joins
    # The join holds the return and leads to the exit.
    assert cfg.exit in cfg.blocks[join].successors


def test_cfg_while_loop_has_back_edge_and_exit():
    cfg = _cfg("""
        def f(n):
            total = 0
            while n > 0:
                total += n
                n -= 1
            return total
    """)
    headers = [b for b in cfg.blocks.values()
               if any(isinstance(s, HeaderStmt) and s.kind == "while"
                      for s in b.statements)]
    assert len(headers) == 1
    header = headers[0]
    # Loop header branches two ways: body and loop exit.
    assert len(header.successors) == 2
    # Some body block loops back to the header.
    assert any((bid, header.block_id) in _edges(cfg)
               for bid in header.successors)


def test_cfg_break_jumps_to_loop_exit():
    cfg = _cfg("""
        def f(items):
            for item in items:
                if item:
                    break
            return items
    """)
    edges = _edges(cfg)
    headers = [b.block_id for b in cfg.blocks.values()
               if any(isinstance(s, HeaderStmt) and s.kind == "for"
                      for s in b.statements)]
    (header,) = headers
    # The break block reaches a block the header also reaches (the
    # loop exit), without going back through the header.
    break_blocks = [b.block_id for b in cfg.blocks.values()
                    if any(isinstance(s, ast.Break)
                           for s in b.statements)]
    assert break_blocks
    (break_block,) = break_blocks
    assert set(cfg.blocks[break_block].successors) & \
        set(cfg.blocks[header].successors)
    assert (break_block, header) not in edges


def test_cfg_try_except_handler_reachable_from_body():
    cfg = _cfg("""
        def f(x):
            try:
                y = risky(x)
            except ValueError:
                y = 0
            return y
    """)
    # The block holding the risky call must have >1 successor: the
    # normal path and the handler.
    call_blocks = [b for b in cfg.blocks.values()
                   if any(isinstance(s, ast.Assign)
                          and isinstance(s.value, ast.Call)
                          for s in b.statements)]
    assert call_blocks
    assert all(len(b.successors) >= 2 for b in call_blocks)
    # Both paths rejoin before the return.
    returns = [b for b in cfg.blocks.values()
               if any(isinstance(s, ast.Return) for s in b.statements)]
    assert len(returns) == 1
    preds = cfg.predecessors[returns[0].block_id]
    assert len(preds) >= 1


def test_cfg_with_header_is_materialised():
    cfg = _cfg("""
        def f(path):
            with open(path) as handle:
                data = handle.read()
            return data
    """)
    kinds = [s.kind for b in cfg.blocks.values()
             for s in b.statements if isinstance(s, HeaderStmt)]
    assert kinds == ["with"]


def test_cfg_code_after_return_is_unreachable():
    cfg = _cfg("""
        def f(x):
            return x
            y = 1
    """)
    reachable = set(cfg.reachable_blocks())
    parked = [b.block_id for b in cfg.blocks.values()
              if any(isinstance(s, ast.Assign) for s in b.statements)]
    assert parked
    assert not set(parked) & reachable


# -- taint propagation ------------------------------------------------


def _lint_source(tmp_path, source, select=("HL004",), name="mod.py"):
    target = tmp_path / name
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return run_lint([str(target)], LintConfig(select=tuple(select)))


def test_taint_joins_at_merge_points(tmp_path):
    """A value that is secret on only one branch is secret after the
    join — the lattice join is a union, not an intersection."""
    result = _lint_source(tmp_path, """
        import logging

        logger = logging.getLogger(__name__)

        def leak(session_key, flag):
            if flag:
                x = session_key
            else:
                x = b"public-banner"
            logger.info("state %s", x)
    """)
    assert [f.rule_id for f in result.active] == ["HL004"]


def test_sanitizer_kills_taint(tmp_path):
    """len()/bool() return no key material: their results are clean
    even when the argument was secret."""
    result = _lint_source(tmp_path, """
        import logging

        logger = logging.getLogger(__name__)

        def fine(session_key):
            n = len(session_key)
            logger.info("key length %d", n)
            return n
    """)
    assert result.findings == []


def test_taint_flows_through_renames_and_containers(tmp_path):
    result = _lint_source(tmp_path, """
        def leak(session_key):
            alias = session_key
            wrapped = [alias]
            return f"state={wrapped}"
    """)
    assert [f.rule_id for f in result.active] == ["HL004"]


def test_loop_taint_reaches_fixpoint(tmp_path):
    """Taint introduced on iteration N must be visible on iteration
    N+1 — requires iterating the loop body to a fixpoint."""
    result = _lint_source(tmp_path, """
        import logging

        logger = logging.getLogger(__name__)

        def leak(session_key, rounds):
            x = b"clean"
            for _ in range(rounds):
                logger.info("round %s", x)
                x = session_key
    """)
    assert [f.rule_id for f in result.active] == ["HL004"]


# -- interprocedural analysis ----------------------------------------


INTERPROC = str(FIXTURES / "secret_flow_interproc.py")


def _legacy_findings(path):
    source = Path(path).read_text(encoding="utf-8")
    tree = ast.parse(source)
    ctx = FileContext(path=Path(path), display_path=str(path),
                      source=source, tree=tree,
                      imports=ImportMap(tree),
                      suppressions=SuppressionIndex(source))
    return list(SecretLeakRule().check_file(ctx))


def test_flow_hl004_catches_what_the_name_matcher_missed():
    """The acceptance-criteria regression: a secret crossing two
    function boundaries into a log sink is invisible to the legacy
    name-at-the-sink matcher and flagged by the flow rule."""
    assert _legacy_findings(INTERPROC) == []

    result = run_lint([INTERPROC], LintConfig(select=("HL004",)))
    assert len(result.active) == 1
    (finding,) = result.active
    assert "session_key" in finding.message
    assert "crosses 2 function boundaries" in finding.message
    assert "relay" in finding.message and "emit" in finding.message


def test_flow_hl004_still_matches_legacy_fixture_expectations():
    """On the single-function fixture corpus the flow rule reports a
    superset of the legacy matcher's findings."""
    violation = str(FIXTURES / "secret_log_violation.py")
    legacy = {(f.line, f.rule_id) for f in _legacy_findings(violation)}
    flow = {(f.line, f.rule_id)
            for f in run_lint([violation],
                              LintConfig(select=("HL004",))).active}
    assert legacy <= flow


def test_param_sink_fires_once_per_call_site(tmp_path):
    result = _lint_source(tmp_path, """
        def log_it(value):
            return f"v={value}"

        def one(session_key):
            return log_it(session_key)

        def two(other_secret):
            return log_it(other_secret)

        def harmless(banner):
            return log_it(banner)
    """)
    assert len(result.active) == 2
    assert {f.rule_id for f in result.active} == {"HL004"}


# -- summary cache ----------------------------------------------------


def _write(tmp_path, name, source):
    (tmp_path / name).write_text(textwrap.dedent(source),
                                 encoding="utf-8")


def _lint_dir(tmp_path, cache):
    return run_lint([str(tmp_path)], LintConfig(
        select=("HL004",), cache_path=str(cache)))


def test_cache_hits_on_unchanged_tree(tmp_path):
    _write(tmp_path, "util.py", """
        def describe(value):
            return f"v={value}"
    """)
    _write(tmp_path, "caller.py", """
        from util import describe

        def leak(session_key):
            return describe(session_key)
    """)
    cache = tmp_path / "cache.json"
    cold = _lint_dir(tmp_path, cache)
    assert cold.flow_cache_misses == 2 and cold.flow_cache_hits == 0
    assert len(cold.active) == 1

    warm = _lint_dir(tmp_path, cache)
    assert warm.flow_cache_hits == 2 and warm.flow_cache_misses == 0
    # Cached events reproduce the identical findings.
    assert [(f.path, f.line, f.message) for f in warm.active] == \
        [(f.path, f.line, f.message) for f in cold.active]


def test_editing_a_callee_invalidates_its_callers(tmp_path):
    """caller.py is byte-identical across runs, but the edit to
    util.py must re-analyse it (summaries flow callee -> caller) and
    clear the finding."""
    _write(tmp_path, "util.py", """
        def describe(value):
            return f"v={value}"
    """)
    _write(tmp_path, "caller.py", """
        from util import describe

        def leak(session_key):
            return describe(session_key)
    """)
    cache = tmp_path / "cache.json"
    assert len(_lint_dir(tmp_path, cache).active) == 1

    _write(tmp_path, "util.py", """
        def describe(value):
            return "opaque"
    """)
    after = _lint_dir(tmp_path, cache)
    assert after.active == []
    # Both files re-analysed: the callee changed on disk, the caller
    # transitively.
    assert after.flow_cache_misses == 2


def test_editing_an_unrelated_file_keeps_neighbours_cached(tmp_path):
    _write(tmp_path, "util.py", """
        def describe(value):
            return f"v={value}"
    """)
    _write(tmp_path, "island.py", """
        def standalone():
            return 7
    """)
    cache = tmp_path / "cache.json"
    _lint_dir(tmp_path, cache)
    _write(tmp_path, "island.py", """
        def standalone():
            return 8
    """)
    warm = _lint_dir(tmp_path, cache)
    assert warm.flow_cache_hits == 1   # util.py untouched
    assert warm.flow_cache_misses == 1


def test_suppressions_apply_to_cached_findings(tmp_path):
    """Suppression comments are re-applied on every run, so a cached
    event never resurrects a waived finding."""
    _write(tmp_path, "mod.py", """
        def leak(session_key):
            return f"k={session_key}"  # herdlint: disable=HL004
    """)
    cache = tmp_path / "cache.json"
    for _ in range(2):
        result = _lint_dir(tmp_path, cache)
        assert result.active == []
        assert len(result.suppressed) == 1


# -- baseline ---------------------------------------------------------


def test_baseline_waives_exact_findings_and_no_more(tmp_path):
    from repro.lint.baseline import save_baseline

    _write(tmp_path, "mod.py", """
        def leak(session_key):
            return f"k={session_key}"
    """)
    baseline = tmp_path / "baseline.json"
    config = LintConfig(select=("HL004",))
    first = run_lint([str(tmp_path / "mod.py")], config)
    assert len(first.active) == 1
    save_baseline(str(baseline), first.findings)

    waived = run_lint(
        [str(tmp_path / "mod.py")],
        LintConfig(select=("HL004",), baseline_path=str(baseline)))
    assert waived.active == []
    assert len(waived.baselined) == 1

    # A second, new instance of the same leak is NOT covered.
    _write(tmp_path, "mod.py", """
        def leak(session_key):
            return f"k={session_key}"

        def leak_again(session_key):
            return f"k={session_key}"
    """)
    second = run_lint(
        [str(tmp_path / "mod.py")],
        LintConfig(select=("HL004",), baseline_path=str(baseline)))
    assert len(second.baselined) == 1
    assert len(second.active) == 1


# -- HL006 partial-tree note ------------------------------------------


def test_hl006_partial_scan_is_a_note_not_an_error():
    """Linting wire.py alone from a package with unscanned siblings
    explains itself instead of failing the gate."""
    result = run_lint(["src/repro/core/wire.py"],
                      LintConfig(select=("HL006",)))
    assert result.active == []
    assert len(result.notes) == 1
    assert "partial scan" in result.notes[0].message


def test_hl006_complete_scan_still_errors():
    """The nodispatch fixture directory IS the whole tree, so the
    missing dispatch table stays an error."""
    result = run_lint([str(FIXTURES / "wire_nodispatch")],
                      LintConfig(select=("HL006",)))
    assert len(result.active) == 1
    assert "no *_DISPATCH table" in result.active[0].message


# -- --changed incremental mode ---------------------------------------


def test_changed_mode_lints_only_git_modified_files(tmp_path,
                                                    monkeypatch,
                                                    capsys):
    import subprocess

    from repro.lint.cli import main as lint_main

    def git(*argv):
        subprocess.run(
            ["git", "-c", "user.email=dev@example.net",
             "-c", "user.name=dev", *argv],
            cwd=tmp_path, check=True, capture_output=True)

    git("init", "-q")
    _write(tmp_path, "committed_leak.py", """
        def leak(session_key):
            return f"k={session_key}"
    """)
    git("add", ".")
    git("commit", "-q", "-m", "seed")
    monkeypatch.chdir(tmp_path)

    # Nothing changed vs. HEAD: the committed violation is not
    # rescanned and the run exits clean.
    assert lint_main([".", "--changed", "--select", "HL004"]) == 0
    assert "no python files changed" in capsys.readouterr().out

    # A new (untracked) violation IS picked up.
    _write(tmp_path, "fresh_leak.py", """
        def leak(other_key):
            return f"k={other_key}"
    """)
    assert lint_main([".", "--changed", "--select", "HL004"]) == 1
    out = capsys.readouterr().out
    assert "fresh_leak.py" in out
    assert "committed_leak.py" not in out

"""Tests for the wire encodings and the statistical disclosure attack."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.attacks.disclosure import (
    herd_sda_rounds,
    sda_rounds_from_trace,
    statistical_disclosure,
)
from repro.core.circuit import CreateReply, CreateRequest
from repro.core.wire import (
    CallSetup,
    JoinRequest,
    JoinResponse,
    RendezvousRegister,
    WireError,
    decode_call_setup,
    decode_create,
    decode_created,
    decode_join_request,
    decode_join_response,
    decode_rendezvous_register,
    encode_call_setup,
    encode_create,
    encode_created,
    encode_join_request,
    encode_join_response,
    encode_rendezvous_register,
)
from repro.workload.cdr import CallRecord, CallTrace


class TestCreateEncoding:
    def test_roundtrip(self):
        req = CreateRequest(42, b"\x11" * 32)
        assert decode_create(encode_create(req)) == req

    def test_created_roundtrip(self):
        reply = CreateReply(42, b"\x22" * 32, b"\x33" * 16)
        assert decode_created(encode_created(reply)) == reply

    def test_wrong_type_rejected(self):
        req = CreateRequest(1, b"\x00" * 32)
        with pytest.raises(WireError):
            decode_created(encode_create(req))

    def test_truncation_rejected(self):
        data = encode_create(CreateRequest(1, b"\x00" * 32))
        with pytest.raises(WireError):
            decode_create(data[:-1])

    def test_trailing_bytes_rejected(self):
        data = encode_create(CreateRequest(1, b"\x00" * 32))
        with pytest.raises(WireError):
            decode_create(data + b"\x00")

    def test_bad_key_length_rejected(self):
        req = CreateRequest(1, b"\x00" * 16)
        with pytest.raises(WireError):
            decode_create(encode_create(req))


class TestJoinEncoding:
    def test_request_roundtrip(self):
        req = JoinRequest("client-αβ", b"\x44" * 32)
        assert decode_join_request(encode_join_request(req)) == req

    def test_response_roundtrip_direct(self):
        resp = JoinResponse(7, b"\x55" * 32)
        assert decode_join_response(encode_join_response(resp)) == resp

    def test_response_roundtrip_with_attachments(self):
        resp = JoinResponse(7, b"\x55" * 32,
                            (("sp-0", 3, 1), ("sp-1", 9, 0)))
        assert decode_join_response(encode_join_response(resp)) == resp

    def test_bad_mix_key_rejected(self):
        resp = JoinResponse(7, b"\x55" * 8)
        with pytest.raises(WireError):
            decode_join_response(encode_join_response(resp))


class TestRendezvousAndCallSetup:
    def test_register_roundtrip(self):
        msg = RendezvousRegister(b"\x66" * 32, "zone-EU/mix-1")
        assert decode_rendezvous_register(
            encode_rendezvous_register(msg)) == msg

    def test_invite_roundtrip(self):
        msg = CallSetup(False, 99, b"\x77" * 32)
        assert decode_call_setup(encode_call_setup(msg)) == msg

    def test_accept_roundtrip(self):
        msg = CallSetup(True, 99, b"\x77" * 32)
        out = decode_call_setup(encode_call_setup(msg))
        assert out.is_accept

    def test_garbage_rejected(self):
        with pytest.raises(WireError):
            decode_call_setup(b"\xff\x00\x00")


@settings(max_examples=30, deadline=None)
@given(circuit_id=st.integers(0, 2 ** 64 - 1),
       key=st.binary(min_size=32, max_size=32))
def test_create_roundtrip_property(circuit_id, key):
    req = CreateRequest(circuit_id, key)
    assert decode_create(encode_create(req)) == req


@settings(max_examples=30, deadline=None)
@given(data=st.binary(max_size=64))
def test_decoders_never_crash_on_garbage(data):
    for decoder in (decode_create, decode_created, decode_join_request,
                    decode_join_response, decode_rendezvous_register,
                    decode_call_setup):
        try:
            decoder(data)
        except (WireError, UnicodeDecodeError):
            pass  # rejection is the expected outcome


class TestStatisticalDisclosure:
    def _trace_with_regular_pair(self, n_noise_users=40, n_calls=30):
        """User 1 calls user 0 repeatedly; noise users call randomly."""
        rng = random.Random(3)
        records = []
        for i in range(n_calls):
            t = i * 500.0
            records.append(CallRecord(1, 0, t, 60.0))
            # One noise call co-starting in the same bin each round.
            a = rng.randrange(2, n_noise_users)
            b = rng.randrange(2, n_noise_users)
            if a != b:
                records.append(CallRecord(a, b, t + 0.2, 80.0))
            # Background calls elsewhere.
            c = rng.randrange(2, n_noise_users)
            d = rng.randrange(2, n_noise_users)
            if c != d:
                records.append(CallRecord(c, d, t + 250.0, 60.0))
        return CallTrace(records)

    def test_sda_identifies_partner_without_chaffing(self):
        trace = self._trace_with_regular_pair()
        target_rounds, background_rounds = sda_rounds_from_trace(
            trace, target=0)
        result = statistical_disclosure(target_rounds,
                                        background_rounds)
        assert result.top(1) == [1]
        assert result.separation() > 0.3

    def test_sda_defeated_by_herd(self):
        online = set(range(40))
        target_rounds, background_rounds = herd_sda_rounds(
            online, target=0, n_target=30, n_background=30)
        result = statistical_disclosure(target_rounds,
                                        background_rounds)
        assert result.separation() == pytest.approx(0.0)
        scores = set(round(s, 12) for s in result.scores.values())
        assert len(scores) == 1  # perfectly uniform suspicion

    def test_requires_target_rounds(self):
        with pytest.raises(ValueError):
            statistical_disclosure([], [])

    def test_ranked_order(self):
        result = statistical_disclosure(
            [{1, 2}, {1, 3}, {1, 2}], [{2, 3}])
        ranked = result.ranked()
        assert ranked[0][0] == 1
        assert ranked[0][1] >= ranked[1][1]

    def test_separation_single_user(self):
        result = statistical_disclosure([{5}], [])
        assert result.separation() == 0.0

"""Tests for the XOR-parity FEC (§3.6.4)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.voip.fec import (
    FecDecoder,
    FecEncoder,
    FecPacket,
    effective_loss,
    k_for_target_loss,
)


def _encode_stream(k, n_packets, size=32):
    enc = FecEncoder(k)
    out = []
    for i in range(n_packets):
        out.extend(enc.encode(bytes([i % 256]) * size))
    return out


class TestEncoder:
    def test_parity_after_k_packets(self):
        enc = FecEncoder(3)
        packets = []
        for i in range(3):
            packets.extend(enc.encode(bytes([i]) * 4))
        kinds = [p.is_parity for p in packets]
        assert kinds == [False, False, False, True]
        assert packets[-1].payload == bytes([0 ^ 1 ^ 2]) * 4

    def test_groups_advance(self):
        packets = _encode_stream(2, 4)
        groups = [p.group for p in packets]
        assert groups == [0, 0, 0, 1, 1, 1]

    def test_overhead(self):
        assert FecEncoder(4).overhead == 0.25

    def test_size_mismatch_rejected(self):
        enc = FecEncoder(2)
        enc.encode(b"\x00" * 4)
        with pytest.raises(ValueError):
            enc.encode(b"\x00" * 8)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            FecEncoder(0)
        with pytest.raises(ValueError):
            FecDecoder(0)


class TestDecoder:
    def test_no_loss_passthrough(self):
        dec = FecDecoder(3)
        got = []
        for pkt in _encode_stream(3, 6):
            got.extend(dec.receive(pkt))
        assert len(got) == 6
        assert dec.recovered == 0

    def test_single_loss_recovered(self):
        dec = FecDecoder(3)
        packets = _encode_stream(3, 3)
        lost = packets[1]
        got = []
        for pkt in packets:
            if pkt is lost:
                continue
            got.extend(dec.receive(pkt))
        assert dec.recovered == 1
        recovered = [g for g in got if g[1] == lost.index]
        assert recovered == [(0, 1, lost.payload)]

    def test_parity_loss_harmless(self):
        dec = FecDecoder(3)
        packets = _encode_stream(3, 3)
        got = []
        for pkt in packets:
            if pkt.is_parity:
                continue
            got.extend(dec.receive(pkt))
        assert len(got) == 3
        assert dec.recovered == 0

    def test_double_loss_unrecoverable(self):
        dec = FecDecoder(3)
        packets = _encode_stream(3, 3)
        for pkt in packets:
            if not pkt.is_parity and pkt.index in (0, 1):
                continue
            dec.receive(pkt)
        assert dec.flush_group(0) == 2
        assert dec.unrecoverable == 2

    def test_duplicate_ignored(self):
        dec = FecDecoder(2)
        pkt = FecPacket(0, 0, False, b"\x01" * 4)
        assert dec.receive(pkt)
        assert dec.receive(pkt) == []

    def test_late_packet_after_recovery_ignored(self):
        dec = FecDecoder(2)
        packets = _encode_stream(2, 2)
        dec.receive(packets[0])
        dec.receive(packets[2])  # parity recovers packet 1
        assert dec.recovered == 1
        assert dec.receive(packets[1]) == []

    def test_flush_completed_group_reports_zero(self):
        dec = FecDecoder(2)
        for pkt in _encode_stream(2, 2):
            dec.receive(pkt)
        assert dec.flush_group(0) == 0
        assert dec.unrecoverable == 0


class TestEffectiveLoss:
    def test_zero_loss(self):
        assert effective_loss(0.0, 4) == 0.0

    def test_reduces_loss(self):
        assert effective_loss(0.05, 4) < 0.05

    def test_closed_form(self):
        p, k = 0.1, 3
        assert effective_loss(p, k) == pytest.approx(
            p * (1 - (1 - p) ** k))

    def test_monotone_in_k(self):
        values = [effective_loss(0.05, k) for k in (1, 2, 4, 8, 16)]
        assert values == sorted(values)

    def test_validation(self):
        with pytest.raises(ValueError):
            effective_loss(1.5, 2)
        with pytest.raises(ValueError):
            effective_loss(0.1, 0)

    def test_k_for_target(self):
        # §3.6.4: reduce a lossy SP's effective loss to an acceptable
        # level — e.g. 5% raw down to under 1%.
        k = k_for_target_loss(0.05, 0.01)
        assert k is not None
        assert effective_loss(0.05, k) <= 0.01
        assert effective_loss(0.05, k + 1) > 0.01

    def test_k_for_target_unreachable(self):
        assert k_for_target_loss(0.9, 1e-6) is None

    def test_k_for_target_trivial(self):
        assert k_for_target_loss(0.001, 0.01) == 64

    def test_k_for_target_validation(self):
        with pytest.raises(ValueError):
            k_for_target_loss(0.05, 0.0)


@settings(max_examples=30, deadline=None)
@given(k=st.integers(1, 6), n_groups=st.integers(1, 5),
       seed=st.integers(0, 999))
def test_single_loss_per_group_always_recovered(k, n_groups, seed):
    """Property: dropping any one packet per group loses nothing."""
    rng = random.Random(seed)
    packets = _encode_stream(k, k * n_groups)
    drop = set()
    per_group = {}
    for i, pkt in enumerate(packets):
        per_group.setdefault(pkt.group, []).append(i)
    for indices in per_group.values():
        drop.add(rng.choice(indices))
    dec = FecDecoder(k)
    delivered = []
    for i, pkt in enumerate(packets):
        if i in drop:
            continue
        delivered.extend(dec.receive(pkt))
    data_packets = [(p.group, p.index) for p in packets
                    if not p.is_parity]
    assert sorted((g, i) for g, i, _ in delivered) == sorted(data_packets)
    assert dec.unrecoverable == 0

"""End-to-end tests: circuits, mixes, rendezvous, and live calls."""

import random

import pytest

from repro.core.circuit import (
    ClientHopHandshake,
    mix_process_create,
    new_circuit_id,
)
from repro.core.invariants import (
    ciphertext_uncorrelated,
    circuit_zone_profile,
    mix_knowledge,
)
from repro.core.rendezvous import CallError
from repro.crypto.onion import wrap_onion

from conftest import build_testbed


class TestHopHandshake:
    def test_client_and_mix_derive_same_keys(self):
        rng = random.Random(1)
        handshake = ClientHopHandshake(new_circuit_id(), rng)
        reply, mix_keys = mix_process_create(handshake.request(), rng)
        client_keys = handshake.finish(reply)
        assert client_keys == mix_keys

    def test_confirmation_detects_tampering(self):
        from dataclasses import replace
        rng = random.Random(2)
        handshake = ClientHopHandshake(new_circuit_id(), rng)
        reply, _ = mix_process_create(handshake.request(), rng)
        bad = replace(reply, confirmation=b"\x00" * 16)
        with pytest.raises(ValueError):
            handshake.finish(bad)

    def test_circuit_id_mismatch_rejected(self):
        from dataclasses import replace
        rng = random.Random(3)
        handshake = ClientHopHandshake(new_circuit_id(), rng)
        reply, _ = mix_process_create(handshake.request(), rng)
        bad = replace(reply, circuit_id=reply.circuit_id + 1)
        with pytest.raises(ValueError):
            handshake.finish(bad)


class TestCircuitBuilder:
    def test_two_hop_circuit_installs_state(self, testbed):
        client = testbed.add_client("alice", "zone-EU")
        circuit = testbed.service.build_standing_circuit(client)
        assert 1 <= len(circuit) <= 2
        entry = testbed.mixes[circuit.entry_mix]
        state = entry.circuit_state(circuit.circuit_id)
        assert state.prev_hop == "alice"

    def test_roles_along_path(self, testbed):
        client = testbed.add_client("alice", "zone-EU")
        builder = testbed.service.circuit_builder()
        path = ["zone-EU/mix-0", "zone-EU/mix-1"]
        circuit = client.build_circuit(builder, path)
        assert testbed.mixes[path[0]].circuit_state(
            circuit.circuit_id).role == "entry"
        assert testbed.mixes[path[1]].circuit_state(
            circuit.circuit_id).role == "rendezvous"

    def test_single_mix_path_is_rendezvous(self, testbed):
        client = testbed.add_client("alice", "zone-EU")
        builder = testbed.service.circuit_builder()
        circuit = client.build_circuit(builder, ["zone-EU/mix-0"])
        state = testbed.mixes["zone-EU/mix-0"].circuit_state(
            circuit.circuit_id)
        assert state.role == "rendezvous"

    def test_empty_path_rejected(self, testbed):
        builder = testbed.service.circuit_builder()
        with pytest.raises(ValueError):
            builder.build([], "alice")

    def test_forward_relay_peels_layers(self, testbed):
        client = testbed.add_client("alice", "zone-EU")
        builder = testbed.service.circuit_builder()
        path = ["zone-EU/mix-0", "zone-EU/mix-1"]
        circuit = client.build_circuit(builder, path)
        cell = wrap_onion(circuit.keys, b"hello", 0)
        action = testbed.mixes[path[0]].forward_cell(
            circuit.circuit_id, cell, 0)
        assert action.kind == "forward"
        assert action.peer == path[1]
        # Without a splice, the last mix delivers the decoded payload.
        action = testbed.mixes[path[1]].forward_cell(
            circuit.circuit_id, action.data, 0)
        assert action.kind == "deliver"
        assert action.data == b"hello"


class TestRendezvousAndCalls:
    def test_interzone_call_delivers_voice_both_ways(self, call_pair):
        testbed, caller, callee = call_pair
        session = testbed.service.establish_call(
            caller, callee.certificate, callee)
        assert session.established
        frame = b"\x11" * 160
        assert session.send_voice("caller_to_callee", frame) == frame
        reply = b"\x22" * 160
        assert session.send_voice("callee_to_caller", reply) == reply

    def test_call_has_at_most_five_hops(self, call_pair):
        testbed, caller, callee = call_pair
        session = testbed.service.establish_call(
            caller, callee.certificate, callee)
        assert session.link_hops() <= 5

    def test_many_frames_sequence_correctly(self, call_pair):
        testbed, caller, callee = call_pair
        session = testbed.service.establish_call(
            caller, callee.certificate, callee)
        for i in range(50):
            frame = bytes([i % 256]) * 160
            assert session.send_voice("caller_to_callee", frame) == frame

    def test_call_without_registration_fails(self, testbed):
        caller = testbed.add_client("alice", "zone-EU")
        callee = testbed.add_client("bob", "zone-NA")
        testbed.ready_for_calls("alice")
        testbed.service.build_standing_circuit(callee)  # not registered
        with pytest.raises(CallError):
            testbed.service.establish_call(caller, callee.certificate,
                                           callee)

    def test_call_to_unknown_zone_fails(self, call_pair):
        from dataclasses import replace
        testbed, caller, callee = call_pair
        forged = replace(callee.certificate, zone_id="zone-XX")
        with pytest.raises(CallError):
            testbed.service.establish_call(caller, forged, callee)

    def test_call_without_circuits_fails(self, testbed):
        caller = testbed.add_client("alice", "zone-EU")
        callee = testbed.add_client("bob", "zone-NA")
        with pytest.raises(CallError):
            testbed.service.establish_call(caller, callee.certificate,
                                           callee)

    def test_intrazone_call_works(self, testbed):
        caller = testbed.add_client("alice", "zone-EU")
        callee = testbed.add_client("bob", "zone-EU")
        testbed.ready_for_calls("alice")
        testbed.ready_for_calls("bob")
        session = testbed.service.establish_call(
            caller, callee.certificate, callee)
        frame = b"\x42" * 100
        assert session.send_voice("caller_to_callee", frame) == frame

    def test_third_zone_circuit_for_shared_zone(self, testbed):
        # §3.3: caller and callee in the same zone may use a different
        # zone's mixes to avoid depending on a single jurisdiction.
        testbed.add_zone("zone-SA", "dc-sa", 2)
        caller = testbed.add_client("alice", "zone-EU")
        callee = testbed.add_client("bob", "zone-EU")
        testbed.service.build_standing_circuit(caller, zone_id="zone-SA")
        testbed.service.build_standing_circuit(callee)
        testbed.service.register_callee(callee)
        session = testbed.service.establish_call(
            caller, callee.certificate, callee)
        zones = circuit_zone_profile(
            caller.circuit,
            {m: mid.zone.zone_id for m, mid in testbed.mixes.items()})
        assert set(zones) == {"zone-SA"}
        frame = b"\x01" * 60
        assert session.send_voice("caller_to_callee", frame) == frame


class TestSecurityInvariants:
    def test_i1_successive_link_ciphertexts_uncorrelated(self, call_pair):
        testbed, caller, callee = call_pair
        session = testbed.service.establish_call(
            caller, callee.certificate, callee)
        # Capture the cell at each link by replaying the relay manually.
        from repro.crypto.onion import wrap_onion
        seq = session.caller.send_seq
        cell0 = wrap_onion(caller.circuit.keys, b"\x33" * 160, seq)
        representations = [cell0]
        cell = cell0
        circuit_id = caller.circuit.circuit_id
        for mix_id in caller.circuit.path[:-1]:
            action = testbed.mixes[mix_id].forward_cell(circuit_id, cell,
                                                        seq)
            representations.append(action.data)
            cell = action.data
        assert ciphertext_uncorrelated(representations)

    def test_i2_interior_mix_knows_only_neighbours(self, call_pair):
        testbed, caller, callee = call_pair
        testbed.service.establish_call(caller, callee.certificate, callee)
        circuit = caller.circuit
        entry = testbed.mixes[circuit.entry_mix]
        knowledge = mix_knowledge(entry, circuit.circuit_id)
        # I3: the caller's mix knows the caller and the next mix...
        assert knowledge["prev_hop"] == "alice"
        if len(circuit) > 1:
            assert knowledge["next_hop"] == circuit.path[1]
        # ...and nothing in the state names the callee or its zone.
        state = entry.circuit_state(circuit.circuit_id)
        for value in (state.prev_hop, state.next_hop or ""):
            assert "bob" not in value
            assert "zone-NA" not in (value or "") or \
                len(caller.circuit) == 1

    def test_i3_rendezvous_mixes_never_learn_clients(self, call_pair):
        testbed, caller, callee = call_pair
        testbed.service.establish_call(caller, callee.certificate, callee)
        rdv_c = testbed.mixes[caller.circuit.rendezvous_mix]
        state = rdv_c.circuit_state(caller.circuit.circuit_id)
        # The caller's rendezvous mix sees the entry mix behind it and
        # the peer rendezvous mix ahead — never "bob".
        assert "bob" not in (state.prev_hop or "")
        assert "bob" not in (state.next_hop or "")

    def test_i4_circuit_mixes_in_own_zone(self, call_pair):
        testbed, caller, callee = call_pair
        mix_zone = {m: mix.zone.zone_id
                    for m, mix in testbed.mixes.items()}
        assert set(circuit_zone_profile(caller.circuit, mix_zone)) \
            == {"zone-EU"}
        assert set(circuit_zone_profile(callee.circuit, mix_zone)) \
            == {"zone-NA"}

    def test_i5_rendezvous_mix_uniform(self):
        from repro.core.invariants import is_uniform_choice
        bed = build_testbed(zone_specs=[("zone-EU", "dc-eu", 4)])
        client = bed.add_client("alice", "zone-EU")
        counts = {}
        for _ in range(200):
            circuit = bed.service.build_standing_circuit(client)
            counts[circuit.rendezvous_mix] = \
                counts.get(circuit.rendezvous_mix, 0) + 1
        assert is_uniform_choice(counts, n_options=4, tolerance=0.4)

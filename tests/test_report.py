"""Tests for the programmatic evaluation report."""

import pytest

from repro.analysis.report import (
    EvaluationReport,
    run_evaluation,
)


@pytest.fixture(scope="module")
def report():
    return run_evaluation(n_users=2000, seed=6)


class TestRunEvaluation:
    def test_all_shape_criteria_hold(self, report):
        assert report.all_shapes_hold, report.failures()

    def test_covers_expected_experiments(self, report):
        experiments = {row.experiment for row in report.rows}
        assert experiments == {"E1", "E3", "E5", "E6", "E7", "E9"}

    def test_e9_reads_constant_rate_census_from_registry(self, report):
        e9 = next(r for r in report.rows if r.experiment == "E9")
        assert e9.shape_ok
        assert e9.paper == "4 (constant-rate)"
        assert "payload" in e9.measured and "chaff" in e9.measured

    def test_rows_have_both_values(self, report):
        for row in report.rows:
            assert row.paper
            assert row.measured

    def test_markdown_rendering(self, report):
        md = report.to_markdown()
        assert md.startswith("| experiment |")
        assert "✓" in md
        assert len(md.splitlines()) == len(report.rows) + 2

    def test_custom_trace_accepted(self):
        from repro.workload.cdr import CallRecord, CallTrace
        trace = CallTrace([CallRecord(0, 1, float(i * 100), 30.0)
                           for i in range(50)])
        result = run_evaluation(trace=trace, n_users=100)
        e1 = next(r for r in result.rows if r.experiment == "E1")
        assert e1.shape_ok  # distinct times → fully traced


class TestReportContainer:
    def test_failures_listed(self):
        report = EvaluationReport()
        report.add("X", "m", "1", "2", False)
        report.add("Y", "m", "1", "1", True)
        assert not report.all_shapes_hold
        assert [r.experiment for r in report.failures()] == ["X"]

    def test_empty_report_holds(self):
        assert EvaluationReport().all_shapes_hold

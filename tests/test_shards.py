"""The shard/merge protocol of the vectorized wire plane.

DESIGN.md §13: under ``batch-v2`` with ``shards > 1`` the per-(link,
round) aggregate wire images become :class:`ShardSegment` records,
routed to worker processes by a :class:`ShardPlan` that is stable
across interpreters, and merged back in deterministic ``(round_index,
slot)`` order — so *any* completion order of the shard workers yields
the same tap state, the same stats, and the same determinism key.

Pinned here:

* plan stability and the shard-crossing pickle contract (what HL104
  enforces statically, checked dynamically);
* a hypothesis property: every partition of the segments into shards
  and every interleaving of the shard results merges to identical
  tap observations and link totals;
* a real-process :class:`ShardRunner` smoke test;
* shards=1 vs shards=4 determinism-key equivalence over the full
  scenario corpus (the §10 CI contract, sharded).
"""

import pickle
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sharding import is_shard_crossing
from repro.netsim.observer import LinkObserver, Observation
from repro.netsim.shards import (
    SegmentResult,
    ShardChunk,
    ShardPlan,
    ShardResult,
    ShardRunner,
    ShardSegment,
    merge_results,
    process_chunk,
)
from repro.netsim.taps import TallyTap

CORPUS = sorted(Path("scenarios").glob("*.toml"))


def _segment(round_index, slot, src="a", dst="b", sizes=(188,),
             counts=(3,)):
    return ShardSegment(round_index=round_index, slot=slot,
                        time=round_index * 0.02, src=src, dst=dst,
                        sizes=tuple(sizes), counts=tuple(counts))


class TestShardPlan:
    def test_single_shard_is_identity(self):
        plan = ShardPlan(1)
        assert plan.shard_of("a", "b") == 0
        assert plan.shard_of("x", "y") == 0

    def test_stable_across_instances(self):
        # crc32-based: no per-process hash salt, so a worker pool and
        # the parent agree on routing (unlike builtin hash()).
        a, b = ShardPlan(4), ShardPlan(4)
        for src, dst in [("sp-0", "mix"), ("mix", "sp-7"),
                         ("zone-EU/sp-1", "mix-0")]:
            assert a.shard_of(src, dst) == b.shard_of(src, dst)
            assert 0 <= a.shard_of(src, dst) < 4

    def test_directional(self):
        plan = ShardPlan(16)
        pairs = [(f"sp-{i}", "mix") for i in range(64)]
        used = {plan.shard_of(s, d) for s, d in pairs}
        assert len(used) > 4  # spreads, not collapses


class TestShardCrossingPickle:
    """Every @shard_crossing type must survive a round-trip through
    pickle with value equality — the dynamic half of HL104."""

    CASES = [
        _segment(0, 0),
        ShardChunk(shard_id=1, segments=(_segment(0, 0),
                                         _segment(1, 3))),
        SegmentResult(segment=_segment(2, 5), cells=3, bytes=564),
        ShardResult(shard_id=0,
                    segments=(SegmentResult(segment=_segment(0, 0),
                                            cells=3, bytes=564),),
                    link_stats=((("a", "b"), (3, 564)),),
                    cells=3, bytes=564),
        Observation(time=0.02, src="a", dst="b", size=188),
    ]

    @pytest.mark.parametrize("value", CASES,
                             ids=lambda v: type(v).__name__)
    def test_round_trip(self, value):
        assert is_shard_crossing(type(value))
        clone = pickle.loads(pickle.dumps(value))
        assert clone == value


class TestProcessChunk:
    def test_pure_sums(self):
        chunk = ShardChunk(shard_id=2, segments=(
            _segment(0, 0, sizes=(188, 100), counts=(2, 1)),
            _segment(1, 4, src="c", dst="d", sizes=(50,),
                     counts=(4,))))
        result = process_chunk(chunk)
        assert result.shard_id == 2
        assert result.cells == 2 + 1 + 4
        assert result.bytes == 188 * 2 + 100 + 50 * 4
        assert dict(result.link_stats) == {
            ("a", "b"): (3, 476), ("c", "d"): (4, 200)}


@st.composite
def _segment_sets(draw):
    n_links = draw(st.integers(1, 4))
    links = [(f"s{i}", f"d{i}") for i in range(n_links)]
    n_rounds = draw(st.integers(1, 4))
    segments = []
    slot = 0
    for r in range(n_rounds):
        for src, dst in draw(st.permutations(links)):
            runs = draw(st.integers(1, 3))
            sizes = tuple(draw(st.integers(1, 400))
                          for _ in range(runs))
            counts = tuple(draw(st.integers(1, 5))
                           for _ in range(runs))
            segments.append(ShardSegment(
                round_index=r, slot=slot, time=r * 0.02, src=src,
                dst=dst, sizes=sizes, counts=counts))
            slot += 1
    return segments


class TestMergeDeterminism:
    @settings(max_examples=40, deadline=None)
    @given(segments=_segment_sets(), n_shards=st.integers(1, 4),
           order=st.randoms(use_true_random=False))
    def test_any_interleaving_merges_identically(self, segments,
                                                 n_shards, order):
        """Partition the segments by an arbitrary plan, process each
        shard, shuffle the result order, and merge: observations and
        totals must equal the canonical single-shard merge."""
        plan = ShardPlan(n_shards)
        buckets = {}
        for seg in segments:
            buckets.setdefault(plan.shard_of(seg.src, seg.dst),
                               []).append(seg)
        results = [process_chunk(ShardChunk(shard_id=sid,
                                            segments=tuple(segs)))
                   for sid, segs in buckets.items()]
        order.shuffle(results)

        tap = LinkObserver()
        merged = merge_results(results, taps=(tap,))

        ref_tap = LinkObserver()
        reference = merge_results(
            [process_chunk(ShardChunk(shard_id=0,
                                      segments=tuple(segments)))],
            taps=(ref_tap,))

        assert tap.observations == ref_tap.observations
        assert merged["cells"] == reference["cells"] == \
            sum(sum(s.counts) for s in segments)
        assert merged["bytes"] == reference["bytes"]
        assert merged["link_stats"] == reference["link_stats"]

    def test_merge_replays_in_slot_order(self):
        late = _segment(1, 3, src="x", dst="y", sizes=(10,),
                        counts=(1,))
        early = _segment(0, 1, src="a", dst="b", sizes=(20,),
                         counts=(2,))
        tap = TallyTap()
        observer = LinkObserver()
        merge_results([
            process_chunk(ShardChunk(shard_id=0, segments=(late,))),
            process_chunk(ShardChunk(shard_id=1, segments=(early,))),
        ], taps=(observer, tap))
        assert [(o.time, o.size) for o in observer.observations] == \
            [(0.0, 20), (0.0, 20), (0.02, 10)]
        assert tap.cells == 3 and tap.bytes == 50


class TestShardRunnerProcesses:
    def test_real_worker_pool_smoke(self):
        chunks = [ShardChunk(shard_id=i, segments=(
            _segment(0, i, src=f"s{i}", dst="mix",
                     sizes=(188,), counts=(10,)),))
            for i in range(4)]
        with ShardRunner(4, processes=True) as runner:
            results = runner.run(chunks)
        assert sorted(r.shard_id for r in results) == [0, 1, 2, 3]
        merged = merge_results(results)
        assert merged["cells"] == 40
        assert merged["segments"] == 4

    def test_inline_matches_processes(self):
        chunks = [ShardChunk(shard_id=i, segments=tuple(
            _segment(r, i * 8 + r, src=f"s{i}", dst="mix",
                     sizes=(100 + r,), counts=(r + 1,))
            for r in range(3)))
            for i in range(3)]
        with ShardRunner(3, processes=False) as inline_runner:
            inline = inline_runner.run(chunks)
        with ShardRunner(3, processes=True) as pool_runner:
            pooled = pool_runner.run(chunks)
        key = lambda r: r.shard_id  # noqa: E731
        assert sorted(inline, key=key) == sorted(pooled, key=key)


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_sharded_determinism_key(path):
    """Satellite: shards=1 and shards=4 produce the same determinism
    key (and verdict) for every scenario in the committed corpus."""
    from repro.scenario import run_scenario
    from repro.scenario.loader import load_scenario

    scenario = load_scenario(path)
    one = run_scenario(scenario, execution="batch-v2", shards=1)
    four = run_scenario(scenario, execution="batch-v2", shards=4)
    assert one.determinism_key == four.determinism_key
    assert one.passed == four.passed
    assert one.shards == 1 and four.shards == 4

"""Round-synchronous batch execution on the network simulator.

Covers the :mod:`repro.netsim.rounds` carrier types, the
``RoundScheduler``, the batch transmission path, and the
determinism contract that motivated moving packet-id allocation off a
module global and onto the :class:`~repro.netsim.engine.EventLoop`.
"""

import warnings

import pytest

from repro.netsim.engine import EventLoop
from repro.netsim.link import Link
from repro.netsim.node import Node
from repro.netsim.observer import LinkObserver
from repro.netsim.packet import IP_UDP_HEADER_BYTES, Packet
from repro.netsim.rounds import CellBatch, RoundScheduler


def _pair(loop, **link_kwargs):
    a, b = Node("a", loop), Node("b", loop)
    link = Link(loop, a, b, **link_kwargs)
    return a, b, link


class TestCellBatch:
    def test_append_and_views(self):
        batch = CellBatch("a", "b", round_index=3)
        batch.append(b"xyz", kind="voice", circuit_id=9)
        batch.append(b"pq")
        assert len(batch) == 2
        assert batch.total_bytes() == 5 + 2 * IP_UDP_HEADER_BYTES
        views = list(batch.cells())
        assert [v.size for v in views] == [3 + IP_UDP_HEADER_BYTES,
                                           2 + IP_UDP_HEADER_BYTES]
        assert views[0].kind == "voice" and views[0].circuit_id == 9
        assert views[1].kind == "data" and views[1].circuit_id is None
        assert views[0].src == "a" and views[0].dst == "b"

    def test_append_repeated_shares_payload(self):
        batch = CellBatch("a", "b", 0)
        chaff = b"\x00" * 64
        batch.append_repeated(chaff, 5, kind="chaff")
        assert len(batch) == 5
        assert batch.total_bytes() == 5 * (64 + IP_UDP_HEADER_BYTES)
        assert all(p is chaff for p in batch.payloads)

    def test_packets_adapter_stamps_loop_ids(self):
        loop = EventLoop()
        batch = CellBatch("a", "b", 0)
        batch.append(b"one")
        batch.append(b"two")
        packets = list(batch.packets(loop))
        assert [p.payload for p in packets] == [b"one", b"two"]
        assert [p.packet_id for p in packets] == [0, 1]
        assert all(isinstance(p, Packet) for p in packets)

    def test_from_packets_round_trip(self):
        loop = EventLoop()
        originals = [Packet(b"abc", "a", "b", kind="voice"),
                     Packet(b"de", "a", "b")]
        batch = CellBatch.from_packets(originals, "a", "b", 7)
        assert len(batch) == 2
        assert batch.sizes == [3 + IP_UDP_HEADER_BYTES,
                               2 + IP_UDP_HEADER_BYTES]
        rebuilt = list(batch.packets(loop))
        assert [p.payload for p in rebuilt] == [b"abc", b"de"]
        assert [p.kind for p in rebuilt] == ["voice", "data"]


class TestRoundScheduler:
    def test_rounds_fire_at_interval_times(self):
        loop = EventLoop()
        sched = RoundScheduler(loop, 0.02)
        fired = []
        sched.on_round(lambda r: fired.append((r, loop.now)))
        sched.run_rounds(3)
        assert fired == [(0, 0.0), (1, pytest.approx(0.02)),
                         (2, pytest.approx(0.04))]
        assert sched.rounds_run == 3

    def test_one_heap_event_per_round(self):
        loop = EventLoop()
        sched = RoundScheduler(loop, 0.02)
        sched.on_round(lambda r: None)
        sched.run_rounds(10)
        assert loop.events_processed == 10

    def test_handlers_run_in_registration_order(self):
        loop = EventLoop()
        sched = RoundScheduler(loop, 1.0)
        order = []
        sched.on_round(lambda r: order.append("first"))
        sched.on_round(lambda r: order.append("second"))
        sched.run_round()
        assert order == ["first", "second"]

    def test_time_of(self):
        sched = RoundScheduler(EventLoop(), 0.5, start=1.0)
        assert sched.time_of(0) == 1.0
        assert sched.time_of(4) == 3.0


class TestTransmitBatchEquivalence:
    """The contract: a tap cannot tell the engines apart."""

    CELLS = [b"\x01" * 160, b"\x02" * 160, b"\x03" * 64, b"\x04" * 160]

    def _event_observations(self, **link_kwargs):
        loop = EventLoop(seed=11)
        a, b, link = _pair(loop, **link_kwargs)
        tap = LinkObserver()
        link.add_observer(tap)
        got = []
        b.on_packet(lambda p: got.append(p.payload))
        for payload in self.CELLS:
            link.transmit(a, Packet(payload, "a", "b"))
        loop.run()
        return tap.observations, got, link.stats["a"]

    def _batch_observations(self, **link_kwargs):
        loop = EventLoop(seed=11)
        a, b, link = _pair(loop, **link_kwargs)
        tap = LinkObserver()
        link.add_observer(tap)
        got = []
        b.on_batch(lambda batch: got.extend(batch.payloads))
        batch = CellBatch("a", "b", 0)
        for payload in self.CELLS:
            batch.append(payload)
        link.transmit_batch(a, batch)
        loop.run()
        return tap.observations, got, link.stats["a"]

    def test_lossless_tap_streams_identical(self):
        per_packet, delivered_p, stats_p = self._event_observations()
        batched, delivered_b, stats_b = self._batch_observations()
        assert per_packet == batched
        assert delivered_p == delivered_b == self.CELLS
        assert (stats_p.packets, stats_p.bytes) == \
            (stats_b.packets, stats_b.bytes)

    def test_lossy_link_same_rng_consumption(self):
        # Loss draws happen per cell in emission order on both paths,
        # so the same seed drops the same cells.
        per_packet, delivered_p, stats_p = \
            self._event_observations(loss_rate=0.5)
        batched, delivered_b, stats_b = \
            self._batch_observations(loss_rate=0.5)
        assert per_packet == batched  # the tap sees even dropped cells
        assert delivered_p == delivered_b
        assert stats_p.dropped == stats_b.dropped > 0

    def test_per_cell_fallback_for_plain_observers(self):
        class PlainTap:
            def __init__(self):
                self.seen = []

            def record(self, time, packet, src, dst):
                self.seen.append((time, packet.size, src, dst))

        loop = EventLoop()
        a, b, link = _pair(loop)
        tap = PlainTap()
        link.add_observer(tap)
        batch = CellBatch("a", "b", 0)
        batch.append(b"xx")
        batch.append(b"yyy")
        link.transmit_batch(a, batch)
        assert tap.seen == [(0.0, 2 + IP_UDP_HEADER_BYTES, "a", "b"),
                            (0.0, 3 + IP_UDP_HEADER_BYTES, "a", "b")]

    def test_zero_delay_batch_skips_the_heap(self):
        loop = EventLoop()
        a, b, link = _pair(loop)
        got = []
        b.on_batch(lambda batch: got.append(len(batch)))
        batch = CellBatch("a", "b", 0)
        batch.append(b"x")
        link.transmit_batch(a, batch)
        assert got == [1]
        assert loop.events_processed == 0

    def test_inline_false_forces_delivery_event(self):
        loop = EventLoop()
        a, b, link = _pair(loop)
        got = []
        b.on_batch(lambda batch: got.append(loop.now))
        batch = CellBatch("a", "b", 0)
        batch.append(b"x")
        link.transmit_batch(a, batch, inline=False)
        assert got == []
        loop.run()
        assert got == [0.0] and loop.events_processed == 1

    def test_empty_batch_is_a_noop(self):
        loop = EventLoop()
        a, b, link = _pair(loop)
        tap = LinkObserver()
        link.add_observer(tap)
        link.transmit_batch(a, CellBatch("a", "b", 0))
        assert tap.observations == []
        assert link.stats["a"].packets == 0

    def test_batch_delivery_falls_back_to_packet_handler(self):
        # A receiver with only a per-packet handler still gets every
        # cell (the O(cells) adapter), with loop-stamped ids.
        loop = EventLoop()
        a, b, link = _pair(loop)
        got = []
        b.on_packet(lambda p: got.append((p.packet_id, p.payload)))
        batch = CellBatch("a", "b", 0)
        batch.append(b"one")
        batch.append(b"two")
        link.transmit_batch(a, batch)
        assert got == [(0, b"one"), (1, b"two")]
        assert b.packets_received == 2
        assert b.bytes_received == 6 + 2 * IP_UDP_HEADER_BYTES


class TestPacketIdDeterminism:
    """Packet ids are loop-local: two identically-seeded runs in ONE
    process are byte-identical (the old module-global counter kept
    counting across runs)."""

    def _run(self):
        loop = EventLoop(seed=5)
        a, b, link = _pair(loop)
        ids = []
        b.on_packet(lambda p: ids.append(p.packet_id))
        for payload in (b"x", b"y", b"z"):
            link.transmit(a, Packet(payload, "a", "b"))
        loop.run()
        return ids

    def test_two_runs_one_process_identical_ids(self):
        assert self._run() == self._run() == [0, 1, 2]

    def test_explicit_ids_are_not_restamped(self):
        loop = EventLoop()
        a, b, link = _pair(loop)
        got = []
        b.on_packet(lambda p: got.append(p.packet_id))
        link.transmit(a, Packet(b"x", "a", "b", packet_id=99))
        loop.run()
        assert got == [99]

    def test_call_ids_are_manager_local(self):
        # Same regression at the core layer: MixCallManager used a
        # module-global call-id counter; GRANTs of a second seeded run
        # must carry the same ids as the first.
        from repro.simulation.live import LiveZone

        def call_ids():
            zone = LiveZone(n_clients=4, n_channels=2, seed=3)
            zone.start_call("client-0", "client-1")
            zone.run(6)
            return sorted(c.call_id for c in zone.manager.calls.values())

        first = call_ids()
        assert first and first == call_ids()

    def test_per_packet_transmit_is_warning_free(self):
        loop = EventLoop()
        a, b, link = _pair(loop)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            link.transmit(a, Packet(b"x", "a", "b"))
            loop.run()

"""Scenario model + loader: validation, target expansion, signatures,
and the actionable-error contract of the TOML loader (§10)."""

import dataclasses

import pytest

from repro.faults.plan import FaultKind, FaultSpec
from repro.scenario import (
    Adversary,
    ChurnEvent,
    Scenario,
    ScenarioError,
    SurvivalCriteria,
    Workload,
    ZoneShape,
)
from repro.scenario.loader import load_corpus, load_scenario, parse_scenario
from repro.scenario.model import CTL_ZONE, LIVE_ZONE, expand_target


class TestModelValidation:
    def test_minimal_scenario_builds(self):
        s = Scenario(name="ok")
        assert s.seed == 20150817
        assert s.zone.n_clients == 12

    @pytest.mark.parametrize("bad", [
        dict(name=""),
        dict(name="x", horizon_s=0.0),
        dict(name="x", round_interval_s=-0.1),
        dict(name="x", zone=ZoneShape(n_clients=4),
             workload=Workload(call_pairs=3)),
    ])
    def test_bad_scenarios_rejected(self, bad):
        with pytest.raises(ScenarioError):
            Scenario(**bad)

    def test_workload_kind_validation(self):
        with pytest.raises(ScenarioError, match="flash_crowd"):
            Workload(kind="flash_crowd", spike_pairs=0)
        with pytest.raises(ScenarioError, match="poisson"):
            Workload(kind="poisson", arrival_rate_per_s=0.0)
        with pytest.raises(ScenarioError, match="one of"):
            Workload(kind="bursty")

    def test_churn_and_adversary_validation(self):
        with pytest.raises(ScenarioError, match="action"):
            ChurnEvent(at_s=1.0, action="client_restart")
        with pytest.raises(ScenarioError, match="targets"):
            Adversary(kind="sybil_sp")
        with pytest.raises(ScenarioError, match="one of"):
            Adversary(kind="global_active")

    def test_criteria_validation(self):
        with pytest.raises(ScenarioError):
            SurvivalCriteria(min_call_survival_rate=1.5)
        with pytest.raises(ScenarioError):
            SurvivalCriteria(max_dropped_failovers=-1)

    def test_validate_rejects_unreachable_events(self):
        s = Scenario(name="x", horizon_s=2.0, faults=(
            FaultSpec(kind=FaultKind.SP_CRASH, at_s=3.0,
                      target="zone-live/sp-1"),))
        s_ok = s.with_horizon(4.0)
        s_ok.validate()  # fine once the horizon covers the fault
        with pytest.raises(ScenarioError, match="never"):
            s.validate()
        # ...but construction itself stays legal: Simulation.run(until=)
        # may truncate a scenario programmatically.
        assert s.horizon_s == 2.0


class TestTargetExpansion:
    @pytest.mark.parametrize("kind,target,expected", [
        (FaultKind.SP_CRASH, "sp-1", f"{LIVE_ZONE}/sp-1"),
        (FaultKind.LOSS_BURST, "sp-0", f"{LIVE_ZONE}/sp-0"),
        (FaultKind.MIX_CRASH, "mix-0", f"{CTL_ZONE}/mix-0"),
        (FaultKind.DIRECTORY_STALL, "ctl", CTL_ZONE),
        (FaultKind.DIRECTORY_STALL, "live", LIVE_ZONE),
        (FaultKind.OVERLOAD, "zone", "zone"),
        (FaultKind.SP_CRASH, "zone-X/sp-9", "zone-X/sp-9"),
    ])
    def test_expansion(self, kind, target, expected):
        assert expand_target(kind, target) == expected


class TestSignatures:
    def test_signature_stable_and_field_sensitive(self):
        a = Scenario(name="sig")
        assert a.signature() == Scenario(name="sig").signature()
        assert a.signature() != \
            dataclasses.replace(a, seed=1).signature()
        assert a.signature() != a.with_horizon(9.0).signature()

    def test_sybil_adversary_compiles_into_plan(self):
        s = Scenario(name="sybil", adversary=Adversary(
            kind="sybil_sp", targets=("sp-1",), at_s=1.0,
            duration_s=2.0))
        kinds = [spec.kind for spec in s.plan()]
        assert kinds == [FaultKind.LINK_DEGRADE]
        assert s.plan().specs[0].target == f"{LIVE_ZONE}/sp-1"


_GOOD_TOML = """\
[scenario]
name = "loader-check"
horizon_s = 3.0

[workload]
kind = "constant"
call_pairs = 1

[[fault]]
kind = "sp_crash"
at_s = 1.0
target = "sp-1"

[criteria]
min_call_survival_rate = 1.0
"""


class TestLoader:
    def test_loads_valid_file(self, tmp_path):
        path = tmp_path / "good.toml"
        path.write_text(_GOOD_TOML)
        s = load_scenario(path)
        assert s.name == "loader-check"
        assert s.faults[0].target == f"{LIVE_ZONE}/sp-1"

    def test_unknown_key_gets_did_you_mean(self):
        with pytest.raises(ScenarioError) as err:
            parse_scenario({"scenario": {"name": "x", "horizn_s": 3}})
        assert "did you mean 'horizon_s'" in str(err.value)

    def test_unknown_fault_kind_gets_suggestion(self):
        with pytest.raises(ScenarioError) as err:
            parse_scenario({
                "scenario": {"name": "x"},
                "fault": [{"kind": "sp_crush", "at_s": 1.0,
                           "target": "sp-1"}]})
        assert "did you mean 'sp_crash'" in str(err.value)

    def test_type_errors_are_actionable(self):
        with pytest.raises(ScenarioError, match="'seed' must be int"):
            parse_scenario({"scenario": {"name": "x", "seed": "7"}})
        with pytest.raises(ScenarioError, match="boolean"):
            parse_scenario({"scenario": {"name": "x", "seed": True}})

    def test_error_carries_file_context(self, tmp_path):
        path = tmp_path / "broken.toml"
        path.write_text(_GOOD_TOML.replace('kind = "sp_crash"',
                                           'kind = "sp_crash"\nloss = 2.0'))
        with pytest.raises(ScenarioError) as err:
            load_scenario(path)
        assert str(path) in str(err.value)

    def test_invalid_toml_reported(self, tmp_path):
        path = tmp_path / "nottoml.toml"
        path.write_text("[scenario\nname=")
        with pytest.raises(ScenarioError, match="invalid TOML"):
            load_scenario(path)

    def test_missing_file_reported(self, tmp_path):
        with pytest.raises(ScenarioError, match="cannot read"):
            load_scenario(tmp_path / "absent.toml")

    def test_corpus_rejects_duplicates_and_empty(self, tmp_path):
        with pytest.raises(ScenarioError, match="no .* scenario"):
            load_corpus(tmp_path)
        (tmp_path / "a.toml").write_text(_GOOD_TOML)
        (tmp_path / "b.toml").write_text(_GOOD_TOML)
        with pytest.raises(ScenarioError, match="duplicate"):
            load_corpus(tmp_path)

    def test_shipped_corpus_loads(self):
        scenarios = load_corpus("scenarios")
        names = [s.name for s in scenarios]
        assert len(names) >= 6
        assert len(set(names)) == len(names)
        # Every composition axis is represented in the corpus.
        kinds = {s.workload.kind for s in scenarios}
        assert {"constant", "flash_crowd", "poisson"} <= kinds
        assert any(s.churn for s in scenarios)
        assert any(s.adversary.kind == "wiretap" for s in scenarios)
        assert any(s.adversary.kind == "sybil_sp" for s in scenarios)

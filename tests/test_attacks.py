"""Tests for the attack implementations (E1 and the threat model)."""

import random

import pytest

from repro.attacks.correlation import (
    correlate_flows,
    matching_accuracy,
    pearson,
)
from repro.attacks.intersection import (
    herd_observable_trace,
    intersection_attack,
)
from repro.attacks.longterm import (
    herd_candidate_rounds,
    long_term_intersection,
    unchaffed_candidate_rounds,
)
from repro.workload.cdr import CallRecord, CallTrace
from repro.workload.generator import SyntheticTraceConfig, generate_trace


class TestIntersectionAttack:
    def test_unique_times_fully_traced(self):
        # Calls with distinct start/end bins are all traced.
        trace = CallTrace([
            CallRecord(1, 2, 0.0, 10.0),
            CallRecord(3, 4, 100.0, 20.0),
            CallRecord(5, 6, 200.0, 30.0),
        ])
        result = intersection_attack(trace, bin_width=1.0)
        assert result.traced_fraction == 1.0

    def test_simultaneous_identical_calls_not_traced(self):
        # Two calls with identical start AND end bins are mutually
        # covering: candidate sets have size 4.
        trace = CallTrace([
            CallRecord(1, 2, 0.0, 10.0),
            CallRecord(3, 4, 0.0, 10.0),
        ])
        result = intersection_attack(trace, bin_width=1.0)
        assert result.traced_fraction == 0.0
        assert result.anonymity_sizes == {4: 2}

    def test_coarser_bins_trace_less(self):
        rng = random.Random(0)
        records = []
        for i in range(200):
            records.append(CallRecord(2 * i, 2 * i + 1,
                                      rng.uniform(0, 600),
                                      rng.uniform(30, 300)))
        trace = CallTrace(records)
        fine = intersection_attack(trace, bin_width=1.0)
        coarse = intersection_attack(trace, bin_width=300.0)
        assert fine.traced_fraction >= coarse.traced_fraction

    def test_synthetic_trace_mostly_traced_at_1s(self):
        # §4.1.4: 98.3% of calls traced at 1-second granularity.  Our
        # synthetic month is smaller, but the result must be ≳ 95%.
        cfg = SyntheticTraceConfig(n_users=2000, days=3, seed=11,
                                   max_degree=100)
        trace = generate_trace(cfg)
        result = intersection_attack(trace, bin_width=1.0)
        assert result.traced_fraction > 0.95

    def test_herd_exposes_nothing(self):
        cfg = SyntheticTraceConfig(n_users=200, days=1, seed=3,
                                   max_degree=50)
        trace = generate_trace(cfg)
        observable = herd_observable_trace(trace)
        assert len(observable) == 0
        result = intersection_attack(observable)
        assert result.traced_calls == 0
        assert result.traced_fraction == 0.0

    def test_empty_trace(self):
        result = intersection_attack(CallTrace([]))
        assert result.traced_fraction == 0.0
        assert result.anonymity_set_percentile(50) == 0.0

    def test_percentiles(self):
        trace = CallTrace([
            CallRecord(1, 2, 0.0, 10.0),
            CallRecord(3, 4, 0.0, 10.0),
        ])
        result = intersection_attack(trace)
        assert result.anonymity_set_percentile(50) == 4.0


class TestPearson:
    def test_perfect_correlation(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_anti_correlation(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_series_no_signal(self):
        assert pearson([5, 5, 5], [1, 2, 3]) == 0.0
        assert pearson([1, 2, 3], [7, 7, 7]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson([1], [1, 2])

    def test_empty(self):
        assert pearson([], []) == 0.0


class TestCorrelationAttack:
    def test_unchaffed_flows_matched(self):
        # On/off flows: each ingress matches its egress twin.
        flow_a = {i: (100 if i < 10 else 0) for i in range(20)}
        flow_b = {i: (0 if i < 10 else 100) for i in range(20)}
        matches = correlate_flows(
            {"in-a": flow_a, "in-b": flow_b},
            {"out-a": dict(flow_a), "out-b": dict(flow_b)})
        assert matches == {"in-a": "out-a", "in-b": "out-b"}
        assert matching_accuracy(matches, {"in-a": "out-a",
                                           "in-b": "out-b"}) == 1.0

    def test_chaffed_flows_unmatchable(self):
        # Constant-rate series carry no correlation signal.
        flat = {i: 100 for i in range(20)}
        matches = correlate_flows(
            {"in-a": dict(flat), "in-b": dict(flat)},
            {"out-a": dict(flat), "out-b": dict(flat)})
        assert matches == {"in-a": None, "in-b": None}

    def test_accuracy_requires_truth(self):
        with pytest.raises(ValueError):
            matching_accuracy({}, {})


class TestLongTermIntersection:
    def test_shrinks_on_unchaffed_system(self):
        # Target 0 calls at distinct times; other users' calls overlap
        # only sometimes → intersection shrinks to the target pair.
        trace = CallTrace([
            CallRecord(0, 1, 0.0, 10.0),
            CallRecord(2, 3, 0.5, 10.0),   # co-start bin 0
            CallRecord(0, 1, 100.0, 10.0),
            CallRecord(4, 5, 100.4, 10.0),  # co-start bin 100
            CallRecord(0, 1, 200.0, 10.0),
        ])
        rounds = unchaffed_candidate_rounds(trace, target=0)
        result = long_term_intersection(rounds)
        assert result.final_candidates == {0, 1}
        assert result.set_sizes[0] >= result.set_sizes[-1]

    def test_herd_rounds_never_shrink(self):
        online = set(range(1000))
        result = long_term_intersection(herd_candidate_rounds(online, 50))
        assert result.final_anonymity == 1000
        assert not result.identified
        assert all(s == 1000 for s in result.set_sizes)

    def test_identified_flag(self):
        result = long_term_intersection([{1, 2, 3}, {1, 2}, {1}])
        assert result.identified
        assert result.final_candidates == {1}

    def test_empty_rounds(self):
        result = long_term_intersection([])
        assert result.final_anonymity == 0
        assert result.rounds == 0

    def test_monotone_shrinkage_property(self):
        rng = random.Random(5)
        rounds = [set(rng.sample(range(100), 60)) for _ in range(10)]
        result = long_term_intersection(rounds)
        for a, b in zip(result.set_sizes, result.set_sizes[1:]):
            assert b <= a

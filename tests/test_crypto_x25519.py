"""Tests for repro.crypto.x25519 against RFC 7748 test vectors."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.x25519 import X25519PrivateKey, x25519, x25519_base


# RFC 7748 §5.2 test vector 1
VEC1_SCALAR = bytes.fromhex(
    "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4")
VEC1_U = bytes.fromhex(
    "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c")
VEC1_OUT = bytes.fromhex(
    "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552")

# RFC 7748 §5.2 test vector 2
VEC2_SCALAR = bytes.fromhex(
    "4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d")
VEC2_U = bytes.fromhex(
    "e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493")
VEC2_OUT = bytes.fromhex(
    "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957")

# RFC 7748 §6.1 Diffie-Hellman vector
ALICE_PRIV = bytes.fromhex(
    "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a")
ALICE_PUB = bytes.fromhex(
    "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a")
BOB_PRIV = bytes.fromhex(
    "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb")
BOB_PUB = bytes.fromhex(
    "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f")
SHARED = bytes.fromhex(
    "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742")


class TestRFC7748Vectors:
    def test_vector_1(self):
        assert x25519(VEC1_SCALAR, VEC1_U) == VEC1_OUT

    def test_vector_2(self):
        assert x25519(VEC2_SCALAR, VEC2_U) == VEC2_OUT

    def test_alice_public_key(self):
        assert x25519_base(ALICE_PRIV) == ALICE_PUB

    def test_bob_public_key(self):
        assert x25519_base(BOB_PRIV) == BOB_PUB

    def test_shared_secret_alice_side(self):
        assert x25519(ALICE_PRIV, BOB_PUB) == SHARED

    def test_shared_secret_bob_side(self):
        assert x25519(BOB_PRIV, ALICE_PUB) == SHARED

    def test_iterated_vector_1000(self):
        # RFC 7748 §5.2 iteration test (1,000 rounds — the 1M variant is
        # too slow for pure Python in CI).
        k = bytes.fromhex("09" + "00" * 31)
        u = bytes.fromhex("09" + "00" * 31)
        for _ in range(1000):
            k, u = x25519(k, u), k
        assert k == bytes.fromhex(
            "684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51")


class TestKeyAPI:
    def test_generate_deterministic_with_rng(self):
        k1 = X25519PrivateKey.generate(random.Random(7))
        k2 = X25519PrivateKey.generate(random.Random(7))
        assert k1.private_bytes == k2.private_bytes

    def test_generate_distinct_without_rng(self):
        assert (X25519PrivateKey.generate().private_bytes
                != X25519PrivateKey.generate().private_bytes)

    def test_exchange_agreement(self):
        rng = random.Random(42)
        a = X25519PrivateKey.generate(rng)
        b = X25519PrivateKey.generate(rng)
        assert a.exchange(b.public_bytes) == b.exchange(a.public_bytes)

    def test_wrong_length_private_key_rejected(self):
        with pytest.raises(ValueError):
            X25519PrivateKey(b"\x00" * 31)

    def test_wrong_length_u_rejected(self):
        with pytest.raises(ValueError):
            x25519(VEC1_SCALAR, b"\x00" * 16)

    def test_low_order_point_rejected(self):
        with pytest.raises(ValueError):
            x25519(VEC1_SCALAR, b"\x00" * 32)


@settings(max_examples=10, deadline=None)
@given(seed_a=st.integers(min_value=0, max_value=2**63),
       seed_b=st.integers(min_value=0, max_value=2**63))
def test_dh_agreement_property(seed_a, seed_b):
    """Any two honestly generated keys agree on the shared secret."""
    a = X25519PrivateKey.generate(random.Random(seed_a))
    b = X25519PrivateKey.generate(random.Random(seed_b))
    assert a.exchange(b.public_bytes) == b.exchange(a.public_bytes)

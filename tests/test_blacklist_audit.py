"""Tests: the §3.6.1 full-packet audit path and §3.6.4 blacklist
callbacks.

An undecodable XOR round (nonzero residue with no active client) makes
the mix pull the SP's buffered full packets, compare each against the
predicted chaff, and blacklist the culprit *account* — or the SP
itself when every client packet checks out.
"""

import random

import pytest

from repro.core.blacklist import SPMonitor
from repro.core.network_coding import (
    CODED_PACKET_SIZE,
    ChaffPredictor,
    decode_round,
    make_chaff_packet,
)
from repro.core.superpeer import AUDIT_BUFFER_ROUNDS, SuperPeer
from repro.crypto.keys import SessionKey


def _channel(n_clients=3, seed=0):
    rng = random.Random(seed)
    keys = {i: SessionKey.generate(rng) for i in range(n_clients)}
    predictor = ChaffPredictor(dict(keys))
    sp = SuperPeer("sp-x", "mix-x")
    sp.host_channel(0, [f"c{i}" for i in range(n_clients)])
    return keys, predictor, sp


def _run_round(sp, packets, round_index):
    return sp.combine_upstream(0, round_index, packets,
                               [b"mmmm"] * len(packets))


class TestAuditPath:
    def test_honest_idle_round_decodes_to_nothing(self):
        keys, predictor, sp = _channel()
        up = _run_round(sp, [make_chaff_packet(keys[i], 0)
                             for i in range(3)], 7)
        sender, payload, signalers = decode_round(
            up.xor_packet, [(i, 0, False) for i in range(3)], predictor)
        assert sender is None and payload == b"" and signalers == []

    def test_garbage_packet_makes_round_undecodable(self):
        keys, predictor, sp = _channel()
        packets = [make_chaff_packet(keys[i], 0) for i in range(3)]
        packets[1] = b"\xa5" * CODED_PACKET_SIZE  # c1 misbehaves
        up = _run_round(sp, packets, 7)
        with pytest.raises(ValueError, match="audit required"):
            decode_round(up.xor_packet, [(i, 0, False) for i in range(3)],
                         predictor)

    def test_audit_identifies_and_blacklists_culprit_account(self):
        keys, predictor, sp = _channel()
        packets = [make_chaff_packet(keys[i], 0) for i in range(3)]
        packets[1] = b"\xa5" * CODED_PACKET_SIZE
        up = _run_round(sp, packets, 7)
        with pytest.raises(ValueError):
            decode_round(up.xor_packet, [(i, 0, False) for i in range(3)],
                         predictor)
        # The mix asks the SP for the round's buffered full packets...
        buffered = sp.audit_packets(0, 7)
        members = sp.channel_clients[0]
        packets_by_client = dict(zip(members, buffered))
        # ...and compares them against the predicted chaff.
        expected = {f"c{i}": predictor.predict(i, 0) for i in range(3)}
        monitor = SPMonitor()
        culprit = monitor.audit_round(sp.sp_id, packets_by_client,
                                      expected)
        assert culprit == "c1"
        assert "c1" in monitor.blacklisted_clients
        assert not monitor.is_blacklisted(sp.sp_id)

    def test_audit_blames_sp_when_every_packet_checks_out(self):
        # The SP forwarded a forged XOR: the buffered client packets
        # are all exactly the predicted chaff, so the SP itself lied.
        keys, predictor, sp = _channel()
        packets = [make_chaff_packet(keys[i], 0) for i in range(3)]
        _run_round(sp, packets, 7)
        packets_by_client = dict(zip(sp.channel_clients[0], packets))
        expected = {f"c{i}": predictor.predict(i, 0) for i in range(3)}
        monitor = SPMonitor()
        culprit = monitor.audit_round(sp.sp_id, packets_by_client,
                                      expected)
        assert culprit is None
        assert monitor.is_blacklisted(sp.sp_id)
        assert not monitor.blacklisted_clients

    def test_audit_buffer_keeps_only_recent_rounds(self):
        keys, predictor, sp = _channel()
        for r in range(AUDIT_BUFFER_ROUNDS + 2):
            _run_round(sp, [make_chaff_packet(keys[i], r)
                            for i in range(3)], r)
        with pytest.raises(KeyError):
            sp.audit_packets(0, 0)  # expired
        assert len(sp.audit_packets(0, AUDIT_BUFFER_ROUNDS + 1)) == 3


class TestBlacklistCallbacks:
    def test_sp_callback_fires_once_on_quality_violation(self):
        fired = []
        monitor = SPMonitor(min_samples=3,
                            on_blacklist_sp=fired.append)
        for _ in range(6):
            monitor.record_quality("sp-bad", loss=0.5, jitter_ms=5.0)
        assert fired == ["sp-bad"]
        assert monitor.is_blacklisted("sp-bad")

    def test_client_callback_fires_once(self):
        fired = []
        monitor = SPMonitor(on_blacklist_client=fired.append)
        monitor.blacklist_client("c9")
        monitor.blacklist_client("c9")
        assert fired == ["c9"]

    def test_availability_violation_fires_callback(self):
        fired = []
        monitor = SPMonitor(min_samples=4,
                            on_blacklist_sp=fired.append)
        for _ in range(4):
            monitor.record_availability("sp-down", False)
        assert fired == ["sp-down"]

    def test_healthy_sp_never_blacklisted(self):
        fired = []
        monitor = SPMonitor(on_blacklist_sp=fired.append)
        for _ in range(50):
            monitor.record_quality("sp-good", loss=0.0, jitter_ms=1.0)
            monitor.record_availability("sp-good", True)
        assert fired == []
        assert not monitor.is_blacklisted("sp-good")

"""Direct tests for the adversary helpers and the invariant checks."""

import pytest

from repro.attacks.adversary import ActiveAdversary, \
    GlobalPassiveAdversary
from repro.core.invariants import (
    byte_agreement,
    ciphertext_uncorrelated,
    circuit_zone_profile,
    is_uniform_choice,
    looks_uniform,
    series_identical,
    shannon_entropy,
)
from repro.netsim.engine import EventLoop
from repro.netsim.link import Link
from repro.netsim.node import Node
from repro.netsim.packet import Packet


def _wired_pair(loop, name_a="a", name_b="b", **kwargs):
    a, b = Node(name_a, loop), Node(name_b, loop)
    b.on_packet(lambda p: None)
    a.on_packet(lambda p: None)
    return a, b, Link(loop, a, b, **kwargs)


class TestGlobalPassiveAdversary:
    def test_taps_collect_observations(self):
        loop = EventLoop()
        a, b, link = _wired_pair(loop)
        adversary = GlobalPassiveAdversary([link])
        a.send("b", Packet(b"x" * 50, "a", "b"))
        loop.run()
        assert len(adversary.observer.observations) == 1

    def test_link_series_keys(self):
        loop = EventLoop()
        a, b, link = _wired_pair(loop)
        adversary = GlobalPassiveAdversary([link])
        a.send("b", Packet(b"x", "a", "b"))
        b.send("a", Packet(b"y", "b", "a"))
        loop.run()
        series = adversary.link_series(1.0)
        assert set(series) == {"a->b", "b->a"}

    def test_correlation_attack_entry_points(self):
        loop = EventLoop()
        c_in, m1, l1 = _wired_pair(loop, "client-x", "mix")
        m2, c_out, l2 = _wired_pair(loop, "mix2", "exit-x")
        c_in2, m3, l3 = _wired_pair(loop, "client-y", "mix3")
        m4, c_out2, l4 = _wired_pair(loop, "mix4", "exit-y")
        adversary = GlobalPassiveAdversary([l1, l2, l3, l4])
        # Two on/off flows with disjoint talk windows; egress mirrors
        # ingress, so correlation must match x→x and y→y.
        for i in range(20):
            loop.schedule(float(i), lambda: c_in.send(
                "mix", Packet(b"x" * 100, "client-x", "mix")))
            loop.schedule(float(i), lambda: m2.send(
                "exit-x", Packet(b"x" * 100, "mix2", "exit-x")))
            loop.schedule(20.0 + i, lambda: c_in2.send(
                "mix3", Packet(b"x" * 100, "client-y", "mix3")))
            loop.schedule(20.0 + i, lambda: m4.send(
                "exit-y", Packet(b"x" * 100, "mix4", "exit-y")))
        loop.run()
        series = adversary.link_series(1.0)
        ingress = {k: v for k, v in series.items()
                   if k.startswith("client-")}
        egress = {k: v for k, v in series.items() if "exit" in k}
        from repro.attacks.correlation import correlate_flows
        matches = correlate_flows(ingress, egress)
        assert matches["client-x->mix"] == "mix2->exit-x"
        assert matches["client-y->mix3"] == "mix4->exit-y"


class TestActiveAdversary:
    def test_inject_loss(self):
        loop = EventLoop(seed=1)
        a, b, link = _wired_pair(loop)
        adversary = ActiveAdversary([link])
        adversary.compromise(link)
        adversary.inject_loss(0.9)
        for _ in range(50):
            a.send("b", Packet(b"x", "a", "b"))
        loop.run()
        assert b.packets_received < 25

    def test_inject_delay(self):
        loop = EventLoop()
        a, b, link = _wired_pair(loop, one_way_delay=0.01)
        adversary = ActiveAdversary()
        adversary.compromise(link)
        adversary.inject_delay(0.5)
        arrivals = []
        b.on_packet(lambda p: arrivals.append(loop.now))
        a.send("b", Packet(b"x", "a", "b"))
        loop.run()
        assert arrivals[0] == pytest.approx(0.51)

    def test_validation(self):
        adversary = ActiveAdversary()
        with pytest.raises(ValueError):
            adversary.inject_loss(1.0)
        with pytest.raises(ValueError):
            adversary.inject_delay(-0.1)


class TestInvariantHelpers:
    def test_byte_agreement(self):
        assert byte_agreement(b"abc", b"abc") == 1.0
        assert byte_agreement(b"abc", b"xyz") == 0.0
        assert byte_agreement(b"", b"") == 0.0
        with pytest.raises(ValueError):
            byte_agreement(b"a", b"ab")

    def test_ciphertext_uncorrelated(self):
        import os
        blobs = [os.urandom(256) for _ in range(3)]
        assert ciphertext_uncorrelated(blobs)
        assert not ciphertext_uncorrelated([blobs[0], blobs[0]])

    def test_shannon_entropy(self):
        assert shannon_entropy(b"") == 0.0
        assert shannon_entropy(b"\x00" * 100) == 0.0
        assert shannon_entropy(bytes(range(256))) == pytest.approx(8.0)

    def test_looks_uniform(self):
        import os
        assert looks_uniform(os.urandom(1024))
        assert not looks_uniform(b"\x00" * 1024)

    def test_is_uniform_choice(self):
        assert is_uniform_choice({"a": 100, "b": 98, "c": 102}, 3)
        assert not is_uniform_choice({"a": 300, "b": 10, "c": 10}, 3)
        # A never-chosen option with plenty of samples is suspicious.
        assert not is_uniform_choice({"a": 200, "b": 200}, 3)
        with pytest.raises(ValueError):
            is_uniform_choice({}, 3)

    def test_series_identical(self):
        assert series_identical({0: 10, 1: 10}, {0: 10, 1: 10})
        assert not series_identical({0: 10}, {0: 20})
        assert series_identical({0: 100}, {0: 105}, tolerance=0.1)
        assert not series_identical({0: 100}, {1: 100})

    def test_circuit_zone_profile(self):
        class FakeCircuit:
            path = ["m1", "m2"]
        zones = {"m1": "zone-EU", "m2": "zone-EU"}
        assert circuit_zone_profile(FakeCircuit(), zones) \
            == ["zone-EU", "zone-EU"]

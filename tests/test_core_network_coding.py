"""Tests for XOR network coding, manifests, and channel state (§3.6)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.channel import (
    Channel,
    ChannelManifest,
    decode_manifest,
    encode_manifest,
)
from repro.core.network_coding import (
    CODED_PACKET_SIZE,
    CODED_PAYLOAD,
    ChaffPredictor,
    decode_round,
    decrypt_packet,
    make_chaff_packet,
    make_payload_packet,
    xor_bytes,
)
from repro.crypto.keys import SessionKey


def _keys(n, seed=0):
    rng = random.Random(seed)
    return {i: SessionKey.generate(rng) for i in range(n)}


class TestXorBytes:
    def test_xor_identity(self):
        assert xor_bytes(b"\x01\x02", b"\x01\x02") == b"\x00\x00"

    def test_xor_associative_chain(self):
        a, b, c = b"\x0f" * 4, b"\xf0" * 4, b"\xaa" * 4
        assert xor_bytes(a, b, c) == xor_bytes(xor_bytes(a, b), c)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            xor_bytes(b"\x00", b"\x00\x00")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            xor_bytes()


class TestPackets:
    def test_chaff_packet_fixed_size(self):
        key = SessionKey.generate(random.Random(1))
        assert len(make_chaff_packet(key, 0)) == CODED_PACKET_SIZE

    def test_chaff_predictable(self):
        key = SessionKey.generate(random.Random(1))
        assert make_chaff_packet(key, 5) == make_chaff_packet(key, 5)

    def test_chaff_differs_per_sequence(self):
        key = SessionKey.generate(random.Random(1))
        assert make_chaff_packet(key, 0) != make_chaff_packet(key, 1)

    def test_payload_roundtrip(self):
        key = SessionKey.generate(random.Random(2))
        pkt = make_payload_packet(key, 9, b"onion cell bytes")
        is_payload, payload = decrypt_packet(key, 9, pkt)
        assert is_payload
        assert payload[:16] == b"onion cell bytes"

    def test_chaff_decrypts_as_chaff(self):
        key = SessionKey.generate(random.Random(3))
        is_payload, payload = decrypt_packet(key, 4,
                                             make_chaff_packet(key, 4))
        assert not is_payload
        assert payload == b""

    def test_wrong_sequence_detected(self):
        key = SessionKey.generate(random.Random(3))
        pkt = make_chaff_packet(key, 4)
        with pytest.raises(ValueError):
            decrypt_packet(key, 5, pkt)

    def test_oversized_payload_rejected(self):
        key = SessionKey.generate(random.Random(3))
        with pytest.raises(ValueError):
            make_payload_packet(key, 0, b"\x00" * (CODED_PAYLOAD + 1))

    def test_wrong_size_rejected(self):
        key = SessionKey.generate(random.Random(3))
        with pytest.raises(ValueError):
            decrypt_packet(key, 0, b"\x00" * 10)


class TestDecodeRound:
    """The mix-side decode of Fig. 2(b)."""

    def test_all_idle_round(self):
        keys = _keys(4)
        predictor = ChaffPredictor(keys)
        packets = [make_chaff_packet(keys[i], 10 + i) for i in range(4)]
        manifests = [(i, 10 + i, False) for i in range(4)]
        active, payload, signalers = decode_round(
            xor_bytes(*packets), manifests, predictor)
        assert active is None
        assert payload == b""
        assert signalers == []

    def test_one_active_client_recovered(self):
        keys = _keys(4)
        predictor = ChaffPredictor(keys)
        cell = b"RTP!" * 40
        packets = [
            make_chaff_packet(keys[0], 100),
            make_payload_packet(keys[1], 200, cell),
            make_chaff_packet(keys[2], 300),
            make_chaff_packet(keys[3], 400),
        ]
        manifests = [(0, 100, False), (1, 200, False),
                     (2, 300, False), (3, 400, False)]
        active, payload, _ = decode_round(xor_bytes(*packets), manifests,
                                          predictor, active_client=1)
        assert active == 1
        assert payload[:len(cell)] == cell

    def test_signaling_bit_collected(self):
        keys = _keys(3)
        predictor = ChaffPredictor(keys)
        packets = [make_chaff_packet(keys[i], i) for i in range(3)]
        manifests = [(0, 0, False), (1, 1, True), (2, 2, False)]
        _, _, signalers = decode_round(xor_bytes(*packets), manifests,
                                       predictor)
        assert signalers == [1]

    def test_signaler_can_also_be_idle_sender(self):
        # §3.6.2: "the caller sets the signaling bit in the manifest of
        # the chaff packets it sends" — the packet itself is chaff.
        keys = _keys(2)
        predictor = ChaffPredictor(keys)
        packets = [make_chaff_packet(keys[0], 0),
                   make_chaff_packet(keys[1], 0)]
        manifests = [(0, 0, True), (1, 0, False)]
        active, _, signalers = decode_round(xor_bytes(*packets),
                                            manifests, predictor)
        assert active is None
        assert signalers == [0]

    def test_single_client_channel(self):
        keys = _keys(1)
        predictor = ChaffPredictor(keys)
        pkt = make_payload_packet(keys[0], 7, b"solo")
        active, payload, _ = decode_round(pkt, [(0, 7, False)], predictor,
                                          active_client=0)
        assert active == 0
        assert payload[:4] == b"solo"

    def test_active_client_sending_chaff_yields_no_payload(self):
        # An active client with nothing to send (e.g. during teardown)
        # sends chaff; the round decodes cleanly to "no payload".
        keys = _keys(2)
        predictor = ChaffPredictor(keys)
        packets = [make_chaff_packet(keys[0], 3),
                   make_chaff_packet(keys[1], 4)]
        manifests = [(0, 3, False), (1, 4, False)]
        active, payload, _ = decode_round(xor_bytes(*packets), manifests,
                                          predictor, active_client=0)
        assert active is None
        assert payload == b""

    def test_unexpected_payload_detected_as_misbehaviour(self):
        # §3.6.1: "a malicious SP or client could deny service by
        # sending [...] an unexpected chaff packet" — here, an
        # unexpected *payload* packet with no allocated call.  The mix
        # detects the nonzero residue and raises for the audit path.
        keys = _keys(2)
        predictor = ChaffPredictor(keys)
        packets = [make_payload_packet(keys[0], 0, b"a"),
                   make_chaff_packet(keys[1], 0)]
        manifests = [(0, 0, False), (1, 0, False)]
        with pytest.raises(ValueError):
            decode_round(xor_bytes(*packets), manifests, predictor)

    def test_corrupted_active_packet_detected(self):
        keys = _keys(2)
        predictor = ChaffPredictor(keys)
        packets = [make_payload_packet(keys[0], 9, b"a"),
                   make_chaff_packet(keys[1], 9)]
        xored = bytearray(xor_bytes(*packets))
        xored[4] ^= 0xFF  # flip a sequence-number bit
        with pytest.raises(ValueError):
            decode_round(bytes(xored), [(0, 9, False), (1, 9, False)],
                         predictor, active_client=0)

    def test_active_client_missing_from_manifests(self):
        keys = _keys(1)
        predictor = ChaffPredictor(keys)
        pkt = make_chaff_packet(keys[0], 0)
        with pytest.raises(ValueError):
            decode_round(pkt, [(0, 0, False)], predictor,
                         active_client=5)

    def test_wrong_size_xor_rejected(self):
        predictor = ChaffPredictor(_keys(1))
        with pytest.raises(ValueError):
            decode_round(b"\x00" * 5, [(0, 0, False)], predictor)

    def test_unknown_client_raises(self):
        predictor = ChaffPredictor({})
        with pytest.raises(KeyError):
            predictor.predict(0, 0)

    def test_add_client(self):
        predictor = ChaffPredictor({})
        key = SessionKey.generate(random.Random(0))
        predictor.add_client(5, key)
        assert predictor.predict(5, 0) == make_chaff_packet(key, 0)


class TestManifest:
    def test_roundtrip(self):
        key = SessionKey.generate(random.Random(4))
        m = ChannelManifest(client_id=7, sequence=123456, signal=True)
        data = encode_manifest(m, key, slot=3)
        assert len(data) == 4
        out = decode_manifest(data, key, slot=3, expected_sequence=123450)
        assert out == m

    def test_wrong_slot_garbles(self):
        key = SessionKey.generate(random.Random(4))
        m = ChannelManifest(client_id=7, sequence=10, signal=False)
        data = encode_manifest(m, key, slot=0)
        out = decode_manifest(data, key, slot=1, expected_sequence=10)
        assert out != m

    def test_sequence_reconstruction_across_wrap(self):
        key = SessionKey.generate(random.Random(5))
        seq = (1 << 25) + 17  # wrapped once
        m = ChannelManifest(client_id=1, sequence=seq, signal=False)
        data = encode_manifest(m, key, slot=0)
        out = decode_manifest(data, key, slot=0,
                              expected_sequence=(1 << 25) + 10)
        assert out.sequence == seq

    def test_client_id_range_enforced(self):
        with pytest.raises(ValueError):
            ChannelManifest(client_id=64, sequence=0, signal=False)
        with pytest.raises(ValueError):
            ChannelManifest(client_id=1, sequence=-1, signal=False)

    def test_bad_length_rejected(self):
        key = SessionKey.generate(random.Random(6))
        with pytest.raises(ValueError):
            decode_manifest(b"\x00" * 3, key, 0, 0)


class TestChannel:
    def test_membership(self):
        ch = Channel(0)
        assert ch.add_member(100) == 0
        assert ch.add_member(200) == 1
        assert ch.members == {0: 100, 1: 200}
        assert ch.member_count() == 2

    def test_call_lifecycle(self):
        ch = Channel(0)
        ch.add_member(100)
        assert not ch.is_busy
        ch.start_call(0)
        assert ch.is_busy
        ch.end_call()
        assert not ch.is_busy

    def test_busy_channel_rejects_second_call(self):
        ch = Channel(0)
        ch.add_member(1)
        ch.add_member(2)
        ch.start_call(0)
        with pytest.raises(RuntimeError):
            ch.start_call(1)

    def test_unknown_slot_rejected(self):
        ch = Channel(0)
        with pytest.raises(KeyError):
            ch.start_call(0)

    def test_channel_capacity(self):
        ch = Channel(0)
        for i in range(64):
            ch.add_member(i)
        with pytest.raises(ValueError):
            ch.add_member(64)


@settings(max_examples=20, deadline=None)
@given(n_clients=st.integers(1, 8), active=st.integers(0, 8),
       seed=st.integers(0, 1000),
       payload=st.binary(min_size=1, max_size=CODED_PAYLOAD))
def test_decode_round_property(n_clients, active, seed, payload):
    """Any single active client among n is always recovered exactly."""
    keys = _keys(n_clients, seed)
    predictor = ChaffPredictor(keys)
    active = active % n_clients
    packets, manifests = [], []
    for i in range(n_clients):
        seq = seed + i
        if i == active:
            packets.append(make_payload_packet(keys[i], seq, payload))
        else:
            packets.append(make_chaff_packet(keys[i], seq))
        manifests.append((i, seq, False))
    got_active, got_payload, _ = decode_round(
        xor_bytes(*packets), manifests, predictor, active_client=active)
    assert got_active == active
    assert got_payload[:len(payload)] == payload
    assert got_payload[len(payload):] == b"\x00" * (CODED_PAYLOAD
                                                    - len(payload))

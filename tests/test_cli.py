"""Tests for the command-line interface."""


import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    @pytest.mark.parametrize("command", ["demo", "cost", "quality"])
    def test_known_commands_parse(self, command):
        args = build_parser().parse_args([command])
        assert args.command == command

    def test_attack_options(self):
        args = build_parser().parse_args(
            ["attack", "--users", "123", "--bin", "2.5"])
        assert args.users == 123
        assert args.bin == 2.5


class TestCommands:
    def test_demo_succeeds(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "delivered and decrypted" in out

    def test_attack_reports_both_systems(self, capsys):
        assert main(["attack", "--users", "400", "--days", "1"]) == 0
        out = capsys.readouterr().out
        assert "Tor-carried" in out
        assert "Herd-carried" in out

    def test_cost_reports_ranges(self, capsys):
        assert main(["cost", "--users", "100000"]) == 0
        out = capsys.readouterr().out
        assert "with superpeers" in out
        assert "without superpeers" in out

    def test_blocking_sweep_runs(self, capsys):
        assert main(["blocking", "--users", "500", "--days", "1"]) == 0
        out = capsys.readouterr().out
        assert "clients/channel" in out

    def test_trace_writes_csv(self, capsys, tmp_path):
        out_file = tmp_path / "trace.csv"
        with out_file.open("w") as fh:
            import repro.cli as cli
            parser = cli.build_parser()
            args = parser.parse_args(["trace", "--users", "100",
                                      "--days", "1"])
            args.output = fh
            assert cli._HANDLERS["trace"](args) == 0
        lines = out_file.read_text().splitlines()
        assert lines[0] == "caller,callee,start_s,duration_s"
        assert len(lines) > 10

    def test_quality_reports_pairs(self, capsys):
        assert main(["quality", "--packets", "40"]) == 0
        out = capsys.readouterr().out
        assert "AU-EU" in out
        assert "Herd extra one-way latency" in out


_PASSING_SCENARIO = """\
[scenario]
name = "cli-smoke"
horizon_s = 2.0
round_interval_s = 0.05

[zone]
n_clients = 8
n_channels = 4
n_sps = 2
k = 3
n_direct_clients = 2

[workload]
kind = "constant"
call_pairs = 1
call_start_s = 0.4

[criteria]
min_call_survival_rate = 1.0
min_call_legs_established = 2
"""

#: Same run, but demands shedding with no overload fault declared —
#: the criteria can never hold, so the CLI must exit nonzero.
_FAILING_SCENARIO = _PASSING_SCENARIO.replace(
    'name = "cli-smoke"', 'name = "cli-impossible"').replace(
    "[criteria]", "[criteria]\nrequire_shedding = true")


class TestScenarioCommand:
    def test_run_passing_scenario_exits_zero(self, capsys, tmp_path):
        path = tmp_path / "smoke.toml"
        path.write_text(_PASSING_SCENARIO)
        assert main(["scenario", "run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "cli-smoke" in out

    def test_run_failed_criteria_exit_nonzero(self, capsys, tmp_path):
        path = tmp_path / "impossible.toml"
        path.write_text(_FAILING_SCENARIO)
        assert main(["scenario", "run", str(path)]) == 1
        captured = capsys.readouterr()
        assert "FAIL" in captured.out
        assert "shedding never engaged" in captured.err

    def test_run_writes_report_artifact(self, tmp_path):
        import json
        path = tmp_path / "smoke.toml"
        path.write_text(_PASSING_SCENARIO)
        report_dir = tmp_path / "reports"
        assert main(["scenario", "run", str(path),
                     "--report-dir", str(report_dir)]) == 0
        artifact = json.loads(
            (report_dir / "cli-smoke.json").read_text())
        assert artifact["passed"] is True
        assert artifact["determinism_match"] is True
        assert "event" in artifact["engines"]

    def test_validate_rejects_bad_file(self, capsys, tmp_path):
        path = tmp_path / "typo.toml"
        path.write_text(_PASSING_SCENARIO.replace(
            "horizon_s", "horizn_s"))
        assert main(["scenario", "validate", str(path)]) == 2
        assert "horizon_s" in capsys.readouterr().err  # did-you-mean

    def test_validate_accepts_corpus(self, capsys):
        assert main(["scenario", "validate", "scenarios"]) == 0
        out = capsys.readouterr().out
        assert "flash-crowd" in out

    def test_list_shows_corpus(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "chaos-failover" in out


class TestReportCommand:
    def test_report_shapes_hold(self, capsys):
        assert main(["report", "--users", "1000"]) == 0
        out = capsys.readouterr().out
        assert "all shape criteria hold" in out
        assert "| E1 |" in out

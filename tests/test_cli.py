"""Tests for the command-line interface."""


import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    @pytest.mark.parametrize("command", ["demo", "cost", "quality"])
    def test_known_commands_parse(self, command):
        args = build_parser().parse_args([command])
        assert args.command == command

    def test_attack_options(self):
        args = build_parser().parse_args(
            ["attack", "--users", "123", "--bin", "2.5"])
        assert args.users == 123
        assert args.bin == 2.5


class TestCommands:
    def test_demo_succeeds(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "delivered and decrypted" in out

    def test_attack_reports_both_systems(self, capsys):
        assert main(["attack", "--users", "400", "--days", "1"]) == 0
        out = capsys.readouterr().out
        assert "Tor-carried" in out
        assert "Herd-carried" in out

    def test_cost_reports_ranges(self, capsys):
        assert main(["cost", "--users", "100000"]) == 0
        out = capsys.readouterr().out
        assert "with superpeers" in out
        assert "without superpeers" in out

    def test_blocking_sweep_runs(self, capsys):
        assert main(["blocking", "--users", "500", "--days", "1"]) == 0
        out = capsys.readouterr().out
        assert "clients/channel" in out

    def test_trace_writes_csv(self, capsys, tmp_path):
        out_file = tmp_path / "trace.csv"
        with out_file.open("w") as fh:
            import repro.cli as cli
            parser = cli.build_parser()
            args = parser.parse_args(["trace", "--users", "100",
                                      "--days", "1"])
            args.output = fh
            assert cli._HANDLERS["trace"](args) == 0
        lines = out_file.read_text().splitlines()
        assert lines[0] == "caller,callee,start_s,duration_s"
        assert len(lines) > 10

    def test_quality_reports_pairs(self, capsys):
        assert main(["quality", "--packets", "40"]) == 0
        out = capsys.readouterr().out
        assert "AU-EU" in out
        assert "Herd extra one-way latency" in out


class TestReportCommand:
    def test_report_shapes_hold(self, capsys):
        assert main(["report", "--users", "1000"]) == 0
        out = capsys.readouterr().out
        assert "all shape criteria hold" in out
        assert "| E1 |" in out

"""Tests for the federated (two-zone, SPs both ends) data path."""

import pytest

from repro.core.callmanager import CallState
from repro.core.rendezvous import CallError
from repro.simulation.federation import FederatedHerd


@pytest.fixture(scope="module")
def federation():
    net = FederatedHerd(n_clients_per_zone=6, n_channels=3, k=2, seed=3)
    call = net.call(("zone-EU", "eu-0"), ("zone-NA", "na-0"))
    return net, call


class TestEstablishment:
    def test_both_parties_in_call(self, federation):
        net, call = federation
        assert call.established
        assert net.zones["zone-EU"].state_of("eu-0") is CallState.IN_CALL
        assert net.zones["zone-NA"].state_of("na-0") is CallState.IN_CALL

    def test_circuits_spliced_across_zones(self, federation):
        net, call = federation
        caller_circuit = call.caller.client.circuit
        rdv = net.bed.mixes[caller_circuit.rendezvous_mix]
        state = rdv.circuit_state(caller_circuit.circuit_id)
        assert state.spliced_circuit == \
            call.callee.client.circuit.circuit_id
        assert state.next_hop.startswith("zone-NA/")

    def test_say_requires_establishment(self):
        net = FederatedHerd(n_clients_per_zone=4, n_channels=2, seed=9)
        from repro.simulation.federation import (FederatedCall,
                                                 FederatedEndpoint)
        call = FederatedCall(
            net,
            FederatedEndpoint(net.zones["zone-EU"], "eu-0"),
            FederatedEndpoint(net.zones["zone-NA"], "na-0"))
        with pytest.raises(CallError):
            call.say("caller_to_callee", b"\x00" * 160)


class TestVoiceAcrossZones:
    def test_frames_cross_zones_both_ways(self, federation):
        net, call = federation
        for i in range(8):
            call.say("caller_to_callee", bytes([100 + i]) * 160)
            call.say("callee_to_caller", bytes([200 + i]) * 160)
        net.run(12)
        call.drain_received()
        got_callee = [f[0] for f in call.callee.received_frames]
        got_caller = [f[0] for f in call.caller.received_frames]
        assert got_callee == [100 + i for i in range(8)]
        assert got_caller == [200 + i for i in range(8)]

    def test_frames_are_exact(self, federation):
        net, call = federation
        n_before = len(call.callee.received_frames)
        call.say("caller_to_callee", bytes(range(160)))
        net.run(4)
        call.drain_received()
        assert call.callee.received_frames[n_before] == bytes(range(160))

    def test_bystanders_learn_nothing(self, federation):
        net, call = federation
        call.say("caller_to_callee", b"\x99" * 160)
        net.run(4)
        for zone in net.zones.values():
            for cid, live in zone.clients.items():
                if cid in ("eu-0", "na-0"):
                    continue
                assert live.agent.state is CallState.IDLE
                assert live.agent.received_cells == []

    def test_sps_see_only_fixed_size_ciphertext(self, federation):
        net, call = federation
        # Both SPs keep forwarding one XOR + manifests per channel per
        # round regardless of the cross-zone call.
        eu_before = net.zones["zone-EU"].sp.rounds_forwarded
        na_before = net.zones["zone-NA"].sp.rounds_forwarded
        for _ in range(5):
            call.say("caller_to_callee", b"\x01" * 160)
        net.run(10)
        assert net.zones["zone-EU"].sp.rounds_forwarded - eu_before \
            == 10 * 3  # rounds × channels, payload-independent
        assert net.zones["zone-NA"].sp.rounds_forwarded - na_before \
            == 10 * 3

    def test_second_concurrent_call(self):
        net = FederatedHerd(n_clients_per_zone=6, n_channels=3, k=3,
                            seed=11)
        call1 = net.call(("zone-EU", "eu-0"), ("zone-NA", "na-0"))
        call2 = net.call(("zone-NA", "na-1"), ("zone-EU", "eu-1"))
        call1.say("caller_to_callee", b"\x10" * 160)
        call2.say("caller_to_callee", b"\x20" * 160)
        net.run(6)
        call1.drain_received()
        call2.drain_received()
        assert call1.callee.received_frames[0][0] == 0x10
        assert call2.callee.received_frames[0][0] == 0x20

"""Reporter golden tests (text/JSON/SARIF) and CLI runner exit-code
tests — the fixture-based demonstration that the CI gate fails on an
unsuppressed finding and passes otherwise."""

import json
from pathlib import Path

from repro.cli import main as repro_main
from repro.lint import LintConfig, all_rules, run_lint
from repro.lint.cli import main as lint_main
from repro.lint.reporters import (
    render_json,
    render_sarif,
    render_text,
)

FIXTURES = Path(__file__).parent / "lint_fixtures"
VIOLATION = str(FIXTURES / "global_rng_violation.py")
SUPPRESSED = str(FIXTURES / "global_rng_suppressed.py")
CLEAN = str(FIXTURES / "global_rng_clean.py")


def result_with_findings():
    return run_lint([VIOLATION, SUPPRESSED], LintConfig())


def test_text_report_format():
    text = render_text(result_with_findings())
    first = text.splitlines()[0]
    # path:line:col: RULE message
    assert "global_rng_violation.py:" in first
    assert ": HL002 " in first
    assert "files scanned" in text.splitlines()[-1]
    # suppressed findings are hidden unless asked for
    assert "(suppressed)" not in text
    shown = render_text(result_with_findings(), show_suppressed=True)
    assert "(suppressed)" in shown


def test_json_report_golden_structure():
    payload = json.loads(render_json(result_with_findings()))
    assert payload["tool"] == "herdlint"
    assert payload["files_scanned"] == 2
    assert payload["summary"]["active"] >= 4
    assert payload["summary"]["suppressed"] >= 2
    assert payload["summary"]["total"] == len(payload["findings"])
    finding = payload["findings"][0]
    assert set(finding) == {"rule", "message", "path", "line", "col",
                            "severity", "suppressed", "baselined"}
    assert finding["rule"].startswith("HL")
    assert set(payload["flow_cache"]) == {"hits", "misses"}


def test_sarif_report_golden_structure():
    sarif = json.loads(render_sarif(result_with_findings()))
    assert sarif["version"] == "2.1.0"
    (run,) = sarif["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "herdlint"
    rule_ids = {rule["id"] for rule in driver["rules"]}
    assert {r.rule_id for r in all_rules()} <= rule_ids
    assert run["results"], "expected at least one result"
    result = run["results"][0]
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"].endswith(".py")
    assert location["region"]["startLine"] >= 1
    # suppressed findings carry an inSource suppression marker
    suppressed = [r for r in run["results"] if "suppressions" in r]
    assert suppressed
    assert suppressed[0]["suppressions"] == [{"kind": "inSource"}]


def test_runner_fails_on_unsuppressed_finding(capsys):
    assert lint_main([VIOLATION]) == 1
    out = capsys.readouterr().out
    assert "HL002" in out


def test_runner_passes_when_all_findings_suppressed(capsys):
    assert lint_main([SUPPRESSED]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_runner_passes_on_clean_file(capsys):
    assert lint_main([CLEAN]) == 0
    capsys.readouterr()


def test_runner_warn_only_downgrades_exit(capsys):
    assert lint_main([VIOLATION, "--warn-only"]) == 0
    assert "HL002" in capsys.readouterr().out


def test_runner_writes_sarif_output_file(tmp_path, capsys):
    out_file = tmp_path / "herdlint.sarif"
    code = lint_main([VIOLATION, "--format", "sarif",
                      "--output", str(out_file)])
    capsys.readouterr()
    assert code == 1
    sarif = json.loads(out_file.read_text())
    assert sarif["runs"][0]["results"]


def test_runner_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("HL001", "HL002", "HL003", "HL004", "HL005",
                    "HL006"):
        assert rule_id in out


def test_repro_cli_lint_subcommand(capsys):
    """`repro lint` is the same gate mounted on the main CLI."""
    assert repro_main(["lint", VIOLATION, "--warn-only"]) == 0
    assert repro_main(["lint", VIOLATION]) == 1
    assert repro_main(["lint", CLEAN]) == 0
    capsys.readouterr()

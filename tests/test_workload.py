"""Tests for the workload substrate: CDRs, social graphs, generator."""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workload.cdr import CallRecord, CallTrace
from repro.workload.datasets import (
    DATASETS,
    FACEBOOK,
    MOBILE,
    MOBILE_CALLS_PER_USER_DAY,
    TWITTER,
)
from repro.workload.generator import SyntheticTraceConfig, generate_trace
from repro.workload.social import (
    SocialGraph,
    calibrate_alpha,
    degree_sequence,
    estimated_anonymity_set,
)


class TestCallRecord:
    def test_end_time(self):
        r = CallRecord(1, 2, 10.0, 60.0)
        assert r.end == 70.0

    def test_self_call_rejected(self):
        with pytest.raises(ValueError):
            CallRecord(1, 1, 0.0, 10.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            CallRecord(1, 2, 0.0, -1.0)


class TestCallTrace:
    def _trace(self):
        return CallTrace([
            CallRecord(1, 2, 0.0, 100.0),
            CallRecord(3, 4, 50.0, 100.0),
            CallRecord(5, 6, 200.0, 50.0),
        ])

    def test_sorted_by_start(self):
        trace = CallTrace([
            CallRecord(1, 2, 50.0, 10.0),
            CallRecord(3, 4, 0.0, 10.0),
        ])
        assert [r.start for r in trace] == [0.0, 50.0]

    def test_users(self):
        assert self._trace().users == {1, 2, 3, 4, 5, 6}

    def test_span(self):
        assert self._trace().span == (0.0, 250.0)
        assert CallTrace([]).span == (0.0, 0.0)

    def test_binned_events(self):
        starts, ends = self._trace().binned_events(60.0)
        assert list(starts) == [0, 0, 3]
        assert list(ends) == [1, 2, 4]

    def test_binned_events_bad_width(self):
        with pytest.raises(ValueError):
            self._trace().binned_events(0.0)

    def test_concurrency_profile(self):
        profile = self._trace().concurrency_profile(step=25.0)
        # t=0:1, t=25:1, t=50:2, t=75:2, t=100:1 (call 1 ended at 100,
        # searchsorted side="right" counts it as ended), ...
        assert profile.max() == 2

    def test_peak_duty_cycle(self):
        trace = self._trace()
        # peak concurrency 2 calls → 4 users out of 100 → 4%.
        assert trace.peak_duty_cycle(100, step=25.0) == pytest.approx(0.04)

    def test_peak_duty_cycle_validates_users(self):
        with pytest.raises(ValueError):
            self._trace().peak_duty_cycle(0)

    def test_contact_degrees(self):
        trace = CallTrace([
            CallRecord(1, 2, 0.0, 1.0),
            CallRecord(1, 3, 10.0, 1.0),
            CallRecord(2, 1, 20.0, 1.0),  # repeat pair
        ])
        degrees = trace.contact_degrees()
        assert degrees[1] == 2
        assert degrees[2] == 1
        assert degrees[3] == 1

    def test_calls_between(self):
        trace = self._trace()
        assert len(trace.calls_between(0.0, 60.0)) == 2
        assert len(trace.calls_between(60.0, 300.0)) == 1

    def test_window_shifts_times(self):
        sub = self._trace().window(50.0, 300.0)
        assert len(sub) == 2
        assert sub.records[0].start == 0.0

    def test_total_call_seconds(self):
        assert self._trace().total_call_seconds() == 250.0

    def test_empty_profile(self):
        assert CallTrace([]).peak_concurrency() == 0


class TestDegreeSequence:
    def test_median_matches_target(self):
        for median, maximum in ((12, 1500), (8, 4875)):
            seq = degree_sequence(20_000, median, maximum,
                                  rng=random.Random(1))
            assert abs(np.median(seq) - median) <= 2

    def test_max_pinned(self):
        seq = degree_sequence(1000, 12, 1500, rng=random.Random(1))
        assert seq.max() == 1500

    def test_max_not_pinned_when_disabled(self):
        seq = degree_sequence(100, 5, 10_000, rng=random.Random(1),
                              include_max=False)
        assert seq.max() < 10_000

    def test_all_degrees_positive(self):
        seq = degree_sequence(5000, 12, 1500, rng=random.Random(2))
        assert seq.min() >= 1

    def test_heavy_tail(self):
        seq = degree_sequence(20_000, 12, 1500, rng=random.Random(3))
        assert np.mean(seq) > np.median(seq)  # right-skewed

    def test_calibrate_alpha_bounds(self):
        with pytest.raises(ValueError):
            calibrate_alpha(0, 100)
        with pytest.raises(ValueError):
            calibrate_alpha(200, 100)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            degree_sequence(0, 12, 100)


class TestSocialGraph:
    def test_neighbourhood_hops(self):
        # Path graph 0-1-2-3-4.
        g = SocialGraph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        assert g.neighbourhood(0, 1) == {1}
        assert g.neighbourhood(0, 2) == {1, 2}
        assert g.neighbourhood(0, 4) == {1, 2, 3, 4}
        assert g.neighbourhood(2, 1) == {1, 3}

    def test_neighbourhood_excludes_self(self):
        g = SocialGraph.from_edges(3, [(0, 1), (1, 2), (2, 0)])
        assert 0 not in g.neighbourhood(0, 3)

    def test_neighbourhood_zero_hops(self):
        g = SocialGraph.from_edges(2, [(0, 1)])
        assert g.neighbourhood(0, 0) == set()

    def test_negative_hops_rejected(self):
        g = SocialGraph.from_edges(2, [(0, 1)])
        with pytest.raises(ValueError):
            g.neighbourhood(0, -1)

    def test_anonymity_set_sizes(self):
        g = SocialGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        sizes = g.anonymity_set_sizes(1)
        assert list(sizes) == [1, 2, 2, 1]

    def test_configuration_model_degrees_approximate(self):
        degrees = [3] * 100
        g = SocialGraph.configuration_model(degrees, random.Random(5))
        actual = g.degrees()
        assert abs(actual.mean() - 3) < 0.5

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            SocialGraph.from_edges(2, [(0, 0)])

    def test_estimated_anonymity_matches_paper(self):
        # Fig. 4: H=3 medians 1728, 512, ~40M.
        assert estimated_anonymity_set(12, 3) == 1728
        assert estimated_anonymity_set(8, 3) == 512
        assert estimated_anonymity_set(343, 3) == pytest.approx(40.4e6,
                                                                rel=0.01)

    def test_estimated_anonymity_validates_hops(self):
        with pytest.raises(ValueError):
            estimated_anonymity_set(12, 0)


class TestDatasets:
    def test_registry(self):
        assert set(DATASETS) == {"Mobile", "Twitter", "Facebook"}

    def test_paper_bandwidths(self):
        # Fig. 5: medians 96 KB/s, 64 KB/s, 2.6 MB/s (2744 KB/s).
        assert MOBILE.median_bandwidth_kbps == 96.0
        assert TWITTER.median_bandwidth_kbps == 64.0
        assert FACEBOOK.median_bandwidth_kbps == pytest.approx(2744.0)

    def test_paper_max_bandwidths(self):
        # Fig. 5: maxima 12 MB/s, 39 MB/s, 6.2 GB/s.
        assert MOBILE.max_bandwidth_kbps == pytest.approx(12_000.0)
        assert TWITTER.max_bandwidth_kbps == pytest.approx(39_000.0)
        assert FACEBOOK.max_bandwidth_kbps == pytest.approx(6.2e6)

    def test_implied_call_volume(self):
        assert MOBILE_CALLS_PER_USER_DAY == pytest.approx(1.105, abs=0.01)


class TestGenerator:
    @pytest.fixture(scope="class")
    def week_trace(self):
        cfg = SyntheticTraceConfig(n_users=4000, days=7, seed=42,
                                   max_degree=120)
        return cfg, generate_trace(cfg)

    def test_volume_matches_config(self, week_trace):
        cfg, trace = week_trace
        expected = cfg.n_users * cfg.calls_per_user_day * cfg.days
        # The per-user non-overlap constraint drops a share of the
        # generated calls (heavy callers collide with themselves).
        assert 0.75 * expected < len(trace) <= 1.05 * expected

    def test_all_users_within_range(self, week_trace):
        cfg, trace = week_trace
        assert all(0 <= r.caller < cfg.n_users and
                   0 <= r.callee < cfg.n_users for r in trace)

    def test_peak_duty_cycle_near_paper_value(self, week_trace):
        cfg, trace = week_trace
        duty = trace.peak_duty_cycle(cfg.n_users, step=60.0)
        # Paper: 1.6%.  Accept the right order of magnitude band.
        assert 0.008 < duty < 0.030, duty

    def test_diurnal_shape_visible(self, week_trace):
        _, trace = week_trace
        hours = np.array([int(r.start % 86400) // 3600 for r in trace])
        night = np.sum((hours >= 2) & (hours < 4))
        evening = np.sum((hours >= 18) & (hours < 20))
        assert evening > 10 * night

    def test_median_contact_degree(self, week_trace):
        cfg, trace = week_trace
        degrees = list(trace.contact_degrees().values())
        # Observed partners over a week are a subset of the contact
        # list; the median must not exceed the configured degree and
        # should be in its vicinity.
        assert np.median(degrees) <= cfg.median_degree + 2
        assert np.median(degrees) >= 2

    def test_durations_within_bounds(self, week_trace):
        cfg, trace = week_trace
        durations = [r.duration for r in trace]
        assert min(durations) >= cfg.min_duration
        assert max(durations) <= cfg.max_duration

    def test_duration_distribution_minutes_scale(self, week_trace):
        _, trace = week_trace
        durations = np.array([r.duration for r in trace])
        assert 60 < np.median(durations) < 240
        assert np.mean(durations) > np.median(durations)  # lognormal skew

    def test_deterministic_given_seed(self):
        cfg = SyntheticTraceConfig(n_users=200, days=1, seed=7,
                                   max_degree=50)
        t1, t2 = generate_trace(cfg), generate_trace(cfg)
        assert len(t1) == len(t2)
        assert all(a == b for a, b in zip(t1.records, t2.records))

    def test_different_seed_differs(self):
        base = dict(n_users=200, days=1, max_degree=50)
        t1 = generate_trace(SyntheticTraceConfig(seed=1, **base))
        t2 = generate_trace(SyntheticTraceConfig(seed=2, **base))
        assert [r.start for r in t1.records[:20]] != \
               [r.start for r in t2.records[:20]]

    def test_for_dataset_constructor(self):
        cfg = SyntheticTraceConfig.for_dataset(MOBILE, n_users=500,
                                               max_degree=100)
        assert cfg.median_degree == 12
        assert cfg.n_users == 500

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SyntheticTraceConfig(n_users=1)
        with pytest.raises(ValueError):
            SyntheticTraceConfig(days=0)
        with pytest.raises(ValueError):
            SyntheticTraceConfig(n_users=100, max_degree=100)
        with pytest.raises(ValueError):
            SyntheticTraceConfig(diurnal=(1.0,) * 23)


@settings(max_examples=10, deadline=None)
@given(n_users=st.integers(min_value=50, max_value=500),
       seed=st.integers(min_value=0, max_value=1000))
def test_generator_invariants_property(n_users, seed):
    cfg = SyntheticTraceConfig(n_users=n_users, days=1, seed=seed,
                               max_degree=min(40, n_users - 1))
    trace = generate_trace(cfg)
    for r in trace:
        assert r.caller != r.callee
        assert r.duration >= cfg.min_duration
        assert 0.0 <= r.start < cfg.days * 86400.0


class TestWeekendModulation:
    def test_weekends_lighter(self):
        cfg = SyntheticTraceConfig(n_users=3000, days=14, seed=8,
                                   max_degree=100, weekend_factor=0.6)
        trace = generate_trace(cfg)
        weekday_calls = weekend_calls = 0
        weekday_days = weekend_days = 0
        for day in range(cfg.days):
            count = len(trace.calls_between(day * 86400.0,
                                            (day + 1) * 86400.0))
            if day % 7 in (5, 6):
                weekend_calls += count
                weekend_days += 1
            else:
                weekday_calls += count
                weekday_days += 1
        weekday_rate = weekday_calls / weekday_days
        weekend_rate = weekend_calls / weekend_days
        assert weekend_rate < 0.8 * weekday_rate

    def test_factor_one_is_flat(self):
        cfg = SyntheticTraceConfig(n_users=1000, days=14, seed=8,
                                   max_degree=100, weekend_factor=1.0)
        trace = generate_trace(cfg)
        counts = [len(trace.calls_between(d * 86400.0,
                                          (d + 1) * 86400.0))
                  for d in range(14)]
        assert max(counts) < 1.3 * min(counts)

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticTraceConfig(n_users=100, max_degree=50,
                                 weekend_factor=0.0)

"""herdprof unit tests: the phase profiler's self-time stack, the
deep-profile flamegraph export, and bench provenance.

The PhaseProfiler tests drive the profiler with an injectable fake
clock so every wall-time assertion is exact — no sleeps, no tolerance
bands.  The clock contract (DESIGN.md §11): host time is read only
through ``repro.obs.prof.perfclock``, and the profiler accepts any
zero-argument callable in its place.
"""

import re

from repro.obs.prof import PHASES, PhaseProfiler
from repro.obs.prof import deepprof
from repro.obs.prof.provenance import (
    BENCH_SCHEMA_VERSION,
    machine_fingerprint,
    provenance,
)


class FakeClock:
    """A scripted host clock: each read returns the next value."""

    def __init__(self, *times):
        self._times = list(times)

    def __call__(self):
        return self._times.pop(0)


class TestPhaseProfiler:
    def test_flat_phase_accumulates_wall_and_counters(self):
        prof = PhaseProfiler(clock=FakeClock(1.0, 3.5, 10.0, 10.25))
        prof.begin("deliver")
        prof.end(cells=40)
        prof.begin("deliver")
        prof.end(cells=2)
        snap = prof.snapshot()
        assert snap == {"deliver": {"wall_s": 2.75, "calls": 2,
                                    "cells": 42}}

    def test_nested_phase_self_time_subtracts_child(self):
        # deliver opens at t=0, adversary-observe runs t=1..4 inside
        # it, deliver closes at t=6: deliver's self-time is 6-3=3,
        # the child gets its full 3, and the totals sum to the
        # elapsed 6 with no double counting.
        prof = PhaseProfiler(clock=FakeClock(0.0, 1.0, 4.0, 6.0))
        prof.begin("deliver")
        prof.begin("adversary-observe")
        prof.end(cells=8)
        prof.end(cells=8)
        snap = prof.snapshot()
        assert snap["deliver"]["wall_s"] == 3.0
        assert snap["adversary-observe"]["wall_s"] == 3.0
        assert sum(p["wall_s"] for p in snap.values()) == 6.0

    def test_count_bumps_without_timing(self):
        prof = PhaseProfiler(clock=FakeClock())
        prof.count("schedule", calls=3)
        prof.count("schedule", calls=1, cells=7)
        snap = prof.snapshot()
        assert snap["schedule"] == {"wall_s": 0.0, "calls": 4,
                                    "cells": 7}

    def test_round_accounting(self):
        prof = PhaseProfiler(clock=FakeClock(10.0, 12.0, 20.0, 23.0))
        prof.round_started(0)
        prof.round_finished(0)
        prof.round_started(1)
        prof.round_finished(1)
        assert prof.rounds_profiled == 2
        assert prof.round_wall_s == 5.0
        report = prof.report()
        assert report["rounds_profiled"] == 2
        assert report["round_wall_s"] == 5.0

    def test_snapshot_orders_taxonomy_first_then_adhoc(self):
        prof = PhaseProfiler(clock=FakeClock())
        for phase in ("zeta", "deliver", "alpha", "schedule", "chaff"):
            prof.count(phase, calls=1)
        assert list(prof.snapshot()) == ["schedule", "chaff",
                                         "deliver", "alpha", "zeta"]
        assert set(PHASES) >= {"schedule", "chaff", "deliver"}

    def test_report_profiled_wall_sums_phases(self):
        prof = PhaseProfiler(clock=FakeClock(0.0, 2.0, 2.0, 5.0))
        prof.begin("chaff")
        prof.end()
        prof.begin("mix-forward")
        prof.end()
        report = prof.report()
        assert report["profiled_wall_s"] == 5.0
        assert report["phases"]["chaff"]["wall_s"] == 2.0
        assert report["phases"]["mix-forward"]["wall_s"] == 3.0

    def test_table_renders_every_phase(self):
        prof = PhaseProfiler(clock=FakeClock(0.0, 1.0))
        prof.begin("deliver")
        prof.end(cells=9)
        text = prof.table()
        assert "deliver" in text and "total" in text

    def test_attach_sets_the_duck_typed_prof_attribute(self):
        class Component:
            prof = None

        prof = PhaseProfiler(clock=FakeClock())
        loop, scheduler, link = Component(), Component(), Component()
        prof.attach_loop(loop)
        prof.attach_scheduler(scheduler)
        prof.attach_link(link)
        assert loop.prof is scheduler.prof is link.prof is prof

    def test_attach_zone_propagates_to_attached_wire(self):
        class Wire:
            def __init__(self):
                self.prof = None

            def set_profiler(self, prof):
                self.prof = prof

        class Zone:
            def __init__(self, wire):
                self.prof = None
                self.wire = wire

        prof = PhaseProfiler(clock=FakeClock())
        zone = Zone(Wire())
        prof.attach_zone(zone)
        assert zone.prof is prof and zone.wire.prof is prof
        bare = Zone(None)
        prof.attach_zone(bare)  # no wire yet: must not raise
        assert bare.prof is prof

    def test_detached_hot_path_is_a_single_attribute_test(self):
        # The protocol contract: instrumented components default prof
        # to None and never import repro.obs — detached runs pay one
        # `is not None` per hook point.
        import ast
        import inspect

        import repro.netsim.link as link_mod
        import repro.simulation.live as live_mod

        for mod in (link_mod, live_mod):
            tree = ast.parse(inspect.getsource(mod))
            imported = {node.names[0].name.split(".")[0]
                        for node in ast.walk(tree)
                        if isinstance(node, ast.Import)}
            imported |= {(node.module or "").split(".")[0]
                         for node in ast.walk(tree)
                         if isinstance(node, ast.ImportFrom)}
            assert "repro" not in imported or all(
                not (node.module or "").startswith("repro.obs")
                for node in ast.walk(tree)
                if isinstance(node, ast.ImportFrom))


def _leaf():
    return sum(range(200))


def _branch_a():
    return _leaf() + _leaf()


def _branch_b():
    return _leaf()


def _root_workload():
    return _branch_a() + _branch_b()


class TestDeepProfile:
    def test_capture_returns_result_and_profile(self):
        result, profile = deepprof.capture(_root_workload)
        assert result == 3 * sum(range(200))
        assert profile.total_time_s() > 0.0

    def test_self_time_table_sorted_and_limited(self):
        _, profile = deepprof.capture(_root_workload)
        rows = profile.self_time_table(limit=5)
        assert 0 < len(rows) <= 5
        selfs = [row["self_s"] for row in rows]
        assert selfs == sorted(selfs, reverse=True)
        assert all(row["cum_s"] >= row["self_s"] - 1e-12
                   for row in rows)

    def test_collapsed_stacks_paths_and_format(self):
        _, profile = deepprof.capture(_root_workload)
        text = profile.collapsed_stacks()
        for line in text.strip().splitlines():
            assert re.fullmatch(r".+ \d+", line), line
            assert int(line.rsplit(" ", 1)[1]) > 0
        # The call graph survives collapsing: the leaf shows up under
        # both branches of the root workload.
        stacks = [line.rsplit(" ", 1)[0]
                  for line in text.strip().splitlines()]
        a_paths = [s for s in stacks
                   if "_branch_a" in s and s.endswith("_leaf")]
        b_paths = [s for s in stacks
                   if "_branch_b" in s and s.endswith("_leaf")]
        assert a_paths and b_paths

    def test_write_flamegraph_and_self_time(self, tmp_path):
        _, profile = deepprof.capture(_root_workload)
        flame = tmp_path / "flame.txt"
        table = tmp_path / "selftime.txt"
        deepprof.write_flamegraph(profile, str(flame),
                                  self_time_path=str(table))
        assert flame.read_text().strip()
        assert "function" in table.read_text()

    def test_recursion_is_cut_not_infinite(self):
        def rec(n):
            return 0 if n == 0 else rec(n - 1) + 1

        _, profile = deepprof.capture(rec, 50)
        text = profile.collapsed_stacks()
        assert all(line.count("rec") <= 1
                   for line in text.splitlines())


class TestProvenance:
    def test_fields_and_schema(self):
        prov = provenance(timestamp_utc="2026-08-08T00:00:00Z")
        assert prov["schema"] == BENCH_SCHEMA_VERSION
        assert prov["timestamp_utc"] == "2026-08-08T00:00:00Z"
        assert re.fullmatch(r"[0-9a-f]{16}",
                            prov["machine_fingerprint"])
        assert prov["python"] and prov["platform"]

    def test_fingerprint_is_stable(self):
        assert machine_fingerprint() == machine_fingerprint()

    def test_timestamp_is_callers_responsibility(self):
        # provenance() itself never reads the wall clock — the CLI /
        # harness layer stamps it.  No timestamp in, None out.
        assert provenance()["timestamp_utc"] is None

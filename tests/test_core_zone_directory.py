"""Tests for trust zones, directories, and rate orchestration."""

import random

import pytest

from repro.core.chaffing import ConstantRateChaffer, RateController
from repro.core.directory import ZoneDirectory
from repro.core.zone import TrustZone, ZoneConfig
from repro.crypto.keys import IdentityKeyPair, ShortTermKeyPair
from repro.crypto.pki import RootOfTrust, make_descriptor
from repro.voip.codec import G711


def _zone(zone_id="zone-EU", rng_seed=1):
    rng = random.Random(rng_seed)
    zone = TrustZone(ZoneConfig(zone_id=zone_id, site_id="dc-eu"))
    root = RootOfTrust(rng)
    directory = ZoneDirectory(zone, root, rng)
    return zone, root, directory, rng


class TestTrustZone:
    def test_add_mix(self):
        zone, _, _, _ = _zone()
        zone.add_mix("mix-1")
        assert zone.mix_ids == ["mix-1"]

    def test_duplicate_mix_rejected(self):
        zone, _, _, _ = _zone()
        zone.add_mix("mix-1")
        with pytest.raises(ValueError):
            zone.add_mix("mix-1")

    def test_interzone_controller_shared_per_zone(self):
        zone, _, _, _ = _zone()
        a = zone.interzone_controller("zone-NA")
        b = zone.interzone_controller("zone-NA")
        assert a is b

    def test_interzone_controller_rejects_self(self):
        zone, _, _, _ = _zone()
        with pytest.raises(ValueError):
            zone.interzone_controller("zone-EU")

    def test_pair_key_sorted(self):
        zone, _, _, _ = _zone()
        assert zone.pair_key("zone-AA") == ("zone-AA", "zone-EU")
        assert zone.pair_key("zone-ZZ") == ("zone-EU", "zone-ZZ")


class TestDirectoryEnrollment:
    def test_directory_certificate_chains_to_root(self):
        _, root, directory, _ = _zone()
        assert directory.certificate.verify(root.public_key)

    def test_enroll_issues_verifiable_cert(self):
        _, root, directory, rng = _zone()
        ident = IdentityKeyPair.generate(rng)
        st = ShortTermKeyPair.generate(rng)
        cert = directory.enroll("client-1", "client",
                                ident.public_bytes, st.public_bytes)
        assert root.verify_chain(cert, directory.certificate)
        assert directory.certificate_of("client-1") == cert

    def test_double_enroll_rejected(self):
        _, _, directory, rng = _zone()
        ident = IdentityKeyPair.generate(rng)
        st = ShortTermKeyPair.generate(rng)
        directory.enroll("c", "client", ident.public_bytes,
                         st.public_bytes)
        with pytest.raises(ValueError):
            directory.enroll("c", "client", ident.public_bytes,
                             st.public_bytes)


class TestDescriptors:
    def test_publish_and_lookup(self):
        _, _, directory, rng = _zone()
        ident = IdentityKeyPair.generate(rng)
        st = ShortTermKeyPair.generate(rng)
        desc = make_descriptor(ident, "mix-1", "zone-EU",
                               st.public_bytes, "addr")
        directory.publish_descriptor(desc)
        assert directory.lookup_descriptor("mix-1") == desc
        assert directory.lookup_descriptor("nobody") is None

    def test_wrong_zone_descriptor_rejected(self):
        _, _, directory, rng = _zone()
        ident = IdentityKeyPair.generate(rng)
        st = ShortTermKeyPair.generate(rng)
        desc = make_descriptor(ident, "mix-1", "zone-NA",
                               st.public_bytes, "addr")
        with pytest.raises(ValueError):
            directory.publish_descriptor(desc)

    def test_invalid_signature_rejected(self):
        from dataclasses import replace
        _, _, directory, rng = _zone()
        ident = IdentityKeyPair.generate(rng)
        st = ShortTermKeyPair.generate(rng)
        desc = make_descriptor(ident, "mix-1", "zone-EU",
                               st.public_bytes, "addr")
        bad = replace(desc, address="evil")
        with pytest.raises(ValueError):
            directory.publish_descriptor(bad)


class TestMixSelectionAndRendezvous:
    def test_pick_mix_uniform(self):
        zone, _, directory, _ = _zone()
        for i in range(5):
            zone.add_mix(f"mix-{i}")
        counts = {}
        for _ in range(2000):
            m = directory.pick_mix()
            counts[m] = counts.get(m, 0) + 1
        expected = 2000 / 5
        assert all(abs(c - expected) < 0.3 * expected
                   for c in counts.values())

    def test_pick_mix_exclusion(self):
        zone, _, directory, _ = _zone()
        zone.add_mix("mix-0")
        zone.add_mix("mix-1")
        assert directory.pick_mix(exclude="mix-0") == "mix-1"

    def test_pick_mix_empty_zone(self):
        _, _, directory, _ = _zone()
        with pytest.raises(RuntimeError):
            directory.pick_mix()

    def test_rendezvous_publish_lookup(self):
        zone, _, directory, _ = _zone()
        zone.add_mix("mix-0")
        directory.publish_rendezvous(b"\x01" * 32, "mix-0")
        record = directory.lookup_rendezvous(b"\x01" * 32)
        assert record.rendezvous_mix == "mix-0"
        assert directory.lookup_rendezvous(b"\x02" * 32) is None

    def test_rendezvous_must_be_zone_mix(self):
        _, _, directory, _ = _zone()
        with pytest.raises(ValueError):
            directory.publish_rendezvous(b"\x01" * 32, "foreign-mix")


class TestRateOrchestration:
    def test_reports_require_known_mix(self):
        _, _, directory, _ = _zone()
        with pytest.raises(ValueError):
            directory.report_utilization("mix-0", 3)

    def test_epoch_aggregates_reports(self):
        zone, _, directory, _ = _zone()
        zone.add_mix("mix-0")
        zone.add_mix("mix-1")
        directory.report_utilization("mix-0", 10)
        directory.report_utilization("mix-1", 30)
        rates = directory.run_epoch(0)
        # 40 active calls at initial rate 1 → massive over-utilization
        # → scale to ceil(40 / 0.5) = 80 units.
        assert rates["sp_links"] == 80
        assert rates["intra_links"] == 80

    def test_epoch_clears_reports(self):
        zone, _, directory, _ = _zone()
        zone.add_mix("mix-0")
        directory.report_utilization("mix-0", 10)
        directory.run_epoch(0)
        rates = directory.run_epoch(1)
        # No reports → zero load → scale down to the minimum.
        assert rates["sp_links"] == 1

    def test_interzone_epoch_synchronizes_rates(self):
        zone_a, root_a, dir_a, _ = _zone("zone-A")
        zone_b = TrustZone(ZoneConfig(zone_id="zone-B", site_id="dc-na"))
        dir_b = ZoneDirectory(zone_b, root_a, random.Random(2))
        rate = dir_a.run_interzone_epoch(0, dir_b, pair_calls=25)
        assert rate == 50  # ceil(25 / 0.5)
        assert zone_a.interzone_controller("zone-B").rate == rate
        assert zone_b.interzone_controller("zone-A").rate == rate


class TestRateController:
    def test_no_change_within_band(self):
        rc = RateController(initial_rate=10)
        assert rc.on_epoch(0, 5) == 10  # utilization 0.5 = target
        assert rc.adjustments == 0

    def test_scale_up_above_high_water(self):
        rc = RateController(initial_rate=10)
        assert rc.on_epoch(0, 9) == 18  # 0.9 > 0.85 → ceil(9/0.5)

    def test_scale_down_below_low_water(self):
        rc = RateController(initial_rate=100)
        assert rc.on_epoch(0, 10) == 20  # 0.1 < 0.25 → ceil(10/0.5)

    def test_zero_load_goes_to_min(self):
        rc = RateController(initial_rate=100, min_rate=2)
        assert rc.on_epoch(0, 0) == 2

    def test_max_rate_cap(self):
        rc = RateController(initial_rate=1, max_rate=5)
        assert rc.on_epoch(0, 100) == 5

    def test_hysteresis_reduces_adjustments(self):
        rc = RateController(initial_rate=10)
        for epoch, load in enumerate([5, 5.5, 4.5, 5, 5.2]):
            rc.on_epoch(epoch, load)
        assert rc.adjustments == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RateController(target=0.9, low_water=0.95, high_water=0.99)
        with pytest.raises(ValueError):
            RateController(initial_rate=0, min_rate=1)
        rc = RateController()
        with pytest.raises(ValueError):
            rc.on_epoch(0, -1)


class TestConstantRateChaffer:
    def test_chaff_when_idle(self):
        ch = ConstantRateChaffer(G711)
        slots = ch.tick()
        assert slots == [None]
        assert ch.chaff_sent == 1

    def test_payload_substitution(self):
        ch = ConstantRateChaffer(G711)
        ch.enqueue_payload(b"cell-1")
        ch.enqueue_payload(b"cell-2")
        assert ch.tick() == [b"cell-1"]
        assert ch.tick() == [b"cell-2"]
        assert ch.tick() == [None]
        assert ch.payload_sent == 2
        assert ch.chaff_sent == 1

    def test_rate_multiple(self):
        ch = ConstantRateChaffer(G711, rate_multiple=3)
        ch.enqueue_payload(b"x")
        slots = ch.tick()
        assert len(slots) == 3
        assert slots[0] == b"x"
        assert slots[1] is None

    def test_interval_from_codec(self):
        assert ConstantRateChaffer(G711).interval == 0.02

    def test_emission_count_is_payload_independent(self):
        """Invariant I6: ticks emit exactly the same number of packets
        whether or not payload is queued."""
        idle = ConstantRateChaffer(G711)
        busy = ConstantRateChaffer(G711)
        for i in range(100):
            if i % 3 == 0:
                busy.enqueue_payload(b"frame")
            idle.tick()
            busy.tick()
        assert (idle.payload_sent + idle.chaff_sent
                == busy.payload_sent + busy.chaff_sent == 100)

    def test_rate_multiple_validation(self):
        with pytest.raises(ValueError):
            ConstantRateChaffer(G711, rate_multiple=0)

"""Cross-cutting property-based tests (hypothesis).

Each property here is a system-level invariant spanning modules, as
opposed to the per-module properties in the individual test files.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.allocation import assign_clients_to_channels
from repro.core.chaffing import ConstantRateChaffer, RateController
from repro.core.channel import ChannelManifest, decode_manifest, \
    encode_manifest
from repro.core.network_coding import (
    ChaffPredictor,
    decode_round,
    make_chaff_packet,
    make_payload_packet,
    xor_bytes,
)
from repro.crypto.keys import SessionKey
from repro.crypto.onion import (
    CELL_PAYLOAD,
    HopKeys,
    OnionCircuitKeys,
    unwrap_backward,
    unwrap_onion,
    wrap_backward,
    wrap_onion,
)
from repro.voip.fec import FecDecoder, FecEncoder, effective_loss
from repro.workload.cdr import CallRecord, CallTrace


@settings(max_examples=25, deadline=None)
@given(n_clients=st.integers(1, 100), n_channels=st.integers(1, 30),
       k=st.integers(1, 6), seed=st.integers(0, 500))
def test_static_assignment_always_balanced(n_clients, n_channels, k,
                                           seed):
    """Greedy least-occupied assignment keeps channel occupancy within
    one attachment of perfectly balanced, for every configuration."""
    k = min(k, n_channels)
    assignment = assign_clients_to_channels(n_clients, n_channels, k,
                                            random.Random(seed))
    occupancy = assignment.occupancy()
    assert max(occupancy) - min(occupancy) <= 1
    assert sum(occupancy) == n_clients * k


@settings(max_examples=25, deadline=None)
@given(loads=st.lists(st.floats(min_value=0, max_value=10_000),
                      min_size=1, max_size=50))
def test_rate_controller_always_at_least_min_rate(loads):
    """Whatever the load pattern, the provisioned rate never drops
    below the minimum (idle zones still carry chaff) and is always an
    integer number of call units."""
    controller = RateController(min_rate=2, initial_rate=2)
    for epoch, load in enumerate(loads):
        rate = controller.on_epoch(epoch, load)
        assert rate >= 2
        assert isinstance(rate, int)


@settings(max_examples=25, deadline=None)
@given(payload_rounds=st.lists(st.booleans(), min_size=1, max_size=200))
def test_chaffer_emission_is_schedule_invariant(payload_rounds):
    """The chaffer emits exactly one packet per tick regardless of the
    payload arrival pattern — the core of invariant I6."""
    chaffer = ConstantRateChaffer()
    for has_payload in payload_rounds:
        if has_payload:
            chaffer.enqueue_payload(b"cell")
        slots = chaffer.tick()
        assert len(slots) == 1
    assert chaffer.payload_sent + chaffer.chaff_sent \
        == len(payload_rounds)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000),
       payload=st.binary(min_size=1, max_size=CELL_PAYLOAD),
       n_hops=st.integers(1, 4), seq=st.integers(0, 2 ** 40))
def test_forward_backward_symmetry(seed, payload, n_hops, seq):
    """Any payload survives the full forward AND backward path of any
    circuit at any sequence number."""
    rng = random.Random(seed)
    hops = [HopKeys.from_shared_secret(
        rng.getrandbits(256).to_bytes(32, "little"), context=bytes([i]))
        for i in range(n_hops)]
    circuit = OnionCircuitKeys(hops)
    assert unwrap_onion(circuit, wrap_onion(circuit, payload, seq),
                        seq) == payload
    assert unwrap_backward(circuit, wrap_backward(circuit, payload,
                                                  seq), seq) == payload


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000), n_idle=st.integers(0, 6),
       payload=st.binary(min_size=1, max_size=64),
       signal_mask=st.integers(0, 127))
def test_channel_round_end_to_end_property(seed, n_idle, payload,
                                           signal_mask):
    """A full channel round (packets + manifests through XOR and
    manifest decryption) recovers the active payload and every signal
    bit, for any membership and signal pattern."""
    rng = random.Random(seed)
    n = n_idle + 1
    keys = {i: SessionKey.generate(rng) for i in range(n)}
    predictor = ChaffPredictor(keys)
    active = rng.randrange(n)
    packets, raw_manifests = [], []
    for i in range(n):
        seq = seed % 1000 + i
        signal = bool((signal_mask >> i) & 1)
        if i == active:
            packets.append(make_payload_packet(keys[i], seq, payload))
        else:
            packets.append(make_chaff_packet(keys[i], seq))
        manifest = ChannelManifest(client_id=i, sequence=seq,
                                   signal=signal)
        raw_manifests.append(encode_manifest(manifest, keys[i], slot=i))
    entries = []
    for slot, raw in enumerate(raw_manifests):
        decoded = decode_manifest(raw, keys[slot], slot,
                                  expected_sequence=seed % 1000 + slot)
        entries.append((decoded.client_id, decoded.sequence,
                        decoded.signal))
    got_active, got_payload, signalers = decode_round(
        xor_bytes(*packets), entries, predictor, active_client=active)
    assert got_active == active
    assert got_payload[:len(payload)] == payload
    assert signalers == [i for i in range(n) if (signal_mask >> i) & 1]


# derandomize: the estimator's sampling std at 400 groups reaches
# ~0.011, so a randomly explored example can land a >2.5-sigma excursion
# past the tolerance; a fixed example set keeps the check deterministic.
@settings(max_examples=20, deadline=None, derandomize=True)
@given(k=st.integers(1, 8), loss_permille=st.integers(0, 300),
       seed=st.integers(0, 500))
def test_fec_simulation_matches_closed_form(k, loss_permille, seed):
    """Monte-Carlo FEC residual loss agrees with the analytic
    effective_loss within sampling error."""
    rng = random.Random(seed)
    p = loss_permille / 1000.0
    enc = FecEncoder(k)
    dec = FecDecoder(k)
    n_groups = 400
    sent = 0
    for i in range(k * n_groups):
        for pkt in enc.encode(bytes([i % 256]) * 8):
            if not pkt.is_parity:
                sent += 1
            if rng.random() >= p:
                dec.receive(pkt)
    for g in range(n_groups):
        dec.flush_group(g)
    observed = dec.unrecoverable / sent
    expected = effective_loss(p, k)
    assert observed == pytest.approx(expected, abs=0.05)


@settings(max_examples=20, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 50), st.integers(0, 50),
              st.floats(min_value=0, max_value=1e5),
              st.floats(min_value=0, max_value=1e4)),
    min_size=0, max_size=60))
def test_trace_concurrency_never_exceeds_call_count(entries):
    """Basic sanity across CallTrace analytics for arbitrary traces."""
    records = [CallRecord(a, b + 51, start, duration)
               for a, b, start, duration in entries]
    trace = CallTrace(records)
    assert trace.peak_concurrency() <= len(trace)
    if records:
        lo, hi = trace.span
        assert lo <= hi
        total = trace.total_call_seconds()
        assert total == pytest.approx(sum(r.duration for r in records))

"""Shared fixtures: a small multi-zone Herd deployment."""

import pytest

from repro.simulation.testbed import HerdTestbed, build_testbed

__all__ = ["HerdTestbed", "build_testbed"]


@pytest.fixture
def testbed():
    return build_testbed()


@pytest.fixture
def call_pair(testbed):
    """A caller in zone-EU and a callee in zone-NA, ready to talk."""
    caller = testbed.add_client("alice", "zone-EU")
    callee = testbed.add_client("bob", "zone-NA")
    testbed.ready_for_calls("alice")
    testbed.ready_for_calls("bob")
    return testbed, caller, callee

"""Tests for the discrete-event loop."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim.engine import EventLoop


class TestScheduling:
    def test_events_run_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(3.0, lambda: order.append("c"))
        loop.schedule(1.0, lambda: order.append("a"))
        loop.schedule(2.0, lambda: order.append("b"))
        loop.run()
        assert order == ["a", "b", "c"]

    def test_ties_run_in_schedule_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(1.0, lambda: order.append(1))
        loop.schedule(1.0, lambda: order.append(2))
        loop.schedule(1.0, lambda: order.append(3))
        loop.run()
        assert order == [1, 2, 3]

    def test_clock_advances_to_event_time(self):
        loop = EventLoop()
        seen = []
        loop.schedule(2.5, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [2.5]
        assert loop.now == 2.5

    def test_schedule_at_absolute_time(self):
        loop = EventLoop()
        seen = []
        loop.schedule_at(4.0, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [4.0]

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            loop.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda: None)
        loop.run()
        with pytest.raises(ValueError):
            loop.schedule_at(0.5, lambda: None)

    def test_nested_scheduling(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, lambda: loop.schedule(
            1.0, lambda: seen.append(loop.now)))
        loop.run()
        assert seen == [2.0]


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        loop = EventLoop()
        fired = []
        event = loop.schedule(1.0, lambda: fired.append(True))
        event.cancel()
        loop.run()
        assert fired == []

    def test_pending_excludes_cancelled(self):
        loop = EventLoop()
        e = loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        assert loop.pending() == 2
        e.cancel()
        assert loop.pending() == 1

    def test_cancel_all_empties_queue(self):
        loop = EventLoop()
        fired = []
        for i in range(5):
            loop.schedule(float(i + 1), lambda: fired.append(True))
        loop.cancel_all()
        assert loop.pending() == 0
        loop.run()
        assert fired == []
        assert loop.events_processed == 0

    def test_cancel_all_marks_outstanding_handles(self):
        loop = EventLoop()
        handle = loop.schedule(1.0, lambda: None)
        periodic = loop.schedule_periodic(1.0, lambda: None)
        loop.cancel_all()
        assert handle.cancelled
        # The periodic master handle is external to the queue, but its
        # scheduled firing was cancelled so nothing ever re-arms.
        loop.run(until=10.0)
        assert loop.events_processed == 0
        assert not periodic.cancelled  # master handle untouched

    def test_run_advances_now_with_only_cancelled_queue(self):
        loop = EventLoop()
        e = loop.schedule(1.0, lambda: None)
        e.cancel()
        loop.run(until=5.0)
        assert loop.now == 5.0

    def test_run_max_events_with_only_cancelled_queue(self):
        # Cancelled head events are drained before the max_events
        # check, so this terminates with the clock advanced.
        loop = EventLoop()
        for _ in range(3):
            loop.schedule(1.0, lambda: None).cancel()
        loop.run(until=2.0, max_events=0)
        assert loop.now == 2.0
        assert loop.pending() == 0


class TestRunLimits:
    def test_run_until_stops_clock_at_bound(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda: fired.append(1))
        loop.schedule(5.0, lambda: fired.append(5))
        loop.run(until=3.0)
        assert fired == [1]
        assert loop.now == 3.0

    def test_run_until_then_resume(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda: fired.append(1))
        loop.schedule(5.0, lambda: fired.append(5))
        loop.run(until=3.0)
        loop.run()
        assert fired == [1, 5]

    def test_max_events(self):
        loop = EventLoop()
        fired = []
        for i in range(10):
            loop.schedule(float(i + 1), lambda i=i: fired.append(i))
        loop.run(max_events=4)
        assert fired == [0, 1, 2, 3]

    def test_run_until_advances_clock_with_empty_queue(self):
        loop = EventLoop()
        loop.run(until=10.0)
        assert loop.now == 10.0

    def test_run_until_never_rewinds_clock(self):
        loop = EventLoop()
        loop.run(until=10.0)
        loop.run(until=3.0)
        assert loop.now == 10.0

    def test_run_until_earlier_bound_with_pending_event_keeps_now(self):
        loop = EventLoop()
        loop.schedule(20.0, lambda: None)
        loop.run(until=10.0)
        loop.run(until=3.0)
        assert loop.now == 10.0


class TestPeriodic:
    def test_periodic_fires_at_interval(self):
        loop = EventLoop()
        times = []
        loop.schedule_periodic(1.0, lambda: times.append(loop.now))
        loop.run(until=3.5)
        assert times == [1.0, 2.0, 3.0]

    def test_periodic_with_start_delay(self):
        loop = EventLoop()
        times = []
        loop.schedule_periodic(2.0, lambda: times.append(loop.now),
                               start_delay=0.5)
        loop.run(until=5.0)
        assert times == [0.5, 2.5, 4.5]

    def test_periodic_cancel_stops_recurrence(self):
        loop = EventLoop()
        times = []
        handle = loop.schedule_periodic(1.0, lambda: times.append(loop.now))
        loop.run(until=2.5)
        handle.cancel()
        loop.run(until=10.0)
        assert times == [1.0, 2.0]

    def test_bad_interval_rejected(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            loop.schedule_periodic(0.0, lambda: None)


class TestDeterminism:
    def test_same_seed_same_randoms(self):
        a, b = EventLoop(seed=7), EventLoop(seed=7)
        assert [a.rng.random() for _ in range(5)] == \
               [b.rng.random() for _ in range(5)]


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                 allow_nan=False), min_size=1, max_size=50))
def test_events_always_processed_in_nondecreasing_time(delays):
    loop = EventLoop()
    seen = []
    for d in delays:
        loop.schedule(d, lambda: seen.append(loop.now))
    loop.run()
    assert seen == sorted(seen)
    assert len(seen) == len(delays)

"""Tests for the fully wired deployment: real crypto over the WAN."""

import pytest

from repro.simulation.wired import WiredConfig, WiredHerd


@pytest.fixture(scope="module")
def wired_call():
    net = WiredHerd({"zone-EU": "dc-eu", "zone-NA": "dc-na"})
    net.add_client("alice", "zone-EU")
    net.add_client("bob", "zone-NA")
    call = net.call("alice", "bob")
    frame_interval = net.config.chaff_interval_s
    for i in range(50):
        call.send_voice("caller_to_callee",
                        bytes([i % 256]) * 160, at=i * frame_interval)
        call.send_voice("callee_to_caller",
                        bytes([(i + 7) % 256]) * 160,
                        at=i * frame_interval)
    net.loop.run(until=10.0)
    return net, call


class TestWiredCall:
    def test_all_frames_delivered(self, wired_call):
        _, call = wired_call
        assert len(call.deliveries["callee"]) == 50
        assert len(call.deliveries["caller"]) == 50

    def test_frames_decrypt_correctly(self, wired_call):
        _, call = wired_call
        payloads = sorted(d.frame[0] for d in call.deliveries["callee"])
        assert payloads == sorted(i % 256 for i in range(50))
        for d in call.deliveries["callee"]:
            assert d.frame == bytes([d.frame[0]]) * 160

    def test_one_way_delay_plausible_for_eu_na(self, wired_call):
        _, call = wired_call
        owds = call.owd_ms("callee")
        mean = sum(owds) / len(owds)
        # EU→NA backbone is 45 ms one-way; access links and 4–5
        # chaff-aligned hops put the call between 70 and 250 ms.
        assert 70.0 < mean < 250.0, mean

    def test_delay_includes_chaff_alignment(self, wired_call):
        net, call = wired_call
        owds = call.owd_ms("callee")
        mean = sum(owds) / len(owds)
        # The raw propagation path (no alignment) is about 45 + 2×20 ms
        # plus sub-ms hops; alignment must add a visible margin.
        assert mean > 45.0 + 40.0 + 5.0

    def test_deliveries_in_order(self, wired_call):
        _, call = wired_call
        times = [d.received_at for d in call.deliveries["callee"]]
        assert times == sorted(times)

    def test_deterministic(self):
        def run():
            net = WiredHerd({"zone-EU": "dc-eu", "zone-NA": "dc-na"})
            net.add_client("alice", "zone-EU")
            net.add_client("bob", "zone-NA")
            call = net.call("alice", "bob")
            for i in range(10):
                call.send_voice("caller_to_callee", bytes([i]) * 160,
                                at=i * 0.02)
            net.loop.run(until=5.0)
            return [round(d.owd_ms, 6) for d in
                    call.deliveries["callee"]]
        assert run() == run()

    def test_unknown_direction_rejected(self, wired_call):
        _, call = wired_call
        with pytest.raises(ValueError):
            call.send_voice("sideways", b"\x00" * 160)


class TestWiredIntraZone:
    def test_intrazone_call_fast(self):
        net = WiredHerd({"zone-EU": "dc-eu"})
        net.add_client("alice", "zone-EU")
        net.add_client("bob", "zone-EU")
        call = net.call("alice", "bob")
        for i in range(20):
            call.send_voice("caller_to_callee", bytes([i]) * 160,
                            at=i * 0.02)
        net.loop.run(until=5.0)
        owds = call.owd_ms("callee")
        assert len(owds) == 20
        # Intra-zone: two access links + intra-DC hops + alignment.
        assert max(owds) < 200.0


class TestWiredChaffAlignmentKnob:
    def test_disabling_alignment_cuts_latency(self):
        def mean_owd(interval):
            cfg = WiredConfig(chaff_interval_s=interval)
            net = WiredHerd({"zone-EU": "dc-eu", "zone-NA": "dc-na"},
                            config=cfg)
            net.add_client("alice", "zone-EU")
            net.add_client("bob", "zone-NA")
            call = net.call("alice", "bob")
            for i in range(20):
                call.send_voice("caller_to_callee", bytes([i]) * 160,
                                at=i * 0.02)
            net.loop.run(until=5.0)
            owds = call.owd_ms("callee")
            return sum(owds) / len(owds)

        aligned = mean_owd(0.02)
        unaligned = mean_owd(0.0)
        # Each chaff-aligned hop adds Uniform(0, 20ms); this seed's
        # path has ~3 aligned sends → ≥10 ms of expected extra delay.
        assert aligned > unaligned + 10.0

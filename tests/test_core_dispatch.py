"""Tests for the control-plane dispatch state machines
(repro.core.dispatch): exhaustive tables, role separation, strict
rejection of unknown/empty/foreign messages."""

import pytest

from repro.core import dispatch
from repro.core.circuit import CreateReply, CreateRequest
from repro.core.dispatch import (
    CLIENT_DISPATCH,
    MIX_DISPATCH,
    REJECT,
    SUPERPEER_DISPATCH,
    ClientControlPlane,
    MixControlPlane,
    dispatch_client,
    dispatch_mix,
    dispatch_superpeer,
)
from repro.core.wire import (
    MESSAGE_TYPES,
    CallSetup,
    JoinRequest,
    JoinResponse,
    RendezvousRegister,
    WireError,
    decode_created,
    decode_join_response,
    encode_call_setup,
    encode_create,
    encode_created,
    encode_join_request,
    encode_join_response,
    encode_rendezvous_register,
    type_name,
)


class RecordingMix(MixControlPlane):
    def __init__(self):
        self.seen = []

    def on_create(self, request: CreateRequest) -> CreateReply:
        self.seen.append(request)
        return CreateReply(request.circuit_id, b"\x0a" * 32, b"\x0b" * 16)

    def on_join_request(self, request: JoinRequest) -> JoinResponse:
        self.seen.append(request)
        return JoinResponse(41, b"\x0c" * 32, (("sp-7", 3, 1),))

    def on_rendezvous_register(self, message: RendezvousRegister) -> None:
        self.seen.append(message)

    def on_call_setup(self, message: CallSetup) -> None:
        self.seen.append(message)


class RecordingClient(ClientControlPlane):
    def __init__(self):
        self.seen = []

    def on_created(self, reply: CreateReply) -> None:
        self.seen.append(reply)

    def on_join_response(self, response: JoinResponse) -> None:
        self.seen.append(response)

    def on_call_setup(self, message: CallSetup) -> None:
        self.seen.append(message)


def test_tables_cover_every_wire_message_type():
    """Runtime mirror of the HL006 static check."""
    expected = set(MESSAGE_TYPES.values())
    for table in (MIX_DISPATCH, CLIENT_DISPATCH, SUPERPEER_DISPATCH):
        assert set(table) == expected


def test_mix_create_roundtrip():
    mix = RecordingMix()
    request = CreateRequest(circuit_id=9, client_ephemeral=b"\x01" * 32)
    reply_bytes = dispatch_mix(mix, encode_create(request))
    reply = decode_created(reply_bytes)
    assert reply.circuit_id == 9
    assert mix.seen == [request]


def test_mix_join_roundtrip():
    mix = RecordingMix()
    request = JoinRequest("alice", b"\x05" * 32)
    response = decode_join_response(
        dispatch_mix(mix, encode_join_request(request)))
    assert response.numeric_id == 41
    assert response.attachments == (("sp-7", 3, 1),)


def test_mix_handles_rendezvous_and_call_setup():
    mix = RecordingMix()
    register = RendezvousRegister(b"\x06" * 32, "mix-rdv")
    assert dispatch_mix(mix, encode_rendezvous_register(register)) is None
    invite = CallSetup(is_accept=False, call_id=77, ephemeral=b"\x07" * 32)
    accept = CallSetup(is_accept=True, call_id=77, ephemeral=b"\x08" * 32)
    assert dispatch_mix(mix, encode_call_setup(invite)) is None
    assert dispatch_mix(mix, encode_call_setup(accept)) is None
    assert mix.seen == [register, invite, accept]


def test_client_handles_replies_and_call_setup():
    client = RecordingClient()
    created = CreateReply(3, b"\x0a" * 32, b"\x0b" * 16)
    joined = JoinResponse(12, b"\x0c" * 32)
    ring = CallSetup(is_accept=False, call_id=5, ephemeral=b"\x0d" * 32)
    assert dispatch_client(client, encode_created(created)) is None
    assert dispatch_client(client, encode_join_response(joined)) is None
    assert dispatch_client(client, encode_call_setup(ring)) is None
    assert client.seen == [created, joined, ring]


def test_mix_rejects_client_bound_messages():
    mix = RecordingMix()
    created = encode_created(CreateReply(1, b"\x01" * 32, b"\x02" * 16))
    with pytest.raises(WireError, match="mix rejects MSG_CREATED"):
        dispatch_mix(mix, created)
    joined = encode_join_response(JoinResponse(1, b"\x03" * 32))
    with pytest.raises(WireError, match="mix rejects MSG_JOIN_RESPONSE"):
        dispatch_mix(mix, joined)
    assert mix.seen == []


def test_client_rejects_mix_bound_messages():
    client = RecordingClient()
    create = encode_create(CreateRequest(1, b"\x01" * 32))
    with pytest.raises(WireError, match="client rejects MSG_CREATE"):
        dispatch_client(client, create)
    register = encode_rendezvous_register(
        RendezvousRegister(b"\x02" * 32, "mix-1"))
    with pytest.raises(WireError,
                       match="client rejects MSG_RENDEZVOUS_REGISTER"):
        dispatch_client(client, register)
    assert client.seen == []


def test_superpeer_rejects_every_control_message():
    """Invariant I8: the SP control plane is all-REJECT."""
    assert all(handler is REJECT
               for handler in SUPERPEER_DISPATCH.values())
    for name, value in MESSAGE_TYPES.items():
        with pytest.raises(WireError, match=f"superpeer rejects {name}"):
            dispatch_superpeer(object(), bytes([value]) + b"\x00" * 4)


def test_unknown_and_empty_messages_raise():
    mix = RecordingMix()
    with pytest.raises(WireError, match="unknown message type 0x7f"):
        dispatch_mix(mix, b"\x7f\x00")
    with pytest.raises(WireError, match="empty"):
        dispatch_mix(mix, b"")


def test_malformed_payload_never_reaches_the_plane():
    """A handled type with a garbage body still raises WireError and
    leaves the control plane untouched."""
    mix = RecordingMix()
    create = encode_create(CreateRequest(5, b"\x01" * 32))
    with pytest.raises(WireError):
        dispatch_mix(mix, create + b"\xff")  # trailing bytes
    assert mix.seen == []


def test_type_name_round_trip():
    for name, value in MESSAGE_TYPES.items():
        assert type_name(value) == name
    assert type_name(0xEE) == "0xee"


def test_dispatch_module_importable_via_package():
    assert dispatch.MIX_DISPATCH is MIX_DISPATCH

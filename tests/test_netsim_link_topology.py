"""Tests for links, nodes, observers, and the geographic topology."""

import pytest

from repro.netsim.engine import EventLoop
from repro.netsim.link import Link
from repro.netsim.node import Node
from repro.netsim.observer import LinkObserver
from repro.netsim.packet import IP_UDP_HEADER_BYTES, Packet
from repro.netsim.topology import (
    EC2_REGIONS,
    GeoTopology,
    INTRA_REGION_OWD,
    INTRA_SITE_OWD,
    Site,
    default_topology,
)


def _pair(loop, **link_kwargs):
    a, b = Node("a", loop), Node("b", loop)
    link = Link(loop, a, b, **link_kwargs)
    return a, b, link


class TestLinkDelivery:
    def test_delivery_after_one_way_delay(self):
        loop = EventLoop()
        a, b, _ = _pair(loop, one_way_delay=0.05)
        got = []
        b.on_packet(lambda p: got.append((loop.now, p.payload)))
        a.send("b", Packet(b"hello", "a", "b"))
        loop.run()
        assert got == [(0.05, b"hello")]

    def test_bidirectional(self):
        loop = EventLoop()
        a, b, _ = _pair(loop, one_way_delay=0.01)
        got = []
        a.on_packet(lambda p: got.append(p.payload))
        b.on_packet(lambda p: b.send("a", Packet(b"pong", "b", "a")))
        a.send("b", Packet(b"ping", "a", "b"))
        loop.run()
        assert got == [b"pong"]
        assert loop.now == pytest.approx(0.02)

    def test_serialization_delay(self):
        loop = EventLoop()
        a, b, _ = _pair(loop, one_way_delay=0.0, bandwidth_bps=1000.0)
        got = []
        b.on_packet(lambda p: got.append(loop.now))
        pkt = Packet(b"x" * (100 - IP_UDP_HEADER_BYTES), "a", "b")
        a.send("b", pkt)  # 100 bytes at 1000 B/s = 0.1 s
        loop.run()
        assert got == [pytest.approx(0.1)]

    def test_loss(self):
        loop = EventLoop(seed=3)
        a, b, link = _pair(loop, loss_rate=0.5)
        got = []
        b.on_packet(lambda p: got.append(p))
        for _ in range(200):
            a.send("b", Packet(b"x", "a", "b"))
        loop.run()
        assert 60 < len(got) < 140  # ~100 expected
        assert link.stats["a"].dropped == 200 - len(got)

    def test_jitter_varies_delay_but_keeps_it_positive(self):
        loop = EventLoop(seed=1)
        a, b, _ = _pair(loop, one_way_delay=0.01, jitter_std=0.005)
        times = []
        b.on_packet(lambda p: times.append(loop.now - p.sent_at))
        for _ in range(50):
            a.send("b", Packet(b"x", "a", "b"))
        loop.run()
        assert all(t >= 0.01 for t in times)
        assert len(set(round(t, 9) for t in times)) > 1

    def test_unknown_peer_raises(self):
        loop = EventLoop()
        a = Node("a", loop)
        with pytest.raises(KeyError):
            a.send("nowhere", Packet(b"", "a", "nowhere"))

    def test_stats_track_bytes(self):
        loop = EventLoop()
        a, b, link = _pair(loop)
        b.on_packet(lambda p: None)
        a.send("b", Packet(b"12345", "a", "b"))
        loop.run()
        assert link.stats["a"].packets == 1
        assert link.stats["a"].bytes == 5 + IP_UDP_HEADER_BYTES
        assert b.bytes_received == 5 + IP_UDP_HEADER_BYTES

    def test_unhandled_packets_counted(self):
        loop = EventLoop()
        a, b, _ = _pair(loop)
        a.send("b", Packet(b"x", "a", "b"))
        loop.run()
        assert b.unhandled_packets == 1

    def test_parameter_validation(self):
        loop = EventLoop()
        a, b = Node("a", loop), Node("b", loop)
        with pytest.raises(ValueError):
            Link(loop, a, b, one_way_delay=-1)
        with pytest.raises(ValueError):
            Link(loop, a, b, loss_rate=1.0)
        with pytest.raises(ValueError):
            Link(loop, a, b, bandwidth_bps=0)

    def test_other_endpoint_validation(self):
        loop = EventLoop()
        a, b, link = _pair(loop)
        c = Node("c", loop)
        assert link.other(a) is b
        with pytest.raises(ValueError):
            link.other(c)


class TestObserver:
    def test_observer_sees_wire_fields_only(self):
        loop = EventLoop()
        a, b, link = _pair(loop, one_way_delay=0.01)
        obs = LinkObserver()
        link.add_observer(obs)
        b.on_packet(lambda p: None)
        a.send("b", Packet(b"secret", "a", "b", kind="voip"))
        loop.run()
        assert len(obs.observations) == 1
        rec = obs.observations[0]
        assert rec.src == "a" and rec.dst == "b"
        assert rec.size == 6 + IP_UDP_HEADER_BYTES
        assert not hasattr(rec, "payload")
        assert not hasattr(rec, "kind")

    def test_observer_sees_dropped_packets_too(self):
        loop = EventLoop(seed=0)
        a, b, link = _pair(loop, loss_rate=0.9)
        obs = LinkObserver()
        link.add_observer(obs)
        b.on_packet(lambda p: None)
        for _ in range(20):
            a.send("b", Packet(b"x", "a", "b"))
        loop.run()
        assert len(obs.observations) == 20

    def test_time_series_binning(self):
        obs = LinkObserver()
        pkt = Packet(b"x" * 72, "a", "b")  # 100 B on the wire
        for t in (0.1, 0.2, 1.5, 2.7):
            obs.record(t, pkt, "a", "b")
        series = obs.time_series("a", "b", bin_width=1.0)
        assert series == {0: 200, 1: 100, 2: 100}

    def test_time_series_directionality(self):
        obs = LinkObserver()
        pkt = Packet(b"x", "x", "y")
        obs.record(0.0, pkt, "a", "b")
        obs.record(0.0, pkt, "b", "a")
        assert len(obs.time_series("a", "b", 1.0)) == 1
        assert obs.directed_pairs() == [("a", "b"), ("b", "a")]

    def test_rate_changes_empty_for_constant_rate(self):
        obs = LinkObserver()
        pkt = Packet(b"x" * 72, "a", "b")
        for i in range(100):
            obs.record(i * 0.02, pkt, "a", "b")  # 50 pkt/s constant
        assert obs.rate_changes("a", "b", bin_width=1.0) == []

    def test_rate_changes_detects_step(self):
        obs = LinkObserver()
        pkt = Packet(b"x" * 72, "a", "b")
        for i in range(50):
            obs.record(i * 0.02, pkt, "a", "b")
        for i in range(100):  # double the rate from t=2
            obs.record(2.0 + i * 0.01, pkt, "a", "b")
        assert obs.rate_changes("a", "b", bin_width=1.0)

    def test_bad_bin_width(self):
        with pytest.raises(ValueError):
            LinkObserver().time_series("a", "b", 0.0)


class TestTopology:
    def test_default_topology_has_four_sites(self):
        topo = default_topology()
        assert set(topo.sites) == {"dc-au", "dc-eu", "dc-na", "dc-sa"}

    def test_intra_site_delay(self):
        topo = default_topology()
        assert topo.one_way_delay("dc-eu", "dc-eu") == INTRA_SITE_OWD

    def test_inter_region_symmetry(self):
        topo = default_topology()
        assert (topo.one_way_delay("dc-au", "dc-eu")
                == topo.one_way_delay("dc-eu", "dc-au"))

    def test_au_is_farther_than_atlantic(self):
        topo = default_topology()
        assert (topo.one_way_delay("dc-au", "dc-eu")
                > topo.one_way_delay("dc-na", "dc-eu"))

    def test_intra_region_delay(self):
        topo = GeoTopology([Site("a", "EU"), Site("b", "EU")])
        assert topo.one_way_delay("a", "b") == INTRA_REGION_OWD

    def test_access_delay_local_and_remote(self):
        topo = default_topology()
        local = topo.access_delay("dc-eu", "EU")
        remote = topo.access_delay("dc-eu", "NA")
        assert remote > local

    def test_duplicate_site_rejected(self):
        topo = default_topology()
        with pytest.raises(ValueError):
            topo.add_site(Site("dc-eu", "EU"))

    def test_unknown_region_rejected(self):
        with pytest.raises(ValueError):
            GeoTopology([Site("x", "XX")])

    def test_all_region_pairs_have_delays(self):
        topo = default_topology()
        codes = list(EC2_REGIONS)
        for i, a in enumerate(codes):
            for b in codes[i + 1:]:
                assert topo.inter_region_delay(a, b) > 0

"""Tests for the Tor/Drac baselines and the analysis modules."""

import random

import pytest

from repro.analysis.anonymity import (
    anonymity_figure,
    drac_rows,
    herd_anonymity,
    tor_anonymity,
)
from repro.analysis.bandwidth import (
    channels_for,
    herd_client_bandwidth_kbps,
    mix_client_side_rate_units,
    offload_factor,
    sp_savings_fraction,
)
from repro.analysis.cost import CostModel
from repro.analysis.cpu import CpuModel
from repro.baselines.drac import DracModel
from repro.baselines.tor import TorModel
from repro.workload.datasets import FACEBOOK, MOBILE, TWITTER
from repro.workload.generator import SyntheticTraceConfig, generate_trace


@pytest.fixture(scope="module")
def small_trace():
    cfg = SyntheticTraceConfig(n_users=1000, days=2, seed=5,
                               max_degree=80)
    return generate_trace(cfg)


class TestTorModel:
    def test_observable_trace_is_call_trace(self, small_trace):
        tor = TorModel()
        assert tor.observable_trace(small_trace) is small_trace

    def test_intersection_attack_succeeds(self, small_trace):
        result = TorModel().run_intersection_attack(small_trace)
        assert result.traced_fraction > 0.9

    def test_rtt_in_published_range(self):
        tor = TorModel(random.Random(0))
        for _ in range(100):
            assert 2.0 <= tor.circuit_rtt() <= 4.0

    def test_one_way_delay_prohibitive_for_voip(self):
        tor = TorModel(random.Random(0))
        # > 1000 ms one-way: far beyond any acceptable MOS band.
        assert tor.one_way_delay_ms() > 1000.0


class TestDracModel:
    def test_bandwidth_median_matches_fig5(self):
        for spec, expected in ((MOBILE, 96.0), (TWITTER, 64.0),
                               (FACEBOOK, 2744.0)):
            model = DracModel(spec, rng=random.Random(1))
            median = model.bandwidth_percentile_kbps(50)
            assert median == pytest.approx(expected, rel=0.35), spec.name

    def test_bandwidth_max_matches_fig5(self):
        model = DracModel(MOBILE, rng=random.Random(1))
        assert model.client_bandwidths_kbps().max() == \
            pytest.approx(12_000.0)

    def test_anonymity_h1_is_degree(self):
        model = DracModel(MOBILE, rng=random.Random(1))
        a = model.anonymity(1)
        assert a.median == pytest.approx(12, abs=3)
        assert a.p10 <= a.median <= a.p90

    def test_anonymity_h3_estimate(self):
        model = DracModel(MOBILE, rng=random.Random(1))
        a3 = model.anonymity(3)
        a1 = model.anonymity(1)
        assert a3.median == pytest.approx(a1.median ** 3, rel=0.5)

    def test_anonymity_h3_extrapolates_beyond_sample(self):
        # Fig. 4 reports 40M for the 1,165-user Facebook dataset at
        # H=3: the estimate extrapolates to the real network and is
        # deliberately NOT capped at the sample size.
        model = DracModel(FACEBOOK, n_users=1165, rng=random.Random(1))
        a = model.anonymity(3)
        assert a.median > FACEBOOK.paper_n_users

    def test_h0_rejected(self):
        model = DracModel(MOBILE, rng=random.Random(1))
        with pytest.raises(ValueError):
            model.anonymity(0)

    def test_latency_grows_with_hops(self):
        model = DracModel(MOBILE, rng=random.Random(1))
        delays = [model.one_way_delay_ms(h) for h in range(4)]
        assert delays == sorted(delays)
        assert delays[0] == pytest.approx(85.0)  # 2×20 + 45

    def test_latency_negative_hops_rejected(self):
        with pytest.raises(ValueError):
            DracModel(MOBILE).one_way_delay_ms(-1)

    def test_chaffing_connections_equal_degree(self):
        model = DracModel(MOBILE, n_users=100, rng=random.Random(2))
        assert model.chaffing_connections(0) == model.degrees[0]


class TestAnonymityFigure:
    def test_herd_row_is_zone_population(self):
        row = herd_anonymity(10_800_000)
        assert row.median == row.p10 == row.p90 == 10_800_000

    def test_herd_validates(self):
        with pytest.raises(ValueError):
            herd_anonymity(0)

    def test_tor_row_small_sets(self, small_trace):
        row = tor_anonymity(small_trace)
        # Nearly all calls traced → median anonymity set of 2.
        assert row.median == 2.0

    def test_full_figure_ordering(self, small_trace):
        fig = anonymity_figure(small_trace, [MOBILE, TWITTER, FACEBOOK],
                               zone_population=10_800_000)
        herd = fig.row("Herd", "zone")
        tor = fig.row("Tor", "intersection")
        drac_h1 = fig.row("Drac", "Mobile,H=1")
        # The paper's headline ordering: Herd ⋙ Drac(H=1) > Tor.
        assert herd.median > drac_h1.median > tor.median

    def test_unknown_row_raises(self, small_trace):
        fig = anonymity_figure(small_trace, [MOBILE])
        with pytest.raises(KeyError):
            fig.row("Drac", "nope")

    def test_drac_rows_cover_requested_hops(self):
        rows = drac_rows([MOBILE], hops=(1, 2))
        assert [r.label for r in rows] == ["Mobile,H=1", "Mobile,H=2"]


class TestBandwidthAnalysis:
    def test_herd_client_bandwidth_is_24kbps(self):
        assert herd_client_bandwidth_kbps(3) == 24.0
        assert herd_client_bandwidth_kbps(1) == 8.0

    def test_herd_bandwidth_validates_k(self):
        with pytest.raises(ValueError):
            herd_client_bandwidth_kbps(0)

    def test_channels_for(self):
        assert channels_for(100, 10) == 10
        assert channels_for(101, 10) == 11
        with pytest.raises(ValueError):
            channels_for(100, 0)

    def test_savings_match_paper_range(self):
        # §4.1.6: 80% at 5 clients/channel, 98% at 50.
        assert sp_savings_fraction(10_000, 5) == pytest.approx(0.80)
        assert sp_savings_fraction(10_000, 50) == pytest.approx(0.98)

    def test_offload_factor(self):
        assert offload_factor(1000, 10) == 100.0
        with pytest.raises(ValueError):
            offload_factor(10, 0)
        with pytest.raises(ValueError):
            offload_factor(5, 10)

    def test_mix_rate_units(self):
        assert mix_client_side_rate_units(100) == 100.0
        assert mix_client_side_rate_units(100, 10) == 10.0
        with pytest.raises(ValueError):
            mix_client_side_rate_units(-1)


class TestCostModel:
    def test_with_sp_range_near_paper(self):
        low, high = CostModel().per_user_range(1_000_000, use_sps=True)
        # Paper: $0.10–$1.14.  Same band within a small factor.
        assert 0.03 < low < 0.3
        assert 0.3 < high < 2.0

    def test_without_sp_costs_orders_more(self):
        model = CostModel()
        sp_low, sp_high = model.per_user_range(1_000_000, use_sps=True)
        no_low, no_high = model.per_user_range(1_000_000, use_sps=False)
        assert no_low > 10 * sp_high  # "two orders of magnitude more"
        assert no_low > 3.0  # paper: $10–100

    def test_egress_dominates_with_sps(self):
        breakdown = CostModel().monthly_cost(1_000_000, use_sps=True)
        assert breakdown.internet_egress > breakdown.inter_region
        assert breakdown.intra_dc == 0.0

    def test_cost_increases_with_duty_and_interzone(self):
        model = CostModel()
        base = model.monthly_cost(100_000, duty_cycle=0.01,
                                  interzone_fraction=0.1).total
        more_duty = model.monthly_cost(100_000, duty_cycle=0.02,
                                       interzone_fraction=0.1).total
        more_inter = model.monthly_cost(100_000, duty_cycle=0.01,
                                        interzone_fraction=1.0).total
        assert more_duty >= base
        assert more_inter > base

    def test_validation(self):
        model = CostModel()
        with pytest.raises(ValueError):
            model.monthly_cost(0)
        with pytest.raises(ValueError):
            model.monthly_cost(10, duty_cycle=0.0)
        with pytest.raises(ValueError):
            model.monthly_cost(10, interzone_fraction=1.5)

    def test_sp_payment_overhead(self):
        assert CostModel.sp_payment_overhead(1.0) == pytest.approx(0.14)

    def test_per_user_property(self):
        breakdown = CostModel().monthly_cost(1000)
        assert breakdown.per_user == pytest.approx(
            breakdown.total / 1000)


class TestCpuModel:
    def test_fig6_endpoints(self):
        model = CpuModel()
        # "59% for 100 clients" without SP; "only 3%" with.
        assert model.mix_without_sp(100) == pytest.approx(0.59, abs=0.05)
        assert model.mix_with_sp(100) == pytest.approx(0.03, abs=0.02)

    def test_fig6_marginals(self):
        model = CpuModel()
        # ".01% and .6% with and without the SP"
        assert model.marginal_per_client(False) == pytest.approx(
            0.006, rel=0.15)
        assert model.marginal_per_client(True) == pytest.approx(
            0.0001, rel=0.15)

    def test_sp_cpu_grows_with_clients(self):
        model = CpuModel()
        assert model.sp(100) > model.sp(10) > model.sp(0)

    def test_utilization_clamped(self):
        model = CpuModel()
        assert model.mix_without_sp(100_000) == 1.0

    def test_memory_matches_paper(self):
        assert CpuModel().mix_memory_mb(100) == pytest.approx(3.4)

    def test_validation(self):
        model = CpuModel()
        with pytest.raises(ValueError):
            model.mix_without_sp(-1)
        with pytest.raises(ValueError):
            model.mix_with_sp(-1)
        with pytest.raises(ValueError):
            model.sp(-1)

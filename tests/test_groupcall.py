"""Tests for the group-call extension (§5 future work)."""

import pytest

from repro.core.groupcall import GroupCall, mix_pcm
from repro.core.rendezvous import CallError

from conftest import build_testbed


@pytest.fixture
def conference_bed():
    bed = build_testbed(zone_specs=[("zone-EU", "dc-eu", 2),
                                    ("zone-NA", "dc-na", 2),
                                    ("zone-SA", "dc-sa", 2)])
    for name, zone in (("host", "zone-EU"), ("bob", "zone-NA"),
                       ("carol", "zone-SA"), ("dave", "zone-NA")):
        bed.add_client(name, zone)
        bed.ready_for_calls(name)
    return bed


class TestMixPcm:
    def test_identity_for_single_frame(self):
        frame = bytes(range(160, 0, -1)) + b"\x80" * 0
        assert mix_pcm([frame]) == frame

    def test_silence_plus_voice_is_voice(self):
        silence = bytes([128]) * 8
        voice = bytes([128, 130, 126, 140, 116, 128, 129, 127])
        assert mix_pcm([silence, voice]) == voice

    def test_saturation(self):
        loud = bytes([255]) * 4
        assert mix_pcm([loud, loud]) == bytes([255]) * 4
        quiet = bytes([0]) * 4
        assert mix_pcm([quiet, quiet]) == bytes([0]) * 4

    def test_validation(self):
        with pytest.raises(ValueError):
            mix_pcm([])
        with pytest.raises(ValueError):
            mix_pcm([b"\x80" * 4, b"\x80" * 5])
        with pytest.raises(ValueError):
            mix_pcm([b"\x80" * 4], sample_width=2)


class TestGroupCall:
    def _conference(self, bed, invitees=("bob", "carol")):
        call = GroupCall(bed.service, bed.clients["host"])
        for name in invitees:
            call.invite(bed.clients[name])
        return call

    def test_invite_builds_legs(self, conference_bed):
        call = self._conference(conference_bed)
        assert call.participants == ["bob", "carol"]
        assert call.size == 3
        assert all(leg.session.established
                   for leg in call.legs.values())

    def test_double_invite_rejected(self, conference_bed):
        call = self._conference(conference_bed)
        with pytest.raises(CallError):
            call.invite(conference_bed.clients["bob"])

    def test_host_cannot_invite_self(self, conference_bed):
        call = self._conference(conference_bed, invitees=())
        with pytest.raises(CallError):
            call.invite(conference_bed.clients["host"])

    def test_host_needs_circuit(self, conference_bed):
        fresh = conference_bed.add_client("eve", "zone-EU")
        with pytest.raises(CallError):
            GroupCall(conference_bed.service, fresh)

    def test_audio_round_distributes_mixes(self, conference_bed):
        call = self._conference(conference_bed)
        bob_frame = bytes([140]) * 160
        host_frame = bytes([120]) * 160
        out = call.round({"bob": bob_frame}, host_frame=host_frame)
        # Carol hears bob + host mixed; bob hears only the host.
        assert out["carol"] == mix_pcm([bob_frame, host_frame])
        assert out["bob"] == host_frame
        assert out["host"] == bob_frame

    def test_speaker_never_hears_self(self, conference_bed):
        call = self._conference(conference_bed)
        frame = bytes([200]) * 160
        out = call.round({"bob": frame})
        assert out["bob"] == bytes([128]) * 160  # silence

    def test_three_speakers(self, conference_bed):
        call = self._conference(conference_bed,
                                invitees=("bob", "carol", "dave"))
        frames = {"bob": bytes([138]) * 160,
                  "carol": bytes([120]) * 160,
                  "dave": bytes([131]) * 160}
        out = call.round(frames)
        assert out["bob"] == mix_pcm([frames["carol"], frames["dave"]])
        assert out["host"] == mix_pcm(list(frames.values()))

    def test_unknown_speaker_rejected(self, conference_bed):
        call = self._conference(conference_bed)
        with pytest.raises(KeyError):
            call.round({"mallory": bytes([128]) * 160})

    def test_wrong_frame_size_rejected(self, conference_bed):
        call = self._conference(conference_bed)
        with pytest.raises(ValueError):
            call.round({"bob": b"\x80" * 10})

    def test_drop_participant(self, conference_bed):
        call = self._conference(conference_bed)
        call.drop("bob")
        assert call.participants == ["carol"]
        with pytest.raises(KeyError):
            call.drop("bob")

    def test_rate_multiple_scales_with_legs(self, conference_bed):
        call = self._conference(conference_bed,
                                invitees=("bob", "carol", "dave"))
        assert call.required_rate_multiple() == 3

    def test_legs_are_zone_anonymous(self, conference_bed):
        """Each invitee's leg reveals to the invitee's mixes only the
        host's rendezvous mix, never the other participants."""
        call = self._conference(conference_bed)
        bed = conference_bed
        bob = bed.clients["bob"]
        rdv = bed.mixes[bob.circuit.rendezvous_mix]
        state = rdv.circuit_state(bob.circuit.circuit_id)
        for other in ("carol", "dave", "host"):
            assert other not in (state.prev_hop or "")
            assert other not in (state.next_hop or "")

    def test_received_history_tracked(self, conference_bed):
        call = self._conference(conference_bed)
        call.round({"bob": bytes([150]) * 160})
        call.round({"carol": bytes([110]) * 160})
        assert len(call.legs["bob"].received) == 2
        assert len(call.legs["carol"].received) == 2

"""Fixture-driven tests for every herdlint rule (the syntactic
HL001-HL006 set and the flow-driven HL007/HL10x family) and the
engine's suppression / selection / exclusion machinery."""

from pathlib import Path

import pytest

from repro.lint import LintConfig, run_lint
from repro.lint.engine import PARSE_ERROR_ID, all_rules

FIXTURES = Path(__file__).parent / "lint_fixtures"


def lint(*relpaths, select=None, **kwargs):
    config = LintConfig(
        select=tuple(select) if select else None, **kwargs)
    return run_lint([str(FIXTURES / p) for p in relpaths], config)


def active_ids(result):
    return [f.rule_id for f in result.active]


# One (rule, violation, suppressed, clean, minimum-hits) row per rule.
RULE_FIXTURES = [
    ("HL001", "core/wall_clock_violation.py",
     "core/wall_clock_suppressed.py", "core/wall_clock_clean.py", 3),
    ("HL002", "global_rng_violation.py",
     "global_rng_suppressed.py", "global_rng_clean.py", 4),
    ("HL003", "digest_eq_violation.py",
     "digest_eq_suppressed.py", "digest_eq_clean.py", 3),
    ("HL004", "secret_log_violation.py",
     "secret_log_suppressed.py", "secret_log_clean.py", 4),
    ("HL005", "sleep_violation.py",
     "sleep_suppressed.py", "sleep_clean.py", 2),
    ("HL007", "determinism_violation.py",
     "determinism_suppressed.py", "determinism_clean.py", 4),
    ("HL101", "core/shared_state_violation.py",
     "core/shared_state_suppressed.py",
     "core/shared_state_clean.py", 3),
    ("HL102", "blocking_async_violation.py",
     "blocking_async_suppressed.py", "blocking_async_clean.py", 3),
    ("HL103", "unawaited_violation.py",
     "unawaited_suppressed.py", "unawaited_clean.py", 2),
    ("HL104", "shard_crossing_violation.py",
     "shard_crossing_suppressed.py", "shard_crossing_clean.py", 4),
]


@pytest.mark.parametrize(
    "rule_id,violation,suppressed,clean,min_hits", RULE_FIXTURES)
def test_rule_detects_suppresses_and_passes(rule_id, violation,
                                            suppressed, clean,
                                            min_hits):
    hits = lint(violation, select=[rule_id])
    assert len(hits.active) >= min_hits
    assert set(active_ids(hits)) == {rule_id}

    waived = lint(suppressed, select=[rule_id])
    assert waived.active == []
    assert len(waived.suppressed) >= 1
    assert all(f.rule_id == rule_id for f in waived.suppressed)

    clean_run = lint(clean, select=[rule_id])
    assert clean_run.findings == []


def test_hl001_only_fires_in_virtual_time_scope(tmp_path):
    """The same wall-clock read outside core/simulation/faults/netsim
    (e.g. an analysis script) is not HL001's business."""
    outside = tmp_path / "analysis_script.py"
    outside.write_text("import time\n\n\ndef f():\n"
                       "    return time.time()\n")
    result = run_lint([str(outside)], LintConfig(select=("HL001",)))
    assert result.findings == []


def test_hl001_allowlist_is_scoped_to_perfclock_only(tmp_path):
    """The herdprof exemption: ``obs/prof/perfclock.py`` is the one
    sanctioned wall-clock module.  Any other file under ``obs/prof``
    — or a file merely *named* perfclock.py elsewhere in scope —
    still trips HL001."""
    prof = tmp_path / "obs" / "prof"
    prof.mkdir(parents=True)
    clock_read = ("import time\n\n\ndef now():\n"
                  "    return time.perf_counter()\n")

    sanctioned = prof / "perfclock.py"
    sanctioned.write_text(clock_read)
    result = run_lint([str(sanctioned)],
                      LintConfig(select=("HL001",)))
    assert result.findings == []

    rogue = prof / "rogue.py"
    rogue.write_text(clock_read)
    result = run_lint([str(rogue)], LintConfig(select=("HL001",)))
    assert [f.rule_id for f in result.findings] == ["HL001"]

    imposter_dir = tmp_path / "netsim"
    imposter_dir.mkdir()
    imposter = imposter_dir / "perfclock.py"
    imposter.write_text(clock_read)
    result = run_lint([str(imposter)], LintConfig(select=("HL001",)))
    assert [f.rule_id for f in result.findings] == ["HL001"]


def test_hl002_reports_the_resolved_name():
    result = lint("global_rng_violation.py", select=["HL002"])
    messages = " ".join(f.message for f in result.active)
    assert "random.random()" in messages
    assert "numpy.random.seed()" in messages
    assert "without a seed" in messages


def test_hl004_allows_len_of_secret():
    result = lint("secret_log_clean.py", select=["HL004"])
    assert result.findings == []


def test_hl006_missing_handler():
    result = lint("wire_missing")
    assert active_ids(result) == ["HL006"]
    (finding,) = result.active
    assert "NODE_DISPATCH" in finding.message
    assert "MSG_DATA" in finding.message
    assert "MSG_PING" not in finding.message


def test_hl006_complete_table_is_clean():
    assert lint("wire_complete").findings == []


def test_hl006_no_dispatch_table_at_all():
    result = lint("wire_nodispatch")
    assert active_ids(result) == ["HL006"]
    assert "no *_DISPATCH table" in result.active[0].message


def test_select_and_ignore_filter_rules():
    everything = lint("global_rng_violation.py")
    assert "HL002" in active_ids(everything)
    ignored = lint("global_rng_violation.py", ignore=("HL002",))
    assert "HL002" not in active_ids(ignored)


def test_exclude_glob_skips_files():
    result = lint("core", exclude=("*wall_clock_violation*",))
    assert all("wall_clock_violation" not in f.path
               for f in result.findings)


def test_parse_error_is_reported_not_raised(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    result = run_lint([str(bad)], LintConfig())
    assert [f.rule_id for f in result.findings] == [PARSE_ERROR_ID]


def test_file_wide_suppression(tmp_path):
    waived = tmp_path / "waived.py"
    waived.write_text(
        "# herdlint: disable-file=HL002\n"
        "import random\n\n\n"
        "def f():\n"
        "    return random.random(), random.randint(0, 3)\n")
    result = run_lint([str(waived)], LintConfig())
    assert result.active == []
    assert len(result.suppressed) == 2


def test_findings_are_sorted_and_deduplicated():
    result = lint("core", "global_rng_violation.py")
    keys = [f.sort_key() for f in result.findings]
    assert keys == sorted(keys)
    assert len(set(keys)) == len(keys)


def test_registry_has_the_documented_rules():
    ids = [rule.rule_id for rule in all_rules()]
    assert ids == sorted(ids)
    assert {"HL001", "HL002", "HL003", "HL004", "HL005", "HL006",
            "HL007", "HL101", "HL102", "HL103", "HL104"} <= set(ids)
    assert len(ids) >= 11
    for rule in all_rules():
        assert rule.title and rule.rationale

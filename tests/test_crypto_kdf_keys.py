"""Tests for HKDF, key schedules, and session key material."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.crypto.kdf import (
    CIRCUIT_KEY_LABELS,
    derive_keys,
    hkdf_expand,
    hkdf_extract,
    hkdf_sha256,
)
from repro.crypto.keys import IdentityKeyPair, SessionKey, ShortTermKeyPair


class TestHKDFVectors:
    def test_rfc5869_case_1(self):
        ikm = bytes.fromhex("0b" * 22)
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        prk = hkdf_extract(salt, ikm)
        assert prk == bytes.fromhex(
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5")
        okm = hkdf_expand(prk, info, 42)
        assert okm == bytes.fromhex(
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865")

    def test_rfc5869_case_3_empty_salt_info(self):
        ikm = bytes.fromhex("0b" * 22)
        okm = hkdf_sha256(ikm, salt=b"", info=b"", length=42)
        assert okm == bytes.fromhex(
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8")

    def test_expand_length_limit(self):
        with pytest.raises(ValueError):
            hkdf_expand(b"\x00" * 32, b"", 255 * 32 + 1)


class TestDeriveKeys:
    def test_all_labels_present_and_distinct(self):
        keys = derive_keys(b"secret" * 6, CIRCUIT_KEY_LABELS)
        assert set(keys) == set(CIRCUIT_KEY_LABELS)
        assert len(set(keys.values())) == len(CIRCUIT_KEY_LABELS)

    def test_context_separates_keys(self):
        a = derive_keys(b"s" * 32, ("k",), context=b"circuit-1")
        b = derive_keys(b"s" * 32, ("k",), context=b"circuit-2")
        assert a["k"] != b["k"]

    def test_custom_length(self):
        keys = derive_keys(b"s" * 32, ("k",), length=16)
        assert len(keys["k"]) == 16


class TestSessionKey:
    def test_nonce_sequence_monotonic(self):
        sk = SessionKey.generate(random.Random(0))
        n0, n1 = sk.next_nonce(), sk.next_nonce()
        assert n0 != n1
        assert sk.nonce_for(0) == n0
        assert sk.nonce_for(1) == n1

    def test_nonce_is_12_bytes(self):
        sk = SessionKey.generate(random.Random(0))
        assert len(sk.next_nonce()) == 12

    def test_prefix_separates_directions(self):
        sk_up = SessionKey(b"\x01" * 32, prefix=b"up\x00\x00")
        sk_dn = SessionKey(b"\x01" * 32, prefix=b"dn\x00\x00")
        assert sk_up.nonce_for(5) != sk_dn.nonce_for(5)

    def test_rejects_bad_key_length(self):
        with pytest.raises(ValueError):
            SessionKey(b"\x00" * 16)

    def test_rejects_bad_prefix_length(self):
        with pytest.raises(ValueError):
            SessionKey(b"\x00" * 32, prefix=b"\x00" * 3)

    def test_rejects_out_of_range_sequence(self):
        sk = SessionKey(b"\x00" * 32)
        with pytest.raises(ValueError):
            sk.nonce_for(2 ** 64)


class TestKeyPairs:
    def test_identity_sign_verify(self):
        ident = IdentityKeyPair.generate(random.Random(11))
        sig = ident.sign(b"descriptor")
        assert ident.verify_key.verify(b"descriptor", sig)

    def test_short_term_exchange(self):
        rng = random.Random(12)
        a = ShortTermKeyPair.generate(rng)
        b = ShortTermKeyPair.generate(rng)
        assert a.exchange(b.public_bytes) == b.exchange(a.public_bytes)


@given(ikm=st.binary(min_size=1, max_size=64),
       info=st.binary(max_size=32),
       length=st.integers(min_value=1, max_value=128))
def test_hkdf_deterministic_property(ikm, info, length):
    assert (hkdf_sha256(ikm, info=info, length=length)
            == hkdf_sha256(ikm, info=info, length=length))
    assert len(hkdf_sha256(ikm, info=info, length=length)) == length

"""Unit coverage for the herdscope metrics registry.

Counter/gauge/histogram semantics, (name, labels) keying, cardinality
protection, virtual-time stamping, snapshot determinism, and the
Prometheus/JSON exporters.
"""

import pytest

from repro.obs.export import render_json, render_prometheus
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MAX_SERIES_PER_NAME,
    LabelCardinalityError,
    MetricsRegistry,
    canonical_labels,
)


def test_canonical_labels_order_independent():
    assert canonical_labels({"b": 2, "a": 1}) == \
        canonical_labels({"a": "1", "b": "2"}) == (("a", "1"), ("b", "2"))
    assert canonical_labels(None) == canonical_labels({}) == ()


class TestCounter:
    def test_inc_and_default_amount(self):
        reg = MetricsRegistry()
        c = reg.counter("events_total")
        c.inc()
        c.inc(2.5)
        assert reg.value("events_total") == 3.5

    def test_rejects_negative(self):
        c = MetricsRegistry().counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_same_name_same_labels_is_same_series(self):
        reg = MetricsRegistry()
        reg.counter("hits", {"zone": "EU"}).inc()
        reg.counter("hits", {"zone": "EU"}).inc()
        reg.counter("hits", {"zone": "NA"}).inc()
        assert reg.value("hits", {"zone": "EU"}) == 2
        assert reg.value("hits", {"zone": "NA"}) == 1
        assert len(reg.series("hits")) == 2


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13.0


class TestHistogram:
    def test_bucketing_and_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 5.0, 10.0))
        for v in (0.5, 0.7, 4.0, 9.0, 100.0):
            h.observe(v)
        assert h.bucket_counts == [2, 1, 1, 1]  # last is +inf
        assert h.cumulative_counts() == [2, 3, 4, 5]
        assert h.count == 5
        assert h.sum == pytest.approx(114.2)

    def test_value_is_observation_count(self):
        reg = MetricsRegistry()
        reg.histogram("lat").observe(1.0)
        assert reg.value("lat") == 1.0

    def test_buckets_sorted_and_inf_stripped(self):
        h = MetricsRegistry().histogram(
            "h", buckets=(10.0, 1.0, float("inf")))
        assert h.buckets == (1.0, 10.0)

    def test_default_buckets(self):
        assert MetricsRegistry().histogram("h").buckets == DEFAULT_BUCKETS


class TestRegistry:
    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(TypeError):
            reg.gauge("m")
        with pytest.raises(TypeError):
            reg.gauge("m", {"zone": "EU"})  # even with fresh labels

    def test_cardinality_cap(self):
        reg = MetricsRegistry()
        for i in range(MAX_SERIES_PER_NAME):
            reg.counter("wild", {"id": i})
        with pytest.raises(LabelCardinalityError):
            reg.counter("wild", {"id": "one-too-many"})

    def test_virtual_clock_stamps_updates(self):
        t = {"now": 0.0}
        reg = MetricsRegistry(lambda: t["now"])
        c = reg.counter("c")
        t["now"] = 4.25
        c.inc()
        assert c.updated_at == 4.25

    def test_use_clock_repoints_existing_instruments(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        reg.use_clock(lambda: 7.0)
        c.inc()
        assert c.updated_at == 7.0

    def test_missing_series_value_is_none(self):
        assert MetricsRegistry().value("nope") is None


class TestSnapshot:
    def _populated(self):
        reg = MetricsRegistry(lambda: 1.5)
        reg.counter("b_total", {"z": "NA"}, help="bees").inc(2)
        reg.counter("b_total", {"z": "EU"}).inc()
        reg.gauge("a_gauge").set(3)
        reg.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        return reg

    def test_snapshot_is_deterministic(self):
        s1, s2 = self._populated().snapshot(), self._populated().snapshot()
        assert s1 == s2
        assert render_json(s1) == render_json(s2)
        assert render_prometheus(s1) == render_prometheus(s2)

    def test_snapshot_sorted_by_name_and_labels(self):
        snap = self._populated().snapshot()
        assert list(snap) == ["a_gauge", "b_total", "h"]
        zones = [s["labels"]["z"] for s in snap["b_total"]["series"]]
        assert zones == ["EU", "NA"]

    def test_prometheus_rendering(self):
        text = render_prometheus(self._populated().snapshot())
        assert "# HELP b_total bees" in text
        assert "# TYPE b_total counter" in text
        assert 'b_total{z="NA"} 2' in text
        assert 'h_bucket{le="2"} 1' in text
        assert 'h_bucket{le="+Inf"} 1' in text
        assert "h_sum 1.5" in text
        assert "h_count 1" in text

    def test_clear(self):
        reg = self._populated()
        reg.clear()
        assert len(reg) == 0 and reg.snapshot() == {}


class TestBulkOps:
    """Counter.add / Histogram.observe_many: the O(1)-per-round batch
    path must be indistinguishable from sequential updates."""

    def test_counter_add_equals_n_incs(self):
        t = {"now": 0.0}
        reg = MetricsRegistry(lambda: t["now"])
        sequential = reg.counter("seq_total")
        bulk = reg.counter("bulk_total")
        t["now"] = 3.0
        for _ in range(257):
            sequential.inc()
        bulk.add(257)
        assert bulk.value == sequential.value == 257
        assert bulk.updated_at == sequential.updated_at == 3.0

    def test_counter_add_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").add(-1)

    def test_observe_many_equals_sequential_observes(self):
        values = [0.0007, 0.003, 0.4, 7.7, 1e6, 0.1, 0.1, 123.456]
        t = {"now": 0.0}
        reg = MetricsRegistry(lambda: t["now"])
        sequential = reg.histogram("seq")
        bulk = reg.histogram("bulk")
        t["now"] = 9.0
        for v in values:
            sequential.observe(v)
        bulk.observe_many(values)
        assert bulk.bucket_counts == sequential.bucket_counts
        assert bulk.count == sequential.count == len(values)
        # Bit-for-bit, not approx: sum accumulates in iteration order.
        assert bulk.sum == sequential.sum
        assert bulk.updated_at == sequential.updated_at == 9.0
        s_bulk = bulk.series_snapshot()
        s_seq = sequential.series_snapshot()
        del s_bulk["labels"], s_seq["labels"]
        assert s_bulk == s_seq

    def test_observe_many_empty_does_not_stamp(self):
        t = {"now": 5.0}
        reg = MetricsRegistry(lambda: t["now"])
        h = reg.histogram("h")
        h.observe_many([])
        assert h.count == 0 and h.updated_at == 0.0

    def test_bulk_ops_respect_cardinality_cap(self):
        # Bulk updates address series through the same factory, so a
        # run that hits MAX_SERIES_PER_NAME still fails loudly on the
        # overflowing label set — but bulk updates to *existing*
        # series keep working at the cap.
        reg = MetricsRegistry()
        for i in range(MAX_SERIES_PER_NAME):
            reg.counter("capped_total", {"i": i})
        with pytest.raises(LabelCardinalityError):
            reg.counter("capped_total", {"i": "overflow"})
        survivor = reg.counter("capped_total", {"i": 0})
        survivor.add(41)
        assert reg.value("capped_total", {"i": 0}) == 41
        h = reg.histogram("capped_hist", {"i": "only"})
        h.observe_many([0.5, 2.0])
        assert h.count == 2

"""Tests for PKI, the DTLS-like link, and onion (layered) encryption."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.dtls import (
    HandshakeError,
    _HandshakeState,
    establish_link,
)
from repro.crypto.keys import IdentityKeyPair, ShortTermKeyPair
from repro.crypto.onion import (
    CELL_PAYLOAD,
    CELL_SIZE,
    HopKeys,
    OnionCircuitKeys,
    decode_cell,
    encode_cell,
    unwrap_backward,
    unwrap_layer,
    unwrap_onion,
    wrap_backward,
    wrap_onion,
)
from repro.crypto.pki import (
    RootOfTrust,
    issue_certificate,
    make_descriptor,
)


def _rng():
    return random.Random(20150817)


class TestPKI:
    def _setup(self):
        rng = _rng()
        root = RootOfTrust(rng)
        dir_ident = IdentityKeyPair.generate(rng)
        dir_st = ShortTermKeyPair.generate(rng)
        dir_cert = root.certify_zone_directory(
            "zone-EU", dir_ident.public_bytes, dir_st.public_bytes)
        return rng, root, dir_ident, dir_cert

    def test_zone_directory_cert_verifies(self):
        _, root, _, dir_cert = self._setup()
        assert dir_cert.verify(root.public_key)

    def test_client_chain_verifies(self):
        rng, root, dir_ident, dir_cert = self._setup()
        client_ident = IdentityKeyPair.generate(rng)
        client_st = ShortTermKeyPair.generate(rng)
        leaf = issue_certificate(
            dir_ident.signing_key, "client-1", "client", "zone-EU",
            client_ident.public_bytes, client_st.public_bytes)
        assert root.verify_chain(leaf, dir_cert)

    def test_chain_rejects_zone_mismatch(self):
        rng, root, dir_ident, dir_cert = self._setup()
        client_ident = IdentityKeyPair.generate(rng)
        client_st = ShortTermKeyPair.generate(rng)
        leaf = issue_certificate(
            dir_ident.signing_key, "client-1", "client", "zone-NA",
            client_ident.public_bytes, client_st.public_bytes)
        assert not root.verify_chain(leaf, dir_cert)

    def test_chain_rejects_forged_issuer(self):
        rng, root, _, dir_cert = self._setup()
        rogue = IdentityKeyPair.generate(rng)
        client_ident = IdentityKeyPair.generate(rng)
        client_st = ShortTermKeyPair.generate(rng)
        leaf = issue_certificate(
            rogue.signing_key, "client-1", "client", "zone-EU",
            client_ident.public_bytes, client_st.public_bytes)
        assert not root.verify_chain(leaf, dir_cert)

    def test_unknown_role_rejected(self):
        rng = _rng()
        ident = IdentityKeyPair.generate(rng)
        with pytest.raises(ValueError):
            issue_certificate(ident.signing_key, "x", "router", "z",
                              b"\x00" * 32, b"\x00" * 32)

    def test_descriptor_roundtrip(self):
        rng = _rng()
        ident = IdentityKeyPair.generate(rng)
        st_key = ShortTermKeyPair.generate(rng)
        desc = make_descriptor(ident, "mix-1", "zone-EU",
                               st_key.public_bytes, "10.0.0.1:443")
        assert desc.verify()

    def test_descriptor_tamper_detected(self):
        rng = _rng()
        ident = IdentityKeyPair.generate(rng)
        st_key = ShortTermKeyPair.generate(rng)
        desc = make_descriptor(ident, "mix-1", "zone-EU",
                               st_key.public_bytes, "10.0.0.1:443")
        from dataclasses import replace
        tampered = replace(desc, address="10.6.6.6:443")
        assert not tampered.verify()

    def test_zone_certificate_lookup(self):
        _, root, _, dir_cert = self._setup()
        assert root.zone_certificate("zone-EU") == dir_cert
        assert root.zone_certificate("zone-XX") is None


class TestDTLSLink:
    def _links(self):
        rng = _rng()
        a = IdentityKeyPair.generate(rng)
        b = IdentityKeyPair.generate(rng)
        return establish_link(a, b, rng)

    def test_roundtrip_both_directions(self):
        left, right = self._links()
        assert right.open(left.seal(b"hello")) == b"hello"
        assert left.open(right.seal(b"world")) == b"world"

    def test_replay_rejected(self):
        left, right = self._links()
        datagram = left.seal(b"payload")
        assert right.open(datagram) == b"payload"
        assert right.open(datagram) is None

    def test_out_of_order_accepted(self):
        left, right = self._links()
        d0 = left.seal(b"zero")
        d1 = left.seal(b"one")
        assert right.open(d1) == b"one"
        assert right.open(d0) == b"zero"

    def test_forgery_rejected(self):
        left, right = self._links()
        datagram = bytearray(left.seal(b"payload"))
        datagram[-1] ^= 1
        with pytest.raises(ValueError):
            right.open(bytes(datagram))

    def test_short_datagram_rejected(self):
        _, right = self._links()
        with pytest.raises(ValueError):
            right.open(b"\x00" * 4)

    def test_identity_pinning(self):
        rng = _rng()
        a = IdentityKeyPair.generate(rng)
        b = IdentityKeyPair.generate(rng)
        mallory = IdentityKeyPair.generate(rng)
        init = _HandshakeState(a, is_initiator=True, rng=rng)
        resp = _HandshakeState(mallory, is_initiator=False, rng=rng)
        with pytest.raises(HandshakeError):
            init.finish(resp.hello(), expected_identity=b.public_bytes)

    def test_tampered_hello_rejected(self):
        rng = _rng()
        a = IdentityKeyPair.generate(rng)
        b = IdentityKeyPair.generate(rng)
        init = _HandshakeState(a, is_initiator=True, rng=rng)
        resp = _HandshakeState(b, is_initiator=False, rng=rng)
        hello = resp.hello()
        from dataclasses import replace
        bad = replace(hello, ephemeral_public=b"\x42" * 32)
        with pytest.raises(HandshakeError):
            init.finish(bad)

    def test_byte_counters(self):
        left, right = self._links()
        datagram = left.seal(b"x" * 100)
        right.open(datagram)
        assert left.bytes_sent == len(datagram)
        assert right.bytes_received == len(datagram)

    def test_overhead_reported(self):
        left, _ = self._links()
        datagram = left.seal(b"")
        assert len(datagram) == left.overhead


def _circuit(n_hops: int, rng=None) -> OnionCircuitKeys:
    rng = rng or _rng()
    hops = []
    for i in range(n_hops):
        secret = rng.getrandbits(256).to_bytes(32, "little")
        hops.append(HopKeys.from_shared_secret(secret,
                                               context=b"hop%d" % i))
    return OnionCircuitKeys(hops)


class TestOnion:
    def test_cell_roundtrip(self):
        cell = encode_cell(b"voip frame", b"\x01" * 32)
        assert len(cell) == CELL_SIZE
        assert decode_cell(cell, b"\x01" * 32) == b"voip frame"

    def test_cell_rejects_oversized_payload(self):
        with pytest.raises(ValueError):
            encode_cell(b"\x00" * (CELL_PAYLOAD + 1), b"\x01" * 32)

    def test_cell_mac_tamper_detected(self):
        cell = bytearray(encode_cell(b"frame", b"\x01" * 32))
        cell[3] ^= 1
        with pytest.raises(ValueError):
            decode_cell(bytes(cell), b"\x01" * 32)

    def test_cell_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            decode_cell(b"\x00" * (CELL_SIZE - 1), b"\x01" * 32)

    @pytest.mark.parametrize("n_hops", [1, 2, 3, 5])
    def test_forward_path_roundtrip(self, n_hops):
        circuit = _circuit(n_hops)
        wrapped = wrap_onion(circuit, b"hello callee", sequence=7)
        assert len(wrapped) == CELL_SIZE
        assert unwrap_onion(circuit, wrapped, sequence=7) == b"hello callee"

    @pytest.mark.parametrize("n_hops", [1, 3, 5])
    def test_backward_path_roundtrip(self, n_hops):
        circuit = _circuit(n_hops)
        wrapped = wrap_backward(circuit, b"hello caller", sequence=3)
        assert unwrap_backward(circuit, wrapped, sequence=3) == b"hello caller"

    def test_hop_by_hop_peeling_matches_full_unwrap(self):
        circuit = _circuit(3)
        wrapped = wrap_onion(circuit, b"data", sequence=0)
        cell = wrapped
        for hop in circuit.hops:
            cell = unwrap_layer(hop, cell, 0, forward=True)
        assert decode_cell(cell, circuit.hops[-1].forward_mac) == b"data"

    def test_bitwise_unlinkability_invariant_i1(self):
        """Invariant I1: the encrypted content on successive links of a
        circuit is uncorrelated — here, each peel changes every part of
        the cell and no two link representations share long runs."""
        circuit = _circuit(3)
        wrapped = wrap_onion(circuit, b"A" * 64, sequence=1)
        representations = [wrapped]
        cell = wrapped
        for hop in circuit.hops[:-1]:
            cell = unwrap_layer(hop, cell, 1, forward=True)
            representations.append(cell)
        for i in range(len(representations)):
            for j in range(i + 1, len(representations)):
                a, b = representations[i], representations[j]
                matches = sum(x == y for x, y in zip(a, b))
                # Random 256+ byte strings agree on ~1/256 of positions.
                assert matches < len(a) * 0.1

    def test_wrong_sequence_fails_mac(self):
        circuit = _circuit(2)
        wrapped = wrap_onion(circuit, b"data", sequence=5)
        with pytest.raises(ValueError):
            unwrap_onion(circuit, wrapped, sequence=6)

    def test_empty_circuit_rejected(self):
        with pytest.raises(ValueError):
            OnionCircuitKeys([])


@settings(max_examples=20, deadline=None)
@given(payload=st.binary(max_size=CELL_PAYLOAD),
       n_hops=st.integers(min_value=1, max_value=4),
       sequence=st.integers(min_value=0, max_value=2**32))
def test_onion_roundtrip_property(payload, n_hops, sequence):
    circuit = _circuit(n_hops, random.Random(99))
    wrapped = wrap_onion(circuit, payload, sequence)
    assert unwrap_onion(circuit, wrapped, sequence) == payload

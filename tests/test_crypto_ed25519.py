"""Tests for Ed25519 against RFC 8032 vectors."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.ed25519 import SigningKey, VerifyKey


# RFC 8032 §7.1 TEST 1 (empty message)
T1_SEED = bytes.fromhex(
    "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60")
T1_PUB = bytes.fromhex(
    "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a")
T1_SIG = bytes.fromhex(
    "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
    "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b")

# RFC 8032 §7.1 TEST 2 (one byte)
T2_SEED = bytes.fromhex(
    "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb")
T2_PUB = bytes.fromhex(
    "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c")
T2_MSG = bytes.fromhex("72")
T2_SIG = bytes.fromhex(
    "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
    "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00")

# RFC 8032 §7.1 TEST 3 (two bytes)
T3_SEED = bytes.fromhex(
    "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7")
T3_PUB = bytes.fromhex(
    "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025")
T3_MSG = bytes.fromhex("af82")
T3_SIG = bytes.fromhex(
    "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac"
    "18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a")


class TestRFC8032Vectors:
    @pytest.mark.parametrize("seed,pub,msg,sig", [
        (T1_SEED, T1_PUB, b"", T1_SIG),
        (T2_SEED, T2_PUB, T2_MSG, T2_SIG),
        (T3_SEED, T3_PUB, T3_MSG, T3_SIG),
    ])
    def test_sign_vector(self, seed, pub, msg, sig):
        key = SigningKey(seed)
        assert key.verify_key.public_bytes == pub
        assert key.sign(msg) == sig
        assert key.verify_key.verify(msg, sig)


class TestSignVerify:
    def test_verify_rejects_wrong_message(self):
        key = SigningKey.generate(random.Random(1))
        sig = key.sign(b"hello")
        assert not key.verify_key.verify(b"goodbye", sig)

    def test_verify_rejects_corrupted_signature(self):
        key = SigningKey.generate(random.Random(2))
        sig = bytearray(key.sign(b"hello"))
        sig[10] ^= 0xFF
        assert not key.verify_key.verify(b"hello", bytes(sig))

    def test_verify_rejects_wrong_key(self):
        k1 = SigningKey.generate(random.Random(3))
        k2 = SigningKey.generate(random.Random(4))
        sig = k1.sign(b"hello")
        assert not k2.verify_key.verify(b"hello", sig)

    def test_verify_rejects_bad_lengths(self):
        key = SigningKey.generate(random.Random(5))
        assert not key.verify_key.verify(b"m", b"\x00" * 63)

    def test_verify_rejects_oversized_s(self):
        key = SigningKey.generate(random.Random(6))
        sig = key.sign(b"m")
        bad = sig[:32] + b"\xff" * 32
        assert not key.verify_key.verify(b"m", bad)

    def test_seed_length_enforced(self):
        with pytest.raises(ValueError):
            SigningKey(b"\x00" * 16)

    def test_public_key_length_enforced(self):
        with pytest.raises(ValueError):
            VerifyKey(b"\x00" * 16)

    def test_deterministic_generation(self):
        a = SigningKey.generate(random.Random(9))
        b = SigningKey.generate(random.Random(9))
        assert a.seed == b.seed


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**63),
       msg=st.binary(max_size=128))
def test_sign_verify_property(seed, msg):
    key = SigningKey.generate(random.Random(seed))
    assert key.verify_key.verify(msg, key.sign(msg))

"""Tests: fault plans, the injector, and chaos-run determinism."""

import pytest

from repro.core.blacklist import SPMonitor
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.netsim.engine import EventLoop
from repro.netsim.link import Link
from repro.netsim.node import Node
from repro.simulation.chaos import (
    ChaosConfig,
    blacklist_plan,
    default_plan,
    run_chaos,
)

from conftest import build_testbed


def _bed():
    return build_testbed(zone_specs=[("zone-EU", "dc-eu", 2)])


def _small_config(**overrides):
    defaults = dict(horizon_s=6.0, n_clients=8, n_direct_clients=4,
                    round_interval_s=0.05)
    defaults.update(overrides)
    return ChaosConfig(**defaults)


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.MIX_CRASH, at_s=-1.0, target="m")
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.MIX_CRASH, at_s=0.0, target="")
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.MIX_CRASH, at_s=0.0, target="m",
                      duration_s=0.0)
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.LOSS_BURST, at_s=0.0, target="m",
                      duration_s=1.0, loss=1.5)
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.JITTER_BURST, at_s=0.0, target="m",
                      duration_s=1.0, jitter_ms=-1.0)
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.MIX_CRASH, at_s=0.0, target="m",
                      detection_delay_s=-0.5)

    def test_degradations_require_duration(self):
        for kind in (FaultKind.LINK_DEGRADE, FaultKind.LINK_PARTITION,
                     FaultKind.LOSS_BURST, FaultKind.JITTER_BURST):
            with pytest.raises(ValueError):
                FaultSpec(kind=kind, at_s=0.0, target="sp")

    def test_crash_duration_optional(self):
        spec = FaultSpec(kind=FaultKind.SP_CRASH, at_s=1.0, target="sp")
        assert spec.duration_s is None


class TestFaultPlan:
    def test_specs_sorted_by_time(self):
        late = FaultSpec(kind=FaultKind.MIX_CRASH, at_s=5.0, target="m")
        early = FaultSpec(kind=FaultKind.SP_CRASH, at_s=1.0, target="s")
        plan = FaultPlan([late, early])
        assert [s.at_s for s in plan] == [1.0, 5.0]
        assert len(plan) == 2

    def test_signature_is_content_addressed(self):
        spec = FaultSpec(kind=FaultKind.MIX_CRASH, at_s=1.0, target="m")
        other = FaultSpec(kind=FaultKind.MIX_CRASH, at_s=2.0, target="m")
        assert FaultPlan([spec]).signature() == \
            FaultPlan([spec]).signature()
        assert FaultPlan([spec]).signature() != \
            FaultPlan([other]).signature()

    def test_generate_is_seed_deterministic(self):
        kwargs = dict(horizon_s=10.0, mix_ids=["m0", "m1"],
                      sp_ids=["s0", "s1"], n_faults=6)
        a = FaultPlan.generate(seed=4, **kwargs)
        b = FaultPlan.generate(seed=4, **kwargs)
        c = FaultPlan.generate(seed=5, **kwargs)
        assert a.signature() == b.signature()
        assert a.signature() != c.signature()
        assert len(a) == 6

    def test_generate_validation(self):
        with pytest.raises(ValueError):
            FaultPlan.generate(seed=0, horizon_s=0.0, mix_ids=["m"])
        with pytest.raises(ValueError):
            FaultPlan.generate(seed=0, horizon_s=1.0)


class TestInjectorCrashes:
    def test_mix_crash_detection_and_recovery(self):
        bed = _bed()
        for i in range(4):
            bed.add_client(f"c{i}", "zone-EU")
        loop = EventLoop(seed=1)
        injector = FaultInjector(bed, loop)
        target = bed.clients["c0"].mix_id
        plan = FaultPlan([FaultSpec(
            kind=FaultKind.MIX_CRASH, at_s=1.0, target=target,
            duration_s=3.0, detection_delay_s=0.5)])
        plan.compile_onto(loop, injector)
        loop.run(until=1.2)
        # Unclean crash: mix gone but directory still lists it.
        assert target not in bed.mixes
        assert target in bed.zones["zone-EU"].mix_ids
        loop.run(until=2.0)
        assert target not in bed.zones["zone-EU"].mix_ids
        loop.run(until=5.0)
        # Recovered: back in the deployment and the directory.
        assert target in bed.mixes
        assert target in bed.zones["zone-EU"].mix_ids
        actions = [(e.action, e.target) for e in injector.timeline]
        assert actions == [("injected", target), ("detected", target),
                           ("recovered", target)]
        assert injector.orphans[target]  # c0 at least

    def test_sp_crash_and_recovery(self):
        bed = _bed()
        mix = bed.mixes["zone-EU/mix-0"]
        mix.configure_channels(2)
        bed.add_superpeer("sp-0", mix.mix_id, channels=[0, 1])
        bed.add_client("c0", "zone-EU", k=2, via_superpeers=True)
        loop = EventLoop(seed=1)
        injector = FaultInjector(bed, loop)
        plan = FaultPlan([FaultSpec(
            kind=FaultKind.SP_CRASH, at_s=1.0, target="sp-0",
            duration_s=2.0)])
        plan.compile_onto(loop, injector)
        loop.run(until=1.5)
        assert "sp-0" not in bed.superpeers
        loop.run(until=4.0)
        assert "sp-0" in bed.superpeers
        assert bed.superpeers["sp-0"].channel_clients == {0: [], 1: []}
        assert [e.action for e in injector.timeline] == \
            ["injected", "recovered"]

    def test_double_crash_is_skipped_not_fatal(self):
        bed = _bed()
        loop = EventLoop(seed=1)
        injector = FaultInjector(bed, loop)
        plan = FaultPlan([
            FaultSpec(kind=FaultKind.MIX_CRASH, at_s=1.0,
                      target="zone-EU/mix-0"),
            FaultSpec(kind=FaultKind.MIX_CRASH, at_s=2.0,
                      target="zone-EU/mix-0"),
        ])
        plan.compile_onto(loop, injector)
        loop.run()
        assert [e.action for e in injector.timeline] == \
            ["injected", "skipped"]

    def test_crash_hooks_fire_with_orphans(self):
        bed = _bed()
        bed.add_client("c0", "zone-EU")
        loop = EventLoop(seed=1)
        injector = FaultInjector(bed, loop)
        seen = []
        injector.on_mix_crash.append(
            lambda spec, orphans: seen.append((spec.target, orphans)))
        target = bed.clients["c0"].mix_id
        plan = FaultPlan([FaultSpec(kind=FaultKind.MIX_CRASH, at_s=1.0,
                                    target=target)])
        plan.compile_onto(loop, injector)
        loop.run()
        assert seen == [(target, ["c0"])]


class TestInjectorDegradations:
    def test_link_degrade_mutates_and_restores_link(self):
        loop = EventLoop(seed=1)
        link = Link(loop, Node("a", loop), Node("b", loop),
                    one_way_delay=0.01)
        bed = _bed()
        injector = FaultInjector(bed, loop, links={"a->b": link})
        plan = FaultPlan([FaultSpec(
            kind=FaultKind.LINK_DEGRADE, at_s=1.0, target="a->b",
            duration_s=2.0, loss=0.2, jitter_ms=50.0)])
        plan.compile_onto(loop, injector)
        loop.run(until=1.5)
        assert link.loss_rate == 0.2
        assert link.jitter_std == 0.05
        loop.run(until=4.0)
        assert link.loss_rate == 0.0
        assert link.jitter_std == 0.0

    def test_partition_forces_availability_down(self):
        loop = EventLoop(seed=1)
        bed = _bed()
        monitor = SPMonitor()
        injector = FaultInjector(bed, loop, monitor=monitor,
                                 sample_interval_s=0.1)
        plan = FaultPlan([FaultSpec(
            kind=FaultKind.LINK_PARTITION, at_s=0.5, target="sp-x",
            duration_s=2.0)])
        plan.compile_onto(loop, injector)
        loop.run(until=5.0)
        assert monitor.is_blacklisted("sp-x")
        assert monitor.records["sp-x"].availability == 0.0

    def test_degradation_sampling_stops_at_window_end(self):
        loop = EventLoop(seed=1)
        bed = _bed()
        monitor = SPMonitor(min_samples=1000)  # never blacklists here
        injector = FaultInjector(bed, loop, monitor=monitor,
                                 sample_interval_s=0.25)
        plan = FaultPlan([FaultSpec(
            kind=FaultKind.LOSS_BURST, at_s=0.0, target="sp-x",
            duration_s=1.0, loss=0.5)])
        plan.compile_onto(loop, injector)
        loop.run(until=10.0)
        n_at_window_end = len(monitor.records["sp-x"].loss_samples)
        assert 4 <= n_at_window_end <= 5
        assert not monitor.is_blacklisted("sp-x")


class TestChaosScenario:
    def test_acceptance_scenario_mix_and_sp_killed_mid_call(self):
        report = run_chaos(_small_config())
        # ≥ 1 documented successful mid-call failover, with the call
        # actually resuming on a surviving SP's channel.
        assert len(report.survived_failovers) >= 1
        assert report.mid_call_failover_demonstrated
        for record in report.survived_failovers:
            assert record.new_channel != record.old_channel
        # Every orphan of the mix crash re-joined through backoff.
        assert report.rejoins
        assert report.all_rejoined
        for stats in report.rejoins:
            assert stats.attempts >= 1
            assert stats.latency_s > 0
        # Structured timeline documents the whole story.
        actions = {e.action for e in report.timeline}
        assert {"injected", "failover", "rejoined"} <= actions

    def test_blacklist_driven_failover(self):
        report = run_chaos(_small_config(plan=blacklist_plan()))
        assert "zone-live/sp-1" in report.blacklisted_sps
        assert len(report.survived_failovers) >= 1
        assert report.mid_call_failover_demonstrated
        kinds = [(e.action, e.kind) for e in report.timeline]
        assert ("blacklisted", "sp_quality") in kinds
        assert ("failover", "call") in kinds

    def test_same_seed_same_plan_identical_runs(self):
        # The determinism regression: fault timeline, events processed,
        # rejoin latencies, and failover outcomes all replay
        # bit-for-bit.
        a = run_chaos(_small_config())
        b = run_chaos(_small_config())
        assert a.determinism_key() == b.determinism_key()
        assert a.events_processed == b.events_processed
        assert [tuple(e.__dict__.items()) for e in a.timeline] == \
            [tuple(e.__dict__.items()) for e in b.timeline]

    def test_different_seed_diverges(self):
        a = run_chaos(_small_config())
        b = run_chaos(_small_config(seed=99))
        assert a.determinism_key() != b.determinism_key()

    def test_default_plans_have_stable_signatures(self):
        assert default_plan().signature() == default_plan().signature()
        assert default_plan().signature() != \
            blacklist_plan().signature()

"""The ``repro bench`` regression plane: run / compare / list.

The acceptance contract (ISSUE/DESIGN §11): ``repro bench run`` writes
a schema-versioned entry with provenance and a per-phase breakdown,
and ``repro bench compare BASE HEAD`` exits nonzero when HEAD carries
an injected slowdown of >= 20% (tolerance 0.15).  The compare gate is
fingerprint-aware — absolute cells/sec only count on the same machine;
across machines only the batch/event speedup ratio is gated — and it
still reads pre-provenance (schema 0) baseline files.
"""

import copy
import json

from repro.cli import main
from repro.obs.prof import bench
from repro.obs.prof.provenance import BENCH_SCHEMA_VERSION


def _entry(fingerprint="machine-aaaa", batch_scale=1.0,
           event_scale=1.0):
    """A synthetic schema-1 bench entry with known throughputs."""
    engines = {"event": [], "batch": []}
    for clients in (100, 500):
        event_cps = 50_000.0 * event_scale
        batch_cps = 400_000.0 * batch_scale
        for engine, cps in (("event", event_cps), ("batch",
                                                   batch_cps)):
            engines[engine].append({
                "clients": clients, "rounds": 25,
                "cells": 2 * clients * 25,
                "events": 25 if engine == "batch"
                else 4 * clients * 25,
                "elapsed_s": 1.0, "cpu_s": 1.0,
                "cells_per_sec": cps, "events_per_sec": cps,
                "observed_cells": 2 * clients * 25,
            })
    return {
        "provenance": {
            "schema": BENCH_SCHEMA_VERSION,
            "commit": "deadbeefcafe",
            "python": "3.11.7",
            "python_implementation": "CPython",
            "platform": "linux",
            "machine_fingerprint": fingerprint,
            "timestamp_utc": "2026-08-08T00:00:00Z",
        },
        "workload": "synthetic",
        "client_counts": [100, 500],
        "rounds": 25,
        "engines": engines,
        "speedup_cells_per_sec": {
            "100": 400_000.0 * batch_scale / (50_000.0 * event_scale),
            "500": 400_000.0 * batch_scale / (50_000.0 * event_scale),
        },
    }


def _write(tmp_path, name, entry):
    path = tmp_path / name
    path.write_text(json.dumps(entry, indent=2, sort_keys=True))
    return str(path)


class TestCompareGate:
    def test_identical_entries_pass(self, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _entry())
        head = _write(tmp_path, "head.json", _entry())
        assert main(["bench", "compare", base, head]) == 0
        out = capsys.readouterr().out
        assert "same machine fingerprint" in out
        assert "no regressions" in out

    def test_injected_20pct_slowdown_exits_nonzero(self, tmp_path,
                                                   capsys):
        # The headline acceptance check: a >= 20% absolute batch
        # slowdown on the same machine trips the 0.15 tolerance.
        base = _write(tmp_path, "base.json", _entry())
        head = _write(tmp_path, "head.json",
                      _entry(batch_scale=0.80))
        assert main(["bench", "compare", base, head]) == 1
        err = capsys.readouterr().err
        assert "REGRESSION" in err
        # The slowdown also erodes the speedup ratio, so both gates
        # fire: ratio at each count plus batch absolute at each count.
        assert "speedup ratio" in err
        assert "batch engine" in err

    def test_slowdown_within_tolerance_passes(self, tmp_path):
        base = _write(tmp_path, "base.json", _entry())
        head = _write(tmp_path, "head.json",
                      _entry(batch_scale=0.90))
        assert main(["bench", "compare", base, head]) == 0

    def test_cross_machine_gates_ratio_only(self, tmp_path, capsys):
        # Base from another machine: a uniform absolute slowdown
        # (thermal, load, slower CI runner) keeps the ratio intact and
        # must NOT fail...
        base = _write(tmp_path, "base.json",
                      _entry(fingerprint="machine-bbbb"))
        uniform = _entry(batch_scale=0.5, event_scale=0.5)
        head = _write(tmp_path, "head.json", uniform)
        assert main(["bench", "compare", base, head]) == 0
        assert "speedup ratios only" in capsys.readouterr().out
        # ...but a batch-only slowdown shifts the ratio and fails even
        # across machines.
        head_bad = _write(tmp_path, "head_bad.json",
                          _entry(batch_scale=0.75))
        assert main(["bench", "compare", base, head_bad]) == 1

    def test_custom_tolerance(self, tmp_path):
        base = _write(tmp_path, "base.json", _entry())
        head = _write(tmp_path, "head.json",
                      _entry(batch_scale=0.90))
        assert main(["bench", "compare", "--tolerance", "0.05",
                     base, head]) == 1

    def test_schema0_baseline_still_compares(self, tmp_path, capsys):
        # Pre-provenance BENCH files (the old ad-hoc format) carry
        # engines + speedups but no provenance block: compare reads
        # them as schema 0 and falls back to the ratio-only gate.
        old = _entry()
        del old["provenance"]
        base = _write(tmp_path, "old.json", old)
        head = _write(tmp_path, "head.json",
                      _entry(batch_scale=0.70))
        assert main(["bench", "compare", base, head]) == 1
        out = capsys.readouterr().out
        assert "base schema 0" in out
        assert "speedup ratios only" in out

    def test_missing_file_exits_2(self, tmp_path, capsys):
        head = _write(tmp_path, "head.json", _entry())
        assert main(["bench", "compare",
                     str(tmp_path / "nope.json"), head]) == 2
        assert "error:" in capsys.readouterr().err

    def test_compare_entries_api_lists_each_regression(self):
        base, head = _entry(), _entry(batch_scale=0.5)
        findings = bench.compare_entries(base, head)
        # 2 ratio findings + 2 batch absolute findings.
        assert len(findings) == 4
        assert not bench.compare_entries(base, copy.deepcopy(base))


class TestRunAndList:
    def test_run_writes_entry_trajectory_and_flamegraph(
            self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main(["bench", "run", "--clients", "20", "--clients",
                   "40", "--rounds", "3", "--json", "out.json",
                   "--trajectory", "traj.jsonl",
                   "--flamegraph", "flame.txt",
                   "--self-time", "selftime.txt"])
        assert rc == 0
        entry = json.loads((tmp_path / "out.json").read_text())
        prov = entry["provenance"]
        assert prov["schema"] == BENCH_SCHEMA_VERSION
        assert prov["machine_fingerprint"] and prov["timestamp_utc"]
        assert entry["client_counts"] == [20, 40]
        # Phase breakdown from the profiled headline (40-client) runs.
        for engine in ("event", "batch"):
            phases = entry["phases"][engine]["phases"]
            assert phases["deliver"]["cells"] == 2 * 40 * 3
            assert entry["phases"][engine]["rounds_profiled"] == 3
        assert entry["profiler_overhead"]["clients"] == 40
        traj = bench.read_trajectory("traj.jsonl")
        assert len(traj) == 1 and traj[0]["rounds"] == 3
        assert (tmp_path / "flame.txt").read_text().strip()
        assert "function" in (tmp_path / "selftime.txt").read_text()
        out = capsys.readouterr().out
        assert "speedup" in out and "flamegraph" in out

    def test_run_then_compare_self_is_clean(self, tmp_path,
                                            monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "run", "--clients", "20", "--rounds",
                     "3", "--json", "b.json", "--trajectory", "none",
                     "--no-phases"]) == 0
        assert main(["bench", "compare", "b.json", "b.json"]) == 0

    def test_list_renders_trajectory(self, tmp_path, capsys,
                                     monkeypatch):
        monkeypatch.chdir(tmp_path)
        bench.append_trajectory(_entry(), "traj.jsonl")
        assert main(["bench", "list", "--trajectory",
                     "traj.jsonl"]) == 0
        out = capsys.readouterr().out
        assert "deadbeefcafe"[:12] in out
        assert "8.0x @ 500" in out

    def test_list_empty_trajectory(self, tmp_path, capsys,
                                   monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "list", "--trajectory",
                     "missing.jsonl"]) == 0
        assert "no trajectory" in capsys.readouterr().out

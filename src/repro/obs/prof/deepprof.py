"""Deep-profile capture: cProfile wrapping + flamegraph export.

The phase profiler says *which phase* is hot; this module says *which
functions*.  :class:`DeepProfile` wraps one callable's execution in
:mod:`cProfile` and exposes two views:

* :meth:`DeepProfile.self_time_table` — the top-N functions by
  self-time (tottime), the direct answer to "what do we vectorize
  first";
* :meth:`DeepProfile.collapsed_stacks` — collapsed-stack text in the
  format flamegraph tools consume (``frame;frame;frame count`` per
  line, counts in integer microseconds).

cProfile records a *call graph* (per-edge cumulative times), not raw
stack samples, so the collapsed stacks are reconstructed the way
flameprof does it: walk the graph depth-first from the roots,
attribute each function's self-time to the current path
proportionally to how much of its cumulative time arrived via that
path, and emit one line per path with nonzero attributed time.  For
the dominant paths of a profile this matches sampled flamegraphs
closely; recursive cycles are cut at first re-entry.

Everything here is stdlib-only and reads the host clock only inside
cProfile itself; like the phase profiler, its output is a side channel
that never touches metrics, traces, or determinism keys.
"""

from __future__ import annotations

import cProfile
import pstats
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

#: A pstats function key: (filename, lineno, funcname).
FuncKey = Tuple[str, int, str]

#: Collapsed-stack depth cap — deeper paths are truncated, their time
#: attributed to the frame at the cap.
MAX_STACK_DEPTH = 64


def _frame_label(func: FuncKey) -> str:
    filename, lineno, funcname = func
    if filename == "~":  # builtins
        return funcname.strip("<>")
    return f"{Path(filename).name}:{funcname}"


class DeepProfile:
    """One captured cProfile run."""

    def __init__(self, stats: pstats.Stats):
        self.stats = stats
        #: func -> (call_count, primitive_calls, tottime, cumtime,
        #:          callers) — pstats' raw table.
        self._table: Dict[FuncKey, tuple] = stats.stats

    @classmethod
    def capture(cls, fn: Callable[..., Any], *args,
                **kwargs) -> Tuple[Any, "DeepProfile"]:
        """Run ``fn(*args, **kwargs)`` under cProfile; returns
        ``(fn's result, DeepProfile)``."""
        profile = cProfile.Profile()
        result = profile.runcall(fn, *args, **kwargs)
        return result, cls(pstats.Stats(profile))

    # -- self-time table -------------------------------------------------------

    def self_time_table(self, limit: int = 20) -> List[Dict[str, Any]]:
        """Top ``limit`` functions by self-time, as rows of
        ``{function, self_s, cum_s, calls}``."""
        rows = []
        for func, (cc, nc, tt, ct, _callers) in self._table.items():
            rows.append({"function": _frame_label(func),
                         "self_s": tt, "cum_s": ct, "calls": nc})
        rows.sort(key=lambda r: (-r["self_s"], r["function"]))
        return rows[:limit]

    def render_self_time(self, limit: int = 20) -> str:
        lines = [f"{'self_s':>10s} {'cum_s':>10s} {'calls':>10s}  "
                 f"function"]
        for row in self.self_time_table(limit):
            lines.append(f"{row['self_s']:10.4f} {row['cum_s']:10.4f} "
                         f"{row['calls']:10d}  {row['function']}")
        return "\n".join(lines) + "\n"

    # -- collapsed stacks ------------------------------------------------------

    def collapsed_stacks(self) -> str:
        """Flamegraph-compatible collapsed-stack lines (µs counts)."""
        children: Dict[FuncKey, List[Tuple[FuncKey, float]]] = {}
        roots: List[Tuple[FuncKey, float]] = []
        for func, (cc, nc, tt, ct, callers) in self._table.items():
            if not callers:
                roots.append((func, ct))
            for parent, edge in callers.items():
                # Per-edge cumulative time of `func` when called from
                # `parent` (pstats stores (cc, nc, tt, ct) per edge).
                children.setdefault(parent, []).append((func, edge[3]))

        lines: List[str] = []

        def emit(path: str, micros: float) -> None:
            count = int(round(micros))
            if count > 0:
                lines.append(f"{path} {count}")

        def walk(func: FuncKey, path: str, budget: float,
                 on_path: frozenset, depth: int) -> None:
            cc, nc, tt, ct, _callers = self._table[func]
            frac = (budget / ct) if ct > 0 else 0.0
            emit(path, tt * frac * 1e6)
            if depth >= MAX_STACK_DEPTH:
                # Attribute the whole remaining subtree to the cap.
                kid_time = sum(edge for _k, edge
                               in children.get(func, ()))
                emit(path, kid_time * frac * 1e6)
                return
            for kid, edge_ct in sorted(
                    children.get(func, ()),
                    key=lambda e: _frame_label(e[0])):
                if kid in on_path:
                    continue  # cut recursion cycles
                walk(kid, f"{path};{_frame_label(kid)}",
                     edge_ct * frac, on_path | {kid}, depth + 1)

        for root, ct in sorted(roots,
                               key=lambda r: _frame_label(r[0])):
            walk(root, _frame_label(root), ct, frozenset([root]), 1)
        return "\n".join(lines) + ("\n" if lines else "")

    def write_flamegraph(self, path: str) -> None:
        """Write the collapsed-stack text to ``path`` (feed it to any
        flamegraph renderer, e.g. ``flamegraph.pl`` or speedscope)."""
        Path(path).write_text(self.collapsed_stacks(),
                              encoding="utf-8")

    def total_time_s(self) -> float:
        """Total self-time across every profiled function."""
        return sum(entry[2] for entry in self._table.values())


def capture(fn: Callable[..., Any], *args,
            **kwargs) -> Tuple[Any, DeepProfile]:
    """Module-level convenience for :meth:`DeepProfile.capture`."""
    return DeepProfile.capture(fn, *args, **kwargs)


def write_flamegraph(profile: DeepProfile, path: str,
                     self_time_path: Optional[str] = None,
                     limit: int = 30) -> None:
    """Write collapsed stacks (and optionally a self-time table)."""
    profile.write_flamegraph(path)
    if self_time_path is not None:
        Path(self_time_path).write_text(
            profile.render_self_time(limit), encoding="utf-8")

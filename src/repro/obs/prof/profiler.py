"""Phase-level profiling of the round engines (herdprof).

The scale items on the roadmap (vectorized ``CellBatch``, bulk crypto)
are measurement-first: before optimizing the hot path we need to know,
per round phase, where the Python time goes.  :class:`PhaseProfiler`
buckets wall time and call/cell counts by *engine phase*:

========================  ==================================================
phase                     what it covers
========================  ==================================================
``schedule``              event-loop / round-scheduler dispatch overhead
``chaff``                 client emission: payload + constant-rate chaff fill
``mix-forward``           SP combining + mix call-manager processing
``deliver``               downstream broadcast and wire transmission
``adversary-observe``     link-tap observer processing
``metrics-flush``         herdscope snapshot / export rendering
========================  ==================================================

Attachment follows the same duck-typed optional-hook protocol
herdscope uses (:mod:`repro.obs.instrument`): instrumented components
carry a ``prof`` attribute that defaults to ``None`` and test it
before every hook call, so a detached run pays one attribute test per
hook point and the protocol modules never import this package.

Timing uses a *phase stack* with self-time semantics: ``begin`` pushes
a phase, ``end`` pops it and attributes the elapsed wall time to the
popped phase **exclusively** — time spent in a nested phase is
subtracted from its parent, so the per-phase totals sum to the
profiled wall time without double counting.

Determinism: the profiler reads the host clock (through the sanctioned
:mod:`repro.obs.prof.perfclock` module only) but its output lives in a
separate side channel (``RunReport.perf`` / bench JSON).  It never
writes to the metrics registry, the trace bus, or anything folded into
a ``determinism_key``, and seeded code never branches on it — so a
seeded run with profiling enabled is byte-identical to the same run
with profiling off (pinned in ``tests/test_execution_equivalence.py``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.prof.perfclock import perf_now

#: The engine-phase taxonomy (DESIGN.md §11).  Profilers accept any
#: phase string, but the engines only emit these six.
PHASES: Tuple[str, ...] = ("schedule", "chaff", "mix-forward",
                           "deliver", "adversary-observe",
                           "metrics-flush")


class PhaseStats:
    """Accumulated totals for one phase."""

    __slots__ = ("wall_s", "calls", "cells")

    def __init__(self) -> None:
        self.wall_s = 0.0
        self.calls = 0
        self.cells = 0

    def as_dict(self) -> Dict[str, float]:
        return {"wall_s": self.wall_s, "calls": self.calls,
                "cells": self.cells}


class PhaseProfiler:
    """Per-phase wall-time and call/cell counters for one run.

    Parameters
    ----------
    clock:
        Zero-argument host-time callable; defaults to
        :func:`~repro.obs.prof.perfclock.perf_now`.  Injectable so
        tests can drive the profiler with a deterministic fake clock.
    """

    def __init__(self, clock: Callable[[], float] = perf_now):
        self._clock = clock
        self._stats: Dict[str, PhaseStats] = {}
        #: The open-phase stack: (phase, started_at, child_wall_s).
        self._stack: List[List] = []
        self.rounds_profiled = 0
        self._round_started_at: Optional[float] = None
        self.round_wall_s = 0.0

    # -- the hot-path hooks ----------------------------------------------------

    def begin(self, phase: str) -> None:
        """Open ``phase``; wall time accrues to it until :meth:`end`
        pops it (minus any nested phases opened in between)."""
        self._stack.append([phase, self._clock(), 0.0])

    def end(self, cells: int = 0) -> None:
        """Close the innermost open phase, attributing its self-time
        (elapsed minus nested-phase time) plus optional cell count."""
        now = self._clock()
        phase, started_at, child_wall = self._stack.pop()
        elapsed = now - started_at
        stats = self._stats.get(phase)
        if stats is None:
            stats = self._stats[phase] = PhaseStats()
        stats.wall_s += elapsed - child_wall
        stats.calls += 1
        stats.cells += cells
        if self._stack:
            self._stack[-1][2] += elapsed

    def count(self, phase: str, calls: int = 0, cells: int = 0) -> None:
        """Bump counters without timing (e.g. one per loop event)."""
        stats = self._stats.get(phase)
        if stats is None:
            stats = self._stats[phase] = PhaseStats()
        stats.calls += calls
        stats.cells += cells

    def round_started(self, round_index: int) -> None:
        self._round_started_at = self._clock()

    def round_finished(self, round_index: int) -> None:
        started = self._round_started_at
        if started is not None:
            self.round_wall_s += self._clock() - started
            self._round_started_at = None
        self.rounds_profiled += 1

    # -- attachment (the duck-typed `prof` protocol) ---------------------------

    def attach_loop(self, loop) -> None:
        """Instrument an :class:`~repro.netsim.engine.EventLoop`
        (per-event ``schedule`` counters)."""
        loop.prof = self

    def attach_scheduler(self, scheduler) -> None:
        """Instrument a :class:`~repro.netsim.rounds.RoundScheduler`
        (round dispatch under the ``schedule`` phase)."""
        scheduler.prof = self

    def attach_link(self, link) -> None:
        """Instrument one link's observer fan-out
        (``adversary-observe``)."""
        link.prof = self

    def attach_fabric(self, fabric) -> None:
        """Instrument a :class:`~repro.simulation.roundsync.WireFabric`
        end to end: the fabric itself (``deliver``), its loop and
        scheduler, and every link — including ones created later."""
        fabric.set_profiler(self)

    def attach_zone(self, zone) -> None:
        """Instrument a :class:`~repro.simulation.live.LiveZone`'s
        round engine (``chaff`` / ``mix-forward`` / ``deliver``), plus
        its wire fabric when one is attached."""
        zone.prof = self
        if getattr(zone, "wire", None) is not None:
            zone.wire.set_profiler(self)

    # -- output ----------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-phase totals, phase-name sorted (known phases first, in
        taxonomy order, then any ad-hoc phases alphabetically)."""
        order = {phase: i for i, phase in enumerate(PHASES)}
        keys = sorted(self._stats,
                      key=lambda p: (order.get(p, len(PHASES)), p))
        return {k: self._stats[k].as_dict() for k in keys}

    def report(self) -> Dict[str, object]:
        """The ``perf`` section a :class:`~repro.api.RunReport` or
        bench entry carries: phase totals plus round accounting."""
        phases = self.snapshot()
        return {
            "phases": phases,
            "rounds_profiled": self.rounds_profiled,
            "round_wall_s": self.round_wall_s,
            "profiled_wall_s": sum(p["wall_s"]
                                   for p in phases.values()),
        }

    def table(self) -> str:
        """A human-readable per-phase self-time table."""
        phases = self.snapshot()
        total = sum(p["wall_s"] for p in phases.values()) or 1.0
        lines = [f"{'phase':18s} {'wall_s':>10s} {'%':>6s} "
                 f"{'calls':>10s} {'cells':>12s}"]
        for name, p in phases.items():
            lines.append(
                f"{name:18s} {p['wall_s']:10.4f} "
                f"{100.0 * p['wall_s'] / total:5.1f}% "
                f"{int(p['calls']):10d} {int(p['cells']):12d}")
        lines.append(f"{'total':18s} {total:10.4f} {'100.0':>5s}% "
                     f"(rounds={self.rounds_profiled}, "
                     f"round_wall_s={self.round_wall_s:.4f})")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"PhaseProfiler({len(self._stats)} phases, "
                f"{self.rounds_profiled} rounds)")

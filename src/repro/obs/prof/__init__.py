"""herdprof: phase profiling, deep profiles, and the bench plane.

Layout mirrors the herdscope split one level up:

* :mod:`~repro.obs.prof.perfclock`  — the one sanctioned wall-clock
  module (herdlint HL001 allowlists exactly this file);
* :mod:`~repro.obs.prof.profiler`   — :class:`PhaseProfiler`, the
  per-phase wall-time/call/cell accumulator attached via the
  duck-typed ``prof`` hook protocol;
* :mod:`~repro.obs.prof.deepprof`   — opt-in cProfile capture with
  flamegraph (collapsed-stack) export;
* :mod:`~repro.obs.prof.provenance` — schema/commit/machine stamps
  for bench entries;
* :mod:`~repro.obs.prof.bench`      — the unified bench runner and
  regression compare behind ``repro bench`` and CI perf-smoke.
"""

from repro.obs.prof.deepprof import DeepProfile
from repro.obs.prof.profiler import PHASES, PhaseProfiler, PhaseStats
from repro.obs.prof.provenance import BENCH_SCHEMA_VERSION, provenance

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DeepProfile",
    "PHASES",
    "PhaseProfiler",
    "PhaseStats",
    "provenance",
]

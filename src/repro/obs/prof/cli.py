"""``repro bench`` — run, compare, and list performance benchmarks.

* ``run``              — execute the engine-scaling workload through
  the unified runner (:mod:`repro.obs.prof.bench`), write a
  schema-versioned, provenance-stamped ``BENCH_scaling.json`` entry,
  append it to the trajectory history, and optionally export a
  flamegraph (collapsed stacks) of the headline run.
* ``compare BASE HEAD`` — the regression gate: nonzero exit when HEAD
  regresses beyond the tolerance band (absolute cells/sec on the same
  machine fingerprint, speedup ratios across machines).
* ``list``             — one line per trajectory entry.

This is the only layer that stamps wall-clock timestamps (via the
sanctioned :func:`repro.obs.prof.perfclock.utc_timestamp`); nothing a
seeded run imports ever reads host time outside ``perfclock``.
"""

from __future__ import annotations

import argparse
import sys

DEFAULT_JSON = "BENCH_scaling.json"
DEFAULT_TRAJECTORY = "BENCH_trajectory.jsonl"


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    sub = parser.add_subparsers(dest="bench_command", required=True)

    p_run = sub.add_parser(
        "run", help="run the scaling bench, write a provenance-"
        "stamped entry")
    p_run.add_argument("--clients", type=int, action="append",
                       default=None,
                       help="client count to sweep (repeatable; "
                       "default: 100 250 500)")
    p_run.add_argument("--rounds", type=int, default=None,
                       help="rounds per run (default: 25; large "
                       "ladder points auto-shorten)")
    p_run.add_argument("--engine", action="append", dest="engine",
                       default=None,
                       help="engine(s) to sweep (repeatable; "
                       "default: event batch batch-v2).  Each engine "
                       "climbs the client ladder up to its cap.")
    p_run.add_argument("--shards", type=int, default=None,
                       help="worker-process count for shardable "
                       "engines (batch-v2)")
    p_run.add_argument("--min-v2-speedup", type=float, default=None,
                       help="gate: nonzero exit unless batch-v2 beats "
                       "batch by at least this factor at the largest "
                       "common client count (CI scaling-smoke)")
    p_run.add_argument("--json", default=DEFAULT_JSON,
                       help=f"entry output path (default: "
                       f"{DEFAULT_JSON})")
    p_run.add_argument("--trajectory", default=DEFAULT_TRAJECTORY,
                       help="JSONL history to append to (default: "
                       f"{DEFAULT_TRAJECTORY}; 'none' disables)")
    p_run.add_argument("--flamegraph", default=None,
                       help="also deep-profile the headline batch run "
                       "and write collapsed stacks here")
    p_run.add_argument("--self-time", default=None,
                       help="with --flamegraph, also write the top-N "
                       "self-time table here")
    p_run.add_argument("--no-phases", action="store_true",
                       help="skip the profiled phase-breakdown runs")

    p_cmp = sub.add_parser(
        "compare", help="gate HEAD against BASE; nonzero exit on "
        "regression")
    p_cmp.add_argument("base", help="baseline bench entry (JSON)")
    p_cmp.add_argument("head", help="candidate bench entry (JSON)")
    p_cmp.add_argument("--tolerance", type=float, default=None,
                       help="allowed fractional drop (default: 0.15, "
                       "so a >=20%% slowdown fails)")

    p_list = sub.add_parser("list", help="list the bench trajectory")
    p_list.add_argument("--trajectory", default=DEFAULT_TRAJECTORY)


def _cmd_run(args: argparse.Namespace) -> int:
    import json
    from repro.obs.prof import bench
    from repro.obs.prof.perfclock import utc_timestamp

    clients = tuple(args.clients) if args.clients \
        else bench.DEFAULT_CLIENT_COUNTS
    rounds = args.rounds if args.rounds is not None \
        else bench.DEFAULT_ROUNDS

    engines = tuple(args.engine) if args.engine \
        else bench.DEFAULT_ENGINES

    entry = bench.run_scaling_bench(
        clients, rounds, timestamp_utc=utc_timestamp(),
        with_phases=not args.no_phases, engines=engines,
        shards=args.shards)

    from pathlib import Path
    Path(args.json).write_text(
        json.dumps(entry, indent=2, sort_keys=True) + "\n")
    if args.trajectory and args.trajectory != "none":
        bench.append_trajectory(entry, args.trajectory)

    prov = entry["provenance"]
    print(f"bench entry (schema {prov['schema']}, commit "
          f"{prov['commit'][:12]}, machine "
          f"{prov['machine_fingerprint']}) -> {args.json}")
    for key, label in (("speedup_cells_per_sec", "batch/event"),
                       ("speedup_v2_over_batch", "batch-v2/batch")):
        for n_clients, speedup in sorted(
                entry.get(key, {}).items(),
                key=lambda kv: int(kv[0])):
            print(f"  {n_clients:>8s} clients: {label} speedup "
                  f"{speedup:.1f}x")
    for engine, runs in sorted(entry.get("net_engines", {}).items()):
        if runs:
            last = runs[-1]
            print(f"  {engine} loopback UDP: "
                  f"{last['cells_per_sec']:,.0f} cells/sec at "
                  f"{last['clients']} clients (net_engines key; "
                  f"not gated)")
    if "profiler_overhead" in entry:
        oh = entry["profiler_overhead"]
        print(f"  profiler attached overhead at {oh['clients']} "
              f"clients ({oh['engine']}): {oh['overhead_pct']:.1f}%")
    if "phases" in entry:
        for engine in engines:
            phases = entry["phases"].get(engine, {}).get("phases", {})
            hot = max(phases.items(),
                      key=lambda kv: kv[1]["wall_s"])[0] \
                if phases else "n/a"
            print(f"  {engine} hot phase: {hot}")

    if args.flamegraph:
        from repro.obs.prof.deepprof import DeepProfile, \
            write_flamegraph
        flame_engine = "batch" if "batch" in engines else engines[-1]
        cap = bench.ENGINE_CAPS.get(flame_engine)
        eligible = [n for n in clients if cap is None or n <= cap]
        headline = max(eligible) if eligible else min(clients)
        _, profile = DeepProfile.capture(
            bench.run_backbone, flame_engine, headline,
            bench.rounds_for(headline, rounds))
        write_flamegraph(profile, args.flamegraph,
                         self_time_path=args.self_time)
        print(f"  flamegraph (collapsed stacks, {flame_engine} "
              f"engine, {headline} clients) -> {args.flamegraph}")

    if args.min_v2_speedup is not None:
        v2 = entry.get("speedup_v2_over_batch", {})
        if not v2:
            print("GATE FAIL: --min-v2-speedup set but no common "
                  "batch-v2/batch ladder point was run",
                  file=sys.stderr)
            return 1
        at = max(v2, key=lambda c: int(c))
        if v2[at] < args.min_v2_speedup:
            print(f"GATE FAIL: batch-v2/batch speedup {v2[at]:.1f}x "
                  f"at {at} clients is below the required "
                  f"{args.min_v2_speedup:.1f}x", file=sys.stderr)
            return 1
        print(f"  gate ok: batch-v2/batch speedup {v2[at]:.1f}x at "
              f"{at} clients >= {args.min_v2_speedup:.1f}x")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.obs.prof import bench

    try:
        base = bench.load_entry(args.base)
        head = bench.load_entry(args.head)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    tolerance = args.tolerance if args.tolerance is not None \
        else bench.DEFAULT_TOLERANCE
    print(bench.describe_comparison(base, head))
    findings = bench.compare_entries(base, head, tolerance)
    if findings:
        for finding in findings:
            print(f"REGRESSION: {finding}", file=sys.stderr)
        print(f"{len(findings)} perf regression(s) beyond "
              f"tolerance {tolerance:.0%}", file=sys.stderr)
        return 1
    print(f"no regressions beyond tolerance {tolerance:.0%}")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.obs.prof import bench

    entries = bench.read_trajectory(args.trajectory)
    if not entries:
        print(f"no trajectory at {args.trajectory}")
        return 0
    for entry in entries:
        prov = entry.get("provenance", {})
        speed = entry.get("speedup_cells_per_sec", {})
        headline = max(speed, key=lambda c: int(c)) if speed else None
        speed_txt = (f"{speed[headline]:.1f}x @ {headline}"
                     if headline else "n/a")
        print(f"{prov.get('timestamp_utc', 'unknown'):22s} "
              f"commit {prov.get('commit', 'unknown')[:12]:12s} "
              f"machine {prov.get('machine_fingerprint', '-'):16s} "
              f"speedup {speed_txt}")
    return 0


def run(args: argparse.Namespace) -> int:
    handler = {"run": _cmd_run, "compare": _cmd_compare,
               "list": _cmd_list}[args.bench_command]
    return handler(args)

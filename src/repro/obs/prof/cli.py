"""``repro bench`` — run, compare, and list performance benchmarks.

* ``run``              — execute the engine-scaling workload through
  the unified runner (:mod:`repro.obs.prof.bench`), write a
  schema-versioned, provenance-stamped ``BENCH_scaling.json`` entry,
  append it to the trajectory history, and optionally export a
  flamegraph (collapsed stacks) of the headline run.
* ``compare BASE HEAD`` — the regression gate: nonzero exit when HEAD
  regresses beyond the tolerance band (absolute cells/sec on the same
  machine fingerprint, speedup ratios across machines).
* ``list``             — one line per trajectory entry.

This is the only layer that stamps wall-clock timestamps (via the
sanctioned :func:`repro.obs.prof.perfclock.utc_timestamp`); nothing a
seeded run imports ever reads host time outside ``perfclock``.
"""

from __future__ import annotations

import argparse
import sys

DEFAULT_JSON = "BENCH_scaling.json"
DEFAULT_TRAJECTORY = "BENCH_trajectory.jsonl"


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    sub = parser.add_subparsers(dest="bench_command", required=True)

    p_run = sub.add_parser(
        "run", help="run the scaling bench, write a provenance-"
        "stamped entry")
    p_run.add_argument("--clients", type=int, action="append",
                       default=None,
                       help="client count to sweep (repeatable; "
                       "default: 100 250 500)")
    p_run.add_argument("--rounds", type=int, default=None,
                       help="rounds per run (default: 25)")
    p_run.add_argument("--json", default=DEFAULT_JSON,
                       help=f"entry output path (default: "
                       f"{DEFAULT_JSON})")
    p_run.add_argument("--trajectory", default=DEFAULT_TRAJECTORY,
                       help="JSONL history to append to (default: "
                       f"{DEFAULT_TRAJECTORY}; 'none' disables)")
    p_run.add_argument("--flamegraph", default=None,
                       help="also deep-profile the headline batch run "
                       "and write collapsed stacks here")
    p_run.add_argument("--self-time", default=None,
                       help="with --flamegraph, also write the top-N "
                       "self-time table here")
    p_run.add_argument("--no-phases", action="store_true",
                       help="skip the profiled phase-breakdown runs")

    p_cmp = sub.add_parser(
        "compare", help="gate HEAD against BASE; nonzero exit on "
        "regression")
    p_cmp.add_argument("base", help="baseline bench entry (JSON)")
    p_cmp.add_argument("head", help="candidate bench entry (JSON)")
    p_cmp.add_argument("--tolerance", type=float, default=None,
                       help="allowed fractional drop (default: 0.15, "
                       "so a >=20%% slowdown fails)")

    p_list = sub.add_parser("list", help="list the bench trajectory")
    p_list.add_argument("--trajectory", default=DEFAULT_TRAJECTORY)


def _cmd_run(args: argparse.Namespace) -> int:
    import json
    from repro.obs.prof import bench
    from repro.obs.prof.perfclock import utc_timestamp

    clients = tuple(args.clients) if args.clients \
        else bench.DEFAULT_CLIENT_COUNTS
    rounds = args.rounds if args.rounds is not None \
        else bench.DEFAULT_ROUNDS

    entry = bench.run_scaling_bench(
        clients, rounds, timestamp_utc=utc_timestamp(),
        with_phases=not args.no_phases)

    from pathlib import Path
    Path(args.json).write_text(
        json.dumps(entry, indent=2, sort_keys=True) + "\n")
    if args.trajectory and args.trajectory != "none":
        bench.append_trajectory(entry, args.trajectory)

    prov = entry["provenance"]
    print(f"bench entry (schema {prov['schema']}, commit "
          f"{prov['commit'][:12]}, machine "
          f"{prov['machine_fingerprint']}) -> {args.json}")
    for n_clients, speedup in sorted(
            entry["speedup_cells_per_sec"].items(),
            key=lambda kv: int(kv[0])):
        print(f"  {n_clients:>6s} clients: batch/event speedup "
              f"{speedup:.1f}x")
    if "profiler_overhead" in entry:
        oh = entry["profiler_overhead"]
        print(f"  profiler attached overhead at {oh['clients']} "
              f"clients ({oh['engine']}): {oh['overhead_pct']:.1f}%")
    if "phases" in entry:
        for engine in ("event", "batch"):
            phases = entry["phases"][engine]["phases"]
            hot = max(phases.items(),
                      key=lambda kv: kv[1]["wall_s"])[0] \
                if phases else "n/a"
            print(f"  {engine} hot phase: {hot}")

    if args.flamegraph:
        from repro.obs.prof.deepprof import DeepProfile, \
            write_flamegraph
        headline = max(clients)
        _, profile = DeepProfile.capture(
            bench.run_backbone, "batch", headline, rounds)
        write_flamegraph(profile, args.flamegraph,
                         self_time_path=args.self_time)
        print(f"  flamegraph (collapsed stacks, batch engine, "
              f"{headline} clients) -> {args.flamegraph}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.obs.prof import bench

    try:
        base = bench.load_entry(args.base)
        head = bench.load_entry(args.head)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    tolerance = args.tolerance if args.tolerance is not None \
        else bench.DEFAULT_TOLERANCE
    print(bench.describe_comparison(base, head))
    findings = bench.compare_entries(base, head, tolerance)
    if findings:
        for finding in findings:
            print(f"REGRESSION: {finding}", file=sys.stderr)
        print(f"{len(findings)} perf regression(s) beyond "
              f"tolerance {tolerance:.0%}", file=sys.stderr)
        return 1
    print(f"no regressions beyond tolerance {tolerance:.0%}")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.obs.prof import bench

    entries = bench.read_trajectory(args.trajectory)
    if not entries:
        print(f"no trajectory at {args.trajectory}")
        return 0
    for entry in entries:
        prov = entry.get("provenance", {})
        speed = entry.get("speedup_cells_per_sec", {})
        headline = max(speed, key=lambda c: int(c)) if speed else None
        speed_txt = (f"{speed[headline]:.1f}x @ {headline}"
                     if headline else "n/a")
        print(f"{prov.get('timestamp_utc', 'unknown'):22s} "
              f"commit {prov.get('commit', 'unknown')[:12]:12s} "
              f"machine {prov.get('machine_fingerprint', '-'):16s} "
              f"speedup {speed_txt}")
    return 0


def run(args: argparse.Namespace) -> int:
    handler = {"run": _cmd_run, "compare": _cmd_compare,
               "list": _cmd_list}[args.bench_command]
    return handler(args)

"""Provenance stamps for bench entries (schema, commit, machine).

A cells/sec number without provenance is noise: the same workload
moves 3× faster on a different machine or a different Python.  Every
``BENCH_*.json`` entry the runner writes carries a stamp built here —
schema version, git commit, python/platform fingerprint — so
``repro bench compare`` can tell an engine regression apart from a
machine change (same fingerprint → absolute throughput is comparable;
different fingerprint → only machine-independent ratios are).

The UTC timestamp is deliberately *not* read here: wall-clock time is
stamped by the CLI/harness layer (via
:func:`repro.obs.prof.perfclock.utc_timestamp`) and passed in, keeping
host-time reads out of code paths a seeded run could import.
"""

from __future__ import annotations

import hashlib
import platform
import subprocess
from typing import Any, Dict, Optional

#: Version of the bench-entry JSON layout.  Bump when field meanings
#: change; ``compare`` refuses nothing but reads pre-provenance files
#: (no ``schema`` key) as version 0.
BENCH_SCHEMA_VERSION = 1


def git_commit(cwd: Optional[str] = None) -> str:
    """The current commit hash, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd,
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else "unknown"


def machine_fingerprint() -> str:
    """A short stable hash of the performance-relevant host identity:
    python implementation/version/build and machine/processor.  Two
    runs with equal fingerprints have comparable absolute numbers."""
    parts = (
        platform.python_implementation(),
        platform.python_version(),
        platform.python_compiler(),
        platform.machine(),
        platform.processor(),
        platform.system(),
    )
    digest = hashlib.sha256("|".join(parts).encode()).hexdigest()
    return digest[:16]


def provenance(timestamp_utc: Optional[str] = None,
               cwd: Optional[str] = None) -> Dict[str, Any]:
    """The stamp carried by every schema-versioned bench entry."""
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "commit": git_commit(cwd),
        "python": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine_fingerprint": machine_fingerprint(),
        "timestamp_utc": timestamp_utc,
    }

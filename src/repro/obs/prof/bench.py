"""The unified bench runner behind ``repro bench`` and CI perf-smoke.

The scaling workload used to live only inside
``benchmarks/test_bench_scaling.py``, timed with a bare
``time.perf_counter()`` and written to an ad-hoc ``BENCH_scaling.json``
with no commit or machine provenance — a number nobody could compare
across runs.  This module owns the core loop so the pytest bench, the
``repro bench`` CLI, and CI all execute the *same* code:

* :func:`run_backbone` — the constant-rate zone-backbone loop
  (SP↔mix trunks under :class:`~repro.simulation.roundsync.WireFabric`),
  on any registered engine (``event`` / ``batch`` / ``batch-v2``,
  with optional shards), optionally with a
  :class:`~repro.obs.prof.profiler.PhaseProfiler` attached;
* :func:`run_scaling_bench` — the full sweep: every engine over its
  client-count ladder (each engine caps at the count where its cost
  model stops being measurable in reasonable wall time — the event
  engine at 500 clients, batch at 100k, batch-v2 to 1M), per-phase
  breakdowns from separate profiled runs at the headline count (so
  profiling overhead never pollutes the timed numbers), an
  attached-vs-detached overhead measurement, and a schema-versioned
  entry stamped with provenance;
* :func:`compare_entries` — the regression gate.  When base and head
  carry the same machine fingerprint, absolute cells/sec must hold
  within the tolerance band; across different machines (CI runner vs
  the committed baseline) only the machine-independent engine speedup
  ratios (batch/event, batch-v2/batch) are gated.  Nonzero findings →
  nonzero exit.

Entries append to a JSONL *trajectory* so the perf history of the
engines survives across commits (EXPERIMENTS.md).
"""

from __future__ import annotations

import gc
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.prof.perfclock import perf_now, process_now
from repro.obs.prof.profiler import PhaseProfiler
from repro.obs.prof.provenance import provenance

#: One constant-rate cell (160 B ≈ a 20 ms G.711 frame).
CELL = b"\x00" * 160
DEFAULT_CLIENT_COUNTS = (100, 250, 500)
DEFAULT_ROUNDS = 25
CLIENTS_PER_SP = 50
#: Default tolerance band for :func:`compare_entries` — a ≥20%
#: slowdown always exceeds it.
DEFAULT_TOLERANCE = 0.15

WORKLOAD = ("constant-rate zone backbone (SP-mix trunks), "
            "{rounds} rounds, {per_sp} clients/SP")


class TallyObserver:
    """A global passive adversary that aggregates instead of storing:
    one update per run when the link offers run-length vectors, one
    per batch on the batch path, one per cell on the per-packet path."""

    def __init__(self):
        self.cells = 0
        self.bytes = 0

    def record(self, time, packet, src, dst):
        self.cells += 1
        self.bytes += packet.size

    def record_batch(self, time, batch, src, dst):
        self.cells += len(batch)
        self.bytes += batch.total_bytes()

    def record_runs(self, time, src, dst, sizes, counts):
        for size, count in zip(sizes, counts):
            self.cells += count
            self.bytes += size * count

    def record_round_runs(self, time, keys, sizes, counts):
        self.cells += sum(counts)
        self.bytes += sum(s * c for s, c in zip(sizes, counts))


def run_backbone(execution: str, n_clients: int,
                 rounds: int = DEFAULT_ROUNDS, *,
                 profiler: Optional[PhaseProfiler] = None,
                 clients_per_sp: int = CLIENTS_PER_SP,
                 shards: Optional[int] = None
                 ) -> Dict[str, Any]:
    """Drive the zone backbone for ``rounds``; returns measurements.

    The workload (DESIGN.md §9 / benchmarks): every round, each SP
    trunk carries one cell per attached client in each direction —
    run-length vectors on batch-v2, ``append_repeated`` batches on
    the batch engine, per-cell packets and heap events on the event
    engine, and one loopback UDP datagram per cell on the real-network
    ``asyncio`` plane.  ``shards`` fans the vector plane out over
    worker processes; the mandatory ``finalize`` merge is timed as
    part of the run.  The fabric comes from the transport seam
    (:func:`repro.execution.create_wire_fabric`), so this module
    never imports the simulator or the socket plane directly.
    """
    from repro import execution as execution_registry

    fabric = execution_registry.create_wire_fabric(
        execution, seed=1, observer=TallyObserver(), shards=shards)
    if profiler is not None:
        profiler.attach_fabric(fabric)
    n_sps = max(1, n_clients // clients_per_sp)
    members = [n_clients // n_sps + (1 if s < n_clients % n_sps else 0)
               for s in range(n_sps)]
    sp_names = [f"sp-{s}" for s in range(n_sps)]
    emit = fabric.emit_repeated
    started = perf_now()
    cpu_started = process_now()
    for r in range(rounds):
        if profiler is not None:
            profiler.round_started(r)
        for name, n in zip(sp_names, members):
            emit(name, "mix", CELL, n, kind="up")
        for name, n in zip(sp_names, members):
            emit("mix", name, CELL, n, kind="down")
        fabric.flush_round(r)
        if profiler is not None:
            profiler.round_finished(r)
    fabric.finalize()
    elapsed = perf_now() - started
    cpu_elapsed = process_now() - cpu_started
    return {
        "clients": n_clients,
        "rounds": rounds,
        "shards": fabric.shards,
        "cells": fabric.cells_carried,
        "events": fabric.events_processed,
        "elapsed_s": elapsed,
        "cpu_s": cpu_elapsed,
        "cells_per_sec": fabric.cells_carried / elapsed
        if elapsed else 0.0,
        "events_per_sec": fabric.events_processed / elapsed
        if elapsed else 0.0,
        "observed_cells": fabric.observer.cells,
    }


#: Engines in the default sweep, slowest cost model first.
DEFAULT_ENGINES = ("event", "batch", "batch-v2")
#: Largest client count each engine's ladder climbs to.  The event
#: engine pays two heap events per cell and the batch engine a Python
#: loop iteration per cell, so their ladders stop where a sweep still
#: finishes in seconds; the vectorized plane does O(runs) work per
#: round and goes to a million clients.
ENGINE_CAPS: Dict[str, int] = {
    "event": 500,
    "batch": 100_000,
    "batch-v2": 1_000_000,
    # Real loopback UDP pays one datagram per cell plus a round
    # barrier, so its ladder stops with the event engine's.
    "asyncio": 500,
}


def rounds_for(n_clients: int, rounds: int = DEFAULT_ROUNDS) -> int:
    """Rounds actually driven at a ladder point.

    Per-cell engines do work linear in clients×rounds, so the big
    ladder points shorten the round count to keep the sweep bounded;
    cells/sec is rate-normalized, so the ratio gates are unaffected.
    """
    if n_clients <= 2_000:
        return rounds
    if n_clients <= 100_000:
        return max(3, rounds // 5)
    return max(3, rounds // 10)


#: The timed sweep repeats each ladder point — at least
#: :data:`MIN_REPS` times, and beyond that until
#: :data:`MIN_POINT_WALL_S` of wall time accumulates (capped at
#: :data:`MAX_REPS`) — keeping the fastest run.  Sub-millisecond
#: points are timer noise without the wall floor; the big points the
#: CI ratio gates actually read need the rep floor, or one scheduler
#: hiccup on a single run moves the gate.
MIN_POINT_WALL_S = 0.05
MIN_REPS = 3
MAX_REPS = 5


def _best_run(engine: str, n_clients: int, rounds: int,
              shards: Optional[int]) -> Dict[str, Any]:
    # Cyclic GC is the dominant noise source at the big ladder points
    # (a sweep mid-run costs ~40% of the measurement): collect once,
    # then time with the collector off — the same policy as `timeit`.
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        best: Optional[Dict[str, Any]] = None
        spent = 0.0
        for rep in range(MAX_REPS):
            run = run_backbone(engine, n_clients, rounds,
                               shards=shards)
            spent += run["elapsed_s"]
            if best is None or run["cells_per_sec"] > \
                    best["cells_per_sec"]:
                best = run
            if rep + 1 >= MIN_REPS and spent >= MIN_POINT_WALL_S:
                break
        return best
    finally:
        if was_enabled:
            gc.enable()


def _ratio_map(num_runs: Sequence[Dict[str, Any]],
               den_runs: Sequence[Dict[str, Any]]
               ) -> Dict[str, float]:
    """clients → num/den cells/sec ratio at common ladder points."""
    den = {r["clients"]: r["cells_per_sec"] for r in den_runs}
    out: Dict[str, float] = {}
    for r in num_runs:
        base = den.get(r["clients"])
        if base:
            out[str(r["clients"])] = r["cells_per_sec"] / base
    return out


def run_scaling_bench(
        client_counts: Sequence[int] = DEFAULT_CLIENT_COUNTS,
        rounds: int = DEFAULT_ROUNDS, *,
        timestamp_utc: Optional[str] = None,
        with_phases: bool = True,
        engines: Sequence[str] = DEFAULT_ENGINES,
        shards: Optional[int] = None) -> Dict[str, Any]:
    """Run the full engine-scaling sweep and build a schema-versioned
    bench entry.

    Each engine climbs the ``client_counts`` ladder up to its
    :data:`ENGINE_CAPS` cap.  ``shards`` applies only to shardable
    engines (batch-v2).  Real-network engines (``asyncio``) are
    swept the same way but recorded under the separate
    ``net_engines`` schema key — loopback throughput is host-network
    data and must not move the simulator regression gates.  The timed sweep runs unprofiled, repeating
    each point to :data:`MIN_POINT_WALL_S` and keeping the fastest
    run.  When
    ``with_phases`` is set, one additional *profiled* run per engine
    at its largest ladder point supplies the per-phase breakdown, and
    the ratio between the profiled and unprofiled batch runs is
    recorded as the attached profiler overhead.
    """
    from repro import execution as execution_registry

    def shards_for(engine: str) -> Optional[int]:
        if shards is None:
            return None
        plane = execution_registry.get_plane(engine)
        return shards if plane.supports_shards else None

    # Sweep order: highest-capped engine first.  The big batch-v2
    # points are allocation-rate-bound, and the event engine's
    # per-cell object churn fragments the small-object arenas enough
    # to cost them ~20% — so the alloc-sensitive planes measure on a
    # fresh heap and the insensitive event plane goes last.  The
    # entry keeps the caller's engine order regardless.
    sweep_order = sorted(
        engines, key=lambda e: ENGINE_CAPS.get(e, 0), reverse=True)
    results: Dict[str, List[Dict[str, Any]]] = {}
    for engine in sweep_order:
        cap = ENGINE_CAPS.get(engine)
        ladder = [n for n in client_counts
                  if cap is None or n <= cap]
        results[engine] = [
            _best_run(engine, n, rounds_for(n, rounds),
                      shards_for(engine))
            for n in ladder]
    results = {engine: results[engine] for engine in engines}

    # Real-network engines land under their own schema key: the
    # compare gates only read "engines" / "speedup_*", so loopback
    # cells/sec never moves a simulator trajectory gate.
    sim_results = {
        e: runs for e, runs in results.items()
        if execution_registry.get_plane(e).transport == "sim"}
    net_results = {
        e: runs for e, runs in results.items()
        if execution_registry.get_plane(e).transport == "udp"}

    entry: Dict[str, Any] = {
        "provenance": provenance(timestamp_utc),
        "workload": WORKLOAD.format(rounds=rounds,
                                    per_sp=CLIENTS_PER_SP),
        "client_counts": list(client_counts),
        "rounds": rounds,
        "engine_caps": {e: ENGINE_CAPS[e] for e in engines
                        if e in ENGINE_CAPS},
        "engines": sim_results,
        "speedup_cells_per_sec": _ratio_map(
            sim_results.get("batch", ()),
            sim_results.get("event", ())),
        "speedup_v2_over_batch": _ratio_map(
            sim_results.get("batch-v2", ()),
            sim_results.get("batch", ())),
    }
    if net_results:
        entry["net_engines"] = net_results

    if with_phases and any(results.values()):
        phases: Dict[str, Any] = {}
        profiled_batch = None
        for engine in engines:
            if not results[engine]:
                continue
            headline = results[engine][-1]["clients"]
            prof = PhaseProfiler()
            run = run_backbone(engine, headline,
                               rounds_for(headline, rounds),
                               profiler=prof,
                               shards=shards_for(engine))
            phases[engine] = prof.report()
            if engine == "batch":
                profiled_batch = run
        entry["phases"] = phases

        if profiled_batch is not None:
            detached = results["batch"][-1]
            overhead_pct = 0.0
            if profiled_batch["cells_per_sec"]:
                overhead_pct = 100.0 * max(
                    0.0, detached["cells_per_sec"]
                    / profiled_batch["cells_per_sec"] - 1.0)
            entry["profiler_overhead"] = {
                "clients": detached["clients"],
                "engine": "batch",
                "detached_cells_per_sec": detached["cells_per_sec"],
                "profiled_cells_per_sec":
                    profiled_batch["cells_per_sec"],
                "overhead_pct": overhead_pct,
            }
    return entry


# -- comparison ----------------------------------------------------------------


def _schema_of(entry: Dict[str, Any]) -> int:
    return int(entry.get("provenance", {}).get("schema", 0))


def _fingerprint_of(entry: Dict[str, Any]) -> Optional[str]:
    return entry.get("provenance", {}).get("machine_fingerprint")


def _throughputs(entry: Dict[str, Any]) -> Dict[str, Dict[str, float]]:
    """engine → {clients: cells_per_sec} for any schema version."""
    out: Dict[str, Dict[str, float]] = {}
    for engine, runs in entry.get("engines", {}).items():
        out[engine] = {str(r["clients"]): r["cells_per_sec"]
                       for r in runs}
    return out


def compare_entries(base: Dict[str, Any], head: Dict[str, Any],
                    tolerance: float = DEFAULT_TOLERANCE
                    ) -> List[str]:
    """Regression findings of ``head`` against ``base`` (empty = ok).

    Two gates, picked by machine fingerprint:

    * same fingerprint (or re-run on one machine): absolute cells/sec
      per engine per client count must not drop more than
      ``tolerance``;
    * different/unknown fingerprint: only the engine *speedup ratios*
      (batch/event and batch-v2/batch) are gated — they are a
      property of the engines, not the host.
    """
    findings: List[str] = []
    floor = 1.0 - tolerance

    base_fp, head_fp = _fingerprint_of(base), _fingerprint_of(head)
    same_machine = (base_fp is not None and base_fp == head_fp)

    for key, label in (("speedup_cells_per_sec", "batch/event"),
                       ("speedup_v2_over_batch", "batch-v2/batch")):
        base_speed = base.get(key, {})
        head_speed = head.get(key, {})
        for clients in sorted(set(base_speed) & set(head_speed),
                              key=lambda c: int(c)):
            b, h = base_speed[clients], head_speed[clients]
            if b > 0 and h < b * floor:
                findings.append(
                    f"{label} speedup ratio at {clients} clients "
                    f"regressed: {b:.2f}x -> {h:.2f}x "
                    f"(floor {b * floor:.2f}x at tolerance "
                    f"{tolerance:.0%})")

    if same_machine:
        base_tp, head_tp = _throughputs(base), _throughputs(head)
        for engine in sorted(set(base_tp) & set(head_tp)):
            for clients in sorted(
                    set(base_tp[engine]) & set(head_tp[engine]),
                    key=lambda c: int(c)):
                b = base_tp[engine][clients]
                h = head_tp[engine][clients]
                if b > 0 and h < b * floor:
                    findings.append(
                        f"{engine} engine at {clients} clients "
                        f"regressed: {b:,.0f} -> {h:,.0f} cells/sec "
                        f"(floor {b * floor:,.0f} at tolerance "
                        f"{tolerance:.0%})")
    return findings


def describe_comparison(base: Dict[str, Any],
                        head: Dict[str, Any]) -> str:
    """One line of context printed above compare results."""
    base_fp, head_fp = _fingerprint_of(base), _fingerprint_of(head)
    mode = ("absolute cells/sec + speedup ratios "
            "(same machine fingerprint)"
            if base_fp is not None and base_fp == head_fp
            else "speedup ratios only (machine fingerprints differ "
                 "or are missing)")
    return (f"base schema {_schema_of(base)} "
            f"(commit {base.get('provenance', {}).get('commit', 'unknown')[:12]}) vs "
            f"head schema {_schema_of(head)} "
            f"(commit {head.get('provenance', {}).get('commit', 'unknown')[:12]}); "
            f"gate: {mode}")


# -- trajectory ----------------------------------------------------------------


def append_trajectory(entry: Dict[str, Any], path: str) -> None:
    """Append one bench entry to the JSONL trajectory history."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with p.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")


def read_trajectory(path: str) -> List[Dict[str, Any]]:
    p = Path(path)
    if not p.exists():
        return []
    entries = []
    for line in p.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            entries.append(json.loads(line))
    return entries


def load_entry(path: str) -> Dict[str, Any]:
    """Read one bench entry (a plain JSON object, any schema)."""
    return json.loads(Path(path).read_text(encoding="utf-8"))

"""The unified bench runner behind ``repro bench`` and CI perf-smoke.

The scaling workload used to live only inside
``benchmarks/test_bench_scaling.py``, timed with a bare
``time.perf_counter()`` and written to an ad-hoc ``BENCH_scaling.json``
with no commit or machine provenance — a number nobody could compare
across runs.  This module owns the core loop so the pytest bench, the
``repro bench`` CLI, and CI all execute the *same* code:

* :func:`run_backbone` — the constant-rate zone-backbone loop
  (SP↔mix trunks under :class:`~repro.simulation.roundsync.WireFabric`),
  optionally with a :class:`~repro.obs.prof.profiler.PhaseProfiler`
  attached;
* :func:`run_scaling_bench` — the full sweep: both engines over a
  client-count ladder, per-phase breakdowns from separate profiled
  runs at the headline count (so profiling overhead never pollutes the
  timed numbers), an attached-vs-detached overhead measurement, and a
  schema-versioned entry stamped with provenance;
* :func:`compare_entries` — the regression gate.  When base and head
  carry the same machine fingerprint, absolute cells/sec must hold
  within the tolerance band; across different machines (CI runner vs
  the committed baseline) only the machine-independent batch/event
  speedup ratios are gated.  Nonzero findings → nonzero exit.

Entries append to a JSONL *trajectory* so the perf history of the
engines survives across commits (EXPERIMENTS.md).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.prof.perfclock import perf_now, process_now
from repro.obs.prof.profiler import PhaseProfiler
from repro.obs.prof.provenance import provenance

#: One constant-rate cell (160 B ≈ a 20 ms G.711 frame).
CELL = b"\x00" * 160
DEFAULT_CLIENT_COUNTS = (100, 250, 500)
DEFAULT_ROUNDS = 25
CLIENTS_PER_SP = 50
#: Default tolerance band for :func:`compare_entries` — a ≥20%
#: slowdown always exceeds it.
DEFAULT_TOLERANCE = 0.15

WORKLOAD = ("constant-rate zone backbone (SP-mix trunks), "
            "{rounds} rounds, {per_sp} clients/SP")


class TallyObserver:
    """A global passive adversary that aggregates instead of storing:
    one update per batch when the link offers vectors, one per cell on
    the per-packet path."""

    def __init__(self):
        self.cells = 0
        self.bytes = 0

    def record(self, time, packet, src, dst):
        self.cells += 1
        self.bytes += packet.size

    def record_batch(self, time, batch, src, dst):
        self.cells += len(batch)
        self.bytes += batch.total_bytes()


def run_backbone(execution: str, n_clients: int,
                 rounds: int = DEFAULT_ROUNDS, *,
                 profiler: Optional[PhaseProfiler] = None,
                 clients_per_sp: int = CLIENTS_PER_SP
                 ) -> Dict[str, Any]:
    """Drive the zone backbone for ``rounds``; returns measurements.

    The workload (DESIGN.md §9 / benchmarks): every round, each SP
    trunk carries one cell per attached client in each direction —
    ``append_repeated`` batches on the batch engine, per-cell packets
    and heap events on the event engine.
    """
    from repro.simulation.roundsync import WireFabric

    fabric = WireFabric(seed=1, execution=execution,
                        observer=TallyObserver())
    if profiler is not None:
        profiler.attach_fabric(fabric)
    n_sps = max(1, n_clients // clients_per_sp)
    members = [n_clients // n_sps + (1 if s < n_clients % n_sps else 0)
               for s in range(n_sps)]
    started = perf_now()
    cpu_started = process_now()
    for r in range(rounds):
        if profiler is not None:
            profiler.round_started(r)
        for s in range(n_sps):
            fabric.emit_repeated(f"sp-{s}", "mix", CELL, members[s],
                                 kind="up")
        for s in range(n_sps):
            fabric.emit_repeated("mix", f"sp-{s}", CELL, members[s],
                                 kind="down")
        fabric.flush_round(r)
        if profiler is not None:
            profiler.round_finished(r)
    elapsed = perf_now() - started
    cpu_elapsed = process_now() - cpu_started
    return {
        "clients": n_clients,
        "rounds": rounds,
        "cells": fabric.cells_carried,
        "events": fabric.events_processed,
        "elapsed_s": elapsed,
        "cpu_s": cpu_elapsed,
        "cells_per_sec": fabric.cells_carried / elapsed
        if elapsed else 0.0,
        "events_per_sec": fabric.events_processed / elapsed
        if elapsed else 0.0,
        "observed_cells": fabric.observer.cells,
    }


def run_scaling_bench(
        client_counts: Sequence[int] = DEFAULT_CLIENT_COUNTS,
        rounds: int = DEFAULT_ROUNDS, *,
        timestamp_utc: Optional[str] = None,
        with_phases: bool = True) -> Dict[str, Any]:
    """Run the full engine-scaling sweep and build a schema-versioned
    bench entry.

    The timed sweep runs unprofiled.  When ``with_phases`` is set, one
    additional *profiled* run per engine at the largest client count
    supplies the per-phase breakdown, and the ratio between the
    profiled and unprofiled batch runs is recorded as the attached
    profiler overhead.
    """
    results: Dict[str, List[Dict[str, Any]]] = {"event": [],
                                                "batch": []}
    for n in client_counts:
        for engine in ("event", "batch"):
            results[engine].append(run_backbone(engine, n, rounds))

    speedups: Dict[str, float] = {}
    for ev, ba in zip(results["event"], results["batch"]):
        speedups[str(ev["clients"])] = (
            ba["cells_per_sec"] / ev["cells_per_sec"]
            if ev["cells_per_sec"] else 0.0)

    entry: Dict[str, Any] = {
        "provenance": provenance(timestamp_utc),
        "workload": WORKLOAD.format(rounds=rounds,
                                    per_sp=CLIENTS_PER_SP),
        "client_counts": list(client_counts),
        "rounds": rounds,
        "engines": results,
        "speedup_cells_per_sec": speedups,
    }

    if with_phases and client_counts:
        headline = max(client_counts)
        phases: Dict[str, Any] = {}
        profiled_batch = None
        for engine in ("event", "batch"):
            prof = PhaseProfiler()
            run = run_backbone(engine, headline, rounds,
                               profiler=prof)
            phases[engine] = prof.report()
            if engine == "batch":
                profiled_batch = run
        entry["phases"] = phases

        detached = next(r for r in results["batch"]
                        if r["clients"] == headline)
        overhead_pct = 0.0
        if profiled_batch and profiled_batch["cells_per_sec"]:
            overhead_pct = 100.0 * max(
                0.0, detached["cells_per_sec"]
                / profiled_batch["cells_per_sec"] - 1.0)
        entry["profiler_overhead"] = {
            "clients": headline,
            "engine": "batch",
            "detached_cells_per_sec": detached["cells_per_sec"],
            "profiled_cells_per_sec":
                profiled_batch["cells_per_sec"]
                if profiled_batch else 0.0,
            "overhead_pct": overhead_pct,
        }
    return entry


# -- comparison ----------------------------------------------------------------


def _schema_of(entry: Dict[str, Any]) -> int:
    return int(entry.get("provenance", {}).get("schema", 0))


def _fingerprint_of(entry: Dict[str, Any]) -> Optional[str]:
    return entry.get("provenance", {}).get("machine_fingerprint")


def _throughputs(entry: Dict[str, Any]) -> Dict[str, Dict[str, float]]:
    """engine → {clients: cells_per_sec} for any schema version."""
    out: Dict[str, Dict[str, float]] = {}
    for engine, runs in entry.get("engines", {}).items():
        out[engine] = {str(r["clients"]): r["cells_per_sec"]
                       for r in runs}
    return out


def compare_entries(base: Dict[str, Any], head: Dict[str, Any],
                    tolerance: float = DEFAULT_TOLERANCE
                    ) -> List[str]:
    """Regression findings of ``head`` against ``base`` (empty = ok).

    Two gates, picked by machine fingerprint:

    * same fingerprint (or re-run on one machine): absolute cells/sec
      per engine per client count must not drop more than
      ``tolerance``;
    * different/unknown fingerprint: only the batch/event *speedup
      ratio* is gated — it is a property of the engines, not the host.
    """
    findings: List[str] = []
    floor = 1.0 - tolerance

    base_fp, head_fp = _fingerprint_of(base), _fingerprint_of(head)
    same_machine = (base_fp is not None and base_fp == head_fp)

    base_speed = base.get("speedup_cells_per_sec", {})
    head_speed = head.get("speedup_cells_per_sec", {})
    for clients in sorted(set(base_speed) & set(head_speed),
                          key=lambda c: int(c)):
        b, h = base_speed[clients], head_speed[clients]
        if b > 0 and h < b * floor:
            findings.append(
                f"speedup ratio at {clients} clients regressed: "
                f"{b:.2f}x -> {h:.2f}x "
                f"(floor {b * floor:.2f}x at tolerance "
                f"{tolerance:.0%})")

    if same_machine:
        base_tp, head_tp = _throughputs(base), _throughputs(head)
        for engine in sorted(set(base_tp) & set(head_tp)):
            for clients in sorted(
                    set(base_tp[engine]) & set(head_tp[engine]),
                    key=lambda c: int(c)):
                b = base_tp[engine][clients]
                h = head_tp[engine][clients]
                if b > 0 and h < b * floor:
                    findings.append(
                        f"{engine} engine at {clients} clients "
                        f"regressed: {b:,.0f} -> {h:,.0f} cells/sec "
                        f"(floor {b * floor:,.0f} at tolerance "
                        f"{tolerance:.0%})")
    return findings


def describe_comparison(base: Dict[str, Any],
                        head: Dict[str, Any]) -> str:
    """One line of context printed above compare results."""
    base_fp, head_fp = _fingerprint_of(base), _fingerprint_of(head)
    mode = ("absolute cells/sec + speedup ratios "
            "(same machine fingerprint)"
            if base_fp is not None and base_fp == head_fp
            else "speedup ratios only (machine fingerprints differ "
                 "or are missing)")
    return (f"base schema {_schema_of(base)} "
            f"(commit {base.get('provenance', {}).get('commit', 'unknown')[:12]}) vs "
            f"head schema {_schema_of(head)} "
            f"(commit {head.get('provenance', {}).get('commit', 'unknown')[:12]}); "
            f"gate: {mode}")


# -- trajectory ----------------------------------------------------------------


def append_trajectory(entry: Dict[str, Any], path: str) -> None:
    """Append one bench entry to the JSONL trajectory history."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with p.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")


def read_trajectory(path: str) -> List[Dict[str, Any]]:
    p = Path(path)
    if not p.exists():
        return []
    entries = []
    for line in p.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            entries.append(json.loads(line))
    return entries


def load_entry(path: str) -> Dict[str, Any]:
    """Read one bench entry (a plain JSON object, any schema)."""
    return json.loads(Path(path).read_text(encoding="utf-8"))

"""The one sanctioned wall-clock module (herdlint HL001 exemption).

Everything in the simulation tree is forbidden from reading the host
clock — determinism requires every *simulated* timestamp to come from
the virtual :class:`~repro.netsim.engine.EventLoop` clock, and
herdlint's HL001 gate enforces that mechanically.  Profiling is the
deliberate exception: measuring how long the Python actually takes is
a statement about the host, not the simulation, so it *must* read host
time.  Rather than scattering suppression comments, every wall-clock
read in the repository funnels through this module; the HL001
allowlist (``repro.lint.rules.WALL_CLOCK_ALLOWED_FILES``) names
exactly this file, and a meta-test pins that a stray ``time.time()``
anywhere else still fails the gate.

The contract that keeps profiling determinism-safe:

* values returned here are only ever stored in profiler/bench output
  (``RunReport.perf``, ``BENCH_*.json``), never in metrics snapshots,
  traces, adversary observations, or anything folded into a
  ``determinism_key``;
* seeded code never branches on a value read here — profiling changes
  how long a run takes, never what it computes.
"""

from __future__ import annotations

import time
from datetime import datetime, timezone


def perf_now() -> float:
    """Monotonic high-resolution host time in seconds (the profiling
    clock: differences are meaningful, absolute values are not)."""
    return time.perf_counter()


def process_now() -> float:
    """CPU time of the current process in seconds (excludes time the
    OS scheduled other processes — the bench runner records both)."""
    return time.process_time()


def utc_timestamp() -> str:
    """The current UTC wall time as an ISO-8601 string.

    Called only from CLI/harness layers to stamp bench provenance;
    seeded simulation code must never see (or store) this value.
    """
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")

"""Structured trace events and spans on virtual time.

A :class:`Tracer` is the event bus of herdscope: instrumentation hooks
emit instant events (``fault injected``, ``failover``) and open/close
spans (``call-setup`` from signaling bit to GRANT, ``fault`` from
injection to recovery) whose start and end times come from the run's
virtual clock.  Sinks receive every event:

* :class:`JsonlTraceSink` — one sorted-key JSON object per line; two
  identically-seeded runs produce byte-identical files (the regression
  the acceptance tests pin).
* :class:`RingBufferTraceSink` — the last N events in memory, for
  post-run inspection without touching the filesystem.

Span ids are allocated from a per-tracer counter, so they too are
deterministic.  Spans left open when a run is torn down mid-flight
(e.g. :meth:`EventLoop.cancel_all <repro.netsim.engine.EventLoop
.cancel_all>` cancelling the events that would have closed them) are
*drained*: force-closed with ``reason="cancelled"`` so they never leak
into the next run's trace.
"""

from __future__ import annotations

import itertools
import json
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (Callable, Deque, Dict, IO, Iterator, List, Mapping,
                    Optional, Tuple)

PHASE_INSTANT = "instant"
PHASE_BEGIN = "begin"
PHASE_END = "end"


@dataclass(frozen=True)
class TraceEvent:
    """One structured event on the trace bus."""

    time: float
    name: str
    phase: str                      # instant | begin | end
    span_id: Optional[int] = None
    labels: Tuple[Tuple[str, str], ...] = ()

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"time": self.time, "name": self.name,
                                  "phase": self.phase}
        if self.span_id is not None:
            out["span"] = self.span_id
        if self.labels:
            out["labels"] = dict(self.labels)
        return out

    def to_json(self) -> str:
        """Canonical one-line JSON (sorted keys, no whitespace) — the
        unit of byte-identical trace files."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))


def _labels_key(labels: Mapping[str, object]
                ) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class TraceSink:
    """Protocol: anything with ``emit(event)`` and ``close()``."""

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        """Optional flush/teardown; default no-op."""


class RingBufferTraceSink(TraceSink):
    """Keeps the newest ``capacity`` events in memory."""

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.emitted = 0

    def emit(self, event: TraceEvent) -> None:
        self._events.append(event)
        self.emitted += 1

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    @property
    def dropped(self) -> int:
        """Events that fell off the ring."""
        return self.emitted - len(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.emitted = 0


class JsonlTraceSink(TraceSink):
    """Appends one canonical JSON line per event to a file."""

    def __init__(self, path: str):
        self.path = path
        self._handle: Optional[IO[str]] = open(path, "w",
                                               encoding="utf-8")
        self.lines_written = 0

    def emit(self, event: TraceEvent) -> None:
        if self._handle is None:
            raise RuntimeError(f"trace sink {self.path} already closed")
        self._handle.write(event.to_json())
        self._handle.write("\n")
        self.lines_written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


@dataclass
class Span:
    """An open interval on virtual time; close with :meth:`Tracer
    .end_span` (or let a teardown drain it)."""

    span_id: int
    name: str
    start: float
    labels: Tuple[Tuple[str, str], ...] = ()
    end: Optional[float] = None
    end_labels: Tuple[Tuple[str, str], ...] = field(default=())

    @property
    def open(self) -> bool:
        return self.end is None

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start


class Tracer:
    """The trace-event bus: emits to every attached sink."""

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 sinks: Tuple[TraceSink, ...] = ()):
        self._clock = clock or (lambda: 0.0)
        self._sinks: List[TraceSink] = list(sinks)
        self._ids = itertools.count(1)
        self._open: Dict[int, Span] = {}
        self.events_emitted = 0
        self.spans_drained = 0

    # -- plumbing --------------------------------------------------------------

    def now(self) -> float:
        return self._clock()

    def use_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    def add_sink(self, sink: TraceSink) -> TraceSink:
        self._sinks.append(sink)
        return sink

    def _emit(self, event: TraceEvent) -> None:
        self.events_emitted += 1
        for sink in self._sinks:
            sink.emit(event)

    # -- events & spans --------------------------------------------------------

    def event(self, name: str, **labels: object) -> TraceEvent:
        """Emit an instant event at the current virtual time."""
        event = TraceEvent(time=self._clock(), name=name,
                           phase=PHASE_INSTANT,
                           labels=_labels_key(labels))
        self._emit(event)
        return event

    def begin_span(self, name: str, **labels: object) -> Span:
        span = Span(span_id=next(self._ids), name=name,
                    start=self._clock(), labels=_labels_key(labels))
        self._open[span.span_id] = span
        self._emit(TraceEvent(time=span.start, name=name,
                              phase=PHASE_BEGIN, span_id=span.span_id,
                              labels=span.labels))
        return span

    def end_span(self, span: Span, **labels: object) -> Span:
        if span.end is not None:
            return span  # idempotent: draining may race a late closer
        span.end = self._clock()
        span.end_labels = _labels_key(labels)
        self._open.pop(span.span_id, None)
        self._emit(TraceEvent(time=span.end, name=span.name,
                              phase=PHASE_END, span_id=span.span_id,
                              labels=span.end_labels))
        return span

    @contextmanager
    def span(self, name: str, **labels: object) -> Iterator[Span]:
        span = self.begin_span(name, **labels)
        try:
            yield span
        finally:
            self.end_span(span)

    # -- teardown --------------------------------------------------------------

    @property
    def open_spans(self) -> List[Span]:
        return [self._open[i] for i in sorted(self._open)]

    def drain_open_spans(self, reason: str = "cancelled") -> int:
        """Force-close every open span (labelled with ``reason``) —
        called by :meth:`EventLoop.cancel_all` so cancelled events can
        never leak half-open spans into the next run."""
        drained = 0
        for span_id in sorted(self._open):
            span = self._open.get(span_id)
            if span is not None:
                self.end_span(span, reason=reason)
                drained += 1
        self.spans_drained += drained
        return drained

    def close(self) -> None:
        """Drain open spans and close every sink."""
        self.drain_open_spans(reason="tracer-closed")
        for sink in self._sinks:
            sink.close()

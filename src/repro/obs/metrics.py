"""Virtual-time metrics: counters, gauges, and fixed-bucket histograms.

Every figure of the paper's evaluation (§4) is a metric — anonymity-set
sizes, per-link bandwidth, CPU, latency/MOS — and herdscope makes them
first-class: a :class:`MetricsRegistry` holds instruments keyed by
``(name, labels)`` and stamps every update with *virtual* time read
from the owning :class:`~repro.netsim.engine.EventLoop` clock or round
counter, never the wall clock.  Two runs with the same seed therefore
produce byte-identical snapshots, and herdlint's HL001 determinism gate
holds for the observability layer itself.

Instruments follow Prometheus semantics:

* :class:`Counter` — monotonically increasing; ``inc()``.
* :class:`Gauge` — arbitrary set/inc/dec.
* :class:`Histogram` — fixed upper-bound buckets plus ``_sum`` and
  ``_count``; ``observe()``.

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain, deterministic,
JSON-ready structures ordered by ``(name, labels)``; the exporters in
:mod:`repro.obs.export` render them as Prometheus text or JSON.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

#: Label sets are canonicalized to sorted ``(key, value)`` tuples so the
#: same labels in any order address the same series.
LabelsKey = Tuple[Tuple[str, str], ...]

#: Default histogram buckets (upper bounds): sub-round latencies up to
#: long spans, in whatever unit the caller observes (rounds, seconds,
#: milliseconds).  ``+inf`` is implicit.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0,
    50.0, 100.0, 250.0, 500.0, 1000.0)

#: Hard per-name series cap: a mislabelled instrument (e.g. a unique id
#: in a label) would otherwise grow without bound and destroy snapshot
#: comparability.
MAX_SERIES_PER_NAME = 1024


def canonical_labels(labels: Optional[Mapping[str, object]]) -> LabelsKey:
    """Normalize a label mapping to a sorted tuple of string pairs."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class LabelCardinalityError(ValueError):
    """Raised when one metric name exceeds :data:`MAX_SERIES_PER_NAME`
    distinct label sets."""


class Instrument:
    """Base class: one ``(name, labels)`` series."""

    kind = "untyped"

    __slots__ = ("name", "labels", "updated_at")

    def __init__(self, name: str, labels: LabelsKey):
        self.name = name
        self.labels = labels
        #: Virtual time of the last update (registry clock).
        self.updated_at = 0.0

    def series_snapshot(self) -> Dict[str, object]:
        raise NotImplementedError


class Counter(Instrument):
    """A monotonically increasing count."""

    kind = "counter"

    __slots__ = ("value", "_clock")

    def __init__(self, name: str, labels: LabelsKey,
                 clock: Callable[[], float]):
        super().__init__(name, labels)
        self.value = 0.0
        self._clock = clock

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount
        self.updated_at = self._clock()

    def add(self, n: float) -> None:
        """Bulk increment: ``add(n)`` is the O(1) equivalent of ``n``
        unit :meth:`inc` calls made at the same virtual time — same
        value (integer float sums are exact below 2**53), same
        ``updated_at`` — so batch engines keep snapshots byte-identical
        while paying O(batches) instead of O(cells)."""
        self.inc(n)

    def series_snapshot(self) -> Dict[str, object]:
        return {"labels": dict(self.labels), "value": self.value,
                "updated_at": self.updated_at}


class Gauge(Instrument):
    """A value that can go up and down (queue depth, occupancy)."""

    kind = "gauge"

    __slots__ = ("value", "_clock")

    def __init__(self, name: str, labels: LabelsKey,
                 clock: Callable[[], float]):
        super().__init__(name, labels)
        self.value = 0.0
        self._clock = clock

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updated_at = self._clock()

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)

    def series_snapshot(self) -> Dict[str, object]:
        return {"labels": dict(self.labels), "value": self.value,
                "updated_at": self.updated_at}


class Histogram(Instrument):
    """Fixed-bucket distribution with exact ``sum`` and ``count``.

    ``buckets`` are inclusive upper bounds; an implicit ``+inf`` bucket
    catches the tail.  Bucket counts are cumulative in snapshots (the
    Prometheus convention).
    """

    kind = "histogram"

    __slots__ = ("buckets", "bucket_counts", "sum", "count", "_clock")

    def __init__(self, name: str, labels: LabelsKey,
                 clock: Callable[[], float],
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(name, labels)
        cleaned = tuple(sorted(float(b) for b in buckets))
        if not cleaned:
            raise ValueError("histogram needs at least one bucket")
        if any(math.isinf(b) for b in cleaned):
            cleaned = tuple(b for b in cleaned if not math.isinf(b))
        self.buckets = cleaned
        self.bucket_counts = [0] * (len(cleaned) + 1)  # + the +inf bucket
        self.sum = 0.0
        self.count = 0
        self._clock = clock

    def observe(self, value: float) -> None:
        value = float(value)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                break
        else:
            self.bucket_counts[-1] += 1
        self.sum += value
        self.count += 1
        self.updated_at = self._clock()

    def observe_many(self, values: Sequence[float]) -> None:
        """Bulk observation: record every value with one clock stamp.

        Equivalent to observing each value in order at the same
        virtual time (``sum`` accumulates in iteration order, so the
        float total matches the sequential path bit for bit), with
        O(values) bucket work but O(1) clock reads — instrumentation
        for a whole round's cells costs one call."""
        if not values:
            return
        buckets = self.buckets
        counts = self.bucket_counts
        # Accumulate into a local exactly as sequential observe()
        # calls would: (s + v1) + v2 differs from s + (v1 + v2) in
        # float arithmetic, and snapshots must match bit for bit.
        s = self.sum
        for value in values:
            value = float(value)
            for i, bound in enumerate(buckets):
                if value <= bound:
                    counts[i] += 1
                    break
            else:
                counts[-1] += 1
            s += value
        self.sum = s
        self.count += len(values)
        self.updated_at = self._clock()

    def cumulative_counts(self) -> List[int]:
        """Bucket counts accumulated left to right (``le`` semantics)."""
        out, running = [], 0
        for c in self.bucket_counts:
            running += c
            out.append(running)
        return out

    def series_snapshot(self) -> Dict[str, object]:
        return {"labels": dict(self.labels),
                "buckets": list(self.buckets),
                "cumulative": self.cumulative_counts(),
                "sum": self.sum, "count": self.count,
                "updated_at": self.updated_at}


class MetricsRegistry:
    """All of one run's instruments, sharing one virtual clock.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current *virtual* time —
        ``loop.now`` of the owning :class:`~repro.netsim.engine
        .EventLoop`, or a round counter for round-based simulations.
        Defaults to a constant 0 (still deterministic, just unstamped).
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock or (lambda: 0.0)
        self._series: Dict[Tuple[str, LabelsKey], Instrument] = {}
        self._kinds: Dict[str, str] = {}
        self._helps: Dict[str, str] = {}
        self._cardinality: Dict[str, int] = {}

    # -- clock -----------------------------------------------------------------

    def now(self) -> float:
        """The registry's current virtual time."""
        return self._clock()

    def use_clock(self, clock: Callable[[], float]) -> None:
        """Re-point the registry (and every existing instrument) at a
        new virtual clock — used when the owning loop/round counter is
        created after the registry."""
        self._clock = clock
        for instrument in self._series.values():
            instrument._clock = clock  # shared slot on all instruments

    # -- instrument factories --------------------------------------------------

    def _get(self, cls, name: str,
             labels: Optional[Mapping[str, object]],
             help: str, **kwargs) -> Instrument:
        key = (name, canonical_labels(labels))
        found = self._series.get(key)
        if found is not None:
            if not isinstance(found, cls):
                raise TypeError(
                    f"{name} is a {found.kind}, not a {cls.kind}")
            return found
        registered_kind = self._kinds.get(name)
        if registered_kind is not None and registered_kind != cls.kind:
            raise TypeError(f"{name} already registered as "
                            f"{registered_kind}")
        n = self._cardinality.get(name, 0)
        if n >= MAX_SERIES_PER_NAME:
            raise LabelCardinalityError(
                f"{name} exceeds {MAX_SERIES_PER_NAME} label sets; a "
                "label is probably carrying per-entity unique values")
        instrument = cls(name, key[1], self._clock, **kwargs)
        self._series[key] = instrument
        self._kinds[name] = cls.kind
        self._cardinality[name] = n + 1
        if help and name not in self._helps:
            self._helps[name] = help
        return instrument

    def counter(self, name: str,
                labels: Optional[Mapping[str, object]] = None,
                help: str = "") -> Counter:
        return self._get(Counter, name, labels, help)

    def gauge(self, name: str,
              labels: Optional[Mapping[str, object]] = None,
              help: str = "") -> Gauge:
        return self._get(Gauge, name, labels, help)

    def histogram(self, name: str,
                  labels: Optional[Mapping[str, object]] = None,
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  help: str = "") -> Histogram:
        return self._get(Histogram, name, labels, help, buckets=buckets)

    # -- queries ---------------------------------------------------------------

    def value(self, name: str,
              labels: Optional[Mapping[str, object]] = None
              ) -> Optional[float]:
        """Current value of a counter/gauge series, or None if the
        series does not exist (histograms: the observation count)."""
        instrument = self._series.get((name, canonical_labels(labels)))
        if instrument is None:
            return None
        if isinstance(instrument, Histogram):
            return float(instrument.count)
        return instrument.value  # type: ignore[union-attr]

    def series(self, name: str) -> List[Instrument]:
        """Every series registered under ``name``, label-sorted."""
        return [inst for (n, _), inst in sorted(self._series.items())
                if n == name]

    def names(self) -> List[str]:
        return sorted(self._kinds)

    def __len__(self) -> int:
        return len(self._series)

    # -- snapshots -------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A deterministic, JSON-ready view of every instrument:
        ``{name: {"kind", "help", "series": [...label-sorted...]}}``.
        Byte-identical across identically-seeded runs."""
        out: Dict[str, Dict[str, object]] = {}
        for (name, _), instrument in sorted(self._series.items()):
            entry = out.setdefault(name, {
                "kind": instrument.kind,
                "help": self._helps.get(name, ""),
                "series": [],
            })
            entry["series"].append(instrument.series_snapshot())
        return out

    def clear(self) -> None:
        """Drop every instrument (a fresh run in the same registry)."""
        self._series.clear()
        self._kinds.clear()
        self._helps.clear()
        self._cardinality.clear()

"""Exporters: Prometheus text format and JSON snapshots.

Both render the deterministic structure produced by
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot`, so the output is
byte-identical across identically-seeded runs.  The Prometheus text
format follows the exposition conventions (``# HELP`` / ``# TYPE``
headers, ``le``-labelled cumulative histogram buckets, ``_sum`` and
``_count`` series) closely enough to be scraped, while staying
dependency-free.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Mapping


def _format_value(value: float) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if math.isnan(value):
            # Prometheus exposition spells it exactly "NaN";
            # int(value) on a NaN would raise ValueError.
            return "NaN"
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def render_prometheus(snapshot: Dict[str, Dict[str, object]]) -> str:
    """Render a registry snapshot in the Prometheus text format."""
    lines = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        help_text = entry.get("help") or ""
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {entry['kind']}")
        for series in entry["series"]:  # already label-sorted
            labels = series["labels"]
            if entry["kind"] == "histogram":
                cumulative = series["cumulative"]
                for bound, count in zip(series["buckets"], cumulative):
                    le = _format_labels(labels,
                                        f'le="{_format_value(bound)}"')
                    lines.append(f"{name}_bucket{le} {count}")
                inf = _format_labels(labels, 'le="+Inf"')
                lines.append(f"{name}_bucket{inf} {cumulative[-1]}")
                plain = _format_labels(labels)
                lines.append(f"{name}_sum{plain} "
                             f"{_format_value(series['sum'])}")
                lines.append(f"{name}_count{plain} {series['count']}")
            else:
                plain = _format_labels(labels)
                lines.append(f"{name}{plain} "
                             f"{_format_value(series['value'])}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_json(snapshot: Dict[str, Dict[str, object]],
                indent: int = 2) -> str:
    """Render a registry snapshot as canonical (sorted-key) JSON."""
    return json.dumps(snapshot, sort_keys=True, indent=indent)

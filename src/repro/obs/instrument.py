"""Wiring herdscope into the protocol stack.

:class:`Herdscope` bundles one run's :class:`~repro.obs.metrics
.MetricsRegistry` and :class:`~repro.obs.trace.Tracer` behind a single
virtual clock, plus ``attach_*`` methods that install duck-typed hook
objects on the instrumented components:

* :meth:`Herdscope.attach_loop` — :class:`~repro.netsim.engine
  .EventLoop` events scheduled/fired/cancelled and queue depth; on
  ``cancel_all`` the tracer drains every span a cancelled event would
  have closed.
* :meth:`Herdscope.attach_link` — per-link packets/bytes/drops via the
  existing :class:`~repro.netsim.link.Link` observer protocol (the tap
  also implements the optional ``record_drop`` extension).
* :meth:`Herdscope.attach_superpeer` — per-SP logical link counters:
  upstream XOR rounds to the mix, downstream broadcast fan-out to
  clients.
* :meth:`Herdscope.attach_call_manager` — call setup/teardown/blocked/
  failover counts and the per-round chaff vs. payload cell census of
  :meth:`~repro.core.callmanager.MixCallManager.downstream_round`.
* :meth:`Herdscope.attach_injector` — fault timeline entries become
  trace events; injected→recovered windows become spans.
* :meth:`Herdscope.attach_live_zone` — everything above for a
  :class:`~repro.simulation.live.LiveZone`, plus client-side call
  spans (signal → GRANT) measured in rounds.

Every component checks ``self.obs is not None`` before calling a hook,
so an un-instrumented run pays one attribute test per event and the
protocol modules never import this package.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import JsonlTraceSink, RingBufferTraceSink, Span, \
    Tracer


class LoopHook:
    """EventLoop instrumentation (events, queue depth, span drain)."""

    def __init__(self, scope: "Herdscope"):
        self.scope = scope
        reg = scope.registry
        self._scheduled = reg.counter(
            "herd_loop_events_scheduled_total",
            help="events pushed onto the virtual-time loop")
        self._fired = reg.counter(
            "herd_loop_events_fired_total",
            help="events executed by the virtual-time loop")
        self._cancelled = reg.counter(
            "herd_loop_events_cancelled_total",
            help="events cancelled before firing")
        self._depth = reg.gauge(
            "herd_loop_queue_depth",
            help="entries in the loop's priority queue")
        self._drained = reg.counter(
            "herd_spans_drained_total",
            help="open spans force-closed by cancel_all teardown")

    def scheduled(self, loop, event) -> None:
        self._scheduled.inc()
        self._depth.set(len(loop._queue))

    def fired(self, loop, event) -> None:
        self._fired.inc()
        self._depth.set(len(loop._queue))

    def cancelled_all(self, loop, n_cancelled: int) -> None:
        """``cancel_all`` emptied the queue: record it and drain every
        span left open by the events that will now never fire."""
        self._cancelled.inc(n_cancelled)
        self._depth.set(0)
        drained = self.scope.tracer.drain_open_spans(reason="cancelled")
        if drained:
            self._drained.inc(drained)


class LinkTap:
    """A metrics observer for :class:`~repro.netsim.link.Link`.

    Implements the standard observer ``record`` (every transmission
    attempt) plus the optional ``record_drop`` extension the link calls
    for lost packets; delivered = offered - dropped.
    """

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry

    def record(self, time: float, packet, src: str, dst: str) -> None:
        labels = {"link": f"{src}->{dst}"}
        self.registry.counter(
            "herd_link_packets_total", labels,
            help="packets offered per directed link").inc()
        self.registry.counter(
            "herd_link_bytes_total", labels,
            help="bytes offered per directed link").inc(packet.size)

    def record_drop(self, time: float, packet, src: str,
                    dst: str) -> None:
        self.registry.counter(
            "herd_link_dropped_total", {"link": f"{src}->{dst}"},
            help="packets dropped per directed link").inc()

    def record_batch(self, time: float, batch, src: str,
                     dst: str) -> None:
        """Batch recording: O(1) bulk counter updates per round
        instead of O(cells) — values and ``updated_at`` stamps match
        the per-cell path exactly (integer float sums are exact)."""
        labels = {"link": f"{src}->{dst}"}
        self.registry.counter(
            "herd_link_packets_total", labels,
            help="packets offered per directed link").add(len(batch))
        self.registry.counter(
            "herd_link_bytes_total", labels,
            help="bytes offered per directed link").add(
                batch.total_bytes())


class SuperPeerHook:
    """Per-SP logical-link accounting (§3.6 data plane)."""

    def __init__(self, scope: "Herdscope", sp):
        reg = scope.registry
        up = {"link": f"{sp.sp_id}->{sp.mix_id}"}
        down = {"link": f"{sp.mix_id}->{sp.sp_id}"}
        fan = {"link": f"{sp.sp_id}->clients"}
        self._up_bytes = reg.counter(
            "herd_link_bytes_total", up,
            help="bytes offered per directed link")
        self._up_packets = reg.counter("herd_link_packets_total", up,
                                       help="packets offered per "
                                            "directed link")
        self._down_bytes = reg.counter("herd_link_bytes_total", down)
        self._down_packets = reg.counter("herd_link_packets_total",
                                         down)
        self._fan_bytes = reg.counter("herd_link_bytes_total", fan)
        self._fan_packets = reg.counter("herd_link_packets_total", fan)
        self._rounds = reg.counter(
            "herd_sp_rounds_total", {"sp": sp.sp_id},
            help="upstream XOR rounds combined by the SP")

    def upstream_round(self, channel_id: int, round_index: int,
                       xor_bytes: int, manifest_bytes: int) -> None:
        self._rounds.inc()
        self._up_packets.inc()
        self._up_bytes.inc(xor_bytes + manifest_bytes)

    def downstream_broadcast(self, channel_id: int, packet_bytes: int,
                             n_clients: int) -> None:
        self._down_packets.inc()
        self._down_bytes.inc(packet_bytes)
        self._fan_packets.inc(n_clients)
        self._fan_bytes.inc(packet_bytes * n_clients)


class CallManagerHook:
    """Mix-side call lifecycle and per-round cell census."""

    def __init__(self, scope: "Herdscope"):
        self.scope = scope
        reg = scope.registry
        self._signaled = reg.counter(
            "herd_calls_signaled_total",
            help="outgoing-call signal bits acted on by the mix")
        self._blocked = reg.counter(
            "herd_calls_blocked_total",
            help="call legs denied for lack of a free channel")
        self._ended = reg.counter("herd_calls_ended_total",
                                  help="call legs torn down")
        self._busy = reg.gauge(
            "herd_mix_busy_channels",
            help="channels carrying a call this round")
        self._occupancy = reg.gauge(
            "herd_mix_channel_occupancy",
            help="busy fraction of enabled channels")

    def signaled(self, numeric_id: int) -> None:
        self._signaled.inc()

    def granted(self, numeric_id: int, channel_id: int,
                outgoing: bool) -> None:
        direction = "outgoing" if outgoing else "incoming"
        self.scope.registry.counter(
            "herd_calls_granted_total", {"direction": direction},
            help="call legs allocated a channel").inc()

    def blocked(self, numeric_id: int) -> None:
        self._blocked.inc()

    def ended(self, numeric_id: int) -> None:
        self._ended.inc()

    def failover(self, record) -> None:
        outcome = "survived" if record.survived else "dropped"
        self.scope.registry.counter(
            "herd_failovers_total", {"outcome": outcome},
            help="mid-call channel failovers").inc()
        self.scope.tracer.event(
            "failover", numeric_id=record.numeric_id,
            old_channel=record.old_channel,
            new_channel="none" if record.new_channel is None
            else record.new_channel, outcome=outcome)

    def downstream_round(self, round_index: int, payload: int,
                         chaff: int, control: int, busy: int,
                         enabled: int) -> None:
        reg = self.scope.registry
        for kind, n in (("payload", payload), ("chaff", chaff),
                        ("control", control)):
            reg.counter("herd_mix_cells_total", {"kind": kind},
                        help="downstream cells by kind "
                             "(chaff vs payload vs control)").inc(n)
            reg.gauge("herd_round_cells", {"kind": kind},
                      help="downstream cells of the latest round "
                           "by kind").set(n)
        self._busy.set(busy)
        self._occupancy.set(busy / enabled if enabled else 0.0)


class FaultHook:
    """Fault timeline entries as trace events; fault windows as
    spans (injected → recovered)."""

    def __init__(self, scope: "Herdscope"):
        self.scope = scope
        self._open: Dict[Tuple[str, str], Span] = {}

    def fault_event(self, entry) -> None:
        self.scope.registry.counter(
            "herd_fault_events_total",
            {"action": entry.action, "kind": entry.kind},
            help="fault-injector timeline entries").inc()
        key = (entry.kind, entry.target)
        if entry.action == "injected":
            self._open[key] = self.scope.tracer.begin_span(
                "fault", kind=entry.kind, target=entry.target,
                detail=entry.detail)
        elif entry.action == "recovered":
            span = self._open.pop(key, None)
            if span is not None:
                self.scope.tracer.end_span(span, outcome="recovered")
            else:
                self.scope.tracer.event("fault_recovered",
                                        kind=entry.kind,
                                        target=entry.target)
        else:
            self.scope.tracer.event(
                "fault_" + entry.action, kind=entry.kind,
                target=entry.target, detail=entry.detail)


class LiveZoneHook:
    """Client-side call spans and round progress for a LiveZone."""

    def __init__(self, scope: "Herdscope", zone):
        self.scope = scope
        self.zone = zone
        reg = scope.registry
        self._rounds = reg.counter(
            "herd_zone_rounds_total", {"zone": zone.zone_id},
            help="data-plane rounds run")
        self._voice = reg.counter(
            "herd_voice_cells_received_total",
            help="non-empty voice cells delivered to clients")
        self._setup = reg.histogram(
            "herd_call_setup_rounds",
            buckets=(0.0, 1.0, 2.0, 3.0, 5.0, 10.0, 25.0, 50.0),
            help="rounds from signaling to GRANT/INCOMING")
        #: client id -> open call-setup span.
        self._setup_spans: Dict[str, Span] = {}
        #: client id -> the (shared) call span it participates in.
        self._call_spans: Dict[str, Span] = {}

    def call_started(self, caller_id: str, callee_id: str) -> None:
        tracer = self.scope.tracer
        self._setup_spans[caller_id] = tracer.begin_span(
            "call_setup", client=caller_id)
        span = tracer.begin_span("call", caller=caller_id,
                                 callee=callee_id)
        self._call_spans[caller_id] = span
        self._call_spans[callee_id] = span

    def client_event(self, client_id: str, event: str) -> None:
        if event in ("granted", "ringing"):
            span = self._setup_spans.pop(client_id, None)
            if span is not None:
                self.scope.tracer.end_span(span, outcome=event)
                self._setup.observe(span.end - span.start)
        elif event == "voice":
            self._voice.inc()

    def call_ended(self, client_id: str) -> None:
        setup = self._setup_spans.pop(client_id, None)
        if setup is not None:
            self.scope.tracer.end_span(setup, outcome="hangup")
        span = self._call_spans.pop(client_id, None)
        if span is not None:
            self.scope.tracer.end_span(span)  # idempotent for the peer

    def round_finished(self, round_index: int) -> None:
        self._rounds.inc()


class Herdscope:
    """One run's observability: registry + tracer on a shared virtual
    clock, plus the attach methods that wire them into components.

    Parameters
    ----------
    clock:
        Zero-argument virtual-time callable.  Re-pointable later via
        :meth:`use_clock` (e.g. once the owning loop exists).
    trace_path:
        Optional JSONL file for the full trace stream.
    trace_buffer:
        Capacity of the in-memory ring buffer (0 disables it).
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 trace_path: Optional[str] = None,
                 trace_buffer: int = 4096):
        self._clock: Callable[[], float] = clock or (lambda: 0.0)
        self._clock_installed = clock is not None
        self.registry = MetricsRegistry(self.now)
        self.tracer = Tracer(self.now)
        self.ring: Optional[RingBufferTraceSink] = None
        self.jsonl: Optional[JsonlTraceSink] = None
        if trace_buffer > 0:
            self.ring = self.tracer.add_sink(
                RingBufferTraceSink(trace_buffer))
        if trace_path is not None:
            self.jsonl = self.tracer.add_sink(JsonlTraceSink(trace_path))

    # -- clock ----------------------------------------------------------------

    def now(self) -> float:
        return self._clock()

    def use_clock(self, clock: Callable[[], float]) -> None:
        """Point registry and tracer at the run's real virtual clock
        (``loop.now``, or a round counter)."""
        self._clock = clock
        self._clock_installed = True

    # -- attachment -----------------------------------------------------------

    def attach_loop(self, loop) -> LoopHook:
        """Instrument an EventLoop; also adopts ``loop.now`` as the
        scope clock unless one was installed already."""
        if not self._clock_installed:
            self.use_clock(lambda: loop.now)
        hook = LoopHook(self)
        loop.obs = hook
        return hook

    def attach_link(self, link) -> LinkTap:
        tap = LinkTap(self.registry)
        link.add_observer(tap)
        return tap

    def attach_superpeer(self, sp) -> SuperPeerHook:
        hook = SuperPeerHook(self, sp)
        sp.obs = hook
        return hook

    def attach_call_manager(self, manager) -> CallManagerHook:
        hook = CallManagerHook(self)
        manager.obs = hook
        return hook

    def attach_injector(self, injector) -> FaultHook:
        hook = FaultHook(self)
        injector.obs = hook
        return hook

    def attach_live_zone(self, zone) -> LiveZoneHook:
        """Wire a LiveZone end to end: zone hook, its call manager,
        and every superpeer."""
        hook = LiveZoneHook(self, zone)
        zone.obs = hook
        self.attach_call_manager(zone.manager)
        for sp in zone.sps:
            self.attach_superpeer(sp)
        return hook

    # -- lifecycle ------------------------------------------------------------

    def snapshot(self):
        return self.registry.snapshot()

    def close(self) -> None:
        self.tracer.close()

"""herdscope: virtual-time observability for the Herd reproduction.

The paper's evaluation (§4) is entirely metric-driven; herdscope makes
measurement core infrastructure rather than harness code:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and fixed-bucket histograms keyed by ``(name, labels)``,
  stamped with *virtual* time (EventLoop clock or round counter) so
  runs stay seed-replayable and HL001-clean.
* :mod:`repro.obs.trace` — a structured trace-event bus: spans with
  explicit virtual start/end times, JSONL and ring-buffer sinks,
  deterministic span ids.
* :mod:`repro.obs.instrument` — :class:`Herdscope`, the bundle of one
  run's registry + tracer, with ``attach_*`` hooks for the event loop,
  links, superpeers, call manager, fault injector, and live zones.
* :mod:`repro.obs.export` — Prometheus-style text and JSON snapshot
  renderers.
* :mod:`repro.obs.prof` — herdprof: the phase profiler, deep-profile
  (flamegraph) capture, and the ``repro bench`` regression plane.
  Unlike the modules above it reads *host* time — but only through
  the sanctioned :mod:`repro.obs.prof.perfclock`, and its output is
  a side channel excluded from every determinism surface.

The :mod:`repro.api` facade constructs a :class:`Herdscope` per
:class:`~repro.api.Simulation` and returns its snapshot and trace
handle in every :class:`~repro.api.RunReport`.
"""

from repro.obs.export import render_json, render_prometheus
from repro.obs.instrument import Herdscope, LinkTap
from repro.obs.prof import PhaseProfiler
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LabelCardinalityError,
    MetricsRegistry,
)
from repro.obs.trace import (
    JsonlTraceSink,
    RingBufferTraceSink,
    Span,
    TraceEvent,
    TraceSink,
    Tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Herdscope",
    "Histogram",
    "JsonlTraceSink",
    "LabelCardinalityError",
    "LinkTap",
    "MetricsRegistry",
    "PhaseProfiler",
    "RingBufferTraceSink",
    "Span",
    "TraceEvent",
    "TraceSink",
    "Tracer",
    "render_json",
    "render_prometheus",
]

"""G.711 µ-law companding: the actual codec transform.

The rest of :mod:`repro.voip` models G.711's *traffic* (160-byte
frames, 50 pps); this module implements its *signal* path — ITU-T
G.711 µ-law encode/decode between 16-bit linear PCM and 8-bit
companded samples — so examples and tests can push real audio through
a Herd call and verify what arrives is what was said.

The implementation follows the standard segmented companding law
(bias 0x84, 8 segments, inverted output bits) and round-trips every
encodable value exactly.
"""

from __future__ import annotations

import math
from typing import List, Sequence

_BIAS = 0x84
_CLIP = 32635
_SEG_ENDS = (0xFF, 0x1FF, 0x3FF, 0x7FF, 0xFFF, 0x1FFF, 0x3FFF, 0x7FFF)


def ulaw_encode_sample(sample: int) -> int:
    """Encode one 16-bit signed linear sample to one µ-law byte."""
    if not -32768 <= sample <= 32767:
        raise ValueError("sample must be 16-bit signed")
    sign = 0x80 if sample < 0 else 0x00
    magnitude = min(-sample if sample < 0 else sample, _CLIP) + _BIAS
    segment = 0
    for seg, end in enumerate(_SEG_ENDS):
        if magnitude <= end:
            segment = seg
            break
    mantissa = (magnitude >> (segment + 3)) & 0x0F
    return ~(sign | (segment << 4) | mantissa) & 0xFF


def ulaw_decode_sample(byte: int) -> int:
    """Decode one µ-law byte to a 16-bit signed linear sample."""
    if not 0 <= byte <= 255:
        raise ValueError("µ-law byte out of range")
    byte = ~byte & 0xFF
    sign = byte & 0x80
    segment = (byte >> 4) & 0x07
    mantissa = byte & 0x0F
    magnitude = ((mantissa << 3) + _BIAS) << segment
    magnitude -= _BIAS
    return -magnitude if sign else magnitude


def ulaw_encode(samples: Sequence[int]) -> bytes:
    """Encode 16-bit linear PCM to µ-law bytes."""
    return bytes(ulaw_encode_sample(s) for s in samples)


def ulaw_decode(data: bytes) -> List[int]:
    """Decode µ-law bytes to 16-bit linear PCM."""
    return [ulaw_decode_sample(b) for b in data]


def tone_frame(frequency_hz: float, frame_index: int = 0,
               sample_rate: int = 8000, samples: int = 160,
               amplitude: float = 0.5) -> bytes:
    """One µ-law-encoded frame of a sine tone (a 20 ms G.711 frame at
    the defaults) — synthetic 'voice' for examples and tests."""
    if not 0.0 <= amplitude <= 1.0:
        raise ValueError("amplitude must be in [0, 1]")
    start = frame_index * samples
    pcm = [int(amplitude * 32000
               * math.sin(2 * math.pi * frequency_hz
                          * (start + i) / sample_rate))
           for i in range(samples)]
    return ulaw_encode(pcm)


def mix_linear(frames: Sequence[Sequence[int]]) -> List[int]:
    """Mix several linear-PCM frames by saturating addition — the
    conference bridge's proper mixing domain (compand → mix → expand
    beats mixing companded bytes)."""
    if not frames:
        raise ValueError("need at least one frame")
    length = len(frames[0])
    if any(len(f) != length for f in frames):
        raise ValueError("frames must have equal length")
    out = []
    for i in range(length):
        total = sum(f[i] for f in frames)
        out.append(max(-32768, min(32767, total)))
    return out


def signal_to_noise_db(reference: Sequence[int],
                       decoded: Sequence[int]) -> float:
    """SNR of a decoded signal against its reference (dB)."""
    if len(reference) != len(decoded) or not reference:
        raise ValueError("signals must be non-empty and equal length")
    signal = sum(s * s for s in reference)
    noise = sum((s - d) ** 2 for s, d in zip(reference, decoded))
    if noise == 0:
        return float("inf")
    if signal == 0:
        return 0.0
    return 10.0 * math.log10(signal / noise)

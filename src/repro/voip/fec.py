"""Forward error correction for lossy SP paths (§3.6.4).

"Legitimate SPs that fail to meet the standard due to an unreliable
network may require their clients to use error-correcting codes on
their encrypted channels to the mix, thus reducing the effective loss
rate to acceptable levels."

This module implements a simple systematic XOR parity code over groups
of ``k`` packets: after every k data packets one parity packet (the
XOR of the group) is sent.  Any single loss within a group is
recovered; the overhead is 1/k.  Because both data and parity are
fixed-size ciphertext, FEC composes with chaffing without changing the
wire image beyond the rate multiple.

:func:`effective_loss` gives the closed-form residual loss under
independent losses, used by the ablation bench to pick k for a target
quality level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.network_coding import xor_bytes


@dataclass(frozen=True)
class FecPacket:
    """One packet of an FEC-protected stream."""

    group: int
    index: int          # 0..k-1 for data, k for parity
    is_parity: bool
    payload: bytes


class FecEncoder:
    """Systematic encoder: emit k data packets then one parity."""

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self._group = 0
        self._index = 0
        self._acc: Optional[bytes] = None

    def encode(self, payload: bytes) -> List[FecPacket]:
        """Encode one data packet; returns it, plus the group's parity
        packet when the group completes."""
        out = [FecPacket(self._group, self._index, False, payload)]
        if self._acc is None:
            self._acc = payload
        else:
            if len(payload) != len(self._acc):
                raise ValueError("FEC packets must have equal size")
            self._acc = xor_bytes(self._acc, payload)
        self._index += 1
        if self._index == self.k:
            out.append(FecPacket(self._group, self.k, True, self._acc))
            self._group += 1
            self._index = 0
            self._acc = None
        return out

    @property
    def overhead(self) -> float:
        """Fractional bandwidth overhead: one parity per k data."""
        return 1.0 / self.k


class FecDecoder:
    """Decoder: recovers any single missing data packet per group.

    Feed arriving packets with :meth:`receive`; completed (or
    recovered) data packets come back in order per group via the return
    value.  :meth:`flush_group` finalizes a group whose stragglers will
    never arrive.
    """

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self._groups: Dict[int, Dict[int, bytes]] = {}
        self._parity: Dict[int, bytes] = {}
        self._done: Dict[int, bool] = {}
        self.recovered = 0
        self.unrecoverable = 0

    def receive(self, packet: FecPacket) -> List[Tuple[int, int, bytes]]:
        """Process an arrival; returns newly available data packets as
        (group, index, payload) — including any recovered by parity."""
        if self._done.get(packet.group):
            return []
        if packet.is_parity:
            self._parity[packet.group] = packet.payload
            fresh: List[Tuple[int, int, bytes]] = []
        else:
            group = self._groups.setdefault(packet.group, {})
            if packet.index in group:
                return []
            group[packet.index] = packet.payload
            fresh = [(packet.group, packet.index, packet.payload)]
        fresh.extend(self._try_recover(packet.group))
        return fresh

    def _try_recover(self, group_id: int) -> List[Tuple[int, int, bytes]]:
        group = self._groups.get(group_id, {})
        parity = self._parity.get(group_id)
        if len(group) == self.k:
            self._done[group_id] = True
            return []
        if parity is None or len(group) != self.k - 1:
            return []
        missing = next(i for i in range(self.k) if i not in group)
        payload = parity
        for data in group.values():
            payload = xor_bytes(payload, data)
        group[missing] = payload
        self._done[group_id] = True
        self.recovered += 1
        return [(group_id, missing, payload)]

    def flush_group(self, group_id: int) -> int:
        """Give up on a group's missing packets; returns how many data
        packets were lost for good."""
        group = self._groups.get(group_id, {})
        lost = self.k - len(group)
        if lost > 0 and not self._done.get(group_id):
            self.unrecoverable += lost
        self._done[group_id] = True
        return max(0, lost)


def effective_loss(raw_loss: float, k: int) -> float:
    """Residual data-packet loss after (k, 1) XOR parity under
    independent losses.

    A data packet is lost for good iff it is dropped AND at least one
    other packet of its k+1-packet group (k−1 data siblings + parity)
    is also dropped.
    """
    if not 0.0 <= raw_loss <= 1.0:
        raise ValueError("loss must be in [0, 1]")
    if k < 1:
        raise ValueError("k must be at least 1")
    p = raw_loss
    all_others_arrive = (1.0 - p) ** k
    return p * (1.0 - all_others_arrive)


def k_for_target_loss(raw_loss: float, target_loss: float,
                      max_k: int = 64) -> Optional[int]:
    """Largest k (least overhead) whose residual loss meets the target;
    None if even k=1 cannot."""
    if target_loss <= 0:
        raise ValueError("target must be positive")
    if raw_loss <= target_loss:
        return max_k
    best = None
    for k in range(1, max_k + 1):
        if effective_loss(raw_loss, k) <= target_loss:
            best = k
    return best

"""VoIP substrate: codecs, RTP packetization, and call quality.

The paper's unit of traffic is "the payload rate of a single voice
call" using the G.711 codec at 8 KB/s (§4.1.3), and call quality is
assessed with the ITU-T G.107 E-Model as parameterized for VoIP by
Cole & Rosenbluth (§4.3.1).  This package provides:

* :mod:`repro.voip.codec` — codec models (G.711, G.729, plus an
  Opus-like wideband entry) with frame sizes and packet rates,
* :mod:`repro.voip.rtp` — RTP-style packetization of a talk stream,
* :mod:`repro.voip.emodel` — the E-Model: R-factor from one-way delay
  and packet loss, MOS conversion, and the Fig. 7 quality bands.
"""

from repro.voip.codec import Codec, G711, G729, OPUS_NB, CODECS
from repro.voip.rtp import RtpPacketizer, RtpPacket, RTP_HEADER_BYTES
from repro.voip.emodel import (
    EModel,
    MOS_BANDS,
    mos_from_r,
    quality_band,
    r_factor,
)
from repro.voip.fec import (
    FecDecoder,
    FecEncoder,
    effective_loss,
    k_for_target_loss,
)
from repro.voip.jitterbuffer import (
    PlayoutBuffer,
    optimal_buffer_ms,
    quality_with_buffer,
)

__all__ = [
    "Codec",
    "G711",
    "G729",
    "OPUS_NB",
    "CODECS",
    "RtpPacketizer",
    "RtpPacket",
    "RTP_HEADER_BYTES",
    "EModel",
    "MOS_BANDS",
    "mos_from_r",
    "quality_band",
    "r_factor",
    "FecDecoder",
    "FecEncoder",
    "effective_loss",
    "k_for_target_loss",
    "PlayoutBuffer",
    "optimal_buffer_ms",
    "quality_with_buffer",
]

"""RTP-style packetization of a voice stream.

The Herd client feeds fixed-size codec frames into circuit cells; chaff
packets are "equal to the size and rate of the VoIP codec's packets"
(§3.4.1).  This module produces that stream: an :class:`RtpPacketizer`
emits one :class:`RtpPacket` per codec frame with monotonically
increasing sequence numbers and media timestamps, and can reconstruct
arrival statistics (loss, jitter per RFC 3550) on the receiving side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.voip.codec import Codec

#: Bytes of RTP header per packet (RFC 3550 fixed header, no CSRC).
RTP_HEADER_BYTES = 12


@dataclass(frozen=True)
class RtpPacket:
    """One RTP packet of a voice stream."""

    sequence: int
    timestamp_ms: float
    payload: bytes
    ssrc: int = 0
    marker: bool = False

    @property
    def size(self) -> int:
        return RTP_HEADER_BYTES + len(self.payload)


class RtpPacketizer:
    """Emits the RTP packet stream for one direction of a call."""

    def __init__(self, codec: Codec, ssrc: int = 0,
                 fill_byte: bytes = b"\xa5"):
        if len(fill_byte) != 1:
            raise ValueError("fill_byte must be a single byte")
        self.codec = codec
        self.ssrc = ssrc
        self._fill = fill_byte
        self._sequence = 0

    def next_packet(self) -> RtpPacket:
        """The next packet of synthetic voice payload."""
        pkt = RtpPacket(
            sequence=self._sequence,
            timestamp_ms=self._sequence * self.codec.frame_ms,
            payload=self._fill * self.codec.payload_bytes,
            ssrc=self.ssrc,
            marker=self._sequence == 0,
        )
        self._sequence += 1
        return pkt

    def stream(self, duration_s: float) -> List[RtpPacket]:
        """All packets for ``duration_s`` seconds of talk."""
        count = int(duration_s * self.codec.packets_per_second)
        return [self.next_packet() for _ in range(count)]


class RtpReceiver:
    """Receiver-side statistics: loss and RFC 3550 interarrival jitter."""

    def __init__(self, codec: Codec):
        self.codec = codec
        self._highest_seq: Optional[int] = None
        self._received = 0
        self._jitter_ms = 0.0
        self._last_transit: Optional[float] = None

    def on_packet(self, packet: RtpPacket, arrival_ms: float) -> None:
        """Record a packet arrival at wall-clock ``arrival_ms``."""
        self._received += 1
        if self._highest_seq is None or packet.sequence > self._highest_seq:
            self._highest_seq = packet.sequence
        transit = arrival_ms - packet.timestamp_ms
        if self._last_transit is not None:
            d = abs(transit - self._last_transit)
            # RFC 3550 §6.4.1 jitter estimator.
            self._jitter_ms += (d - self._jitter_ms) / 16.0
        self._last_transit = transit

    @property
    def expected(self) -> int:
        if self._highest_seq is None:
            return 0
        return self._highest_seq + 1

    @property
    def received(self) -> int:
        return self._received

    @property
    def loss_fraction(self) -> float:
        if self.expected == 0:
            return 0.0
        lost = max(0, self.expected - self._received)
        return lost / self.expected

    @property
    def jitter_ms(self) -> float:
        return self._jitter_ms

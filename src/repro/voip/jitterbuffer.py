"""Playout (jitter) buffer model.

The E-Model consumes a single mouth-to-ear delay and loss figure, but a
real receiver trades those off through its playout buffer: frames
arriving later than ``buffer_ms`` after their playout deadline are
*late losses*.  This module models that trade-off:

* :class:`PlayoutBuffer` — replay a sequence of per-frame network
  delays and report late-loss rate plus the effective mouth-to-ear
  delay.
* :func:`optimal_buffer_ms` — the buffer size minimizing E-Model
  impairment for a measured delay distribution, i.e. what an adaptive
  VoIP client converges to.

Used with :mod:`repro.simulation.deployment` / ``wired`` measurements,
this closes the loop from simulated per-packet delays to a principled
MOS, instead of assuming a fixed buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

from repro.voip.codec import Codec, G711
from repro.voip.emodel import EModel, CallQuality


@dataclass
class PlayoutResult:
    """Outcome of replaying a delay series through a buffer."""

    buffer_ms: float
    frames: int
    late_frames: int
    base_delay_ms: float

    @property
    def late_loss(self) -> float:
        if self.frames == 0:
            return 0.0
        return self.late_frames / self.frames

    @property
    def playout_delay_ms(self) -> float:
        """Effective network+buffer delay: frames play at
        (minimum observed delay + buffer)."""
        return self.base_delay_ms + self.buffer_ms


class PlayoutBuffer:
    """A fixed playout buffer anchored at the minimum observed delay.

    Frame *i* (sent at ``i × frame_ms``) is played at
    ``i × frame_ms + base_delay + buffer``; a frame whose network delay
    exceeds ``base_delay + buffer`` misses its slot and is discarded.
    """

    def __init__(self, buffer_ms: float, codec: Codec = G711):
        if buffer_ms < 0:
            raise ValueError("buffer must be non-negative")
        self.buffer_ms = buffer_ms
        self.codec = codec

    def replay(self, delays_ms: Sequence[float]) -> PlayoutResult:
        if not delays_ms:
            return PlayoutResult(self.buffer_ms, 0, 0, 0.0)
        if any(d < 0 for d in delays_ms):
            raise ValueError("delays cannot be negative")
        base = min(delays_ms)
        deadline = base + self.buffer_ms
        late = sum(1 for d in delays_ms if d > deadline)
        return PlayoutResult(self.buffer_ms, len(delays_ms), late, base)


def quality_with_buffer(delays_ms: Sequence[float], buffer_ms: float,
                        network_loss: float = 0.0,
                        codec: Codec = G711) -> CallQuality:
    """E-Model quality for a delay series under a given buffer:
    effective loss = network loss + late loss; delay = playout delay."""
    result = PlayoutBuffer(buffer_ms, codec).replay(delays_ms)
    loss = min(1.0, network_loss
               + (1.0 - network_loss) * result.late_loss)
    model = EModel(codec, jitter_buffer_ms=buffer_ms)
    return model.evaluate(result.base_delay_ms, loss)


def optimal_buffer_ms(delays_ms: Sequence[float],
                      network_loss: float = 0.0,
                      codec: Codec = G711,
                      candidates: Optional[Iterable[float]] = None
                      ) -> Tuple[float, CallQuality]:
    """The buffer size maximizing the R-factor for a delay series.

    Searches the given candidate sizes (default 0–200 ms in 10 ms
    steps).  Returns (buffer_ms, quality at that buffer).
    """
    if not delays_ms:
        raise ValueError("need at least one delay sample")
    if candidates is None:
        candidates = [10.0 * i for i in range(0, 21)]
    best: Optional[Tuple[float, CallQuality]] = None
    for buffer_ms in candidates:
        quality = quality_with_buffer(delays_ms, buffer_ms,
                                      network_loss, codec)
        if best is None or quality.r > best[1].r:
            best = (buffer_ms, quality)
    return best

"""Voice codec models.

Herd's *unit rate* ``u`` is "the payload rate of a single voice call"
(§3.1), evaluated with G.711: 8 KB/s of payload (§4.1.3).  A codec here
is a small value object giving frame timing, payload sizes, and the
E-Model equipment-impairment coefficients from Cole & Rosenbluth
("Voice over IP performance monitoring", CCR 2001), used by
:mod:`repro.voip.emodel` to map packet loss to the Ie impairment.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Codec:
    """A voice codec's traffic and quality parameters.

    Attributes
    ----------
    name:
        Human-readable codec name.
    frame_ms:
        Packetization interval in milliseconds (one RTP packet per
        frame).
    payload_bytes:
        Voice payload bytes per RTP packet.
    ie_gamma1, ie_gamma2, ie_gamma3:
        Coefficients of the loss-impairment curve
        ``Ie = γ1 + γ2 · ln(1 + γ3 · e)`` with ``e`` the end-to-end
        loss fraction (Cole & Rosenbluth Table 1).
    lookahead_ms:
        Encoder lookahead, adds to mouth-to-ear delay.
    """

    name: str
    frame_ms: float
    payload_bytes: int
    ie_gamma1: float
    ie_gamma2: float
    ie_gamma3: float
    lookahead_ms: float = 0.0

    @property
    def packets_per_second(self) -> float:
        return 1000.0 / self.frame_ms

    @property
    def payload_rate_bps(self) -> float:
        """Voice payload rate in bytes/second (the paper's unit rate u)."""
        return self.payload_bytes * self.packets_per_second

    @property
    def bitrate_kbps(self) -> float:
        """Payload bitrate in kbit/s."""
        return self.payload_rate_bps * 8.0 / 1000.0

    def loss_impairment(self, loss_fraction: float) -> float:
        """The E-Model Ie impairment for a given end-to-end loss rate."""
        import math
        if not 0.0 <= loss_fraction <= 1.0:
            raise ValueError("loss fraction must be in [0, 1]")
        return (self.ie_gamma1
                + self.ie_gamma2 * math.log(1.0 + self.ie_gamma3
                                            * loss_fraction))


#: G.711 (PCM, 64 kbit/s): 20 ms frames, 160-byte payloads → 8 KB/s,
#: the rate used throughout the paper's evaluation.
G711 = Codec(name="G.711", frame_ms=20.0, payload_bytes=160,
             ie_gamma1=0.0, ie_gamma2=30.0, ie_gamma3=15.0)

#: G.729a (CS-ACELP, 8 kbit/s): two 10-ms frames per 20-ms packet.
G729 = Codec(name="G.729a", frame_ms=20.0, payload_bytes=20,
             ie_gamma1=11.0, ie_gamma2=40.0, ie_gamma3=10.0,
             lookahead_ms=5.0)

#: An Opus-like narrowband entry (16 kbit/s, 20 ms frames) for
#: experiments beyond the paper's G.711 baseline.
OPUS_NB = Codec(name="Opus-NB", frame_ms=20.0, payload_bytes=40,
                ie_gamma1=0.0, ie_gamma2=20.0, ie_gamma3=10.0,
                lookahead_ms=2.5)

CODECS = {c.name: c for c in (G711, G729, OPUS_NB)}

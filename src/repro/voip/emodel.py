"""The ITU-T G.107 E-Model for VoIP, after Cole & Rosenbluth.

The paper evaluates perceived call quality with the E-Model (§4.3.1):
"an analytic model of call quality defined by the ITU, which calculates
the Rating factor (R-factor) [...] The R-factor ranges from 0 to 100
and directly determines the Mean Opinion Score (MOS) [...] For VoIP
environments, the R-factor is defined in terms of mouth-to-ear delay
and packet loss.  We refer to Cole et al. for more details."

This module implements exactly that reduced model
(Cole & Rosenbluth, SIGCOMM CCR 2001):

    R  = 94.2 − Id(d) − Ie(e)
    Id = 0.024·d + 0.11·(d − 177.3)·H(d − 177.3)       [d in ms]
    Ie = γ1 + γ2 · ln(1 + γ3·e)                         [codec-specific]

with ``H`` the Heaviside step, ``d`` the mouth-to-ear delay and ``e``
the end-to-end loss fraction, and the standard R→MOS conversion

    MOS = 1 + 0.035·R + 7·10⁻⁶·R·(R − 60)·(100 − R).

Fig. 7's horizontal bands (poor/low/medium/high/perfect) correspond to
the conventional R-factor user-satisfaction bands, exposed here as
:data:`MOS_BANDS` / :func:`quality_band`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.voip.codec import Codec, G711

#: Default mouth-to-ear delay components beyond the network (ms):
#: encoding + packetization (one frame) + jitter-buffer + playout.
DEFAULT_CODEC_DELAY_MS = 20.0
DEFAULT_JITTER_BUFFER_MS = 40.0

#: (threshold, band) pairs on the R scale, highest first — the five
#: horizontal bands of Fig. 7.
MOS_BANDS: List[Tuple[float, str]] = [
    (90.0, "perfect"),
    (80.0, "high"),
    (70.0, "medium"),
    (60.0, "low"),
    (0.0, "poor"),
]


def delay_impairment(delay_ms: float) -> float:
    """Id: the delay impairment of the reduced E-Model."""
    if delay_ms < 0:
        raise ValueError("delay must be non-negative")
    impairment = 0.024 * delay_ms
    if delay_ms > 177.3:
        impairment += 0.11 * (delay_ms - 177.3)
    return impairment


def r_factor(one_way_delay_ms: float, loss_fraction: float = 0.0,
             codec: Codec = G711) -> float:
    """The R-factor for a mouth-to-ear delay (ms) and loss fraction."""
    r = 94.2
    r -= delay_impairment(one_way_delay_ms)
    r -= codec.loss_impairment(loss_fraction)
    return max(0.0, min(100.0, r))


def mos_from_r(r: float) -> float:
    """Convert an R-factor to a Mean Opinion Score (1.0–4.5)."""
    if r <= 0:
        return 1.0
    if r >= 100:
        return 4.5
    mos = 1.0 + 0.035 * r + 7e-6 * r * (r - 60.0) * (100.0 - r)
    return max(1.0, min(4.5, mos))


def quality_band(r: float) -> str:
    """Fig. 7's band name for an R-factor."""
    for threshold, band in MOS_BANDS:
        if r >= threshold:
            return band
    return "poor"


@dataclass(frozen=True)
class CallQuality:
    """The E-Model's verdict on one call direction."""

    mouth_to_ear_ms: float
    loss_fraction: float
    r: float
    mos: float
    band: str


class EModel:
    """E-Model evaluator configured for a codec and endpoint delays.

    ``evaluate(network_owd_ms, loss)`` adds the codec and jitter-buffer
    delays to the network's one-way delay — the same accounting as the
    paper's experiment, where volunteers' clients measured end-to-end
    latency and loss every second.
    """

    def __init__(self, codec: Codec = G711,
                 codec_delay_ms: float = DEFAULT_CODEC_DELAY_MS,
                 jitter_buffer_ms: float = DEFAULT_JITTER_BUFFER_MS):
        self.codec = codec
        self.codec_delay_ms = codec_delay_ms
        self.jitter_buffer_ms = jitter_buffer_ms

    def mouth_to_ear_ms(self, network_owd_ms: float) -> float:
        return (network_owd_ms + self.codec_delay_ms
                + self.codec.lookahead_ms + self.jitter_buffer_ms)

    def evaluate(self, network_owd_ms: float,
                 loss_fraction: float = 0.0) -> CallQuality:
        if network_owd_ms < 0:
            raise ValueError("network delay must be non-negative")
        m2e = self.mouth_to_ear_ms(network_owd_ms)
        r = r_factor(m2e, loss_fraction, self.codec)
        return CallQuality(
            mouth_to_ear_ms=m2e,
            loss_fraction=loss_fraction,
            r=r,
            mos=mos_from_r(r),
            band=quality_band(r),
        )

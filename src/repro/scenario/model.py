"""The scenario model: what a composed-adversity run is made of.

Everything here is a frozen dataclass with validation in
``__post_init__`` raising :class:`ScenarioError` with a message that
names the offending field and the allowed values — the loader adds
file/section context on top, so a bad TOML line fails with an error a
user can act on without reading this source.

A scenario's :meth:`Scenario.signature` is a content hash over every
field that affects the run; together with the seed it identifies a
deterministic execution (two runs with equal signatures and engines
produce equal :meth:`~repro.scenario.report.ScenarioReport
.determinism_key`, and the key is *also* pinned across engines).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Optional, Tuple

from repro.core.retry import BackoffPolicy
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec

#: Zone ids of the scenario deployment (shared with the chaos shim).
LIVE_ZONE = "zone-live"
CTL_ZONE = "zone-ctl"

WORKLOAD_KINDS = ("constant", "flash_crowd", "poisson")
ADVERSARY_KINDS = ("none", "wiretap", "sybil_sp")
CHURN_ACTIONS = ("client_join", "client_leave")

#: Fault kinds whose bare targets (``sp-1``) live in the data-plane
#: zone; mix crashes hit the control zone (the live zone's single mix
#: carries the data plane — crashing it would just stop the run).
_LIVE_TARGET_KINDS = frozenset({
    FaultKind.SP_CRASH, FaultKind.LINK_DEGRADE, FaultKind.LINK_PARTITION,
    FaultKind.LOSS_BURST, FaultKind.JITTER_BURST,
})


class ScenarioError(ValueError):
    """A scenario failed validation; the message is actionable."""


@dataclass
class RejoinStats:
    """One orphaned client's backoff-driven re-join.

    Lives in the model (not the engine) so
    :mod:`repro.simulation.chaos` can re-export it without importing
    the engine at module scope — the engine imports the simulation
    package, and that cycle must stay one-way.
    """

    client_id: str
    orphaned_at_s: float
    rejoined_at_s: Optional[float]
    attempts: int
    backoff_s: float

    @property
    def latency_s(self) -> Optional[float]:
        if self.rejoined_at_s is None:
            return None
        return self.rejoined_at_s - self.orphaned_at_s


def expand_target(kind: FaultKind, target: str) -> str:
    """Expand a bare TOML target to a deployment id.

    ``sp-1`` → ``zone-live/sp-1`` for SP/link kinds, ``mix-0`` →
    ``zone-ctl/mix-0`` for mix crashes, ``live``/``ctl`` → the zone id
    for directory stalls; anything containing ``/`` (or ``zone`` for
    OVERLOAD) passes through untouched.
    """
    if "/" in target:
        return target
    if kind is FaultKind.DIRECTORY_STALL:
        return {"live": LIVE_ZONE, "ctl": CTL_ZONE}.get(target, target)
    if kind is FaultKind.OVERLOAD:
        return target  # "zone" (zone-wide) or a full SP id
    if kind is FaultKind.MIX_CRASH:
        return f"{CTL_ZONE}/{target}"
    if kind in _LIVE_TARGET_KINDS:
        return f"{LIVE_ZONE}/{target}"
    return target


@dataclass(frozen=True)
class ZoneShape:
    """Topology of the scenario deployment: one data-plane zone
    (``zone-live``: 1 mix, ``n_sps`` SPs, ``n_clients`` clients on
    ``n_channels`` channels) plus a control zone (``zone-ctl``: 2
    mixes, ``n_direct_clients`` direct clients) that mix-crash,
    directory-stall, and churn events exercise."""

    n_clients: int = 12
    n_channels: int = 6
    n_sps: int = 2
    k: int = 3
    n_direct_clients: int = 6
    client_prefix: str = "live"

    def __post_init__(self):
        if self.n_clients < 2:
            raise ScenarioError("zone.n_clients must be >= 2")
        if self.n_channels < 1:
            raise ScenarioError("zone.n_channels must be >= 1")
        if not 1 <= self.n_sps <= self.n_channels:
            raise ScenarioError(
                f"zone.n_sps must be in [1, n_channels={self.n_channels}]"
                f", not {self.n_sps}")
        if not 1 <= self.k <= self.n_channels:
            raise ScenarioError(
                f"zone.k must be in [1, n_channels={self.n_channels}], "
                f"not {self.k}")
        if self.n_direct_clients < 0:
            raise ScenarioError("zone.n_direct_clients cannot be "
                                "negative")


@dataclass(frozen=True)
class Workload:
    """Call arrival pattern on the live zone.

    * ``constant`` — ``call_pairs`` concurrent calls start at
      ``call_start_s`` and run to the horizon.
    * ``flash_crowd`` — the constant base plus ``spike_pairs`` extra
      calls all arriving at ``spike_at_s`` (a §4.1.6-style load spike).
    * ``poisson`` — seeded Poisson arrivals at ``arrival_rate_per_s``
      between idle clients, each held for ``call_hold_s`` then hung up.
    """

    kind: str = "constant"
    call_pairs: int = 1
    call_start_s: float = 0.5
    spike_at_s: float = 0.0
    spike_pairs: int = 0
    arrival_rate_per_s: float = 0.0
    call_hold_s: float = 0.0

    def __post_init__(self):
        if self.kind not in WORKLOAD_KINDS:
            raise ScenarioError(
                f"workload.kind must be one of {WORKLOAD_KINDS}, not "
                f"{self.kind!r}")
        if self.call_pairs < 0 or self.spike_pairs < 0:
            raise ScenarioError("workload pair counts cannot be "
                                "negative")
        if self.call_start_s < 0 or self.spike_at_s < 0:
            raise ScenarioError("workload times cannot be negative")
        if self.kind == "flash_crowd" and self.spike_pairs < 1:
            raise ScenarioError(
                "workload.kind='flash_crowd' needs spike_pairs >= 1 "
                "(otherwise use kind='constant')")
        if self.kind == "poisson" and self.arrival_rate_per_s <= 0:
            raise ScenarioError(
                "workload.kind='poisson' needs arrival_rate_per_s > 0")
        if self.arrival_rate_per_s < 0 or self.call_hold_s < 0:
            raise ScenarioError("workload rates/holds cannot be "
                                "negative")


@dataclass(frozen=True)
class ChurnEvent:
    """One scheduled join/leave against the control zone's clients."""

    at_s: float
    action: str
    count: int = 1

    def __post_init__(self):
        if self.action not in CHURN_ACTIONS:
            raise ScenarioError(
                f"churn action must be one of {CHURN_ACTIONS}, not "
                f"{self.action!r}")
        if self.at_s < 0:
            raise ScenarioError("churn.at_s cannot be negative")
        if self.count < 1:
            raise ScenarioError("churn.count must be >= 1")


@dataclass(frozen=True)
class Adversary:
    """Adversary selection.

    * ``none`` — no observer.
    * ``wiretap`` — the zone's wire plane is materialized and every
      link tapped by a global passive observer; the observation stream
      (byte-identical across engines) is digested into the report.
    * ``sybil_sp`` — a Sybil campaign: the listed SPs deliver degraded
      service (``loss``/``jitter_ms`` for ``duration_s`` from
      ``at_s``) until the mix's :class:`~repro.core.blacklist
      .SPMonitor` evicts them — compiled into ``LINK_DEGRADE`` faults.
    """

    kind: str = "none"
    targets: Tuple[str, ...] = ()
    at_s: float = 1.0
    duration_s: float = 4.0
    loss: float = 0.30
    jitter_ms: float = 80.0

    def __post_init__(self):
        if self.kind not in ADVERSARY_KINDS:
            raise ScenarioError(
                f"adversary.kind must be one of {ADVERSARY_KINDS}, "
                f"not {self.kind!r}")
        if self.kind == "sybil_sp" and not self.targets:
            raise ScenarioError(
                "adversary.kind='sybil_sp' needs targets = ['sp-1', "
                "...] naming the compromised SPs")
        if self.at_s < 0 or self.duration_s <= 0:
            raise ScenarioError("adversary window must be positive")


@dataclass(frozen=True)
class SurvivalCriteria:
    """What the scenario must demonstrate to pass.

    Unset bounds (``None`` / 0 / empty) are not checked.  Evaluated by
    :meth:`repro.scenario.report.ScenarioReport.criteria_failures`.
    """

    min_call_survival_rate: float = 0.0
    max_dropped_failovers: Optional[int] = None
    require_all_rejoined: bool = False
    max_rejoin_latency_s: Optional[float] = None
    require_shedding: bool = False
    require_blacklist: Tuple[str, ...] = ()
    min_call_legs_established: int = 0

    def __post_init__(self):
        if not 0.0 <= self.min_call_survival_rate <= 1.0:
            raise ScenarioError(
                "criteria.min_call_survival_rate must be in [0, 1]")
        if self.max_dropped_failovers is not None and \
                self.max_dropped_failovers < 0:
            raise ScenarioError(
                "criteria.max_dropped_failovers cannot be negative")
        if self.max_rejoin_latency_s is not None and \
                self.max_rejoin_latency_s <= 0:
            raise ScenarioError(
                "criteria.max_rejoin_latency_s must be positive")
        if self.min_call_legs_established < 0:
            raise ScenarioError(
                "criteria.min_call_legs_established cannot be negative")


def _default_rejoin_policy() -> BackoffPolicy:
    # The chaos scenario's re-join policy (PR 1 acceptance defaults).
    return BackoffPolicy(base_delay_s=0.25, multiplier=2.0,
                         max_delay_s=2.0, max_attempts=8, jitter=0.1)


@dataclass(frozen=True)
class Scenario:
    """One declarative, seed-replayable composed-adversity scenario."""

    name: str
    description: str = ""
    seed: int = 20150817
    horizon_s: float = 6.0
    round_interval_s: float = 0.05
    sample_interval_s: float = 0.25
    zone: ZoneShape = field(default_factory=ZoneShape)
    workload: Workload = field(default_factory=Workload)
    churn: Tuple[ChurnEvent, ...] = ()
    faults: Tuple[FaultSpec, ...] = ()
    adversary: Adversary = field(default_factory=Adversary)
    rejoin_policy: BackoffPolicy = field(
        default_factory=_default_rejoin_policy)
    criteria: SurvivalCriteria = field(
        default_factory=SurvivalCriteria)

    def __post_init__(self):
        if not self.name:
            raise ScenarioError("scenario needs a name")
        if self.horizon_s <= 0:
            raise ScenarioError("horizon_s must be positive")
        if self.round_interval_s <= 0 or self.sample_interval_s <= 0:
            raise ScenarioError("intervals must be positive")
        total_pairs = self.workload.call_pairs + \
            self.workload.spike_pairs
        if 2 * total_pairs > self.zone.n_clients:
            raise ScenarioError(
                f"workload needs {2 * total_pairs} clients for "
                f"{total_pairs} call pair(s) but zone.n_clients is "
                f"{self.zone.n_clients}")

    def validate(self) -> None:
        """Reachability checks for *declared* scenarios: every
        scheduled fault/churn/spike must fire inside the horizon.

        Deliberately not part of ``__post_init__``: truncating a run
        programmatically (``Simulation.run(until=...)``) may legally
        cut events off; a corpus TOML declaring an unreachable event
        is a mistake, so the loader and ``repro scenario validate``
        call this."""
        for spec in self.faults:
            if spec.at_s >= self.horizon_s:
                raise ScenarioError(
                    f"fault {spec.kind.value}@{spec.at_s}s fires after "
                    f"the {self.horizon_s}s horizon — it would never "
                    "run")
        for event in self.churn:
            if event.at_s >= self.horizon_s:
                raise ScenarioError(
                    f"churn event at {event.at_s}s fires after the "
                    f"{self.horizon_s}s horizon")
        if self.workload.kind == "flash_crowd" and \
                self.workload.spike_at_s >= self.horizon_s:
            raise ScenarioError(
                "workload.spike_at_s fires after the horizon")

    # -- derived --------------------------------------------------------------

    def with_horizon(self, horizon_s: float) -> "Scenario":
        return replace(self, horizon_s=horizon_s)

    def plan(self) -> FaultPlan:
        """The scenario's full fault plan: declared faults plus the
        Sybil campaign's compiled degradations."""
        specs = list(self.faults)
        if self.adversary.kind == "sybil_sp":
            for target in self.adversary.targets:
                specs.append(FaultSpec(
                    kind=FaultKind.LINK_DEGRADE,
                    at_s=self.adversary.at_s,
                    target=expand_target(FaultKind.LINK_DEGRADE,
                                         target),
                    duration_s=self.adversary.duration_s,
                    loss=self.adversary.loss,
                    jitter_ms=self.adversary.jitter_ms))
        return FaultPlan(specs)

    def to_dict(self) -> dict:
        """A canonical, JSON-serializable view of every field that
        affects execution (enum kinds flattened to their values)."""
        data = asdict(self)
        data["faults"] = [
            {**asdict(s), "kind": s.kind.value} for s in self.faults]
        return data

    def signature(self) -> str:
        """Content hash identifying the scenario definition."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

"""``repro scenario`` — run, list, and validate the scenario corpus.

* ``run <path>...``       — run scenario files (or every ``*.toml`` in
  a directory) on one or more execution engines; exits nonzero when
  any scenario fails its survival criteria, violates an invariant, or
  produces diverging determinism keys across engines — the CI gate.
* ``list <dir>``          — one line per scenario in a corpus.
* ``validate <path>...``  — load + validate only (no execution);
  nonzero exit on the first actionable error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List

from repro import execution as execution_registry
from repro.scenario.loader import load_corpus, load_scenario
from repro.scenario.model import Scenario, ScenarioError


class _RemovedEngineAlias(argparse.Action):
    """``--execution`` finished its deprecation cycle (PR 9 warned
    for one cycle); using it is now a hard parse error pointing at
    ``--engine``."""

    def __call__(self, parser, namespace, values, option_string=None):
        parser.error(f"{option_string} was removed after its "
                     f"deprecation cycle; use --engine")


def add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    sub = parser.add_subparsers(dest="scenario_command", required=True)

    p_run = sub.add_parser(
        "run", help="run scenarios; nonzero exit on any failure")
    p_run.add_argument("paths", nargs="+",
                       help="scenario .toml files and/or directories "
                       "of them")
    p_run.add_argument("--engine", action="append", dest="engine",
                       choices=execution_registry.plane_names(),
                       default=None,
                       help="engine(s) to run each scenario on "
                       "(repeatable; default: event).  With more than "
                       "one, determinism keys must match across "
                       "engines.")
    p_run.add_argument("--execution", dest="engine",
                       action=_RemovedEngineAlias,
                       nargs=1, metavar="ENGINE",
                       help=argparse.SUPPRESS)
    p_run.add_argument("--shards", type=int, default=None,
                       help="worker-process count for shardable "
                       "engines (batch-v2)")
    p_run.add_argument("--processes", dest="net_processes",
                       action="store_true",
                       help="asyncio engine only: host the UDP "
                       "receive endpoints in a separate worker "
                       "process")
    p_run.add_argument("--report-dir", default=None,
                       help="write one <scenario>.json report "
                       "artifact per scenario here")
    p_run.add_argument("--profile", action="store_true",
                       help="attach the phase profiler; per-phase "
                       "wall time lands in each report artifact's "
                       "perf section (determinism keys unchanged)")

    p_list = sub.add_parser("list", help="list a scenario corpus")
    p_list.add_argument("paths", nargs="*", default=["scenarios"],
                        help="corpus directories (default: scenarios/)")

    p_val = sub.add_parser(
        "validate", help="load and validate scenarios without running")
    p_val.add_argument("paths", nargs="+",
                       help="scenario .toml files and/or directories")


def _collect(paths: List[str]) -> List[Scenario]:
    scenarios: List[Scenario] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            scenarios.extend(load_corpus(path))
        else:
            scenarios.append(load_scenario(path))
    return scenarios


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.scenario.report import run_scenario
    engines = args.engine or ["event"]
    try:
        scenarios = _collect(args.paths)
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report_dir = Path(args.report_dir) if args.report_dir else None
    if report_dir is not None:
        report_dir.mkdir(parents=True, exist_ok=True)
    failures = 0

    def shards_for(engine: str):
        # --shards applies to the shardable engine(s) of the set; a
        # per-cell engine beside them just runs unsharded.
        plane = execution_registry.get_plane(engine)
        return args.shards if plane.supports_shards else None

    def procs_for(engine: str) -> bool:
        # --processes applies to the real-network engine(s) of the
        # set; a simulator engine beside them just runs in-process.
        plane = execution_registry.get_plane(engine)
        return args.net_processes and plane.transport == "udp"

    for scenario in scenarios:
        reports = [run_scenario(scenario, execution=engine,
                                shards=shards_for(engine),
                                net_processes=procs_for(engine),
                                profile=args.profile)
                   for engine in engines]
        keys = {r.determinism_key for r in reports}
        determinism_ok = len(keys) == 1
        passed = determinism_ok and all(r.passed for r in reports)
        failures += 0 if passed else 1
        verdict = "ok" if passed else "FAIL"
        engine_label = "/".join(engines)
        head = reports[0]
        # The determinism key is a public content hash, not key
        # material (HL004's taint source excludes determinism_*).
        fingerprint = head.determinism_key[:12]
        print(f"{verdict:4s} {scenario.name:24s} [{engine_label}] "
              f"survival={head.survival['call_survival_rate']:.2f} "
              f"legs={head.survival['call_legs_established']} "
              f"key={fingerprint}")
        if not determinism_ok:
            print("     determinism keys diverge across engines:",
                  file=sys.stderr)
            for report in reports:
                fingerprint = report.determinism_key
                print(f"       {report.engine}: {fingerprint}",
                      file=sys.stderr)
        for report in reports:
            for failure in report.criteria_failures:
                print(f"     [{report.engine}] criteria: "
                      f"{failure}", file=sys.stderr)
            for violation in report.invariant_violations:
                print(f"     [{report.engine}] invariant: "
                      f"{violation}", file=sys.stderr)
        if report_dir is not None:
            artifact = {
                "scenario": scenario.name,
                "scenario_signature": scenario.signature(),
                "engines": {r.engine: r.to_artifact_dict()
                            for r in reports},
                "determinism_match": determinism_ok,
                "passed": passed,
            }
            out = report_dir / f"{scenario.name}.json"
            out.write_text(json.dumps(artifact, indent=2,
                                      sort_keys=True) + "\n")
    total = len(scenarios)
    print(f"{total - failures}/{total} scenario(s) passed on "
          f"{'/'.join(engines)}")
    return 1 if failures else 0


def _cmd_list(args: argparse.Namespace) -> int:
    try:
        scenarios = _collect(args.paths)
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for scenario in scenarios:
        axes = []
        if scenario.workload.kind != "constant":
            axes.append(scenario.workload.kind)
        if scenario.churn:
            axes.append(f"churn×{len(scenario.churn)}")
        if scenario.faults:
            axes.append(
                "faults:" + ",".join(sorted(
                    {s.kind.value for s in scenario.faults})))
        if scenario.adversary.kind != "none":
            axes.append(f"adversary:{scenario.adversary.kind}")
        print(f"{scenario.name:24s} seed={scenario.seed} "
              f"horizon={scenario.horizon_s:g}s "
              f"{'; '.join(axes) or 'baseline'}")
        if scenario.description:
            print(f"{'':24s} {scenario.description}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    try:
        scenarios = _collect(args.paths)
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for scenario in scenarios:
        print(f"ok   {scenario.name:24s} "
              f"signature={scenario.signature()[:12]}")
    return 0


def run(args: argparse.Namespace) -> int:
    handler = {"run": _cmd_run, "list": _cmd_list,
               "validate": _cmd_validate}[args.scenario_command]
    return handler(args)

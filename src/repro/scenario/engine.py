"""Executing a :class:`~repro.scenario.model.Scenario`.

:func:`execute` compiles a scenario onto the chaos substrate — one
live data-plane zone plus a control zone on a seeded
:class:`~repro.netsim.engine.EventLoop` — and returns a
:class:`ScenarioOutcome`.  The base path (constant workload, no churn,
no adversary) is *ordering-identical* to the original ``run_chaos``
body: every event the chaos scenario scheduled is scheduled here at
the same virtual time with the same rng interleaving, which is what
lets ``run_chaos`` route through this engine while keeping its
determinism keys stable.  The composition axes (flash crowds, Poisson
arrivals, churn, overload windows, wiretaps) only add *new* scheduled
events when configured, so an unconfigured axis cannot perturb a run.

Graceful degradation is wired here: ``OVERLOAD`` windows install a
:class:`~repro.core.shedding.LoadShedder` on the zone (constant wire
rate, client backpressure), and ``DIRECTORY_STALL`` windows make joins
fail with :class:`~repro.core.directory.DirectoryStalledError` so
churn joins and orphan re-joins back off through their
:class:`~repro.core.retry.LoopRetry` policies instead of spinning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import execution as execution_registry
from repro.core.blacklist import SPMonitor
from repro.core.callmanager import CallState, FailoverRecord
from repro.core.invariants import sp_state_is_activity_free
from repro.core.join import join_zone
from repro.core.retry import LoopRetry
from repro.faults.injector import FaultInjector, TimelineEntry
from repro.faults.plan import FaultSpec
from repro.netsim.engine import EventLoop
from repro.scenario.model import (
    CTL_ZONE,
    LIVE_ZONE,
    RejoinStats,
    Scenario,
)
from repro.simulation.churn import fail_superpeer
from repro.simulation.live import LiveZone
from repro.simulation.testbed import build_testbed
from repro.workload.arrivals import poisson_arrival_times


@dataclass
class ScenarioOutcome:
    """Everything one scenario execution produced (engine-level; the
    :class:`~repro.scenario.report.ScenarioReport` wraps this with
    metrics, criteria evaluation, and the determinism key)."""

    plan_signature: str
    timeline: List[TimelineEntry]
    events_processed: int
    rounds_run: int
    call_legs_established: int
    failovers: List[FailoverRecord]
    rejoins: List[RejoinStats]
    #: client id → voice cells received *after* its leg failed over.
    post_failover_voice: Dict[str, int]
    blacklisted_sps: Tuple[str, ...]
    #: graceful-degradation accounting (overload windows).
    shed_stats: Dict[str, int] = field(default_factory=dict)
    #: workload accounting (constant pairs + spikes + Poisson).
    calls_started: int = 0
    calls_completed: int = 0
    calls_blocked: int = 0
    #: churn accounting against the control zone.
    churn_stats: Dict[str, int] = field(default_factory=dict)
    #: the wiretap adversary's view (None without a wiretap):
    #: ``observations`` are engine-invariant; the ``*_processed``
    #: cost stats beside them are allowed to differ per engine.
    wiretap: Optional[Dict[str, object]] = None
    #: host-network side channel of the real-network plane (None on
    #: simulator transports): datagram accounting and wall-clock
    #: latency.  Like ``perf``, never part of any determinism
    #: surface — :func:`~repro.scenario.report.outcome_fingerprint`
    #: must not fold it in.
    net: Optional[Dict[str, object]] = None
    invariant_violations: Tuple[str, ...] = ()

    # -- derived survival metrics (shared with ChaosReport) ------------------

    @property
    def survived_failovers(self) -> List[FailoverRecord]:
        return [r for r in self.failovers if r.survived]

    @property
    def dropped_failovers(self) -> List[FailoverRecord]:
        return [r for r in self.failovers if not r.survived]

    @property
    def call_survival_rate(self) -> float:
        if not self.failovers:
            return 1.0
        return len(self.survived_failovers) / len(self.failovers)

    @property
    def all_rejoined(self) -> bool:
        return bool(self.rejoins) and \
            all(r.rejoined_at_s is not None for r in self.rejoins)

    @property
    def rejoin_latencies(self) -> List[float]:
        return [r.latency_s for r in self.rejoins
                if r.latency_s is not None]

    @property
    def cells_deferred(self) -> int:
        return self.shed_stats.get("cells_deferred", 0)

    @property
    def shedding_engaged(self) -> bool:
        return self.cells_deferred > 0

    @property
    def mid_call_failover_demonstrated(self) -> bool:
        return any(self.post_failover_voice.get(cid, 0) > 0
                   for cid in self.post_failover_voice)


def _sp_scope_of(spec: FaultSpec) -> Optional[str]:
    """An OVERLOAD spec's shedding scope: zone-wide (``zone`` or the
    zone id) or one SP."""
    if spec.target in ("zone", LIVE_ZONE):
        return None
    return spec.target


def execute(scenario: Scenario, *, execution: str = "event",
            shards: Optional[int] = None,
            net_processes: Optional[bool] = None,
            scope=None, profiler=None) -> ScenarioOutcome:
    """Run one scenario end to end on the given execution engine
    (any name registered with :mod:`repro.execution`; ``shards``
    applies to shardable engines like ``batch-v2``,
    ``net_processes`` to the real-network ``asyncio`` plane).

    ``scope`` is an optional :class:`repro.obs.instrument.Herdscope`
    wired into the loop, zone, and injector (metrics + traces).
    ``profiler`` is an optional :class:`repro.obs.prof.profiler
    .PhaseProfiler` attached to the loop and zone; its output is a
    host-time side channel that never feeds the outcome (so the
    determinism key is byte-identical with or without it).
    """
    plane_spec = execution_registry.resolve(execution, shards)
    shape = scenario.zone
    plan = scenario.plan()
    loop = EventLoop(seed=scenario.seed)
    bed = build_testbed([(LIVE_ZONE, "dc-live", 1),
                         (CTL_ZONE, "dc-ctl", 2)], seed=scenario.seed)
    zone = LiveZone(n_clients=shape.n_clients,
                    n_channels=shape.n_channels, k=shape.k,
                    n_sps=shape.n_sps, seed=scenario.seed, bed=bed,
                    zone_id=LIVE_ZONE,
                    client_prefix=shape.client_prefix,
                    execution=execution, shards=shards,
                    net_processes=net_processes)
    for i in range(shape.n_direct_clients):
        bed.add_client(f"ctl-{i}", CTL_ZONE)

    monitor = SPMonitor()
    injector = FaultInjector(bed, loop, monitor=monitor,
                             sp_full_leave=False,
                             sample_interval_s=scenario.sample_interval_s)
    if scope is not None:
        scope.attach_loop(loop)
        scope.attach_live_zone(zone)
        scope.attach_injector(injector)
    if profiler is not None:
        profiler.attach_loop(loop)
        profiler.attach_zone(zone)

    rejoins: List[RejoinStats] = []
    post_failover_voice: Dict[str, int] = {}
    voice_snapshot: Dict[str, int] = {}
    counts = {"started": 0, "completed": 0, "blocked": 0}
    churn_stats = {"joined": 0, "left": 0, "join_gave_up": 0}

    def note_failovers(records: List[FailoverRecord]) -> None:
        for record in records:
            live = zone._by_numeric.get(record.numeric_id)
            client_id = live.client.client_id if live else "?"
            if record.survived:
                injector.record(
                    "failover", "call", client_id,
                    f"ch{record.old_channel}->ch{record.new_channel}")
                voice_snapshot[client_id] = \
                    len(zone.received_by(client_id))
            else:
                injector.record("dropped", "call", client_id,
                                f"ch{record.old_channel} lost, no free "
                                "surviving channel")

    # -- SP crash → mid-call failover on the live data plane ----------------
    def on_sp_crash(spec: FaultSpec, affected: List[str]) -> None:
        sp = injector.failed_sps.get(spec.target)
        if sp is None or not spec.target.startswith(LIVE_ZONE + "/"):
            return
        note_failovers(zone.absorb_superpeer_failure(sp))

    injector.on_sp_crash.append(on_sp_crash)

    # -- degraded SP → blacklisted by the monitor → same failover path ------
    def on_blacklist(sp_id: str) -> None:
        injector.record("blacklisted", "sp_quality", sp_id,
                        "loss/jitter standard violated")
        sp = bed.superpeers.get(sp_id)
        if sp is None or not sp_id.startswith(LIVE_ZONE + "/"):
            return
        fail_superpeer(bed, sp_id, full_leave=False)
        note_failovers(zone.absorb_superpeer_failure(sp))

    monitor.on_blacklist_sp = on_blacklist

    # -- mix crash → orphans re-join through surviving mixes with backoff ---
    def on_mix_crash(spec: FaultSpec, orphans: List[str]) -> None:
        orphaned_at = loop.now
        for cid in orphans:
            if cid in zone.clients:
                continue  # live-zone clients are not re-joined directly
            client = bed.clients[cid]

            def rejoin(client=client):
                return join_zone(client,
                                 bed.directories[client.zone_id],
                                 bed.mixes, rng=bed.rng)

            stats = RejoinStats(client_id=cid,
                                orphaned_at_s=orphaned_at,
                                rejoined_at_s=None, attempts=0,
                                backoff_s=0.0)
            rejoins.append(stats)

            def finish(task: LoopRetry, stats=stats) -> None:
                stats.attempts = task.attempts
                stats.backoff_s = task.backoff_s
                if task.succeeded:
                    stats.rejoined_at_s = task.finished_at
                    injector.record("rejoined", "client",
                                    stats.client_id,
                                    f"attempts={task.attempts}")
                else:
                    injector.record("gave_up", "client",
                                    stats.client_id,
                                    f"attempts={task.attempts}")

            LoopRetry(loop=loop, fn=rejoin,
                      policy=scenario.rejoin_policy, rng=bed.rng,
                      retry_on=(KeyError, RuntimeError, ValueError),
                      on_success=finish, on_give_up=finish,
                      start_delay_s=scenario.rejoin_policy.base_delay_s
                      / 2, label=cid)

    injector.on_mix_crash.append(on_mix_crash)

    # -- OVERLOAD window → load shedding + client backpressure --------------
    def on_overload(spec: FaultSpec, opening: bool) -> None:
        if opening:
            zone.set_overload(spec.capacity_fraction,
                              sp_id=_sp_scope_of(spec))
        else:
            shedder = zone.shedder
            if shedder is not None:
                injector.record(
                    "shed", spec.kind.value, spec.target,
                    f"admitted={shedder.cells_admitted} "
                    f"deferred={shedder.cells_deferred}")
            zone.clear_overload()

    injector.on_overload.append(on_overload)

    # -- the passive adversary ----------------------------------------------
    # The real-network plane always materializes the wire (the
    # datagrams are the transport); simulator planes only pay for a
    # wire image when the adversary taps it.
    fabric = zone.attach_wire() \
        if scenario.adversary.kind == "wiretap" \
        or plane_spec.transport == "udp" else None

    plan.compile_onto(loop, injector)

    # -- the data plane: rounds as periodic events, calls as one-shots ------
    granted: set = set()

    def tick() -> None:
        for live in zone.clients.values():
            agent = live.agent
            if agent.state is CallState.IN_CALL:
                granted.add(live.client.client_id)
                zone.say(live.client.client_id,
                         f"v{zone.round_index}".encode())
        zone.step()

    zone_handle = loop.schedule_periodic(scenario.round_interval_s,
                                         tick, start_delay=0.0)

    workload = scenario.workload
    prefix = shape.client_prefix

    def start_pair(caller: str, callee: str) -> None:
        zone.start_call(caller, callee)
        counts["started"] += 1

    pairs = [(f"{prefix}-{2 * i}", f"{prefix}-{2 * i + 1}")
             for i in range(workload.call_pairs)]
    for caller, callee in pairs:
        loop.schedule_at(workload.call_start_s,
                         lambda c=caller, p=callee: start_pair(c, p))

    # -- composition axes: each schedules events only when configured ------
    if workload.kind == "flash_crowd":
        base = workload.call_pairs
        spike = [(f"{prefix}-{2 * (base + i)}",
                  f"{prefix}-{2 * (base + i) + 1}")
                 for i in range(workload.spike_pairs)]
        for caller, callee in spike:
            loop.schedule_at(
                workload.spike_at_s,
                lambda c=caller, p=callee: start_pair(c, p))

    if workload.kind == "poisson":
        def hang_up(client_id: str) -> None:
            live = zone.clients[client_id]
            if live.numeric_id in zone.peers:
                zone.hang_up(client_id)
                counts["completed"] += 1

        def poisson_call() -> None:
            idle = [cid for cid in sorted(zone.clients)
                    if zone.clients[cid].agent.state is CallState.IDLE
                    and zone.clients[cid].numeric_id not in zone.peers]
            if len(idle) < 2:
                counts["blocked"] += 1
                injector.record("blocked", "call", "poisson",
                                "no idle client pair")
                return
            caller, callee = idle[0], idle[1]
            start_pair(caller, callee)
            if workload.call_hold_s > 0:
                loop.schedule(workload.call_hold_s,
                              lambda c=caller: hang_up(c))

        for t in poisson_arrival_times(workload.arrival_rate_per_s,
                                       workload.call_start_s,
                                       scenario.horizon_s,
                                       scenario.seed):
            loop.schedule_at(t, poisson_call)

    if scenario.churn:
        next_ctl = {"index": shape.n_direct_clients}

        def churn_join(n: int) -> None:
            for _ in range(n):
                cid = f"ctl-{next_ctl['index']}"
                next_ctl["index"] += 1

                def join(cid=cid):
                    return bed.add_client(cid, CTL_ZONE)

                def finish(task: LoopRetry, cid=cid) -> None:
                    if task.succeeded:
                        churn_stats["joined"] += 1
                        injector.record("churn_joined", "client", cid,
                                        f"attempts={task.attempts}")
                    else:
                        churn_stats["join_gave_up"] += 1
                        injector.record("churn_gave_up", "client", cid,
                                        f"attempts={task.attempts}")

                LoopRetry(loop=loop, fn=join,
                          policy=scenario.rejoin_policy, rng=bed.rng,
                          retry_on=(KeyError, RuntimeError,
                                    ValueError),
                          on_success=finish, on_give_up=finish,
                          start_delay_s=0.0, label=cid)

        def churn_leave(n: int) -> None:
            joined = [cid for cid in sorted(bed.clients)
                      if cid.startswith("ctl-")
                      and bed.clients[cid].joined]
            for cid in joined[:n]:
                bed.clients[cid].leave()
                churn_stats["left"] += 1
                injector.record("churn_left", "client", cid)

        for event in scenario.churn:
            action = churn_join if event.action == "client_join" \
                else churn_leave
            loop.schedule_at(event.at_s,
                             lambda a=action, n=event.count: a(n))

    loop.run(until=scenario.horizon_s)
    zone_handle.cancel()
    injector.teardown()
    loop.cancel_all()

    # Fold a still-open overload window (window extends past the
    # horizon) so shed_stats is complete.
    if zone.shedder is not None:
        zone.clear_overload()

    for client_id, before in voice_snapshot.items():
        post_failover_voice[client_id] = \
            len(zone.received_by(client_id)) - before

    violations = []
    for sp in zone.sps:
        if not sp_state_is_activity_free(sp):
            violations.append(
                f"I8: SP {sp.sp_id} state encodes call activity")
    for earlier, later in zip(injector.timeline,
                              injector.timeline[1:]):
        if later.time_s < earlier.time_s:
            violations.append(
                "timeline: virtual time went backwards at "
                f"{later.action}/{later.target}")
            break

    wiretap = None
    net = None
    if fabric is not None:
        # Sharded engines defer tap fan-out; the merge restores the
        # canonical observation order (no-op otherwise).
        fabric.finalize()
        if scenario.adversary.kind == "wiretap":
            wiretap = {
                "observations": [(o.time, o.size, o.src, o.dst)
                                 for o in fabric.observer.observations],
                "cells_carried": fabric.cells_carried,
                "wire_events_processed": fabric.events_processed,
            }
        net = fabric.net_report()

    return ScenarioOutcome(
        plan_signature=plan.signature(),
        timeline=list(injector.timeline),
        events_processed=loop.events_processed,
        rounds_run=zone.round_index,
        call_legs_established=len(granted),
        failovers=list(zone.manager.failovers),
        rejoins=rejoins,
        post_failover_voice=post_failover_voice,
        blacklisted_sps=tuple(sorted(monitor.blacklisted_sps)),
        shed_stats=dict(zone.shed_stats),
        calls_started=counts["started"],
        calls_completed=counts["completed"],
        calls_blocked=counts["blocked"],
        churn_stats=churn_stats,
        wiretap=wiretap,
        net=net,
        invariant_violations=tuple(violations),
    )

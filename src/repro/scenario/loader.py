"""Loading scenarios from ``scenarios/*.toml``.

The loader is strict: unknown keys are rejected (with a did-you-mean
suggestion), every value is type-checked before it reaches the model,
and all errors carry ``file → section → key`` context so a broken
corpus entry fails CI with a message that points at the exact line of
TOML to fix.

``tomllib`` is stdlib from Python 3.11; the package still claims 3.9
compatibility, so the import is gated and loading (only loading — the
programmatic API works everywhere) raises an actionable
:class:`~repro.scenario.model.ScenarioError` on older interpreters.
"""

from __future__ import annotations

import difflib
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple, Union

try:  # pragma: no cover - exercised only on Python < 3.11
    import tomllib
except ModuleNotFoundError:  # pragma: no cover
    tomllib = None

from repro.core.retry import BackoffPolicy
from repro.faults.plan import FaultKind, FaultSpec
from repro.scenario.model import (
    Adversary,
    ChurnEvent,
    Scenario,
    ScenarioError,
    SurvivalCriteria,
    Workload,
    ZoneShape,
    expand_target,
)

_PathLike = Union[str, Path]


def _suggest(key: str, known: Sequence[str]) -> str:
    close = difflib.get_close_matches(key, known, n=1)
    return f" (did you mean {close[0]!r}?)" if close else ""


_REQUIRED = object()


class _Section:
    """One TOML table with context-carrying accessors."""

    def __init__(self, data: Dict[str, Any], where: str):
        self.data = dict(data)
        self.where = where

    def fail(self, message: str) -> "ScenarioError":
        return ScenarioError(f"{self.where}: {message}")

    def check_keys(self, known: Sequence[str]) -> None:
        for key in self.data:
            if key not in known:
                raise self.fail(
                    f"unknown key {key!r}{_suggest(key, known)}; "
                    f"allowed keys: {', '.join(sorted(known))}")

    def take(self, key: str, kind, default=_REQUIRED):
        """Pop ``key``, type-checked against ``kind`` (bool before int
        — bools are ints in Python and we refuse the pun)."""
        if key not in self.data:
            if default is _REQUIRED:
                raise self.fail(f"missing required key {key!r}")
            return default
        value = self.data[key]
        if kind is float and isinstance(value, int) and \
                not isinstance(value, bool):
            value = float(value)
        if isinstance(value, bool) and kind is not bool:
            raise self.fail(f"{key!r} must be {kind.__name__}, "
                            f"got a boolean")
        if not isinstance(value, kind):
            raise self.fail(
                f"{key!r} must be {kind.__name__}, got "
                f"{type(value).__name__} ({value!r})")
        return value

    def take_str_list(self, key: str, default=()) -> Tuple[str, ...]:
        value = self.data.get(key, None)
        if value is None:
            return tuple(default)
        if not isinstance(value, list) or \
                not all(isinstance(v, str) for v in value):
            raise self.fail(f"{key!r} must be a list of strings")
        return tuple(value)

    def subtables(self, key: str) -> List[Dict[str, Any]]:
        value = self.data.get(key, [])
        if not isinstance(value, list) or \
                not all(isinstance(v, dict) for v in value):
            raise self.fail(f"[[{key}]] must be an array of tables")
        return value


def _parse_zone(data: Dict[str, Any], where: str) -> ZoneShape:
    sec = _Section(data, where)
    sec.check_keys(["n_clients", "n_channels", "n_sps", "k",
                    "n_direct_clients", "client_prefix"])
    try:
        return ZoneShape(
            n_clients=sec.take("n_clients", int, 12),
            n_channels=sec.take("n_channels", int, 6),
            n_sps=sec.take("n_sps", int, 2),
            k=sec.take("k", int, 3),
            n_direct_clients=sec.take("n_direct_clients", int, 6),
            client_prefix=sec.take("client_prefix", str, "live"))
    except ScenarioError as exc:
        raise sec.fail(str(exc)) from None


def _parse_workload(data: Dict[str, Any], where: str) -> Workload:
    sec = _Section(data, where)
    sec.check_keys(["kind", "call_pairs", "call_start_s", "spike_at_s",
                    "spike_pairs", "arrival_rate_per_s", "call_hold_s"])
    try:
        return Workload(
            kind=sec.take("kind", str, "constant"),
            call_pairs=sec.take("call_pairs", int, 1),
            call_start_s=sec.take("call_start_s", float, 0.5),
            spike_at_s=sec.take("spike_at_s", float, 0.0),
            spike_pairs=sec.take("spike_pairs", int, 0),
            arrival_rate_per_s=sec.take("arrival_rate_per_s", float,
                                        0.0),
            call_hold_s=sec.take("call_hold_s", float, 0.0))
    except ScenarioError as exc:
        raise sec.fail(str(exc)) from None


def _parse_churn(tables: List[Dict[str, Any]],
                 where: str) -> Tuple[ChurnEvent, ...]:
    events = []
    for i, data in enumerate(tables):
        sec = _Section(data, f"{where}[{i}]")
        sec.check_keys(["at_s", "action", "count"])
        try:
            events.append(ChurnEvent(
                at_s=sec.take("at_s", float),
                action=sec.take("action", str),
                count=sec.take("count", int, 1)))
        except ScenarioError as exc:
            raise sec.fail(str(exc)) from None
    return tuple(events)


def _parse_fault(data: Dict[str, Any], where: str) -> FaultSpec:
    sec = _Section(data, where)
    sec.check_keys(["kind", "at_s", "target", "duration_s",
                    "detection_delay_s", "loss", "jitter_ms",
                    "capacity_fraction"])
    kind_name = sec.take("kind", str)
    try:
        kind = FaultKind(kind_name)
    except ValueError:
        allowed = [k.value for k in FaultKind]
        raise sec.fail(
            f"unknown fault kind {kind_name!r}"
            f"{_suggest(kind_name, allowed)}; allowed kinds: "
            f"{', '.join(allowed)}") from None
    duration = sec.take("duration_s", float, None) \
        if "duration_s" in sec.data else None
    try:
        return FaultSpec(
            kind=kind,
            at_s=sec.take("at_s", float),
            target=expand_target(kind, sec.take("target", str)),
            duration_s=duration,
            detection_delay_s=sec.take("detection_delay_s", float, 0.0),
            loss=sec.take("loss", float, 0.3),
            jitter_ms=sec.take("jitter_ms", float, 50.0),
            capacity_fraction=sec.take("capacity_fraction", float, 0.5))
    except (ScenarioError, ValueError) as exc:
        raise sec.fail(str(exc)) from None


def _parse_adversary(data: Dict[str, Any], where: str) -> Adversary:
    sec = _Section(data, where)
    sec.check_keys(["kind", "targets", "at_s", "duration_s", "loss",
                    "jitter_ms"])
    try:
        return Adversary(
            kind=sec.take("kind", str, "none"),
            targets=sec.take_str_list("targets"),
            at_s=sec.take("at_s", float, 1.0),
            duration_s=sec.take("duration_s", float, 4.0),
            loss=sec.take("loss", float, 0.30),
            jitter_ms=sec.take("jitter_ms", float, 80.0))
    except ScenarioError as exc:
        raise sec.fail(str(exc)) from None


def _parse_criteria(data: Dict[str, Any],
                    where: str) -> SurvivalCriteria:
    sec = _Section(data, where)
    sec.check_keys(["min_call_survival_rate", "max_dropped_failovers",
                    "require_all_rejoined", "max_rejoin_latency_s",
                    "require_shedding", "require_blacklist",
                    "min_call_legs_established"])
    max_dropped = sec.take("max_dropped_failovers", int, None) \
        if "max_dropped_failovers" in sec.data else None
    max_latency = sec.take("max_rejoin_latency_s", float, None) \
        if "max_rejoin_latency_s" in sec.data else None
    try:
        return SurvivalCriteria(
            min_call_survival_rate=sec.take("min_call_survival_rate",
                                            float, 0.0),
            max_dropped_failovers=max_dropped,
            require_all_rejoined=sec.take("require_all_rejoined", bool,
                                          False),
            max_rejoin_latency_s=max_latency,
            require_shedding=sec.take("require_shedding", bool, False),
            require_blacklist=sec.take_str_list("require_blacklist"),
            min_call_legs_established=sec.take(
                "min_call_legs_established", int, 0))
    except ScenarioError as exc:
        raise sec.fail(str(exc)) from None


def _parse_rejoin(data: Dict[str, Any], where: str) -> BackoffPolicy:
    sec = _Section(data, where)
    sec.check_keys(["base_delay_s", "multiplier", "max_delay_s",
                    "max_attempts", "jitter"])
    try:
        return BackoffPolicy(
            base_delay_s=sec.take("base_delay_s", float, 0.25),
            multiplier=sec.take("multiplier", float, 2.0),
            max_delay_s=sec.take("max_delay_s", float, 2.0),
            max_attempts=sec.take("max_attempts", int, 8),
            jitter=sec.take("jitter", float, 0.1))
    except ValueError as exc:
        raise sec.fail(str(exc)) from None


_TOP_KEYS = ["scenario", "zone", "workload", "churn", "fault",
             "adversary", "rejoin", "criteria"]
_SCENARIO_KEYS = ["name", "description", "seed", "horizon_s",
                  "round_interval_s", "sample_interval_s"]


def parse_scenario(data: Dict[str, Any],
                   where: str = "<scenario>") -> Scenario:
    """Build a validated :class:`Scenario` from decoded TOML data."""
    top = _Section(data, where)
    top.check_keys(_TOP_KEYS)
    head = _Section(top.take("scenario", dict, {}),
                    f"{where}: [scenario]")
    head.check_keys(_SCENARIO_KEYS)
    try:
        scenario = Scenario(
            name=head.take("name", str),
            description=head.take("description", str, ""),
            seed=head.take("seed", int, 20150817),
            horizon_s=head.take("horizon_s", float, 6.0),
            round_interval_s=head.take("round_interval_s", float, 0.05),
            sample_interval_s=head.take("sample_interval_s", float,
                                        0.25),
            zone=_parse_zone(top.take("zone", dict, {}),
                             f"{where}: [zone]"),
            workload=_parse_workload(top.take("workload", dict, {}),
                                     f"{where}: [workload]"),
            churn=_parse_churn(top.subtables("churn"),
                               f"{where}: [[churn]]"),
            faults=tuple(
                _parse_fault(t, f"{where}: [[fault]][{i}]")
                for i, t in enumerate(top.subtables("fault"))),
            adversary=_parse_adversary(
                top.take("adversary", dict, {}),
                f"{where}: [adversary]"),
            rejoin_policy=_parse_rejoin(top.take("rejoin", dict, {}),
                                        f"{where}: [rejoin]"),
            criteria=_parse_criteria(top.take("criteria", dict, {}),
                                     f"{where}: [criteria]"))
        scenario.validate()
        return scenario
    except ScenarioError as exc:
        msg = str(exc)
        if not msg.startswith(where):
            msg = f"{where}: {msg}"
        raise ScenarioError(msg) from None


def load_scenario(path: _PathLike) -> Scenario:
    """Load and validate one ``*.toml`` scenario file."""
    if tomllib is None:
        raise ScenarioError(
            "loading TOML scenarios needs Python >= 3.11 (stdlib "
            "tomllib); construct Scenario objects programmatically on "
            "older interpreters")
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise ScenarioError(f"{path}: cannot read scenario file: "
                            f"{exc}") from None
    try:
        data = tomllib.loads(raw.decode("utf-8"))
    except tomllib.TOMLDecodeError as exc:
        raise ScenarioError(f"{path}: invalid TOML: {exc}") from None
    return parse_scenario(data, where=str(path))


def load_corpus(directory: _PathLike,
                pattern: str = "*.toml") -> List[Scenario]:
    """Load every scenario under ``directory`` (sorted by filename so
    corpus order is stable), failing on the first invalid file."""
    directory = Path(directory)
    if not directory.is_dir():
        raise ScenarioError(f"{directory}: not a scenario directory")
    paths = sorted(directory.glob(pattern))
    if not paths:
        raise ScenarioError(
            f"{directory}: no {pattern} scenario files found")
    scenarios = [load_scenario(p) for p in paths]
    names = [s.name for s in scenarios]
    dupes = {n for n in names if names.count(n) > 1}
    if dupes:
        raise ScenarioError(
            f"{directory}: duplicate scenario names: "
            f"{', '.join(sorted(dupes))}")
    return scenarios

"""The declarative scenario engine (ROADMAP item 4).

A :class:`Scenario` composes the four adversity axes Herd's
availability claims (§3.1, §3.5, §3.6.4) must survive *together*:

* **workload** — call arrival patterns (constant pairs, flash-crowd
  spikes, seeded Poisson arrivals with hold times),
* **topology/churn** — client join/leave schedules against the
  control zone,
* **faults** — every :class:`~repro.faults.plan.FaultKind`, including
  the graceful-degradation kinds ``OVERLOAD`` (SP load shedding +
  client backpressure) and ``DIRECTORY_STALL`` (join backpressure via
  retry policies),
* **adversary** — passive wiretap or a Sybil SP-degradation campaign
  against the blacklist machinery.

Scenarios are loaded from ``scenarios/*.toml``
(:func:`~repro.scenario.loader.load_scenario`), validated with
actionable errors, and compiled onto the
:class:`~repro.api.Simulation` facade so each runs on both execution
engines with a pinned ``determinism_key``
(:class:`~repro.scenario.report.ScenarioReport`).  ``repro scenario
run|list|validate`` drives the corpus; CI smoke-runs it on every PR.
"""

from repro.scenario.model import (
    Adversary,
    ChurnEvent,
    RejoinStats,
    Scenario,
    ScenarioError,
    SurvivalCriteria,
    Workload,
    ZoneShape,
)
from repro.scenario.loader import load_corpus, load_scenario
from repro.scenario.engine import ScenarioOutcome, execute
from repro.scenario.report import ScenarioReport, run_scenario

__all__ = [
    "Adversary",
    "ChurnEvent",
    "RejoinStats",
    "Scenario",
    "ScenarioError",
    "ScenarioOutcome",
    "ScenarioReport",
    "SurvivalCriteria",
    "Workload",
    "ZoneShape",
    "execute",
    "load_corpus",
    "load_scenario",
    "run_scenario",
]

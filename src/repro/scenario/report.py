"""Scenario reports: survival metrics, criteria gating, determinism.

:class:`ScenarioReport` extends the facade's
:class:`~repro.api.RunReport` (same metrics snapshot / trace surface)
with the scenario's survival metrics, the evaluated
:class:`~repro.scenario.model.SurvivalCriteria`, and a
``determinism_key`` — a content hash over every engine-invariant part
of the outcome.  The key is the §9/§10 contract in one string: the
same scenario and seed produce the same key on every registered
engine (``event``, ``batch``, ``batch-v2`` at any shard count), and
the CLI / CI corpus job fails when they diverge.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional

from repro.api import RunReport, SimConfig, Simulation
from repro.scenario.engine import ScenarioOutcome
from repro.scenario.model import Scenario, SurvivalCriteria


def _canonical(data: Any) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def outcome_fingerprint(outcome: ScenarioOutcome,
                        metrics_json: str) -> str:
    """Hash of every engine-invariant part of an outcome.

    The wiretap's *observations* are included (byte-identical streams
    are the adversary-facing half of the equivalence contract); its
    scheduling cost stats are not — those are the part of a run that
    is allowed to differ per engine.
    """
    wiretap_digest = None
    if outcome.wiretap is not None:
        wiretap_digest = hashlib.sha256(_canonical(
            outcome.wiretap["observations"]).encode()).hexdigest()
    payload = {
        "plan_signature": outcome.plan_signature,
        "timeline": [(e.time_s, e.action, e.kind, e.target, e.detail)
                     for e in outcome.timeline],
        "events_processed": outcome.events_processed,
        "rounds_run": outcome.rounds_run,
        "call_legs_established": outcome.call_legs_established,
        # Failover records carry process-global numeric ids, so they
        # are deliberately summarized channel-wise here; the timeline
        # already pins each failover to a client id and virtual time.
        "failovers": sorted(
            (r.old_channel,
             -1 if r.new_channel is None else r.new_channel,
             bool(r.survived))
            for r in outcome.failovers),
        "rejoins": [(r.client_id, round(r.orphaned_at_s, 9),
                     None if r.rejoined_at_s is None
                     else round(r.rejoined_at_s, 9), r.attempts)
                    for r in sorted(outcome.rejoins,
                                    key=lambda r: r.client_id)],
        "post_failover_voice": sorted(
            outcome.post_failover_voice.items()),
        "blacklisted_sps": list(outcome.blacklisted_sps),
        "shed_stats": outcome.shed_stats,
        "calls": [outcome.calls_started, outcome.calls_completed,
                  outcome.calls_blocked],
        "churn_stats": outcome.churn_stats,
        "wiretap_observations": wiretap_digest,
        "invariant_violations": list(outcome.invariant_violations),
        "metrics": hashlib.sha256(
            metrics_json.encode()).hexdigest(),
    }
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()


def evaluate_criteria(criteria: SurvivalCriteria,
                      outcome: ScenarioOutcome) -> List[str]:
    """Which survival criteria the outcome failed (empty = pass)."""
    failures = []
    rate = outcome.call_survival_rate
    if rate < criteria.min_call_survival_rate:
        failures.append(
            f"call survival rate {rate:.2f} below required "
            f"{criteria.min_call_survival_rate:.2f}")
    if criteria.max_dropped_failovers is not None and \
            len(outcome.dropped_failovers) > \
            criteria.max_dropped_failovers:
        failures.append(
            f"{len(outcome.dropped_failovers)} dropped failover(s), "
            f"allowed {criteria.max_dropped_failovers}")
    if criteria.require_all_rejoined and not outcome.all_rejoined:
        pending = [r.client_id for r in outcome.rejoins
                   if r.rejoined_at_s is None]
        failures.append(
            "not all orphans re-joined" +
            (f" (pending: {', '.join(pending)})" if pending
             else " (no re-joins happened at all)"))
    if criteria.max_rejoin_latency_s is not None:
        worst = max(outcome.rejoin_latencies, default=0.0)
        if worst > criteria.max_rejoin_latency_s:
            failures.append(
                f"worst re-join latency {worst:.3f}s exceeds "
                f"{criteria.max_rejoin_latency_s:.3f}s")
    if criteria.require_shedding and not outcome.shedding_engaged:
        failures.append(
            "shedding never engaged (no payload cells deferred)")
    for sp_id in criteria.require_blacklist:
        if sp_id not in outcome.blacklisted_sps:
            failures.append(f"SP {sp_id} was not blacklisted "
                            f"(blacklisted: "
                            f"{list(outcome.blacklisted_sps) or '[]'})")
    if outcome.call_legs_established < \
            criteria.min_call_legs_established:
        failures.append(
            f"{outcome.call_legs_established} call leg(s) "
            f"established, required "
            f"{criteria.min_call_legs_established}")
    return failures


class ScenarioReport(RunReport):
    """A :class:`RunReport` plus the scenario's survival verdict.

    The execution engine lives in the inherited :attr:`~repro.api
    .RunReport.engine` / :attr:`~repro.api.RunReport.shards` fields —
    the same vocabulary as the ``--engine`` / ``--shards`` CLI
    flags.  The ``execution`` alias completed its deprecation cycle
    (PR 9 warned; this release removes): reading it raises."""

    __slots__ = ("name", "scenario_signature",
                 "plan_signature", "survival", "timeline",
                 "criteria_failures", "invariant_violations",
                 "determinism_key")

    def __init__(self, *, scenario_def: Scenario, engine: str,
                 base: RunReport, shards: int = 1):
        outcome: ScenarioOutcome = base.detail
        super().__init__(scenario=base.scenario, seed=base.seed,
                         rounds_run=base.rounds_run,
                         metrics=base.metrics,
                         trace_events=base.trace_events,
                         trace_path=base.trace_path, detail=outcome,
                         perf=base.perf, engine=engine, shards=shards)
        self.name = scenario_def.name
        self.scenario_signature = scenario_def.signature()
        self.plan_signature = outcome.plan_signature
        #: The survival metrics the criteria gate on, flattened.
        self.survival = {
            "call_survival_rate": outcome.call_survival_rate,
            "survived_failovers": len(outcome.survived_failovers),
            "dropped_failovers": len(outcome.dropped_failovers),
            "rejoin_latencies_s": [round(v, 9) for v in
                                   outcome.rejoin_latencies],
            "all_rejoined": outcome.all_rejoined,
            "call_legs_established": outcome.call_legs_established,
            "calls_started": outcome.calls_started,
            "calls_completed": outcome.calls_completed,
            "calls_blocked": outcome.calls_blocked,
            "cells_deferred": outcome.cells_deferred,
            "shed_windows": outcome.shed_stats.get("windows", 0),
            "blacklisted_sps": list(outcome.blacklisted_sps),
            "churn": dict(outcome.churn_stats),
        }
        self.timeline = [(e.time_s, e.action, e.kind, e.target,
                          e.detail) for e in outcome.timeline]
        self.criteria_failures = tuple(
            evaluate_criteria(scenario_def.criteria, outcome))
        self.invariant_violations = outcome.invariant_violations
        self.determinism_key = outcome_fingerprint(
            outcome, self.to_json(indent=0))

    @property
    def execution(self) -> str:
        """Removed alias of :attr:`~repro.api.RunReport.engine`.

        PR 9 deprecated it with a warning for one cycle; the cycle is
        complete, so reading it now raises instead of silently
        shadowing the canonical vocabulary."""
        raise AttributeError(
            "ScenarioReport.execution was removed after its "
            "deprecation cycle; use ScenarioReport.engine")

    @property
    def passed(self) -> bool:
        """Did the scenario meet its criteria with no invariant
        violations?"""
        return not self.criteria_failures and \
            not self.invariant_violations

    def to_artifact_dict(self) -> Dict[str, Any]:
        """The JSON artifact the CI corpus job uploads per run.

        The optional ``perf`` section (present under ``--profile``) is
        host-time data: it sits *beside* the determinism surface —
        ``determinism_key`` is computed before and without it, so two
        artifacts from the same seed differ only in that section."""
        artifact = {
            "name": self.name,
            "engine": self.engine,
            "shards": self.shards,
            "seed": self.seed,
            "scenario_signature": self.scenario_signature,
            "plan_signature": self.plan_signature,
            "determinism_key": self.determinism_key,
            "rounds_run": self.rounds_run,
            "survival": self.survival,
            "criteria_failures": list(self.criteria_failures),
            "invariant_violations": list(self.invariant_violations),
            "passed": self.passed,
            "timeline": self.timeline,
        }
        if self.perf is not None:
            artifact["perf"] = self.perf
        outcome: ScenarioOutcome = self.detail
        if outcome.net is not None:
            # Real-network side channel: beside the determinism
            # surface, exactly like perf.
            artifact["net"] = outcome.net
        return artifact

    def __repr__(self) -> str:
        verdict = "passed" if self.passed else \
            f"FAILED ({len(self.criteria_failures) + len(self.invariant_violations)})"
        # The determinism key is a public content hash, not key
        # material (HL004's taint source excludes determinism_*).
        fingerprint = self.determinism_key[:12]
        return (f"ScenarioReport(name={self.name!r}, "
                f"engine={self.engine!r}, seed={self.seed}, "
                f"{verdict}, key={fingerprint}...)")


def run_scenario(scenario: Scenario, *, execution: str = "event",
                 shards: Optional[int] = None,
                 net_processes: bool = False,
                 trace_path: Optional[str] = None,
                 trace_buffer: int = 0,
                 profile: bool = False) -> ScenarioReport:
    """Run one scenario through the :class:`Simulation` facade.

    ``execution`` is any engine name registered with
    :mod:`repro.execution`; ``shards`` applies to shardable engines,
    ``net_processes`` to the real-network ``asyncio`` plane (receive
    endpoints in a separate worker process).  ``profile=True``
    attaches a phase profiler; the per-phase breakdown lands in
    ``report.perf`` (and the CLI artifact's ``perf`` section)
    without changing the determinism key."""
    sim = Simulation(SimConfig(scenario="scenario",
                               scenario_def=scenario,
                               seed=scenario.seed,
                               execution=execution,
                               shards=shards,
                               net_processes=net_processes,
                               trace_path=trace_path,
                               trace_buffer=trace_buffer,
                               profile=profile))
    base = sim.run(until=scenario.horizon_s)
    return ScenarioReport(scenario_def=scenario, engine=execution,
                          base=base, shards=sim.config.shards)

"""The ExecutionPlane registry: execution engines resolved by name.

Before this module, every layer that accepted an ``execution=`` knob
(:class:`repro.api.SimConfig`, :class:`repro.simulation.live.LiveZone`,
:class:`repro.simulation.roundsync.WireFabric`, the scenario engine,
``ChaosConfig``) carried its own ``("event", "batch")`` tuple and its
own if/elif validation — adding an engine meant touching five copies.
This registry is the single point of truth: an execution plane is
*registered* once, and every consumer resolves the name through
:func:`resolve`.

A plane is described by two orthogonal modes plus a shard capability:

* ``zone_mode`` — how the protocol round runs inside a
  :class:`~repro.simulation.live.LiveZone`: ``"event"`` (per-channel
  calls) or ``"batch"`` (the round-synchronous core entry points
  ``SuperPeer.process_round`` / ``MixCallManager.process_round``).
  The protocol outputs are byte-identical either way (DESIGN.md §9).
* ``wire_mode`` — how the :class:`~repro.simulation.roundsync
  .WireFabric` materializes the wire image: ``"event"`` (one packet +
  heap event per cell), ``"batch"`` (one :class:`~repro.netsim.rounds
  .CellBatch` per link per round), or ``"vector"`` (run-length
  :class:`~repro.netsim.rounds.CellVector` segments with aggregate
  chaff accounting — O(runs) per round, shardable across worker
  processes, DESIGN.md §13).
* ``supports_shards`` — whether ``shards > 1`` may be requested; the
  sharded wire plane fans round segments out to workers and merges
  results deterministically (:mod:`repro.netsim.shards`).

A third orthogonal axis, ``transport``, says what physically carries
the wire image: ``"sim"`` (the in-memory :class:`~repro.simulation
.roundsync.WireFabric` over netsim links) or ``"udp"`` (the
real-network plane: cells framed by :mod:`repro.core.wire` ride real
UDP datagrams between per-node ``asyncio`` endpoints, bootstrapped by
the :mod:`repro.net.introducer`).  Protocol code never branches on the
transport — :func:`create_wire_fabric` is the single seam where a
resolved plane becomes a concrete :class:`~repro.core.transport
.CellTransport`.

Built-in planes: ``"event"``, ``"batch"``, ``"batch-v2"`` (the
vectorized, shardable plane), and ``"asyncio"`` (same protocol, real
UDP sockets over loopback — ROADMAP item 3, DESIGN.md §14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

ZONE_MODES = ("event", "batch")
WIRE_MODES = ("event", "batch", "vector", "socket")
TRANSPORTS = ("sim", "udp")


@dataclass(frozen=True)
class ExecutionPlane:
    """One registered execution engine.

    ``name`` is the public identifier (``SimConfig(execution=name)``,
    ``repro metrics --engine name``); the modes tell each layer how to
    run without string-matching on the name anywhere else.
    """

    name: str
    zone_mode: str
    wire_mode: str
    supports_shards: bool = False
    description: str = ""
    #: What physically carries the wire image: ``"sim"`` (in-memory
    #: netsim links) or ``"udp"`` (real loopback datagrams between
    #: asyncio endpoints).
    transport: str = "sim"

    def __post_init__(self) -> None:
        if self.zone_mode not in ZONE_MODES:
            raise ValueError(f"zone_mode must be one of {ZONE_MODES}, "
                             f"not {self.zone_mode!r}")
        if self.wire_mode not in WIRE_MODES:
            raise ValueError(f"wire_mode must be one of {WIRE_MODES}, "
                             f"not {self.wire_mode!r}")
        if self.transport not in TRANSPORTS:
            raise ValueError(f"transport must be one of {TRANSPORTS}, "
                             f"not {self.transport!r}")


@dataclass(frozen=True)
class PlaneSpec:
    """A resolved (plane, shards) request — what consumers act on."""

    plane: ExecutionPlane
    shards: int = 1

    @property
    def name(self) -> str:
        return self.plane.name

    @property
    def zone_mode(self) -> str:
        return self.plane.zone_mode

    @property
    def wire_mode(self) -> str:
        return self.plane.wire_mode

    @property
    def transport(self) -> str:
        return self.plane.transport


_REGISTRY: Dict[str, ExecutionPlane] = {}


def register_plane(plane: ExecutionPlane) -> ExecutionPlane:
    """Register (or re-register) a plane under its name."""
    _REGISTRY[plane.name] = plane
    return plane


def plane_names() -> Tuple[str, ...]:
    """Registered plane names, in registration order."""
    return tuple(_REGISTRY)


def get_plane(name: str) -> ExecutionPlane:
    """Look one plane up by name; unknown names raise ``ValueError``
    listing what is registered (with a did-you-mean when close)."""
    found = _REGISTRY.get(name)
    if found is not None:
        return found
    import difflib
    close = difflib.get_close_matches(str(name), _REGISTRY, n=1)
    hint = f" (did you mean {close[0]!r}?)" if close else ""
    raise ValueError(
        f"unknown execution plane {name!r}; registered planes: "
        f"{', '.join(_REGISTRY)}{hint}")


def resolve(execution: str, shards: Optional[int] = None) -> PlaneSpec:
    """Resolve an ``execution=`` / ``--engine`` request to a
    :class:`PlaneSpec`, validating the shard count against the
    plane's capability."""
    plane = get_plane(execution)
    n = 1 if shards is None else int(shards)
    if n < 1:
        raise ValueError(f"shards must be >= 1, not {shards!r}")
    if n > 1 and not plane.supports_shards:
        raise ValueError(
            f"execution plane {plane.name!r} does not support "
            f"sharding; use shards=1 or a shardable plane "
            f"({', '.join(p for p in _REGISTRY if _REGISTRY[p].supports_shards) or 'none registered'})")
    return PlaneSpec(plane=plane, shards=n)


register_plane(ExecutionPlane(
    name="event", zone_mode="event", wire_mode="event",
    description="per-cell discrete events: one packet and one heap "
                "event per cell (the classical reference engine)"))
register_plane(ExecutionPlane(
    name="batch", zone_mode="batch", wire_mode="batch",
    description="round-synchronous batches: one CellBatch per link "
                "per round, one heap event per round"))
register_plane(ExecutionPlane(
    name="batch-v2", zone_mode="batch", wire_mode="vector",
    supports_shards=True,
    description="vectorized rounds: run-length CellVector segments "
                "with aggregate chaff accounting, shardable across "
                "worker processes with a deterministic merge"))
register_plane(ExecutionPlane(
    name="asyncio", zone_mode="batch", wire_mode="socket",
    transport="udp",
    description="real-network plane: the same round-synchronous "
                "protocol, but every cell rides a framed UDP "
                "datagram between per-node asyncio endpoints over "
                "loopback, bootstrapped by an introducer "
                "(DESIGN.md §14)"))


def create_wire_fabric(execution: str, *, seed: int = 0,
                       interval: Optional[float] = None,
                       observer=None, shards: Optional[int] = None,
                       shard_processes: Optional[bool] = None,
                       net_processes: Optional[bool] = None):
    """The transport seam: build the concrete
    :class:`~repro.core.transport.CellTransport` for a resolved plane.

    ``"sim"`` transports get a :class:`~repro.simulation.roundsync
    .WireFabric`; ``"udp"`` transports get a :class:`~repro.net
    .transport.UdpFabric` (real loopback datagrams).  Protocol code
    (:class:`~repro.simulation.live.LiveZone`, the scenario engine,
    the bench runner) calls this instead of importing either module —
    imports happen lazily here, so the simulator never pays for the
    socket plane and vice versa.

    ``net_processes`` applies only to the UDP plane (host the receive
    endpoints in a separate worker process); ``shards`` /
    ``shard_processes`` only to shardable simulator planes.
    """
    spec = resolve(execution, shards)
    if interval is None:
        from repro.simulation.roundsync import \
            DEFAULT_ROUND_INTERVAL_S
        interval = DEFAULT_ROUND_INTERVAL_S
    if spec.transport == "udp":
        from repro.net.transport import UdpFabric
        return UdpFabric(seed=seed, interval=interval,
                         observer=observer,
                         processes=bool(net_processes))
    from repro.simulation.roundsync import WireFabric
    return WireFabric(seed=seed, interval=interval,
                      execution=spec.name, observer=observer,
                      shards=spec.shards,
                      shard_processes=shard_processes)

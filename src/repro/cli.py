"""Command-line interface: ``python -m repro <command>``.

Gives a downstream user one-command access to the headline results:

* ``demo``        — an anonymous end-to-end encrypted call, narrated.
* ``trace``       — generate a synthetic mobile call trace (CSV).
* ``attack``      — the intersection attack on a trace (Tor vs Herd).
* ``blocking``    — the §4.1.6 blocking/offload sweep.
* ``cost``        — the §4.1.6 cost model sweep.
* ``quality``     — the Fig. 7 latency/MOS measurement.
* ``metrics``     — run an instrumented simulation, dump herdscope
  metrics (Prometheus text or JSON).
* ``experiments`` — run the whole evaluation (E1–E9 summaries).
* ``lint``        — herdlint, the protocol-aware static-analysis gate.
* ``scenario``    — run/list/validate the declarative composed-
  adversity scenario corpus (``scenarios/*.toml``); ``scenario run``
  exits nonzero when survival criteria, invariants, or cross-engine
  determinism fail, so CI can gate on it.
* ``bench``       — run/compare/list performance benchmarks through
  the unified herdprof runner; ``bench compare`` exits nonzero on a
  regression beyond the tolerance band, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import csv
import sys
from typing import List, Optional


class _RemovedEngineAlias(argparse.Action):
    """``--execution`` finished its deprecation cycle (PR 9 warned
    for one cycle); using it is now a hard parse error pointing at
    ``--engine``."""

    def __call__(self, parser, namespace, values, option_string=None):
        parser.error(f"{option_string} was removed after its "
                     f"deprecation cycle; use --engine")


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.simulation.testbed import build_testbed
    bed = build_testbed()
    bed.add_client("alice", "zone-EU")
    bed.add_client("bob", "zone-NA")
    bed.ready_for_calls("alice")
    bed.ready_for_calls("bob")
    session = bed.call("alice", "bob")
    frame = b"\x42" * 160
    echo = session.send_voice("caller_to_callee", frame)
    ok = echo == frame
    print(f"anonymous call alice(zone-EU) -> bob(zone-NA): "
          f"{session.link_hops()} links, voice frame "
          f"{'delivered and decrypted' if ok else 'FAILED'}")
    return 0 if ok else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.workload.generator import SyntheticTraceConfig, \
        generate_trace
    cfg = SyntheticTraceConfig(n_users=args.users, days=args.days,
                               seed=args.seed,
                               max_degree=min(150, args.users - 1))
    trace = generate_trace(cfg)
    writer = csv.writer(args.output)
    writer.writerow(["caller", "callee", "start_s", "duration_s"])
    for record in trace:
        writer.writerow([record.caller, record.callee,
                         f"{record.start:.3f}",
                         f"{record.duration:.3f}"])
    print(f"wrote {len(trace):,} calls "
          f"(peak duty cycle {trace.peak_duty_cycle(args.users):.2%})",
          file=sys.stderr)
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from repro.attacks.intersection import herd_observable_trace, \
        intersection_attack
    from repro.workload.generator import SyntheticTraceConfig, \
        generate_trace
    cfg = SyntheticTraceConfig(n_users=args.users, days=args.days,
                               seed=args.seed,
                               max_degree=min(150, args.users - 1))
    trace = generate_trace(cfg)
    tor = intersection_attack(trace, args.bin)
    herd = intersection_attack(herd_observable_trace(trace), args.bin)
    print(f"{len(trace):,} calls, {args.bin:.0f}s bins")
    print(f"  Tor-carried calls traced:  {tor.traced_fraction:.1%} "
          "(paper: 98.3% at 1s)")
    print(f"  Herd-carried calls traced: {herd.traced_fraction:.1%}")
    return 0


def _cmd_blocking(args: argparse.Namespace) -> int:
    from repro.analysis.bandwidth import sp_savings_fraction
    from repro.simulation.spsim import blocking_sweep
    from repro.workload.generator import SyntheticTraceConfig, \
        generate_trace
    cfg = SyntheticTraceConfig(n_users=args.users, days=args.days,
                               seed=args.seed,
                               max_degree=min(150, args.users - 1))
    trace = generate_trace(cfg)
    sweep = blocking_sweep(trace, n_clients=args.users,
                           clients_per_channel_values=(5, 10, 25, 50),
                           k_values=(2, 3))
    print("clients/channel   k=2       k=3      mix-bandwidth savings")
    for cpc in (5, 10, 25, 50):
        print(f"{cpc:15d}   {sweep[(cpc, 2)].blocking_rate:6.2%}   "
              f"{sweep[(cpc, 3)].blocking_rate:6.2%}   "
              f"{sp_savings_fraction(args.users, cpc):5.0%}")
    return 0


def _cmd_cost(args: argparse.Namespace) -> int:
    from repro.analysis.cost import CostModel
    model = CostModel()
    sp_lo, sp_hi = model.per_user_range(args.users, use_sps=True)
    no_lo, no_hi = model.per_user_range(args.users, use_sps=False)
    print(f"zone of {args.users:,} users, $/user/month:")
    print(f"  with superpeers:    ${sp_lo:.2f} - ${sp_hi:.2f}  "
          "(paper $0.10 - $1.14)")
    print(f"  without superpeers: ${no_lo:.2f} - ${no_hi:.2f}  "
          "(paper $10 - $100)")
    return 0


def _cmd_quality(args: argparse.Namespace) -> int:
    from repro.simulation.deployment import DeploymentConfig, \
        herd_extra_latency_ms, measure_pair_latencies
    from repro.voip.emodel import EModel
    results = measure_pair_latencies(
        DeploymentConfig(n_probe_packets=args.packets))
    model = EModel(jitter_buffer_ms=20.0)
    print(f"{'pair':8s}{'system':8s}{'one-way':>9s}{'loss':>7s}  band")
    for (src, dst, system), m in sorted(results.items()):
        if src > dst:
            continue
        q = m.quality(model)
        print(f"{src}-{dst:5s}{system:8s}{m.mean_owd_ms:7.0f}ms"
              f"{m.loss_fraction:7.2%}  {q.band}")
    print(f"Herd extra one-way latency: "
          f"{herd_extra_latency_ms(results):.0f} ms (paper ~100 ms)")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.api import SimConfig, Simulation
    config = SimConfig(scenario=args.scenario, seed=args.seed,
                       n_clients=args.clients,
                       n_channels=args.channels,
                       call_pairs=args.pairs,
                       trace_path=args.trace,
                       execution=args.engine, shards=args.shards,
                       net_processes=args.net_processes,
                       profile=args.profile)
    report = Simulation(config).run(rounds=args.rounds)
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.to_prometheus())
    if args.profile and report.perf is not None:
        phases = report.perf.get("phases", {})
        for phase in sorted(phases):
            data = phases[phase]
            print(f"# perf {phase}: {data.get('wall_s', 0.0):.4f}s "
                  f"over {data.get('calls', 0)} call(s)",
                  file=sys.stderr)
    if args.trace:
        print(f"trace written to {args.trace}", file=sys.stderr)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run
    return run(args)


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.scenario.cli import run
    return run(args)


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs.prof.cli import run
    return run(args)


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import run_evaluation
    report = run_evaluation(n_users=args.users, seed=args.seed)
    print(report.to_markdown())
    if not report.all_shapes_hold:
        print("\nSHAPE FAILURES:", [r.metric for r in
                                    report.failures()])
        return 1
    print("\nall shape criteria hold")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    for name, fn in (("E1 intersection attack", _cmd_attack),
                     ("E4/E5 blocking & offload", _cmd_blocking),
                     ("E6 cost", _cmd_cost),
                     ("E8 call quality", _cmd_quality)):
        print(f"\n=== {name} ===")
        fn(args)
    print("\n(full tables: pytest benchmarks/ -q -s)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Herd (SIGCOMM 2015) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="place one anonymous call")

    p_trace = sub.add_parser("trace", help="generate a synthetic trace")
    p_trace.add_argument("--users", type=int, default=5000)
    p_trace.add_argument("--days", type=int, default=1)
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--output", type=argparse.FileType("w"),
                         default=sys.stdout)

    p_attack = sub.add_parser("attack", help="intersection attack")
    p_attack.add_argument("--users", type=int, default=5000)
    p_attack.add_argument("--days", type=int, default=1)
    p_attack.add_argument("--seed", type=int, default=0)
    p_attack.add_argument("--bin", type=float, default=1.0)

    p_block = sub.add_parser("blocking", help="blocking/offload sweep")
    p_block.add_argument("--users", type=int, default=5000)
    p_block.add_argument("--days", type=int, default=2)
    p_block.add_argument("--seed", type=int, default=0)

    p_cost = sub.add_parser("cost", help="cost model sweep")
    p_cost.add_argument("--users", type=int, default=1_000_000)

    p_quality = sub.add_parser("quality", help="Fig. 7 call quality")
    p_quality.add_argument("--packets", type=int, default=300)

    p_metrics = sub.add_parser(
        "metrics", help="instrumented run + herdscope metrics dump")
    p_metrics.add_argument("--scenario", choices=("live", "testbed"),
                           default="live")
    p_metrics.add_argument("--rounds", type=int, default=50)
    p_metrics.add_argument("--seed", type=int, default=20150817)
    p_metrics.add_argument("--clients", type=int, default=12)
    p_metrics.add_argument("--channels", type=int, default=4)
    p_metrics.add_argument("--pairs", type=int, default=2)
    from repro import execution as execution_registry
    p_metrics.add_argument("--engine", dest="engine",
                           choices=execution_registry.plane_names(),
                           default="event",
                           help="execution engine (the metrics are "
                           "byte-identical; batch engines run faster)")
    p_metrics.add_argument("--execution", dest="engine",
                           action=_RemovedEngineAlias,
                           nargs=1, metavar="ENGINE",
                           help=argparse.SUPPRESS)
    p_metrics.add_argument("--shards", type=int, default=None,
                           help="worker-process count for shardable "
                           "engines (batch-v2)")
    p_metrics.add_argument("--processes", dest="net_processes",
                           action="store_true",
                           help="asyncio engine only: host the UDP "
                           "receive endpoints in a separate worker "
                           "process")
    p_metrics.add_argument("--profile", action="store_true",
                           help="attach the phase profiler; per-phase "
                           "wall time prints to stderr (metrics "
                           "unchanged)")
    p_metrics.add_argument("--format", choices=("prom", "json"),
                           default="prom")
    p_metrics.add_argument("--trace", default=None,
                           help="also write a JSONL trace here")

    p_report = sub.add_parser("report",
                              help="paper-vs-measured shape report")
    p_report.add_argument("--users", type=int, default=4000)
    p_report.add_argument("--seed", type=int, default=20150817)

    from repro.lint.cli import add_lint_arguments
    p_lint = sub.add_parser(
        "lint", help="herdlint: determinism & crypto-hygiene checks")
    add_lint_arguments(p_lint)

    from repro.scenario.cli import add_scenario_arguments
    p_scenario = sub.add_parser(
        "scenario",
        help="run/list/validate composed-adversity scenarios")
    add_scenario_arguments(p_scenario)

    from repro.obs.prof.cli import add_bench_arguments
    p_bench = sub.add_parser(
        "bench",
        help="run/compare/list performance benchmarks (herdprof)")
    add_bench_arguments(p_bench)

    p_all = sub.add_parser("experiments", help="run the evaluation")
    p_all.add_argument("--users", type=int, default=5000)
    p_all.add_argument("--days", type=int, default=1)
    p_all.add_argument("--seed", type=int, default=0)
    p_all.add_argument("--bin", type=float, default=1.0)
    p_all.add_argument("--packets", type=int, default=200)

    return parser


_HANDLERS = {
    "demo": _cmd_demo,
    "trace": _cmd_trace,
    "attack": _cmd_attack,
    "blocking": _cmd_blocking,
    "cost": _cmd_cost,
    "quality": _cmd_quality,
    "metrics": _cmd_metrics,
    "report": _cmd_report,
    "experiments": _cmd_experiments,
    "lint": _cmd_lint,
    "scenario": _cmd_scenario,
    "bench": _cmd_bench,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

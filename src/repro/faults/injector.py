"""Applying a :class:`~repro.faults.plan.FaultPlan` to a live testbed.

The injector is the piece that turns declarative fault specs into
actual state changes — popping mixes/SPs off the
:class:`~repro.simulation.testbed.HerdTestbed` via the churn API,
degrading :class:`~repro.netsim.link.Link` parameters, feeding bad
quality samples to the :class:`~repro.core.blacklist.SPMonitor` — and
records everything it does in a structured, replayable timeline.

Recovery is part of the plan: crashes with a ``duration_s`` schedule
their own revert (mix/SP revived with the same identity, clients must
re-join per §3.5), degradations always revert at window end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.faults.plan import FaultKind, FaultSpec
from repro.simulation.churn import (
    fail_mix,
    fail_superpeer,
    recover_mix,
    recover_superpeer,
)


@dataclass(frozen=True)
class TimelineEntry:
    """One fault/recovery action, stamped with virtual time."""

    time_s: float
    action: str      # "injected", "detected", "recovered", "skipped", ...
    kind: str        # FaultKind value, or a domain action ("failover")
    target: str
    detail: str = ""

    @staticmethod
    def make(time_s: float, action: str, kind: str, target: str,
             detail: str = "") -> "TimelineEntry":
        # Round so float noise can never break timeline equality between
        # replays of the same plan.
        return TimelineEntry(round(time_s, 9), action, kind, target, detail)


class FaultInjector:
    """Applies faults from a plan against a testbed on an event loop.

    Parameters
    ----------
    bed:
        The live deployment to break.
    loop:
        The :class:`~repro.netsim.engine.EventLoop` driving the run —
        recovery and degradation sampling are scheduled on it.
    monitor:
        Optional :class:`~repro.core.blacklist.SPMonitor`; when given,
        degradation faults targeting an SP feed it periodic bad quality
        samples so blacklisting can trigger *during* the run.
    links:
        Optional name → :class:`~repro.netsim.link.Link` map; when a
        degradation's target names a link, its ``loss_rate`` /
        ``jitter_std`` are mutated for the window and restored after.
    sp_full_leave:
        Passed through to :func:`~repro.simulation.churn.fail_superpeer`.
        Chaos runs use ``False`` so mid-call failover state survives.
    """

    def __init__(self, bed, loop, monitor=None, links=None,
                 sp_full_leave: bool = True,
                 sample_interval_s: float = 1.0):
        self.bed = bed
        self.loop = loop
        self.monitor = monitor
        self.links = links or {}
        self.sp_full_leave = sp_full_leave
        self.sample_interval_s = sample_interval_s
        self.timeline: List[TimelineEntry] = []
        #: Failed components kept around so recovery can revive the
        #: same objects (identity and enrollment survive a restart).
        self.failed_mixes: Dict[str, object] = {}
        self.failed_sps: Dict[str, object] = {}
        #: client ids orphaned by each mix crash.
        self.orphans: Dict[str, List[str]] = {}
        self._degrade_handles: Dict[Tuple[str, str, float], object] = {}
        self._saved_link_params: Dict[str, Tuple[float, float]] = {}
        #: Hooks fired on fault application; chaos wires re-join and
        #: data-plane failover logic through these.
        self.on_mix_crash: List[Callable[[FaultSpec, List[str]], None]] = []
        self.on_sp_crash: List[Callable[[FaultSpec, List[str]], None]] = []
        self.on_recovery: List[Callable[[FaultSpec], None]] = []
        #: Graceful-degradation hook: called with ``(spec, True)`` when
        #: an OVERLOAD window opens and ``(spec, False)`` when it
        #: closes.  The scenario engine wires load shedding
        #: (:meth:`repro.simulation.live.LiveZone.set_overload`)
        #: through this.
        self.on_overload: List[Callable[[FaultSpec, bool], None]] = []
        #: Optional observability hook (see :class:`repro.obs
        #: .instrument.FaultHook`): timeline entries become trace
        #: events, injected→recovered windows become spans.
        self.obs = None

    # -- bookkeeping -----------------------------------------------------------

    def record(self, action: str, kind: str, target: str,
               detail: str = "") -> TimelineEntry:
        entry = TimelineEntry.make(self.loop.now, action, kind, target,
                                   detail)
        self.timeline.append(entry)
        if self.obs is not None:
            self.obs.fault_event(entry)
        return entry

    # -- fault application -----------------------------------------------------

    def apply(self, spec: FaultSpec) -> None:
        if spec.kind is FaultKind.MIX_CRASH:
            self._apply_mix_crash(spec)
        elif spec.kind is FaultKind.SP_CRASH:
            self._apply_sp_crash(spec)
        elif spec.kind is FaultKind.OVERLOAD:
            self._apply_overload(spec)
        elif spec.kind is FaultKind.DIRECTORY_STALL:
            self._apply_directory_stall(spec)
        else:
            self._apply_degradation(spec)

    def _apply_mix_crash(self, spec: FaultSpec) -> None:
        if spec.target not in self.bed.mixes:
            self.record("skipped", spec.kind.value, spec.target,
                        "already down")
            return
        mix = self.bed.mixes[spec.target]
        unclean = spec.detection_delay_s > 0
        orphans = fail_mix(self.bed, spec.target,
                           prune_directory=not unclean)
        self.failed_mixes[spec.target] = mix
        self.orphans[spec.target] = orphans
        self.record("injected", spec.kind.value, spec.target,
                    f"orphans={len(orphans)} unclean={unclean}")
        if unclean:
            def detect(mix=mix, spec=spec):
                if spec.target in mix.zone.mix_ids and \
                        spec.target not in self.bed.mixes:
                    mix.zone.remove_mix(spec.target)
                    self.record("detected", spec.kind.value, spec.target,
                                "directory pruned dead mix")
            self.loop.schedule(spec.detection_delay_s, detect)
        if spec.duration_s is not None:
            self.loop.schedule(spec.duration_s,
                               lambda: self.revert(spec))
        for hook in self.on_mix_crash:
            hook(spec, orphans)

    def _apply_sp_crash(self, spec: FaultSpec) -> None:
        if spec.target not in self.bed.superpeers:
            self.record("skipped", spec.kind.value, spec.target,
                        "already down")
            return
        sp = self.bed.superpeers[spec.target]
        affected = fail_superpeer(self.bed, spec.target,
                                  full_leave=self.sp_full_leave)
        self.failed_sps[spec.target] = sp
        self.record("injected", spec.kind.value, spec.target,
                    f"affected={len(affected)}")
        if spec.duration_s is not None:
            self.loop.schedule(spec.duration_s,
                               lambda: self.revert(spec))
        for hook in self.on_sp_crash:
            hook(spec, affected)

    def _apply_degradation(self, spec: FaultSpec) -> None:
        detail_parts = []
        link = self.links.get(spec.target)
        if link is not None:
            self._saved_link_params[spec.target] = (link.loss_rate,
                                                    link.jitter_std)
            if spec.kind in (FaultKind.LINK_DEGRADE, FaultKind.LOSS_BURST,
                             FaultKind.LINK_PARTITION):
                link.loss_rate = 0.999 if \
                    spec.kind is FaultKind.LINK_PARTITION else \
                    min(spec.loss, 0.999)
            if spec.kind in (FaultKind.LINK_DEGRADE,
                             FaultKind.JITTER_BURST):
                link.jitter_std = spec.jitter_ms / 1000.0
            detail_parts.append("link mutated")
        if self.monitor is not None:
            if spec.kind is FaultKind.LINK_PARTITION:
                def sample(spec=spec):
                    self.monitor.record_availability(spec.target, False)
            else:
                def sample(spec=spec):
                    self.monitor.record_quality(spec.target, spec.loss,
                                                spec.jitter_ms)
            handle = self.loop.schedule_periodic(
                self.sample_interval_s, sample, start_delay=0.0)
            self._degrade_handles[spec.key()] = handle
            detail_parts.append("monitor fed")
        self.record("injected", spec.kind.value, spec.target,
                    "; ".join(detail_parts) or "no-op target")
        self.loop.schedule(spec.duration_s, lambda: self.revert(spec))

    def _apply_overload(self, spec: FaultSpec) -> None:
        """Open a graceful-degradation window: consumers registered on
        :attr:`on_overload` engage shedding/backpressure; the window
        always closes itself after ``duration_s``."""
        self.record("injected", spec.kind.value, spec.target,
                    f"capacity={spec.capacity_fraction:g}")
        for hook in self.on_overload:
            hook(spec, True)
        self.loop.schedule(spec.duration_s, lambda: self.revert(spec))

    def _apply_directory_stall(self, spec: FaultSpec) -> None:
        """Stall a zone directory: joins/re-joins fail with
        :class:`~repro.core.directory.DirectoryStalledError` until the
        window ends, so clients back off via their retry policies."""
        directory = self.bed.directories.get(spec.target)
        if directory is None:
            self.record("skipped", spec.kind.value, spec.target,
                        "no such directory")
            return
        directory.stalled = True
        self.record("injected", spec.kind.value, spec.target,
                    "directory unresponsive")
        self.loop.schedule(spec.duration_s, lambda: self.revert(spec))

    # -- recovery --------------------------------------------------------------

    def revert(self, spec: FaultSpec) -> None:
        """Undo a fault: revive the crashed component or restore the
        degraded link and stop feeding the monitor."""
        if spec.kind is FaultKind.MIX_CRASH:
            mix = self.failed_mixes.pop(spec.target, None)
            if mix is None or spec.target in self.bed.mixes:
                return
            recover_mix(self.bed, mix)
            self.record("recovered", spec.kind.value, spec.target)
        elif spec.kind is FaultKind.SP_CRASH:
            sp = self.failed_sps.pop(spec.target, None)
            if sp is None or spec.target in self.bed.superpeers:
                return
            recover_superpeer(self.bed, sp)
            self.record("recovered", spec.kind.value, spec.target)
        elif spec.kind is FaultKind.OVERLOAD:
            for hook in self.on_overload:
                hook(spec, False)
            self.record("recovered", spec.kind.value, spec.target)
        elif spec.kind is FaultKind.DIRECTORY_STALL:
            directory = self.bed.directories.get(spec.target)
            if directory is not None:
                directory.stalled = False
            self.record("recovered", spec.kind.value, spec.target)
        else:
            handle = self._degrade_handles.pop(spec.key(), None)
            if handle is not None:
                handle.cancel()
            saved = self._saved_link_params.pop(spec.target, None)
            link = self.links.get(spec.target)
            if saved is not None and link is not None:
                link.loss_rate, link.jitter_std = saved
            self.record("recovered", spec.kind.value, spec.target)
        for hook in self.on_recovery:
            hook(spec)

    def teardown(self) -> None:
        """Cancel outstanding degradation samplers (pairs with
        :meth:`EventLoop.cancel_all` at the end of a run)."""
        for handle in self._degrade_handles.values():
            handle.cancel()
        self._degrade_handles.clear()

    # -- introspection ---------------------------------------------------------

    def timeline_tuples(self) -> List[Tuple[float, str, str, str, str]]:
        """The timeline as plain tuples — what determinism tests
        compare across replays."""
        return [(e.time_s, e.action, e.kind, e.target, e.detail)
                for e in self.timeline]

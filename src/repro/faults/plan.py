"""Declarative, replayable fault plans.

Herd's availability story (§3.1, §3.5, §3.6.4) is exercised by
*injecting* the failures the paper talks about — mix crashes, SP
crashes, degraded or partitioned SP links, loss/jitter bursts — at
precise virtual times.  A :class:`FaultPlan` is a sorted, immutable
schedule of :class:`FaultSpec` entries; compiled onto a
:class:`~repro.netsim.engine.EventLoop` it replays bit-for-bit, so the
same seed and plan always produce the same fault timeline (the
determinism contract the chaos benchmarks assert).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from enum import Enum
from typing import Iterator, List, Optional, Sequence, Tuple


class FaultKind(Enum):
    """The fault classes of the Herd failure model."""

    MIX_CRASH = "mix_crash"
    SP_CRASH = "sp_crash"
    LINK_DEGRADE = "link_degrade"
    LINK_PARTITION = "link_partition"
    LOSS_BURST = "loss_burst"
    JITTER_BURST = "jitter_burst"
    #: Load spike beyond provisioned capacity: the data plane sheds
    #: payload admission (chaff fills the wire, so the adversary sees
    #: nothing) and clients back-pressure deferred cells.
    OVERLOAD = "overload"
    #: The zone directory stops answering: joins and re-joins fail
    #: until the window ends; clients back off via their retry policy.
    DIRECTORY_STALL = "directory_stall"


#: Kinds that mutate link/quality state for a window and must revert.
_DEGRADATION_KINDS = frozenset({
    FaultKind.LINK_DEGRADE,
    FaultKind.LINK_PARTITION,
    FaultKind.LOSS_BURST,
    FaultKind.JITTER_BURST,
})

#: Kinds that are only meaningful as a bounded window (must carry a
#: ``duration_s``): the degradations plus the graceful-degradation
#: kinds, which engage shedding/backpressure and must release it.
_WINDOWED_KINDS = _DEGRADATION_KINDS | frozenset({
    FaultKind.OVERLOAD,
    FaultKind.DIRECTORY_STALL,
})


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Parameters
    ----------
    kind:
        The fault class.
    at_s:
        Virtual time at which the fault strikes.
    target:
        Mix id, SP id, or link name, depending on ``kind``.
    duration_s:
        For degradations: how long the condition lasts (required).
        For crashes: time until recovery; ``None`` means the component
        stays down for the rest of the run.
    loss, jitter_ms:
        Degradation severity, fed to the link and/or the
        :class:`~repro.core.blacklist.SPMonitor`.
    detection_delay_s:
        For ``MIX_CRASH``: how long the directory keeps redirecting
        joins to the dead mix before pruning it (an *unclean* crash;
        0 means the crash is detected instantly).
    capacity_fraction:
        For ``OVERLOAD``: the fraction of per-channel payload slots
        still admitted per round while the overload lasts (0 = full
        backpressure, every payload cell deferred; 1 = no shedding).
    """

    kind: FaultKind
    at_s: float
    target: str
    duration_s: Optional[float] = None
    loss: float = 0.0
    jitter_ms: float = 0.0
    detection_delay_s: float = 0.0
    capacity_fraction: float = 0.5

    def __post_init__(self):
        if self.at_s < 0:
            raise ValueError("fault time cannot be negative")
        if not self.target:
            raise ValueError("fault needs a target")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ValueError("duration must be positive when given")
        if not 0.0 <= self.loss <= 1.0:
            raise ValueError("loss must be in [0, 1]")
        if self.jitter_ms < 0:
            raise ValueError("jitter cannot be negative")
        if self.detection_delay_s < 0:
            raise ValueError("detection delay cannot be negative")
        if not 0.0 <= self.capacity_fraction <= 1.0:
            raise ValueError("capacity_fraction must be in [0, 1]")
        if self.kind in _WINDOWED_KINDS and self.duration_s is None:
            raise ValueError(
                f"{self.kind.value} needs a duration_s window")

    def key(self) -> Tuple[str, str, float]:
        """Stable identity for bookkeeping (degrade handles etc.)."""
        return (self.kind.value, self.target, self.at_s)


class FaultPlan:
    """An immutable, time-sorted schedule of faults."""

    def __init__(self, specs: Sequence[FaultSpec]):
        self.specs: Tuple[FaultSpec, ...] = tuple(sorted(
            specs, key=lambda s: (s.at_s, s.kind.value, s.target)))

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def signature(self) -> str:
        """Content hash of the plan — two runs with equal signatures
        (and equal seeds) must produce identical fault timelines."""
        digest = hashlib.sha256()
        for spec in self.specs:
            digest.update(repr((
                spec.kind.value, spec.at_s, spec.target, spec.duration_s,
                spec.loss, spec.jitter_ms, spec.detection_delay_s,
                spec.capacity_fraction,
            )).encode())
        return digest.hexdigest()

    def compile_onto(self, loop, injector) -> List[object]:
        """Schedule every fault's onset on the loop.  Revert/recovery
        events are scheduled by the injector when the fault strikes.
        Returns the onset event handles (cancellable)."""
        handles = []
        for spec in self.specs:
            handles.append(loop.schedule_at(
                spec.at_s,
                lambda s=spec: injector.apply(s)))
        return handles

    @classmethod
    def generate(cls, seed: int, horizon_s: float,
                 mix_ids: Sequence[str] = (),
                 sp_ids: Sequence[str] = (),
                 n_faults: int = 4,
                 crash_fraction: float = 0.5,
                 mean_duration_s: float = 2.0) -> "FaultPlan":
        """Draw a random-but-reproducible plan: the same seed always
        yields the same plan (asserted via :meth:`signature`)."""
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        if not mix_ids and not sp_ids:
            raise ValueError("need at least one candidate target")
        rng = random.Random(seed)
        specs: List[FaultSpec] = []
        for _ in range(n_faults):
            at_s = rng.uniform(0.05 * horizon_s, 0.7 * horizon_s)
            duration = min(max(0.2, rng.expovariate(1.0 / mean_duration_s)),
                           0.9 * horizon_s)
            crash = rng.random() < crash_fraction
            if crash and mix_ids and (not sp_ids or rng.random() < 0.5):
                specs.append(FaultSpec(
                    kind=FaultKind.MIX_CRASH, at_s=at_s,
                    target=rng.choice(list(mix_ids)),
                    duration_s=duration,
                    detection_delay_s=rng.uniform(0.0, 0.1 * horizon_s)))
            elif crash and sp_ids:
                specs.append(FaultSpec(
                    kind=FaultKind.SP_CRASH, at_s=at_s,
                    target=rng.choice(list(sp_ids)),
                    duration_s=duration))
            else:
                target_pool = list(sp_ids) or list(mix_ids)
                kind = rng.choice([FaultKind.LINK_DEGRADE,
                                   FaultKind.LOSS_BURST,
                                   FaultKind.JITTER_BURST])
                specs.append(FaultSpec(
                    kind=kind, at_s=at_s,
                    target=rng.choice(target_pool),
                    duration_s=duration,
                    loss=round(rng.uniform(0.05, 0.4), 3),
                    jitter_ms=round(rng.uniform(40.0, 120.0), 1)))
        return cls(specs)

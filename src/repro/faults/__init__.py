"""Fault injection: declarative plans, an injector, recovery timelines.

See :mod:`repro.faults.plan` and :mod:`repro.faults.injector`.
"""

from repro.faults.injector import FaultInjector, TimelineEntry
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec

__all__ = [
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "TimelineEntry",
]

"""Programmatic evaluation reports.

Builds the paper-vs-measured comparison (the content of EXPERIMENTS.md)
as data, so the CLI, notebooks, and tests can consume one source of
truth.  Each :class:`ExperimentRow` carries the experiment id, the
metric, the paper's value, our measured value, and whether the shape
criterion passed; :func:`run_evaluation` executes the fast experiments
end to end on a supplied (or freshly generated) trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.bandwidth import (
    herd_client_bandwidth_kbps,
    sp_savings_fraction,
)
from repro.analysis.cost import CostModel
from repro.analysis.cpu import CpuModel
from repro.attacks.intersection import intersection_attack
from repro.workload.cdr import CallTrace
from repro.workload.generator import SyntheticTraceConfig, generate_trace


@dataclass(frozen=True)
class ExperimentRow:
    """One paper-vs-measured comparison."""

    experiment: str
    metric: str
    paper: str
    measured: str
    shape_ok: bool


@dataclass
class EvaluationReport:
    """The collected comparison rows."""

    rows: List[ExperimentRow] = field(default_factory=list)

    def add(self, experiment: str, metric: str, paper: str,
            measured: str, shape_ok: bool) -> None:
        self.rows.append(ExperimentRow(experiment, metric, paper,
                                       measured, shape_ok))

    @property
    def all_shapes_hold(self) -> bool:
        return all(row.shape_ok for row in self.rows)

    def failures(self) -> List[ExperimentRow]:
        return [row for row in self.rows if not row.shape_ok]

    def to_markdown(self) -> str:
        lines = ["| experiment | metric | paper | measured | shape |",
                 "|---|---|---|---|---|"]
        for row in self.rows:
            mark = "✓" if row.shape_ok else "✗"
            lines.append(f"| {row.experiment} | {row.metric} | "
                         f"{row.paper} | {row.measured} | {mark} |")
        return "\n".join(lines)


def run_evaluation(trace: Optional[CallTrace] = None,
                   n_users: int = 4000,
                   seed: int = 20150817) -> EvaluationReport:
    """Run the fast (analytic + single-trace) experiments and report.

    The heavier sweeps (blocking sims, packet-level latency) live in
    the benchmark harness; this function covers the results that take
    seconds, for the CLI and for CI smoke checks.
    """
    if trace is None:
        cfg = SyntheticTraceConfig(n_users=n_users, days=1, seed=seed,
                                   max_degree=min(150, n_users - 1))
        trace = generate_trace(cfg)
    report = EvaluationReport()

    # E1: intersection attack.
    attack = intersection_attack(trace, bin_width=1.0)
    report.add("E1", "Tor calls traced @1s", "98.3%",
               f"{attack.traced_fraction:.1%}",
               attack.traced_fraction > 0.95)

    # E3: client bandwidth.
    herd_bw = herd_client_bandwidth_kbps(3)
    report.add("E3", "Herd client bandwidth (k=3)", "24 KB/s",
               f"{herd_bw:.0f} KB/s", herd_bw == 24.0)

    # E5: SP savings + duty cycle.
    for cpc, paper in ((5, "80%"), (50, "98%")):
        savings = sp_savings_fraction(n_users, cpc)
        report.add("E5", f"savings @{cpc}/channel", paper,
                   f"{savings:.0%}",
                   abs(savings - float(paper.strip('%')) / 100) < 0.02)
    duty = trace.peak_duty_cycle(n_users)
    report.add("E5", "peak duty cycle", "1.6%", f"{duty:.2%}",
               0.005 < duty < 0.03)

    # E6: cost.
    model = CostModel()
    sp_lo, sp_hi = model.per_user_range(1_000_000, use_sps=True)
    no_lo, _ = model.per_user_range(1_000_000, use_sps=False)
    report.add("E6", "$/user/month with SPs", "$0.10–$1.14",
               f"${sp_lo:.2f}–${sp_hi:.2f}",
               sp_lo < 1.14 and sp_hi > 0.10)
    report.add("E6", "without-SP premium", "two orders of magnitude",
               f"{no_lo / sp_hi:.0f}× the with-SP high end",
               no_lo > 10 * sp_hi)

    # E7: CPU model anchors.
    cpu = CpuModel()
    report.add("E7", "mix CPU @100 clients (no SP)", "59%",
               f"{cpu.mix_without_sp(100):.0%}",
               abs(cpu.mix_without_sp(100) - 0.59) < 0.05)
    report.add("E7", "mix CPU @100 clients (SP)", "3%",
               f"{cpu.mix_with_sp(100):.1%}",
               abs(cpu.mix_with_sp(100) - 0.03) < 0.02)

    # E9: data-plane unobservability, measured by herdscope.  Every
    # enabled channel carries exactly one downstream cell per round
    # regardless of call activity — payload is hidden in a constant-
    # rate stream (§3.4.1), so the cell census from the metrics
    # registry must total n_channels x rounds.
    from repro.api import SimConfig, Simulation
    n_channels, rounds = 4, 40
    run = Simulation(SimConfig(seed=seed, n_clients=8,
                               n_channels=n_channels,
                               call_pairs=1, trace_buffer=0)
                     ).run(rounds=rounds)
    cells = {s["labels"]["kind"]: s["value"]
             for s in run.metrics["herd_mix_cells_total"]["series"]}
    total = sum(cells.values())
    report.add("E9", "downstream cells per round",
               f"{n_channels} (constant-rate)",
               f"{total / rounds:.1f} ({cells.get('payload', 0):.0f} "
               f"payload / {cells.get('chaff', 0):.0f} chaff / "
               f"{cells.get('control', 0):.0f} control)",
               total == n_channels * rounds)
    return report

"""CPU-utilization model for mixes and SPs: the data behind Fig. 6.

The paper measured its prototype on a Dell OptiPlex 980: "without an
SP, the mix's network process has a CPU utilization of 59% for 100
clients, while an SP with one chaffed connection between mix and SP
reduces that utilization to only 3%.  The marginal CPU utilization for
supporting an additional client is .01% and .6% with and without the
SP, respectively.  The reason is that the network coding for an SP
requires far fewer CPU cycles than maintaining a chaffed connection
with multiple clients."

:class:`CpuModel` is mechanistic: per-packet I/O plus per-crypto-op
costs, with constants calibrated to the two published endpoints.

* Without an SP, the mix terminates one chaffed DTLS connection per
  client: 2 × 50 packets/s each (both directions at the G.711 rate),
  each packet paying system-call/interrupt + AEAD costs.
* With an SP, the mix terminates one chaffed connection to the SP per
  channel and does pure computation per client: one ChaCha20 chaff
  prediction + XOR per round — no per-client network I/O.
* The SP side is the mirror image: per-client packet I/O (which is why
  SP CPU grows with clients, Fig. 6 bottom) but no cryptography.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Packets per second per unit-rate connection, one direction (G.711).
PACKETS_PER_SECOND = 50.0


@dataclass(frozen=True)
class CpuCosts:
    """Calibrated fractional-CPU costs (fraction of one core per
    operation per second)."""

    #: CPU fraction per packet/s of network I/O (syscalls, interrupts,
    #: DTLS record processing).  Calibrated: 100 clients × 100 pkt/s
    #: × cost ≈ 59% − base.
    per_packet_io: float = 5.65e-5
    #: CPU fraction per chaff prediction + XOR per packet/s (pure
    #: compute).  Calibrated: marginal 0.01% per client at 50 rounds/s.
    per_coding_op: float = 2.0e-6
    #: Baseline process overhead (timers, GC, bookkeeping).
    base: float = 0.02


class CpuModel:
    """Predicts mix and SP CPU utilization (fraction of one core)."""

    def __init__(self, costs: CpuCosts = CpuCosts(),
                 packets_per_second: float = PACKETS_PER_SECOND):
        self.costs = costs
        self.pps = packets_per_second

    def _clamp(self, value: float) -> float:
        return max(0.0, min(1.0, value))

    def mix_without_sp(self, n_clients: int) -> float:
        """Mix terminating one chaffed connection per client (both
        directions)."""
        if n_clients < 0:
            raise ValueError("client count cannot be negative")
        pkts = n_clients * 2 * self.pps
        return self._clamp(self.costs.base
                           + pkts * self.costs.per_packet_io)

    def mix_with_sp(self, n_clients: int, n_channels: int = 1) -> float:
        """Mix behind an SP: chaffed connections only per channel,
        plus one coding operation per client per round."""
        if n_clients < 0 or n_channels < 0:
            raise ValueError("counts cannot be negative")
        io_pkts = n_channels * 2 * self.pps
        coding_ops = n_clients * self.pps
        return self._clamp(self.costs.base
                           + io_pkts * self.costs.per_packet_io
                           + coding_ops * self.costs.per_coding_op)

    def sp(self, n_clients: int, n_channels: int = 1) -> float:
        """SP: per-client packet I/O both directions, plus the XOR
        (no cryptography — it forwards opaque ciphertext)."""
        if n_clients < 0 or n_channels < 0:
            raise ValueError("counts cannot be negative")
        client_pkts = n_clients * 2 * self.pps
        mix_pkts = n_channels * 2 * self.pps
        coding_ops = n_clients * self.pps
        return self._clamp(self.costs.base
                           + (client_pkts + mix_pkts)
                           * self.costs.per_packet_io
                           + coding_ops * self.costs.per_coding_op)

    def marginal_per_client(self, with_sp: bool) -> float:
        """Fig. 6's marginal CPU per additional client."""
        if with_sp:
            return self.mix_with_sp(101) - self.mix_with_sp(100)
        return self.mix_without_sp(101) - self.mix_without_sp(100)

    def mix_memory_mb(self, n_clients: int) -> float:
        """Mix virtual memory: ~3.4 MB at 100 clients (§4.2), modelled
        as a base plus per-client session state."""
        return 3.0 + 0.004 * n_clients

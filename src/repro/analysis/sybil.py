"""Sybil-attack analysis (§3.7).

"If the adversary manages to control a large fraction of the clients
attached to a zone, he is able to reduce the anonymity of the remaining
legitimate clients proportionally. [...] Another approach for an
adversary is to control all but one of the clients within an SP
channel, leaving the remaining legitimate client as the only possible
active user.  However, such an attack would be difficult because the
mix controls which SPs a client attaches to. [...] By charging a
one-time sign-up fee, the system can further increase the cost of such
an attack."

This module quantifies those statements:

* :func:`effective_anonymity` — anonymity after subtracting Sybils.
* :func:`channel_capture_probability` — probability that a given
  channel ends up with ≤ 1 honest member under *mix-controlled random*
  assignment (the defence the paper relies on).
* :func:`expected_captured_channels` and :func:`sybil_attack_cost` —
  what zone-scale capture costs an adversary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


def effective_anonymity(zone_population: int, sybil_count: int) -> int:
    """Anonymity of a legitimate client when ``sybil_count`` of the
    zone's clients are adversary-controlled: the honest population."""
    if sybil_count < 0 or zone_population < 1:
        raise ValueError("invalid population parameters")
    if sybil_count >= zone_population:
        raise ValueError("sybils cannot exceed the population")
    return zone_population - sybil_count


def channel_capture_probability(sybil_fraction: float,
                                clients_per_channel: int) -> float:
    """P(a channel has at most one honest member) when the mix assigns
    clients to channels uniformly at random (binomial approximation:
    each of the c members is independently Sybil with probability f).

    Capture means every member but at most one is a Sybil — the
    remaining honest client would be the only possible active user of
    the channel.
    """
    if not 0.0 <= sybil_fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    if clients_per_channel < 1:
        raise ValueError("need at least one client per channel")
    f = sybil_fraction
    c = clients_per_channel
    all_sybil = f ** c
    one_honest = c * (1.0 - f) * f ** (c - 1)
    return all_sybil + one_honest


def expected_captured_channels(sybil_fraction: float,
                               n_channels: int,
                               clients_per_channel: int) -> float:
    """Expected number of captured channels in a zone."""
    if n_channels < 0:
        raise ValueError("channel count cannot be negative")
    return n_channels * channel_capture_probability(
        sybil_fraction, clients_per_channel)


@dataclass(frozen=True)
class SybilCost:
    """What mounting a Sybil campaign costs."""

    accounts: int
    signup_fees: float
    monthly_subscription: float

    @property
    def first_month_total(self) -> float:
        return self.signup_fees + self.monthly_subscription


def sybil_attack_cost(sybil_count: int, signup_fee: float = 5.0,
                      monthly_fee: float = 1.0) -> SybilCost:
    """Cost of operating ``sybil_count`` fake accounts: each needs "a
    new account, from a new IP address and using a different payment
    channel" plus the one-time sign-up fee the paper suggests."""
    if sybil_count < 0:
        raise ValueError("count cannot be negative")
    return SybilCost(
        accounts=sybil_count,
        signup_fees=sybil_count * signup_fee,
        monthly_subscription=sybil_count * monthly_fee,
    )


def sybils_needed_for_capture(target_probability: float,
                              clients_per_channel: int,
                              zone_population: int) -> Optional[int]:
    """Smallest Sybil count giving at least ``target_probability`` of
    capturing one *specific* channel, or None if unreachable below the
    population size.  Illustrates why per-channel targeting fails: the
    adversary cannot choose placement, so he must flood the zone."""
    if not 0.0 < target_probability < 1.0:
        raise ValueError("target probability must be in (0, 1)")
    for sybils in range(0, zone_population):
        f = sybils / zone_population
        if channel_capture_probability(
                f, clients_per_channel) >= target_probability:
            return sybils
    return None

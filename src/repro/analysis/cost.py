"""Operational cost model: §4.1.6's dollars per user/month.

"The cost ranges from $0.10 to $1.14 per month per subscriber.  The low
end of the range corresponds to a call volume of 1% of users
simultaneously making calls at any time and only 10% interzone calls;
while the high end [...] 2% of the users making calls at any time [...]
and 100% interzone calls.  The reason for the relatively low cost is
that intrazone traffic in EC2 does not incur charges, interzone traffic
incurs low charges, and traffic to SPs and clients costs the most. [...]
choosing not to include SPs [...] will cost two orders of magnitude
more per user ($10-100 per month per user)."

:class:`CostModel` reconstructs the estimate with 2015-era EC2 prices.
Chaffed links are charged at their *provisioned* rate around the clock
(that is the point of chaffing — the rate cannot track load), with
intra-DC traffic free, inter-region traffic cheap, and Internet egress
(to SPs or clients) dominant, exactly the structure the paper
describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.bandwidth import channels_for

SECONDS_PER_MONTH = 30 * 24 * 3600
HOURS_PER_MONTH = 30 * 24

#: Wire bytes per payload byte on a chaffed Herd link (coded packet
#: header, manifest, DTLS record, IP/UDP — measured from the packet
#: formats in repro.core).
WIRE_OVERHEAD = 1.6


@dataclass(frozen=True)
class EC2Pricing:
    """EC2-style pricing, defaults circa 2015 (us-east-1)."""

    #: $/hour for a mix instance (m3.medium on-demand, 2015).
    instance_hourly: float = 0.070
    #: $/GB egress to the Internet (first tiers, 2015).
    internet_egress_per_gb: float = 0.09
    #: $/GB between EC2 regions.
    inter_region_per_gb: float = 0.02
    #: $/GB within a data center (free on EC2).
    intra_dc_per_gb: float = 0.0


@dataclass
class CostBreakdown:
    """Monthly dollars, total and per component."""

    instances: float
    internet_egress: float
    inter_region: float
    intra_dc: float
    n_users: int

    @property
    def total(self) -> float:
        return (self.instances + self.internet_egress
                + self.inter_region + self.intra_dc)

    @property
    def per_user(self) -> float:
        if self.n_users <= 0:
            raise ValueError("need a positive user count")
        return self.total / self.n_users


class CostModel:
    """Monthly cost of one zone, with or without superpeers."""

    def __init__(self, pricing: Optional[EC2Pricing] = None,
                 unit_rate_kbps: float = 8.0,
                 clients_per_channel: int = 10,
                 direct_link_multiple: int = 3,
                 clients_per_mix_direct: int = 150,
                 channels_per_mix: int = 2000,
                 wire_overhead: float = WIRE_OVERHEAD):
        self.pricing = pricing or EC2Pricing()
        self.unit_rate_kbps = unit_rate_kbps
        self.clients_per_channel = clients_per_channel
        #: Direct client↔mix links carry "a small multiple of the unit
        #: rate u" (§3.1); 3 matches the SP-mode client rate.
        self.direct_link_multiple = direct_link_multiple
        #: Direct chaffed client links are CPU-expensive (Fig. 6: 59%
        #: CPU at 100 clients) — an instance handles ~150.
        self.clients_per_mix_direct = clients_per_mix_direct
        #: With SPs the mix's work is network coding — cheap (Fig. 6).
        self.channels_per_mix = channels_per_mix
        self.wire_overhead = wire_overhead

    def _gb_per_month(self, rate_units: float) -> float:
        """GB/month of a link group provisioned at ``rate_units`` call
        units, charged continuously (chaff never stops)."""
        return (rate_units * self.unit_rate_kbps * 1000.0
                * self.wire_overhead * SECONDS_PER_MONTH / 1e9)

    def monthly_cost(self, n_users: int, duty_cycle: float = 0.016,
                     interzone_fraction: float = 0.5,
                     use_sps: bool = True) -> CostBreakdown:
        if n_users <= 0:
            raise ValueError("need a positive user count")
        if not 0.0 < duty_cycle <= 1.0:
            raise ValueError("duty cycle must be in (0, 1]")
        if not 0.0 <= interzone_fraction <= 1.0:
            raise ValueError("interzone fraction must be in [0, 1]")

        # Peak simultaneous calls (each call occupies two users).
        active_calls = max(1.0, n_users * duty_cycle / 2.0)

        # Client-side links (the Internet-egress component).
        if use_sps:
            client_units = float(channels_for(n_users,
                                              self.clients_per_channel))
            n_mixes = max(1, -(-int(client_units)
                               // self.channels_per_mix))
        else:
            client_units = float(n_users * self.direct_link_multiple)
            n_mixes = max(1, -(-n_users // self.clients_per_mix_direct))

        # Inter-zone mix links: provisioned for the interzone share.
        inter_units = active_calls * interzone_fraction
        # Intra-zone hops (entry↔rendezvous) plus intrazone calls.
        intra_units = active_calls * (1.0 + (1.0 - interzone_fraction))

        return CostBreakdown(
            instances=n_mixes * self.pricing.instance_hourly
            * HOURS_PER_MONTH,
            internet_egress=self._gb_per_month(client_units)
            * self.pricing.internet_egress_per_gb,
            inter_region=self._gb_per_month(inter_units)
            * self.pricing.inter_region_per_gb,
            intra_dc=self._gb_per_month(intra_units)
            * self.pricing.intra_dc_per_gb,
            n_users=n_users,
        )

    def per_user_range(self, n_users: int, use_sps: bool = True
                       ) -> tuple:
        """The paper's sweep corners: (low, high) $/user/month for
        duty ∈ {1%, 2%} × interzone ∈ {10%, 100%}; the with-SP sweep
        additionally spans clients/channel ∈ {50, 5}."""
        if use_sps:
            low_model = CostModel(self.pricing, self.unit_rate_kbps,
                                  clients_per_channel=50)
            high_model = CostModel(self.pricing, self.unit_rate_kbps,
                                   clients_per_channel=5)
        else:
            low_model = high_model = self
        low = low_model.monthly_cost(n_users, duty_cycle=0.01,
                                     interzone_fraction=0.1,
                                     use_sps=use_sps).per_user
        high = high_model.monthly_cost(n_users, duty_cycle=0.02,
                                       interzone_fraction=1.0,
                                       use_sps=use_sps).per_user
        return low, high

    @staticmethod
    def sp_payment_overhead(payment_per_dollar: float = 1.0) -> float:
        """§4.1.6: "the cost per paying subscriber is an additional
        $0.14 per dollar we pay SPs"."""
        return 0.14 * payment_per_dollar

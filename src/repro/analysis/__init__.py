"""Evaluation analytics: anonymity sets, bandwidth, costs, CPU.

One module per axis of the paper's evaluation:

* :mod:`repro.analysis.anonymity` — Fig. 4 (anonymity-set sizes for
  Drac, Herd, Tor).
* :mod:`repro.analysis.bandwidth` — Fig. 5 (client bandwidth CDFs) and
  the SP offload factor n/a (§3.6, §4.2).
* :mod:`repro.analysis.cost` — §4.1.6 dollar costs per user/month on
  EC2-style pricing.
* :mod:`repro.analysis.cpu` — Fig. 6 CPU-utilization model for mixes
  and SPs.
"""

from repro.analysis.anonymity import (
    AnonymityFigure,
    anonymity_figure,
    herd_anonymity,
    tor_anonymity,
)
from repro.analysis.bandwidth import (
    herd_client_bandwidth_kbps,
    mix_client_side_rate_units,
    offload_factor,
    sp_savings_fraction,
)
from repro.analysis.cost import CostModel, CostBreakdown, EC2Pricing
from repro.analysis.cpu import CpuModel
from repro.analysis.sybil import (
    channel_capture_probability,
    effective_anonymity,
    sybil_attack_cost,
)

__all__ = [
    "AnonymityFigure",
    "anonymity_figure",
    "herd_anonymity",
    "tor_anonymity",
    "herd_client_bandwidth_kbps",
    "mix_client_side_rate_units",
    "offload_factor",
    "sp_savings_fraction",
    "CostModel",
    "CostBreakdown",
    "EC2Pricing",
    "CpuModel",
    "channel_capture_probability",
    "effective_anonymity",
    "sybil_attack_cost",
]

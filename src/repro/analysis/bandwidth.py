"""Bandwidth analytics: Fig. 5 and the superpeer offload (§3.6, §4.2).

* Herd clients behind SPs: "a client's bandwidth requirement is only
  24 KB/s (3 × 8 KB/s)" — k chaffed channel connections
  (:func:`herd_client_bandwidth_kbps`).  Clients connecting *directly*
  to a mix keep "only one connection" at unit rate.
* Mixes: without SPs, the mix terminates one unit-rate chaffed link per
  online client → n units.  With SPs, the mix↔SP links carry one unit
  per channel → C = n / clients_per_channel units.  The §4.1.6 savings
  ("between 80% and 98% with 5 and 50 clients per channel") are
  therefore 1 − 1/clients_per_channel, and the §3.6 bound is the
  offload factor n/a.
"""

from __future__ import annotations

from typing import Optional

from repro.voip.codec import Codec, G711


def herd_client_bandwidth_kbps(k: int = 3, codec: Codec = G711) -> float:
    """Constant Herd client bandwidth: k chaffed connections at the
    codec's unit rate (24 KB/s for k=3 with G.711)."""
    if k < 1:
        raise ValueError("k must be at least 1")
    return k * codec.payload_rate_bps / 1000.0


def channels_for(n_online: int, clients_per_channel: int) -> int:
    """Channels a zone provisions for n clients at the given packing
    (C = ⌈n / clients_per_channel⌉)."""
    if clients_per_channel < 1:
        raise ValueError("clients_per_channel must be at least 1")
    if n_online < 0:
        raise ValueError("client count cannot be negative")
    return -(-n_online // clients_per_channel)


def mix_client_side_rate_units(n_online: int,
                               n_channels: Optional[int] = None) -> float:
    """The mix's client-side chaffed rate, in call units.

    Without SPs (``n_channels is None``): one unit-rate link per online
    client → n units.  With SPs: one unit per channel on the mix↔SP
    links → C units.
    """
    if n_online < 0:
        raise ValueError("client count cannot be negative")
    if n_channels is None:
        return float(n_online)
    if n_channels < 0:
        raise ValueError("channel count cannot be negative")
    return float(n_channels)


def offload_factor(n_online: int, peak_active: int) -> float:
    """n/a: the maximum bandwidth reduction SPs can achieve (§3.6:
    "SPs can increase Herd's scalability by reducing the client-side
    bandwidth load of mixes by a factor of up to n/a")."""
    if peak_active <= 0:
        raise ValueError("peak active calls must be positive")
    if n_online < peak_active:
        raise ValueError("cannot have more active than online clients")
    return n_online / peak_active


def sp_savings_fraction(n_online: int, clients_per_channel: int) -> float:
    """Fraction of mix client-side bandwidth saved by SPs (§4.1.6:
    80%–98% for 5–50 clients per channel)."""
    without = mix_client_side_rate_units(n_online)
    if without == 0:
        return 0.0
    with_sp = mix_client_side_rate_units(
        n_online, channels_for(n_online, clients_per_channel))
    return 1.0 - with_sp / without

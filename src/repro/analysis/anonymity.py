"""Anonymity-set analytics: the data behind Fig. 4.

"We characterize the anonymity provided by each system as the number of
clients who could be the corresponding party, given one known party in
a call (anonymity set)."

* Drac: H-hop neighbourhood statistics
  (:meth:`repro.baselines.drac.DracModel.anonymity`).
* Herd: "the size of the anonymity set corresponds to the number of
  subscribers in the mobile dataset, who are assumed to be in a single
  zone" — i.e. the zone population, independent of workload.
* Tor: the per-call candidate sets left by the intersection attack.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.attacks.intersection import intersection_attack
from repro.baselines.drac import DracAnonymity, DracModel
from repro.workload.cdr import CallTrace
from repro.workload.datasets import DatasetSpec, MOBILE


@dataclass(frozen=True)
class AnonymityStats:
    """median / 10th / 90th percentile anonymity-set sizes."""

    system: str
    label: str
    median: float
    p10: float
    p90: float


@dataclass
class AnonymityFigure:
    """All series of Fig. 4."""

    rows: List[AnonymityStats] = field(default_factory=list)

    def row(self, system: str, label: str) -> AnonymityStats:
        for r in self.rows:
            if r.system == system and r.label == label:
                return r
        raise KeyError(f"no row for {system}/{label}")


def effective_anonymity_entropy(probabilities) -> float:
    """Effective anonymity-set size from a suspicion distribution.

    The cardinality metric ("N users could be the caller") overstates
    anonymity when the adversary's posterior is skewed.  The standard
    refinement is the entropy-based effective set size 2^H(p)
    (Serjantov–Danezis / Díaz et al.): uniform suspicion over N users
    gives exactly N; a point-mass gives 1.

    Herd's uniform candidate sets (see
    :mod:`repro.attacks.disclosure`) achieve the full 2^H = N; systems
    leaking per-user frequencies score lower even at equal set size.
    """
    import math
    probs = [p for p in probabilities if p > 0]
    if not probs:
        raise ValueError("need a non-empty distribution")
    total = sum(probs)
    if abs(total - 1.0) > 1e-9:
        probs = [p / total for p in probs]
    entropy = -sum(p * math.log2(p) for p in probs)
    return 2.0 ** entropy


def herd_anonymity(zone_population: int) -> AnonymityStats:
    """Herd's anonymity set: every client of the zone, for every call
    (median = p10 = p90 = zone size)."""
    if zone_population < 1:
        raise ValueError("zone population must be positive")
    return AnonymityStats("Herd", "zone", float(zone_population),
                          float(zone_population), float(zone_population))


def tor_anonymity(trace: CallTrace, bin_width: float = 1.0
                  ) -> AnonymityStats:
    """Tor's per-call anonymity sets under the intersection attack."""
    result = intersection_attack(trace, bin_width)
    return AnonymityStats(
        "Tor", "intersection",
        median=result.anonymity_set_percentile(50),
        p10=result.anonymity_set_percentile(10),
        p90=result.anonymity_set_percentile(90),
    )


def drac_rows(specs: Sequence[DatasetSpec], hops: Sequence[int] = (1, 2, 3),
              n_users: Optional[int] = None,
              rng: Optional[random.Random] = None) -> List[AnonymityStats]:
    rows = []
    for spec in specs:
        model = DracModel(spec, n_users=n_users,
                          rng=rng or random.Random(0))
        for h in hops:
            a: DracAnonymity = model.anonymity(h)
            rows.append(AnonymityStats(
                "Drac", f"{spec.name},H={h}",
                median=a.median, p10=a.p10, p90=a.p90))
    return rows


def anonymity_figure(trace: CallTrace, specs: Sequence[DatasetSpec],
                     zone_population: Optional[int] = None,
                     bin_width: float = 1.0,
                     rng: Optional[random.Random] = None
                     ) -> AnonymityFigure:
    """Assemble every series of Fig. 4 from a trace and dataset specs."""
    fig = AnonymityFigure()
    fig.rows.extend(drac_rows(specs, rng=rng))
    fig.rows.append(herd_anonymity(
        zone_population or MOBILE.paper_n_users))
    fig.rows.append(tor_anonymity(trace, bin_width))
    return fig

"""The unified simulation facade: one front door to the reproduction.

The repo grew three entry points with three calling conventions — the
in-memory :func:`~repro.simulation.testbed.build_testbed`, the
round-based :class:`~repro.simulation.live.LiveZone`, and the
fault-driven :func:`~repro.simulation.chaos.run_chaos`.  This module
puts one keyword-only surface in front of all of them:

>>> from repro import SimConfig, Simulation
>>> report = Simulation(SimConfig(seed=7)).run(rounds=50)
>>> report.metrics["herd_mix_cells_total"]["series"]  # doctest: +SKIP

Every :class:`Simulation` owns a :class:`~repro.obs.instrument
.Herdscope`, so every run produces a metrics snapshot and (optionally)
a JSONL trace stamped with *virtual* time — two runs with the same
:class:`SimConfig` are byte-identical.  The old entry points remain
callable; their positional forms warn with ``DeprecationWarning``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import execution as execution_registry
from repro.obs.export import render_json, render_prometheus
from repro.obs.instrument import Herdscope

SCENARIOS = ("live", "testbed", "chaos", "scenario")


class SimConfig:
    """Keyword-only configuration for one :class:`Simulation`.

    Not a dataclass on purpose: ``dataclass(kw_only=True)`` needs
    Python 3.10 and this repo supports 3.9, so the keyword-only
    contract is written out by hand.

    Parameters
    ----------
    scenario:
        ``"live"`` (default) — one zone's SP data plane at round
        granularity; ``"testbed"`` — in-memory deployment placing
        end-to-end calls through circuits; ``"chaos"`` — a fault plan
        replayed against a live deployment.
    seed:
        Master seed; one seed reproduces a whole run.
    n_clients, n_channels, n_sps, k:
        Zone shape (live/chaos scenarios).
    zone_id, client_prefix:
        Naming of the live zone and its clients.
    zone_specs:
        Testbed zones as (zone_id, site_id, n_mixes) tuples
        (testbed scenario; ``None`` = the EU + NA default).
    call_pairs:
        Concurrent calls started at round/time zero.
    chaos:
        Optional :class:`~repro.simulation.chaos.ChaosConfig`; its
        seed/n_clients/n_channels are overridden by this config's.
    scenario_def:
        A :class:`~repro.scenario.model.Scenario` (the declarative
        composed-adversity scenario engine).  Passing one selects
        ``scenario="scenario"`` automatically; the scenario's own
        seed, shape, and horizon drive the run.
    execution:
        The execution engine, resolved by name through the
        :mod:`repro.execution` registry: ``"event"`` (default) — the
        classical per-cell / per-channel hot path; ``"batch"`` —
        round-synchronous batch execution (one core entry point per
        component per round, vectors of cells on the wire);
        ``"batch-v2"`` — the vectorized plane (run-length cell
        vectors with aggregate chaff accounting, shardable across
        worker processes); ``"asyncio"`` — the real-network plane
        (the same round-synchronous protocol, every cell carried as
        a framed UDP datagram over loopback, DESIGN.md §14).  The
        engines are observationally equivalent: a seeded run
        produces byte-identical metrics snapshots, traces, and
        adversary observations under all of them (DESIGN.md §9,
        §13); they differ only in cost — and the real-network plane
        additionally reports host-socket accounting in
        ``report.detail["net"]``, a side channel like ``perf``.
    shards:
        Worker-process count for shardable engines (``batch-v2``).
        ``None`` / ``1`` runs single-process; requesting ``shards >
        1`` on a non-shardable engine raises ``ValueError``.
    net_processes:
        Real-network (``"asyncio"``) plane only: host the UDP
        receive endpoints in a separate worker process, so every
        cell datagram genuinely crosses a process boundary
        (:mod:`repro.net.procs`).  Raises ``ValueError`` on ``"sim"``
        transports.
    wiretap:
        Live scenario only: materialize the zone's wire plane and tap
        every link with a global passive observer; the observation
        stream lands in ``report.detail["wiretap"]``.
    trace_path:
        Optional JSONL file receiving the full trace stream.
    trace_buffer:
        In-memory trace ring capacity (0 disables the ring).
    profile:
        Attach a :class:`~repro.obs.prof.profiler.PhaseProfiler` to
        the run: per-phase wall time and call/cell counters land in
        ``report.perf``.  Profiling reads the host clock (through the
        sanctioned perfclock module only) but its output is a side
        channel — metrics, traces, adversary observations, and every
        determinism key stay byte-identical to an unprofiled run
        (DESIGN.md §11).
    """

    __slots__ = ("scenario", "seed", "n_clients", "n_channels",
                 "n_sps", "k", "zone_id", "zone_specs",
                 "client_prefix", "call_pairs", "chaos",
                 "scenario_def", "trace_path", "trace_buffer",
                 "execution", "shards", "net_processes", "wiretap",
                 "profile")

    def __init__(self, *, scenario: str = "live",
                 seed: int = 20150817, n_clients: int = 12,
                 n_channels: int = 4, n_sps: int = 1, k: int = 2,
                 zone_id: str = "zone-EU",
                 zone_specs: Optional[
                     Sequence[Tuple[str, str, int]]] = None,
                 client_prefix: str = "client", call_pairs: int = 1,
                 chaos=None, scenario_def=None,
                 trace_path: Optional[str] = None,
                 trace_buffer: int = 4096,
                 execution: str = "event",
                 shards: Optional[int] = None,
                 net_processes: bool = False,
                 wiretap: bool = False,
                 profile: bool = False):
        if scenario_def is not None and scenario == "live":
            scenario = "scenario"
        if scenario == "scenario" and scenario_def is None:
            raise ValueError("scenario='scenario' needs scenario_def="
                             "Scenario(...)")
        if scenario not in SCENARIOS:
            raise ValueError(f"scenario must be one of {SCENARIOS}, "
                             f"not {scenario!r}")
        plane_spec = execution_registry.resolve(execution, shards)
        if net_processes and plane_spec.transport != "udp":
            raise ValueError(
                f"net_processes applies to the real-network "
                f"transport only; plane {plane_spec.name!r} runs "
                f"on {plane_spec.transport!r}")
        if call_pairs < 0 or 2 * call_pairs > n_clients:
            raise ValueError("call_pairs needs two clients per call")
        self.scenario = scenario
        self.seed = seed
        self.n_clients = n_clients
        self.n_channels = n_channels
        self.n_sps = n_sps
        self.k = k
        self.zone_id = zone_id
        self.zone_specs = zone_specs
        self.client_prefix = client_prefix
        self.call_pairs = call_pairs
        self.chaos = chaos
        self.scenario_def = scenario_def
        self.trace_path = trace_path
        self.trace_buffer = trace_buffer
        self.execution = plane_spec.name
        self.shards = plane_spec.shards
        self.net_processes = bool(net_processes)
        self.wiretap = wiretap
        self.profile = profile

    def __repr__(self) -> str:
        return (f"SimConfig(scenario={self.scenario!r}, "
                f"seed={self.seed}, n_clients={self.n_clients}, "
                f"n_channels={self.n_channels}, "
                f"call_pairs={self.call_pairs}, "
                f"execution={self.execution!r})")


class RunReport:
    """What one :meth:`Simulation.run` produced."""

    __slots__ = ("scenario", "seed", "rounds_run", "metrics",
                 "trace_events", "trace_path", "detail", "perf",
                 "engine", "shards")

    def __init__(self, *, scenario: str, seed: int, rounds_run: int,
                 metrics: Dict[str, Any], trace_events: Tuple,
                 trace_path: Optional[str], detail: Any,
                 perf: Optional[Dict[str, Any]] = None,
                 engine: str = "event", shards: int = 1):
        self.scenario = scenario
        self.seed = seed
        self.rounds_run = rounds_run
        #: The execution engine the run used (registry name) and its
        #: shard count — the same vocabulary the CLI flags
        #: ``--engine`` / ``--shards`` use.
        self.engine = engine
        self.shards = shards
        #: Deterministic :meth:`~repro.obs.metrics.MetricsRegistry
        #: .snapshot` of every instrument the run touched.
        self.metrics = metrics
        #: Tail of the trace stream (the scope's ring buffer).
        self.trace_events = trace_events
        self.trace_path = trace_path
        #: Scenario-specific payload: a dict for live/testbed runs, a
        #: :class:`~repro.simulation.chaos.ChaosReport` for chaos.
        self.detail = detail
        #: Host-time phase profile (``PhaseProfiler.report()``) when
        #: the run was configured with ``profile=True``; ``None``
        #: otherwise.  A side channel: never part of the metrics
        #: snapshot, traces, or any determinism key.
        self.perf = perf

    def to_prometheus(self) -> str:
        """The metrics snapshot in Prometheus exposition format."""
        return render_prometheus(self.metrics)

    def to_json(self, indent: int = 2) -> str:
        """The metrics snapshot as canonical JSON."""
        return render_json(self.metrics, indent=indent)

    def counter_value(self, name: str,
                      labels: Optional[Dict[str, str]] = None) -> float:
        """Convenience lookup into the snapshot (0.0 when absent)."""
        want = {str(k): str(v) for k, v in (labels or {}).items()}
        for series in self.metrics.get(name, {}).get("series", ()):
            if series["labels"] == want:
                return series["value"]
        return 0.0

    def __repr__(self) -> str:
        return (f"RunReport(scenario={self.scenario!r}, "
                f"seed={self.seed}, rounds_run={self.rounds_run}, "
                f"metrics={len(self.metrics)} names, "
                f"trace_events={len(self.trace_events)})")


class Simulation:
    """One configured, instrumented run.

    A Simulation is one-shot: :meth:`run` drives the scenario, closes
    the trace sinks (so a ``trace_path`` file is complete on return),
    and hands back a :class:`RunReport`.  Construct a new Simulation
    for a new run — reusing one would splice two runs into one trace.
    """

    def __init__(self, config: Optional[SimConfig] = None):
        self.config = config or SimConfig()
        self.scope = Herdscope(trace_path=self.config.trace_path,
                               trace_buffer=self.config.trace_buffer)
        if self.config.profile:
            from repro.obs.prof.profiler import PhaseProfiler
            self.profiler: Optional[PhaseProfiler] = PhaseProfiler()
        else:
            self.profiler = None
        self._finished = False

    def run(self, rounds: Optional[int] = None, *,
            until: Optional[float] = None) -> RunReport:
        """Drive the scenario for ``rounds`` data-plane rounds (live /
        testbed) or to virtual time ``until`` (chaos horizon).  Exactly
        one of the two may be given; the scenario's natural default is
        used otherwise (50 rounds, or the chaos plan's horizon)."""
        if self._finished:
            raise RuntimeError("this Simulation already ran; build a "
                               "new one for a new run")
        if rounds is not None and until is not None:
            raise ValueError("pass rounds= or until=, not both")
        cfg = self.config
        if cfg.scenario == "live":
            rounds_run, detail = self._run_live(
                50 if rounds is None and until is None
                else int(until) if rounds is None else rounds)
        elif cfg.scenario == "testbed":
            rounds_run, detail = self._run_testbed(
                rounds if rounds is not None else 50)
        elif cfg.scenario == "scenario":
            rounds_run, detail = self._run_scenario(until)
        else:
            rounds_run, detail = self._run_chaos(until)
        self._finished = True
        prof = self.profiler
        if prof is not None:
            prof.begin("metrics-flush")
        snapshot = self.scope.snapshot()
        ring = self.scope.ring
        events = tuple(ring.events) if ring is not None else ()
        self.scope.close()
        if prof is not None:
            prof.end()
        return RunReport(scenario=cfg.scenario, seed=cfg.seed,
                         rounds_run=rounds_run, metrics=snapshot,
                         trace_events=events,
                         trace_path=cfg.trace_path, detail=detail,
                         perf=prof.report() if prof is not None
                         else None,
                         engine=cfg.execution, shards=cfg.shards)

    # -- scenarios ------------------------------------------------------------

    def _call_pairs(self) -> List[Tuple[str, str]]:
        prefix = self.config.client_prefix
        return [(f"{prefix}-{2 * i}", f"{prefix}-{2 * i + 1}")
                for i in range(self.config.call_pairs)]

    def _run_live(self, rounds: int) -> Tuple[int, Dict[str, Any]]:
        from repro.core.callmanager import CallState
        from repro.simulation.live import LiveZone
        cfg = self.config
        zone = LiveZone(n_clients=cfg.n_clients,
                        n_channels=cfg.n_channels, k=cfg.k,
                        n_sps=cfg.n_sps, seed=cfg.seed,
                        zone_id=cfg.zone_id,
                        client_prefix=cfg.client_prefix,
                        execution=cfg.execution, shards=cfg.shards,
                        net_processes=cfg.net_processes)
        if self.profiler is not None:
            # Before attach_wire, so the fabric (and its links) picks
            # the profiler up on creation.
            self.profiler.attach_zone(zone)
        # The real-network plane always materializes the wire — the
        # datagrams *are* the transport; the simulator planes only
        # pay for a wire image when an adversary taps it.
        fabric = zone.attach_wire() \
            if cfg.wiretap or zone.transport == "udp" else None
        self.scope.use_clock(lambda: float(zone.round_index))
        self.scope.attach_live_zone(zone)
        for caller, callee in self._call_pairs():
            zone.start_call(caller, callee)
        for _ in range(rounds):
            for live in zone.clients.values():
                if live.agent.state is CallState.IN_CALL:
                    zone.say(live.client.client_id,
                             f"v{zone.round_index}".encode())
            zone.step()
        in_call = sum(1 for live in zone.clients.values()
                      if live.agent.state is CallState.IN_CALL)
        detail = {
            "zone_id": cfg.zone_id,
            "engine": cfg.execution,
            "shards": cfg.shards,
            "clients_in_call": in_call,
            "calls_blocked": zone.manager.calls_blocked,
        }
        if fabric is not None:
            # Sharded engines defer tap fan-out to worker processes;
            # the merge restores canonical order (no-op otherwise).
            fabric.finalize()
            if cfg.wiretap:
                # The adversary's view, as plain tuples:
                # byte-identical across engines (the equivalence
                # contract); the engine cost stats beside it are the
                # part that is allowed to — and should — differ.
                detail["wiretap"] = {
                    "observations": [
                        (o.time, o.size, o.src, o.dst)
                        for o in fabric.observer.observations],
                    "cells_carried": fabric.cells_carried,
                    "wire_events_processed": fabric.events_processed,
                }
            net = fabric.net_report()
            if net is not None:
                # Host-network side channel (real-socket accounting,
                # wall-clock latency): like ``perf``, never part of
                # metrics, traces, or any determinism key.
                detail["net"] = net
        return zone.round_index, detail

    def _run_testbed(self, rounds: int) -> Tuple[int, Dict[str, Any]]:
        from repro.simulation.testbed import build_testbed
        cfg = self.config
        bed = build_testbed(cfg.zone_specs, seed=cfg.seed)
        frame_clock = {"round": 0}
        self.scope.use_clock(lambda: float(frame_clock["round"]))
        zone_ids = list(bed.zones)
        for i in range(cfg.n_clients):
            bed.add_client(f"{cfg.client_prefix}-{i}",
                           zone_ids[i % len(zone_ids)])
        sessions = []
        frames = self.scope.registry.counter(
            "herd_e2e_frames_total",
            help="voice frames carried end to end through circuits")
        frame_bytes = self.scope.registry.counter(
            "herd_e2e_frame_bytes_total",
            help="voice payload bytes carried end to end")
        for caller, callee in self._call_pairs():
            bed.ready_for_calls(caller)
            bed.ready_for_calls(callee)
            sessions.append(bed.call(caller, callee))
        delivered = 0
        batch = execution_registry.get_plane(
            cfg.execution).zone_mode == "batch"
        for r in range(rounds):
            frame_clock["round"] = r
            payload = b"\x42" * 160
            this_round = 0
            for session in sessions:
                for direction in ("caller_to_callee",
                                  "callee_to_caller"):
                    if session.send_voice(direction, payload) == \
                            payload:
                        this_round += 1
                        if not batch:
                            frames.inc()
                            frame_bytes.inc(len(payload))
            if batch and this_round:
                # One bulk update per round instead of one per frame;
                # same totals, same updated_at stamp (every per-frame
                # inc of the round reads the same round clock), so
                # snapshots stay byte-identical across engines.
                frames.add(this_round)
                frame_bytes.add(this_round * len(payload))
            delivered += this_round
        frame_clock["round"] = rounds
        return rounds, {
            "zones": zone_ids,
            "calls": len(sessions),
            "engine": cfg.execution,
            "execution": cfg.execution,
            "frames_delivered": delivered,
        }

    def _run_chaos(self, until: Optional[float]) -> Tuple[int, Any]:
        from dataclasses import replace
        from repro.simulation.chaos import ChaosConfig, run_chaos
        cfg = self.config
        chaos_cfg = cfg.chaos or ChaosConfig()
        chaos_cfg = replace(chaos_cfg, seed=cfg.seed,
                            n_clients=cfg.n_clients,
                            n_channels=cfg.n_channels,
                            call_pairs=cfg.call_pairs,
                            execution=cfg.execution,
                            shards=cfg.shards)
        if until is not None:
            chaos_cfg = replace(chaos_cfg, horizon_s=float(until))
        report = run_chaos(chaos_cfg, scope=self.scope,
                           profiler=self.profiler)
        return report.rounds_run, report

    def _run_scenario(self, until: Optional[float]) -> Tuple[int, Any]:
        from repro.scenario.engine import execute
        cfg = self.config
        scenario = cfg.scenario_def
        if until is not None and float(until) != scenario.horizon_s:
            scenario = scenario.with_horizon(float(until))
        outcome = execute(scenario, execution=cfg.execution,
                          shards=cfg.shards,
                          net_processes=cfg.net_processes,
                          scope=self.scope,
                          profiler=self.profiler)
        return outcome.rounds_run, outcome

"""Reporters: render a :class:`LintResult` as text, JSON, or SARIF.

SARIF 2.1.0 output lets the CI job upload findings where code-scanning
UIs can ingest them; JSON is the stable machine interface for scripts;
text is the human default.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.lint.engine import Finding, LintResult, all_rules

HERDLINT_VERSION = "2.0.0"


def render_text(result: LintResult, show_suppressed: bool = False) -> str:
    lines: List[str] = []
    for finding in result.findings:
        if finding.suppressed and not show_suppressed:
            continue
        if finding.suppressed:
            marker = " (suppressed)"
        elif finding.baselined:
            marker = " (baselined)"
        elif finding.severity == "note":
            marker = " (note)"
        else:
            marker = ""
        lines.append(f"{finding.path}:{finding.line}:{finding.col}: "
                     f"{finding.rule_id} {finding.message}{marker}")
    active = len(result.active)
    extras = [f"{len(result.suppressed)} suppressed"]
    if result.baselined:
        extras.append(f"{len(result.baselined)} baselined")
    if result.notes:
        extras.append(f"{len(result.notes)} notes")
    extras.append(f"{result.files_scanned} files scanned")
    lines.append(f"herdlint: {active} finding"
                 f"{'' if active == 1 else 's'} "
                 f"({', '.join(extras)})")
    return "\n".join(lines) + "\n"


def _finding_dict(finding: Finding) -> Dict[str, object]:
    return {
        "rule": finding.rule_id,
        "message": finding.message,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "severity": finding.severity,
        "suppressed": finding.suppressed,
        "baselined": finding.baselined,
    }


def render_json(result: LintResult) -> str:
    payload = {
        "tool": "herdlint",
        "version": HERDLINT_VERSION,
        "files_scanned": result.files_scanned,
        "findings": [_finding_dict(f) for f in result.findings],
        "summary": {
            "total": len(result.findings),
            "active": len(result.active),
            "suppressed": len(result.suppressed),
            "baselined": len(result.baselined),
            "notes": len(result.notes),
        },
        "flow_cache": {
            "hits": result.flow_cache_hits,
            "misses": result.flow_cache_misses,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def render_sarif(result: LintResult) -> str:
    rules_meta = [{
        "id": rule.rule_id,
        "name": type(rule).__name__,
        "shortDescription": {"text": rule.title},
        "fullDescription": {"text": rule.rationale},
        "defaultConfiguration": {"level": rule.severity},
    } for rule in all_rules()]
    results = []
    for finding in result.findings:
        entry: Dict[str, object] = {
            "ruleId": finding.rule_id,
            "level": finding.severity,
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {"startLine": finding.line,
                               "startColumn": finding.col},
                },
            }],
        }
        if finding.suppressed:
            entry["suppressions"] = [{"kind": "inSource"}]
        elif finding.baselined:
            entry["suppressions"] = [{"kind": "external"}]
        results.append(entry)
    sarif = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "herdlint",
                    "informationUri": "https://example.invalid/herdlint",
                    "version": HERDLINT_VERSION,
                    "rules": rules_meta,
                },
            },
            "results": results,
        }],
    }
    return json.dumps(sarif, indent=2, sort_keys=True) + "\n"


RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}

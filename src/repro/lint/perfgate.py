"""The flow-analysis cost gate: ``python -m repro.lint.perfgate``.

Times a syntactic-only lint of the given paths (``flow=False`` — the
pre-herdflow behaviour) against a full run on a warm summary cache,
prints both, and exits nonzero when the dataflow pass more than
doubles the floor.  CI runs this after seeding ``.herdlint-cache.json``
so the measured run is the steady-state cost developers actually pay,
not a cold-cache worst case.

This deliberately reads the wall clock: it *measures* the linter, it
is not part of any seeded simulation (and lives outside herdlint's
HL001 scope).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.lint.engine import LintConfig, run_lint

DEFAULT_MAX_RATIO = 2.0


def measure(paths: List[str], cache_path: str) -> tuple:
    """(pre-flow seconds, full-flow seconds, LintResult of the flow
    run).  The flow run uses the summary cache at ``cache_path``."""
    t0 = time.perf_counter()
    run_lint(paths, LintConfig(flow=False))
    floor = time.perf_counter() - t0

    t0 = time.perf_counter()
    result = run_lint(paths, LintConfig(cache_path=cache_path))
    flow = time.perf_counter() - t0
    return floor, flow, result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint.perfgate",
        description="fail when the herdflow dataflow pass exceeds "
                    "MAX_RATIO x the syntactic-only lint time")
    parser.add_argument("paths", nargs="*", default=["src"])
    parser.add_argument("--cache", default=".herdlint-cache.json")
    parser.add_argument("--max-ratio", type=float,
                        default=DEFAULT_MAX_RATIO)
    args = parser.parse_args(argv)

    floor, flow, result = measure(args.paths, args.cache)
    ratio = flow / floor if floor > 0 else float("inf")
    print(f"herdlint perfgate: pre-flow floor {floor:.2f}s, "
          f"warm-cache flow {flow:.2f}s, ratio {ratio:.2f}x "
          f"(limit {args.max_ratio:.1f}x; cache "
          f"{result.flow_cache_hits} reused / "
          f"{result.flow_cache_misses} analysed)")
    if ratio > args.max_ratio:
        print("herdlint perfgate: FAIL — dataflow pass is too slow",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Taint lattice, transfer functions, fixpoint, and summaries.

The lattice is the powerset of :class:`Taint` facts ordered by
inclusion; join is set union, so the analysis is a classic monotone
forward dataflow that terminates (the fact universe per function is
finite).  A fact is ``(label, origin)`` where ``label`` classifies the
flow ("secret", "seeded", "nondet", or the synthetic ``param:<i>``
markers used to build interprocedural summaries) and ``origin`` is the
human-readable provenance ("session_key", "os.urandom()") rendered
into findings.

Each function is analysed once per fixpoint round against the current
:class:`FunctionSummary` table; summaries say, per function, which
labels its return value carries, which parameters flow to the return,
which parameters reach a sink (transitively, through further calls),
which parameters feed a probe (e.g. an RNG constructor), and whether
the function (transitively) performs a blocking call.  Iterating the
per-function analysis over a callee-first order until the table stops
changing yields the interprocedural solution; recursion converges
because summaries only grow.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.lint.flow.callgraph import CallGraph, FunctionInfo
from repro.lint.flow.cfg import CFG, HeaderStmt, build_cfg

LABEL_SECRET = "secret"
LABEL_SEEDED = "seeded"
LABEL_NONDET = "nondet"
_PARAM_PREFIX = "param:"


@dataclass(frozen=True)
class Taint:
    label: str
    origin: str

    def is_param(self) -> bool:
        return self.label.startswith(_PARAM_PREFIX)

    @property
    def param_index(self) -> int:
        return int(self.label[len(_PARAM_PREFIX):])


TaintSet = FrozenSet[Taint]
EMPTY: TaintSet = frozenset()

#: Variable environment of one program point.
TaintState = Dict[str, TaintSet]


def join(a: TaintState, b: TaintState) -> TaintState:
    if not a:
        return dict(b)
    out = dict(a)
    for name, taints in b.items():
        existing = out.get(name)
        out[name] = taints if existing is None else existing | taints
    return out


def states_equal(a: TaintState, b: TaintState) -> bool:
    return a == b


# ---------------------------------------------------------------------------
# Events the analysis emits (consumed by rules, serialised by the cache)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SinkHit:
    """A tainted value reaching a sink (log call, f-string, repr,
    str.format, exception message)."""

    kind: str
    line: int
    col: int
    label: str
    origin: str
    #: Call chain the taint crossed to get here ("" = same function).
    via: Tuple[str, ...] = ()


@dataclass(frozen=True)
class ProbeHit:
    """A probed constructor call (e.g. ``random.Random``) with the
    taint labels of each argument."""

    probe: str
    callee: str
    line: int
    col: int
    arg_labels: Tuple[Tuple[str, ...], ...]
    #: Param indices of the *enclosing* function feeding each arg, for
    #: lifting the probe into the function's summary.
    arg_params: Tuple[Tuple[int, ...], ...] = ()


@dataclass(frozen=True)
class BlockingCall:
    """A direct or transitive blocking call inside a function."""

    callee: str
    line: int
    col: int
    via: Tuple[str, ...] = ()


@dataclass
class FunctionSummary:
    """Interprocedural facts about one function."""

    return_labels: Tuple[Tuple[str, str], ...] = ()
    param_to_return: Tuple[int, ...] = ()
    #: param index -> sink hits that parameter's taint reaches.
    param_sinks: Dict[int, Tuple[SinkHit, ...]] = field(
        default_factory=dict)
    #: param index -> probes that parameter feeds.
    param_probes: Dict[int, Tuple[ProbeHit, ...]] = field(
        default_factory=dict)
    blocking: Tuple[BlockingCall, ...] = ()

    def key(self) -> Tuple:
        return (self.return_labels, self.param_to_return,
                tuple(sorted((k, v) for k, v in
                             self.param_sinks.items())),
                tuple(sorted((k, v) for k, v in
                             self.param_probes.items())),
                self.blocking)


@dataclass
class FunctionAnalysis:
    """Everything the reporting pass produced for one function."""

    info: FunctionInfo
    summary: FunctionSummary
    sink_hits: List[SinkHit] = field(default_factory=list)
    probe_hits: List[ProbeHit] = field(default_factory=list)
    blocking_calls: List[BlockingCall] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Specification: sources, sinks, sanitizers, probes
# ---------------------------------------------------------------------------

_SECRET_EXACT = {"ikm", "prk", "okm", "secret", "shared_secret",
                 "key_material", "secret_material"}
_SECRET_SUFFIXES = ("_key", "_secret", "_ikm", "_prk")
_CRYPTO_ONLY_SECRETS = {"seed", "private_bytes"}

_SEEDED_NAME = re.compile(r"(^|_)(seed|rng|prng|random_state)s?$")

#: Calls whose result is nondeterministic across processes/runs.
NONDET_CALLS = {
    "os.urandom", "os.getpid", "os.getrandom",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbits", "secrets.randbelow", "secrets.choice",
    "uuid.uuid1", "uuid.uuid4",
    "random.SystemRandom",
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "id", "hash", "object",
}

#: Calls that neutralise taint (reveal nothing about the value).
SANITIZER_CALLS = {
    "len", "bool", "type", "isinstance", "issubclass", "callable",
    "hmac.compare_digest",
}

#: Probed RNG constructors (HL007).
RNG_CONSTRUCTORS = {
    "random.Random": "rng",
    "numpy.random.default_rng": "rng",
    "numpy.random.Generator": "rng",
}

#: Blocking calls that must not run inside ``async def`` (HL102) —
#: qualified prefixes; a match on either the full name or a prefix up
#: to a dot counts.
BLOCKING_CALLS = {
    "time.sleep",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "os.system", "os.waitpid",
    "socket.create_connection", "socket.socket",
    "urllib.request.urlopen",
    "open",
}

_LOG_METHODS = {"debug", "info", "warning", "warn", "error",
                "exception", "critical", "log"}
_LOGGERISH_ROOTS = {"logger", "log", "_logger", "_log"}


def is_secret_name(name: str, in_crypto: bool) -> bool:
    lowered = name.lower()
    # "determinism_key"/"cache_key" style names are content hashes and
    # lookup keys, not key material.
    if ("public" in lowered or "verify" in lowered
            or "determinism" in lowered or "cache" in lowered):
        return False
    if lowered in _SECRET_EXACT:
        return True
    if any(lowered.endswith(suffix) for suffix in _SECRET_SUFFIXES):
        return True
    return in_crypto and lowered in _CRYPTO_ONLY_SECRETS


def is_seeded_name(name: str) -> bool:
    return _SEEDED_NAME.search(name.lower()) is not None


@dataclass
class TaintSpec:
    """Configurable sources/sinks/sanitizers/probes.

    The defaults encode the Herd contracts; tests construct narrower
    specs to exercise the machinery in isolation.
    """

    secret_names: Callable[[str, bool], bool] = is_secret_name
    seeded_names: Callable[[str], bool] = is_seeded_name
    nondet_calls: Set[str] = field(
        default_factory=lambda: set(NONDET_CALLS))
    sanitizer_calls: Set[str] = field(
        default_factory=lambda: set(SANITIZER_CALLS))
    probes: Dict[str, str] = field(
        default_factory=lambda: dict(RNG_CONSTRUCTORS))
    blocking_calls: Set[str] = field(
        default_factory=lambda: set(BLOCKING_CALLS))
    #: Module suffixes whose functions return secret material even
    #: when the body is outside the scanned set.
    secret_modules: Tuple[str, ...] = (".kdf", "crypto.keys")

    def name_taints(self, name: str, in_crypto: bool) -> TaintSet:
        taints = set()
        if self.secret_names(name, in_crypto):
            taints.add(Taint(LABEL_SECRET, name))
        if self.seeded_names(name):
            taints.add(Taint(LABEL_SEEDED, name))
        return frozenset(taints)


DEFAULT_SPEC = TaintSpec()


# ---------------------------------------------------------------------------
# The per-function analysis
# ---------------------------------------------------------------------------


class _FunctionTainter:
    def __init__(self, info: FunctionInfo, cfg: CFG, spec: TaintSpec,
                 graph: CallGraph,
                 summaries: Dict[str, FunctionSummary]):
        self.info = info
        self.cfg = cfg
        self.spec = spec
        self.graph = graph
        self.summaries = summaries
        self.in_crypto = "crypto" in info.ctx.segments
        self.sink_hits: List[SinkHit] = []
        self.probe_hits: List[ProbeHit] = []
        self.blocking_calls: List[BlockingCall] = []
        self.return_taints: Set[Taint] = set()
        #: nodes already reported, to avoid duplicates across the
        #: fixpoint revisits of a block.
        self._seen_events: Set[Tuple] = set()

    # -- entry state --------------------------------------------------

    def initial_state(self) -> TaintState:
        state: TaintState = {}
        for index, param in enumerate(self.info.params):
            taints = set(self.spec.name_taints(param, self.in_crypto))
            taints.add(Taint(f"{_PARAM_PREFIX}{index}", param))
            state[param] = frozenset(taints)
        for arg in [*self.info.node.args.kwonlyargs] if hasattr(
                self.info.node, "args") else []:
            state[arg.arg] = self.spec.name_taints(
                arg.arg, self.in_crypto)
        return state

    # -- fixpoint driver ----------------------------------------------

    def run(self) -> None:
        entry_state = self.initial_state()
        in_states: Dict[int, TaintState] = {self.cfg.entry: entry_state}
        order = self.cfg.reachable_blocks()
        preds = self.cfg.predecessors
        worklist = list(order)
        out_states: Dict[int, TaintState] = {}
        iterations = 0
        limit = max(64, 8 * len(order))
        while worklist and iterations < limit:
            iterations += 1
            bid = worklist.pop(0)
            state: TaintState = {}
            if bid == self.cfg.entry:
                state = dict(entry_state)
            for pred in preds.get(bid, ()):
                if pred in out_states:
                    state = join(state, out_states[pred])
            state = join(in_states.get(bid, {}), state)
            in_states[bid] = state
            out = dict(state)
            for stmt in self.cfg.blocks[bid].statements:
                out = self.transfer(stmt, out)
            if bid not in out_states or \
                    not states_equal(out_states[bid], out):
                out_states[bid] = out
                for succ in self.cfg.blocks[bid].successors:
                    if succ not in worklist:
                        worklist.append(succ)

    def result(self) -> FunctionAnalysis:
        summary = FunctionSummary()
        concrete = tuple(sorted(
            (t.label, t.origin) for t in self.return_taints
            if not t.is_param()))
        summary.return_labels = concrete
        summary.param_to_return = tuple(sorted(
            {t.param_index for t in self.return_taints if t.is_param()}))
        param_sinks: Dict[int, List[SinkHit]] = {}
        for hit in self.sink_hits:
            if hit.label.startswith(_PARAM_PREFIX):
                index = int(hit.label[len(_PARAM_PREFIX):])
                param_sinks.setdefault(index, []).append(hit)
        summary.param_sinks = {
            k: tuple(v) for k, v in sorted(param_sinks.items())}
        param_probes: Dict[int, List[ProbeHit]] = {}
        for hit in self.probe_hits:
            for params in hit.arg_params:
                for index in params:
                    param_probes.setdefault(index, []).append(hit)
        summary.param_probes = {
            k: tuple(v) for k, v in sorted(param_probes.items())}
        summary.blocking = tuple(self.blocking_calls)
        return FunctionAnalysis(
            info=self.info, summary=summary,
            sink_hits=[h for h in self.sink_hits
                       if not h.label.startswith(_PARAM_PREFIX)],
            probe_hits=list(self.probe_hits),
            blocking_calls=list(self.blocking_calls))

    # -- transfer -----------------------------------------------------

    def transfer(self, stmt, state: TaintState) -> TaintState:
        if isinstance(stmt, HeaderStmt):
            if stmt.expr is not None:
                value = self.eval(stmt.expr, state)
                self.check_sinks(stmt.expr, state)
                if stmt.target is not None:
                    state = self.assign(stmt.target, value, state)
            return state
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value_node = stmt.value
            if value_node is None:
                return state
            value = self.eval(value_node, state)
            self.check_sinks(value_node, state)
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            for target in targets:
                if isinstance(stmt, ast.AugAssign) and \
                        isinstance(target, ast.Name):
                    value = value | state.get(target.id, EMPTY)
                state = self.assign(target, value, state)
            return state
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.return_taints |= self.eval(stmt.value, state)
                self.check_sinks(stmt.value, state)
            return state
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc, state)
                self.check_sinks(stmt.exc, state)
                if isinstance(stmt.exc, ast.Call):
                    for arg in stmt.exc.args:
                        if isinstance(arg, ast.JoinedStr):
                            continue  # reported as the f-string sink
                        self.report_sink("exception", stmt, arg, state)
            return state
        if isinstance(stmt, (ast.Expr, ast.Assert)):
            expr = stmt.value if isinstance(stmt, ast.Expr) else stmt.test
            self.eval(expr, state)
            self.check_sinks(expr, state)
            return state
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    state = dict(state)
                    state.pop(target.id, None)
            return state
        # Nested defs, Global/Nonlocal, Import, Pass, ...: no effect.
        return state

    def assign(self, target: ast.expr, value: TaintSet,
               state: TaintState) -> TaintState:
        state = dict(state)
        if isinstance(target, ast.Name):
            state[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                state = self.assign(element, value, state)
        elif isinstance(target, ast.Starred):
            state = self.assign(target.value, value, state)
        # Attribute/Subscript stores are not tracked.
        return state

    # -- expression evaluation ----------------------------------------

    def eval(self, node: ast.expr, state: TaintState) -> TaintSet:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float, str, bytes, bool)):
                return frozenset(
                    {Taint(LABEL_SEEDED, "constant")})
            return EMPTY
        if isinstance(node, ast.Name):
            return state.get(node.id, EMPTY) | \
                self.spec.name_taints(node.id, self.in_crypto)
        if isinstance(node, ast.Attribute):
            base = self.eval(node.value, state)
            return base | self.spec.name_taints(node.attr,
                                                self.in_crypto)
        if isinstance(node, ast.Call):
            return self.eval_call(node, state)
        if isinstance(node, ast.BinOp):
            return self.eval(node.left, state) | \
                self.eval(node.right, state)
        if isinstance(node, ast.BoolOp):
            out: TaintSet = EMPTY
            for value in node.values:
                out = out | self.eval(value, state)
            return out
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand, state)
        if isinstance(node, ast.Compare):
            for operand in [node.left, *node.comparators]:
                self.eval(operand, state)
            return EMPTY
        if isinstance(node, ast.IfExp):
            self.eval(node.test, state)
            return self.eval(node.body, state) | \
                self.eval(node.orelse, state)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = EMPTY
            for element in node.elts:
                out = out | self.eval(element, state)
            return out
        if isinstance(node, ast.Dict):
            out = EMPTY
            for key in node.keys:
                if key is not None:
                    out = out | self.eval(key, state)
            for value in node.values:
                out = out | self.eval(value, state)
            return out
        if isinstance(node, ast.Subscript):
            return self.eval(node.value, state)
        if isinstance(node, ast.Starred):
            return self.eval(node.value, state)
        if isinstance(node, ast.JoinedStr):
            out = EMPTY
            for part in node.values:
                if isinstance(part, ast.FormattedValue):
                    out = out | self.eval(part.value, state)
            return out
        if isinstance(node, ast.FormattedValue):
            return self.eval(node.value, state)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            out = EMPTY
            for gen in node.generators:
                out = out | self.eval(gen.iter, state)
            if isinstance(node, ast.DictComp):
                out = out | self.eval(node.key, state)
                out = out | self.eval(node.value, state)
            else:
                out = out | self.eval(node.elt, state)
            return out
        if isinstance(node, ast.Await):
            return self.eval(node.value, state)
        if isinstance(node, (ast.Lambda, ast.NamedExpr)):
            if isinstance(node, ast.NamedExpr):
                return self.eval(node.value, state)
            return EMPTY
        return EMPTY

    def _callee_name(self, node: ast.Call) -> Optional[str]:
        name = self.info.ctx.imports.qualified_name(node.func)
        if name is not None:
            return name
        if isinstance(node.func, ast.Name):
            return node.func.id
        if isinstance(node.func, ast.Attribute):
            return node.func.attr
        return None

    def eval_call(self, node: ast.Call, state: TaintState) -> TaintSet:
        name = self._callee_name(node)
        arg_taints = [self.eval(arg, state) for arg in node.args]
        for keyword in node.keywords:
            arg_taints.append(self.eval(keyword.value, state))

        if name in self.spec.sanitizer_calls:
            return EMPTY
        if name in self.spec.nondet_calls:
            return frozenset({Taint(LABEL_NONDET, f"{name}()")})

        if name in self.spec.probes:
            self.record_probe(node, name, arg_taints)

        if name is not None and self._is_blocking(name):
            self.record_blocking(node, name)

        resolved = self.graph.resolve_call_target(self.info, node)
        if resolved is not None:
            return self.apply_summary(node, resolved, arg_taints)

        if name is not None and any(
                name.endswith(suffix)
                for suffix in self.spec.secret_modules):
            return frozenset({Taint(LABEL_SECRET, f"{name}()")})

        # Unresolved call: taint propagates through (receiver + args);
        # param markers are dropped so they never cross an opaque call.
        out: Set[Taint] = set()
        if isinstance(node.func, ast.Attribute):
            out |= self.eval(node.func.value, state)
        for taints in arg_taints:
            out |= taints
        return frozenset(t for t in out if not t.is_param())

    def _is_blocking(self, name: str) -> bool:
        return name in self.spec.blocking_calls

    def apply_summary(self, node: ast.Call, callee_id: str,
                      arg_taints: Sequence[TaintSet]) -> TaintSet:
        summary = self.summaries.get(callee_id)
        callee = self.graph.functions.get(callee_id)
        if summary is None or callee is None:
            out: Set[Taint] = set()
            for taints in arg_taints:
                out |= taints
            return frozenset(t for t in out if not t.is_param())
        # Positional args map 1:1 onto params (bound methods shift by
        # one for self; we call through the unbound name so only shift
        # when the callee is a method reached via an instance).
        offset = 0
        if callee.class_name and callee.params and \
                callee.params[0] in ("self", "cls") and \
                not self._called_on_class(node):
            offset = 1
        mapped: Dict[int, TaintSet] = {}
        positional = [a for a in node.args
                      if not isinstance(a, ast.Starred)]
        for position, arg in enumerate(positional):
            mapped[position + offset] = arg_taints[position]
        for kw_index, keyword in enumerate(node.keywords):
            if keyword.arg and keyword.arg in callee.params:
                mapped[callee.params.index(keyword.arg)] = \
                    arg_taints[len(positional) + kw_index]

        out = {Taint(label, origin)
               for label, origin in summary.return_labels}
        for index in summary.param_to_return:
            out |= mapped.get(index, EMPTY)
        # Interprocedural sinks: a tainted argument whose param reaches
        # a sink inside (or beyond) the callee.
        for index, hits in summary.param_sinks.items():
            for taint in mapped.get(index, EMPTY):
                if taint.is_param():
                    # Lift into this function's own summary.
                    for hit in hits:
                        self.record_sink_hit(SinkHit(
                            kind=hit.kind, line=hit.line, col=hit.col,
                            label=taint.label, origin=taint.origin,
                            via=(callee.name,) + hit.via))
                elif taint.label == LABEL_SECRET:
                    for hit in hits:
                        self.record_sink_hit(SinkHit(
                            kind=hit.kind,
                            line=getattr(node, "lineno", hit.line),
                            col=getattr(node, "col_offset", 0) + 1,
                            label=taint.label, origin=taint.origin,
                            via=(callee.name,) + hit.via))
        for index, probes in summary.param_probes.items():
            arg = mapped.get(index, EMPTY)
            if not arg:
                continue
            labels = tuple(sorted({t.label for t in arg}))
            params = tuple(sorted({t.param_index for t in arg
                                   if t.is_param()}))
            for probe in probes:
                self.record_probe_hit(ProbeHit(
                    probe=probe.probe, callee=probe.callee,
                    line=getattr(node, "lineno", probe.line),
                    col=getattr(node, "col_offset", 0) + 1,
                    arg_labels=(labels,),
                    arg_params=(params,)))
        if summary.blocking:
            first = summary.blocking[0]
            self.record_blocking_hit(BlockingCall(
                callee=first.callee,
                line=getattr(node, "lineno", first.line),
                col=getattr(node, "col_offset", 0) + 1,
                via=(callee.name,) + first.via))
        return frozenset(t for t in out if not t.is_param()) | \
            frozenset(t for t in out if t.is_param())

    @staticmethod
    def _called_on_class(node: ast.Call) -> bool:
        """``Mix.forward(mix, ...)`` style unbound calls keep self."""
        func = node.func
        return (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id[:1].isupper())

    # -- sinks and probes ---------------------------------------------

    def record_sink_hit(self, hit: SinkHit) -> None:
        key = ("sink", hit.kind, hit.line, hit.col, hit.label,
               hit.origin, hit.via)
        if key not in self._seen_events:
            self._seen_events.add(key)
            self.sink_hits.append(hit)

    def record_probe_hit(self, hit: ProbeHit) -> None:
        key = ("probe", hit.probe, hit.callee, hit.line, hit.col,
               hit.arg_labels, hit.arg_params)
        if key not in self._seen_events:
            self._seen_events.add(key)
            self.probe_hits.append(hit)

    def record_blocking_hit(self, call: BlockingCall) -> None:
        key = ("blocking", call.callee, call.line, call.col, call.via)
        if key not in self._seen_events:
            self._seen_events.add(key)
            self.blocking_calls.append(call)

    def record_probe(self, node: ast.Call, name: str,
                     arg_taints: Sequence[TaintSet]) -> None:
        labels = tuple(tuple(sorted({t.label for t in taints}))
                       for taints in arg_taints)
        params = tuple(tuple(sorted({t.param_index for t in taints
                                     if t.is_param()}))
                       for taints in arg_taints)
        self.record_probe_hit(ProbeHit(
            probe=self.spec.probes[name], callee=name,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            arg_labels=labels, arg_params=params))

    def record_blocking(self, node: ast.Call, name: str) -> None:
        self.record_blocking_hit(BlockingCall(
            callee=name,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1))

    def report_sink(self, kind: str, at: ast.AST, value: ast.expr,
                    state: TaintState) -> None:
        for taint in self.eval(value, state):
            if taint.label == LABEL_SECRET or taint.is_param():
                self.record_sink_hit(SinkHit(
                    kind=kind,
                    line=getattr(at, "lineno", 1),
                    col=getattr(at, "col_offset", 0) + 1,
                    label=taint.label, origin=taint.origin))

    def check_sinks(self, node: ast.expr, state: TaintState) -> None:
        """Walk an expression for sink shapes (f-strings, log calls,
        repr, str.format) and report tainted values reaching them."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.JoinedStr):
                for part in sub.values:
                    if isinstance(part, ast.FormattedValue):
                        self.report_sink("fstring", sub, part.value,
                                         state)
            elif isinstance(sub, ast.Call):
                self._check_call_sink(sub, state)

    def _check_call_sink(self, node: ast.Call,
                         state: TaintState) -> None:
        func = node.func
        kind = None
        if isinstance(func, ast.Name) and func.id == "repr":
            kind = "repr"
        elif isinstance(func, ast.Attribute) and func.attr == "format" \
                and isinstance(func.value, ast.Constant) \
                and isinstance(func.value.value, str):
            kind = "str.format"
        elif isinstance(func, ast.Attribute) and \
                func.attr in _LOG_METHODS:
            root = self.info.ctx.imports.qualified_name(func)
            rooted = root is not None and root.startswith("logging.")
            loggerish = (isinstance(func.value, ast.Name)
                         and func.value.id.lower() in _LOGGERISH_ROOTS)
            if rooted or loggerish:
                kind = "logging"
        if kind is None:
            return
        for arg in [*node.args, *(kw.value for kw in node.keywords)]:
            if isinstance(arg, ast.JoinedStr):
                continue  # reported as its own f-string sink
            self.report_sink(kind, node, arg, state)


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def analyze_function(info: FunctionInfo, spec: TaintSpec,
                     graph: CallGraph,
                     summaries: Dict[str, FunctionSummary],
                     cfg: Optional[CFG] = None) -> FunctionAnalysis:
    """Run the taint fixpoint over one function and return its
    analysis (summary + sink/probe/blocking events)."""
    if cfg is None:
        cfg = build_cfg(info.node)
    tainter = _FunctionTainter(info, cfg, spec, graph, summaries)
    tainter.run()
    return tainter.result()


def iterate_summaries(functions: Iterable[str], spec: TaintSpec,
                      graph: CallGraph,
                      summaries: Dict[str, FunctionSummary],
                      cfgs: Dict[str, CFG],
                      max_rounds: int = 5) -> Dict[str, FunctionAnalysis]:
    """Iterate per-function analyses callee-first until every summary
    is stable (or ``max_rounds``); returns the final analyses."""
    targets = [f for f in graph.topo_order() if f in set(functions)]
    analyses: Dict[str, FunctionAnalysis] = {}
    for _ in range(max_rounds):
        changed = False
        for fid in targets:
            info = graph.functions[fid]
            analysis = analyze_function(
                info, spec, graph, summaries, cfgs.get(fid))
            previous = summaries.get(fid)
            if previous is None or \
                    previous.key() != analysis.summary.key():
                changed = True
            summaries[fid] = analysis.summary
            analyses[fid] = analysis
        if not changed:
            break
    return analyses

"""FlowProgram: the whole-program view flow rules consume.

Built once per lint run from the engine's parsed
:class:`~repro.lint.engine.FileContext` list:

1. index every function/method into the :class:`CallGraph` and add a
   ``<module>`` pseudo-function per file so module-level statements
   are analysed too;
2. resolve call edges and derive the file-level dependency graph;
3. decide, against the :class:`~repro.lint.flow.cache.FlowCache`,
   which files are *valid* (own hash unchanged and every transitive
   callee file valid) — their summaries and events load straight from
   the cache — and which must be re-analysed;
4. run the interprocedural summary fixpoint over the invalid set and
   collect the reporting-pass events;
5. write the refreshed entries back into the cache object (the CLI
   decides whether to persist it).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set

from repro.lint.engine import FileContext
from repro.lint.flow.cache import (
    FileEntry,
    FlowCache,
    FunctionEvents,
    content_hash,
)
from repro.lint.flow.callgraph import (
    CallGraph,
    CallSite,
    FunctionInfo,
    module_name_for,
)
from repro.lint.flow.cfg import CFG, build_cfg
from repro.lint.flow.taint import (
    DEFAULT_SPEC,
    FunctionSummary,
    TaintSpec,
    iterate_summaries,
)

MODULE_FUNC = "<module>"


def _module_pseudo_def(tree: ast.Module) -> ast.FunctionDef:
    """A synthetic def wrapping the module body, so the CFG builder
    and tainter can treat module-level code like a function.  The body
    statements already carry locations; only the new wrapper nodes
    need them stamped (``fix_missing_locations`` would re-walk the
    whole module, which is the dominant warm-cache cost at scale)."""
    filler = ast.Pass(lineno=1, col_offset=0,
                      end_lineno=1, end_col_offset=4)
    node = ast.FunctionDef(
        name=MODULE_FUNC,
        args=ast.arguments(posonlyargs=[], args=[], vararg=None,
                           kwonlyargs=[], kw_defaults=[], kwarg=None,
                           defaults=[]),
        body=list(tree.body) or [filler],
        decorator_list=[], returns=None, type_comment=None)
    return ast.copy_location(node, node.body[0])


def _toplevel_calls(tree: ast.Module) -> List[tuple]:
    """``(call, is_statement)`` pairs for module-level statements,
    without descending into function/class bodies (those belong to
    their own functions)."""
    calls: List[tuple] = []
    stmt_calls: set = set()
    stack: List[ast.AST] = [
        s for s in tree.body
        if not isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef))]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Expr) and \
                isinstance(node.value, ast.Call):
            stmt_calls.add(id(node.value))
        if isinstance(node, ast.Call):
            calls.append((node, id(node) in stmt_calls))
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                stack.append(child)
    return calls


class FlowProgram:
    """CFGs + call graph + converged summaries + analysis events for
    one scanned file set."""

    def __init__(self, spec: TaintSpec):
        self.spec = spec
        self.graph = CallGraph()
        self.contexts: List[FileContext] = []
        #: display path -> that file's functions (module pseudo last).
        self.functions_by_file: Dict[str, List[FunctionInfo]] = {}
        self.summaries: Dict[str, FunctionSummary] = {}
        #: display path -> function id -> events.
        self.events: Dict[str, Dict[str, FunctionEvents]] = {}
        self.cfgs: Dict[str, CFG] = {}
        #: (files reused from cache, files analysed) for --stats.
        self.cache_hits = 0
        self.cache_misses = 0

    # -- construction -------------------------------------------------

    @classmethod
    def build(cls, contexts: Sequence[FileContext],
              spec: TaintSpec = DEFAULT_SPEC,
              cache: Optional[FlowCache] = None) -> "FlowProgram":
        program = cls(spec)
        program.contexts = list(contexts)
        hashes: Dict[str, str] = {}

        # Pass 1: index functions (plus the <module> pseudo per file).
        for ctx in contexts:
            infos = program.graph.add_file(ctx)
            module = module_name_for(ctx.path)
            pseudo = FunctionInfo(
                qualified_id=f"{module}.{MODULE_FUNC}",
                module=module, qualname=MODULE_FUNC,
                node=_module_pseudo_def(ctx.tree), ctx=ctx,
                is_async=False, params=())
            program.graph.functions[pseudo.qualified_id] = pseudo
            program.functions_by_file[ctx.display_path] = \
                [*infos, pseudo]
            hashes[ctx.display_path] = content_hash(ctx.source)

        # Pass 2: resolve call edges (function bodies + module level).
        for ctx in contexts:
            for info in program.functions_by_file[ctx.display_path]:
                if info.qualname == MODULE_FUNC:
                    for call, is_stmt in _toplevel_calls(ctx.tree):
                        callee = program.graph.resolve_call_target(
                            info, call)
                        if callee is not None:
                            program.graph.call_sites.append(CallSite(
                                caller=info.qualified_id,
                                callee=callee, node=call,
                                is_statement=is_stmt))
                            program.graph.edges.setdefault(
                                info.qualified_id, set()).add(callee)
                            program.graph.reverse_edges.setdefault(
                                callee, set()).add(info.qualified_id)
                else:
                    program.graph.resolve_calls(info)

        # Cache validity: a file is reusable when its hash matches and
        # every file it (transitively) calls into is reusable.
        valid = program._valid_files(hashes, cache)
        for path in sorted(program.functions_by_file):
            if path in valid and cache is not None:
                entry = cache.entries[path]
                program.summaries.update(entry.summaries)
                program.events[path] = dict(entry.events)
                program.cache_hits += 1
            else:
                program.cache_misses += 1

        # Analyse the invalid set against the cached summaries.
        invalid_functions = [
            info.qualified_id
            for path, infos in program.functions_by_file.items()
            if path not in valid
            for info in infos]
        for fid in invalid_functions:
            program.cfgs[fid] = build_cfg(
                program.graph.functions[fid].node)
        analyses = iterate_summaries(
            invalid_functions, spec, program.graph,
            program.summaries, program.cfgs)
        for path, infos in program.functions_by_file.items():
            if path in valid:
                continue
            file_events: Dict[str, FunctionEvents] = {}
            for info in infos:
                analysis = analyses.get(info.qualified_id)
                if analysis is None:
                    continue
                file_events[info.qualified_id] = FunctionEvents(
                    sink_hits=analysis.sink_hits,
                    probe_hits=analysis.probe_hits,
                    blocking_calls=analysis.blocking_calls)
            program.events[path] = file_events

        # Refresh the cache object with every file's current entry.
        if cache is not None:
            for path, infos in program.functions_by_file.items():
                cache.put(path, FileEntry(
                    source_hash=hashes[path],
                    summaries={
                        info.qualified_id:
                            program.summaries[info.qualified_id]
                        for info in infos
                        if info.qualified_id in program.summaries},
                    events=program.events.get(path, {})))
            cache.last_run = (program.cache_hits,
                              program.cache_misses)
        return program

    def _valid_files(self, hashes: Dict[str, str],
                     cache: Optional[FlowCache]) -> Set[str]:
        if cache is None or not cache.entries:
            return set()
        unchanged = {
            path for path, digest in hashes.items()
            if cache.get(path, digest) is not None}
        # File-level dependency edges: caller-file -> callee-files.
        file_of: Dict[str, str] = {}
        for path, infos in self.functions_by_file.items():
            for info in infos:
                file_of[info.qualified_id] = path
        deps: Dict[str, Set[str]] = {p: set() for p in hashes}
        for caller, callees in self.graph.edges.items():
            caller_file = file_of.get(caller)
            if caller_file is None:
                continue
            for callee in callees:
                callee_file = file_of.get(callee)
                if callee_file is not None and \
                        callee_file != caller_file:
                    deps[caller_file].add(callee_file)
        # Propagate invalidity callee -> caller to a fixpoint.
        valid = set(unchanged)
        changed = True
        while changed:
            changed = False
            for path in list(valid):
                if any(dep not in valid for dep in deps.get(path, ())):
                    valid.discard(path)
                    changed = True
        return valid

    # -- queries ------------------------------------------------------

    def file_events(self, display_path: str) -> Dict[str, FunctionEvents]:
        return self.events.get(display_path, {})

    def functions_in(self, display_path: str) -> List[FunctionInfo]:
        return self.functions_by_file.get(display_path, [])

    def function(self, qualified_id: str) -> Optional[FunctionInfo]:
        return self.graph.functions.get(qualified_id)

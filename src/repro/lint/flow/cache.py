"""Content-hash summary cache for whole-tree flow analysis.

The cache stores, per file: the SHA-256 of the source it was computed
from, the :class:`~repro.lint.flow.taint.FunctionSummary` of every
function in the file, and the analysis *events* (sink/probe/blocking
hits) the reporting pass produced.  A file's cached entry is reusable
only when its own hash matches **and** every file it calls into is
itself reusable (summaries flow callee→caller, so a changed callee
invalidates its transitive callers); :class:`FlowProgram` computes
that closure and re-analyses exactly the invalid set.

The cache file is plain JSON (``.herdlint-cache.json`` by default),
safe to delete at any time, and versioned — a bump of
``CACHE_VERSION`` (on any change to the analysis semantics)
invalidates everything.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.lint.flow.taint import (
    BlockingCall,
    FunctionSummary,
    ProbeHit,
    SinkHit,
)

CACHE_VERSION = 1
DEFAULT_CACHE_PATH = ".herdlint-cache.json"


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


# -- (de)serialisation ------------------------------------------------


def _sink_to_dict(hit: SinkHit) -> Dict:
    return {"kind": hit.kind, "line": hit.line, "col": hit.col,
            "label": hit.label, "origin": hit.origin,
            "via": list(hit.via)}


def _sink_from_dict(data: Dict) -> SinkHit:
    return SinkHit(kind=data["kind"], line=data["line"],
                   col=data["col"], label=data["label"],
                   origin=data["origin"], via=tuple(data["via"]))


def _probe_to_dict(hit: ProbeHit) -> Dict:
    return {"probe": hit.probe, "callee": hit.callee,
            "line": hit.line, "col": hit.col,
            "arg_labels": [list(labels) for labels in hit.arg_labels],
            "arg_params": [list(params) for params in hit.arg_params]}


def _probe_from_dict(data: Dict) -> ProbeHit:
    return ProbeHit(
        probe=data["probe"], callee=data["callee"],
        line=data["line"], col=data["col"],
        arg_labels=tuple(tuple(x) for x in data["arg_labels"]),
        arg_params=tuple(tuple(x) for x in data["arg_params"]))


def _blocking_to_dict(call: BlockingCall) -> Dict:
    return {"callee": call.callee, "line": call.line,
            "col": call.col, "via": list(call.via)}


def _blocking_from_dict(data: Dict) -> BlockingCall:
    return BlockingCall(callee=data["callee"], line=data["line"],
                        col=data["col"], via=tuple(data["via"]))


def summary_to_dict(summary: FunctionSummary) -> Dict:
    return {
        "return_labels": [list(pair) for pair in summary.return_labels],
        "param_to_return": list(summary.param_to_return),
        "param_sinks": {
            str(k): [_sink_to_dict(h) for h in hits]
            for k, hits in summary.param_sinks.items()},
        "param_probes": {
            str(k): [_probe_to_dict(h) for h in hits]
            for k, hits in summary.param_probes.items()},
        "blocking": [_blocking_to_dict(b) for b in summary.blocking],
    }


def summary_from_dict(data: Dict) -> FunctionSummary:
    return FunctionSummary(
        return_labels=tuple(
            (pair[0], pair[1]) for pair in data["return_labels"]),
        param_to_return=tuple(data["param_to_return"]),
        param_sinks={
            int(k): tuple(_sink_from_dict(h) for h in hits)
            for k, hits in data["param_sinks"].items()},
        param_probes={
            int(k): tuple(_probe_from_dict(h) for h in hits)
            for k, hits in data["param_probes"].items()},
        blocking=tuple(
            _blocking_from_dict(b) for b in data["blocking"]))


@dataclass
class FunctionEvents:
    """The reporting-pass output for one function."""

    sink_hits: List[SinkHit] = field(default_factory=list)
    probe_hits: List[ProbeHit] = field(default_factory=list)
    blocking_calls: List[BlockingCall] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {
            "sink_hits": [_sink_to_dict(h) for h in self.sink_hits],
            "probe_hits": [_probe_to_dict(h) for h in self.probe_hits],
            "blocking_calls": [_blocking_to_dict(b)
                               for b in self.blocking_calls],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FunctionEvents":
        return cls(
            sink_hits=[_sink_from_dict(h) for h in data["sink_hits"]],
            probe_hits=[_probe_from_dict(h)
                        for h in data["probe_hits"]],
            blocking_calls=[_blocking_from_dict(b)
                            for b in data["blocking_calls"]])


@dataclass
class FileEntry:
    """Cached analysis of one file."""

    source_hash: str
    summaries: Dict[str, FunctionSummary]
    events: Dict[str, FunctionEvents]

    def to_dict(self) -> Dict:
        return {
            "source_hash": self.source_hash,
            "summaries": {fid: summary_to_dict(s)
                          for fid, s in self.summaries.items()},
            "events": {fid: e.to_dict()
                       for fid, e in self.events.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FileEntry":
        return cls(
            source_hash=data["source_hash"],
            summaries={fid: summary_from_dict(s)
                       for fid, s in data["summaries"].items()},
            events={fid: FunctionEvents.from_dict(e)
                    for fid, e in data["events"].items()})


class FlowCache:
    """Load/store of per-file entries, keyed by display path."""

    def __init__(self, path: Optional[str] = None):
        self.path = Path(path or DEFAULT_CACHE_PATH)
        self.entries: Dict[str, FileEntry] = {}
        self.loaded_from_disk = False
        #: (hits, misses) of the last FlowProgram build, for --stats.
        self.last_run: Tuple[int, int] = (0, 0)

    def load(self) -> "FlowCache":
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return self
        if data.get("version") != CACHE_VERSION:
            return self
        try:
            self.entries = {
                path: FileEntry.from_dict(entry)
                for path, entry in data.get("files", {}).items()}
            self.loaded_from_disk = True
        except (KeyError, TypeError, ValueError):
            self.entries = {}
        return self

    def save(self) -> None:
        payload = {
            "version": CACHE_VERSION,
            "files": {path: entry.to_dict()
                      for path, entry in sorted(self.entries.items())},
        }
        try:
            self.path.write_text(
                json.dumps(payload, sort_keys=True) + "\n",
                encoding="utf-8")
        except OSError:
            pass  # a read-only checkout just runs uncached

    def get(self, display_path: str,
            source_hash: str) -> Optional[FileEntry]:
        entry = self.entries.get(display_path)
        if entry is not None and entry.source_hash == source_hash:
            return entry
        return None

    def put(self, display_path: str, entry: FileEntry) -> None:
        self.entries[display_path] = entry

"""Per-function control-flow graphs over the Python AST.

A :class:`CFG` is a set of :class:`BasicBlock` nodes holding
*simple* statements, connected by directed edges that model every way
control can move between them: branch arms rejoining after an ``if``,
loop back-edges, ``break``/``continue`` exits, ``try`` bodies that may
jump to any handler after any statement, and ``finally`` blocks that
run on both the normal and the exceptional path.

The graph is deliberately statement-granular rather than
instruction-granular: the taint transfer functions in
:mod:`repro.lint.flow.taint` interpret whole statements, so a block is
just a maximal straight-line run of them.  Compound statements never
appear *inside* a block — their headers (the ``if`` test, the loop
iterable, the ``with`` context expression) are materialised as
standalone :class:`HeaderStmt` markers so dataflow still sees the
expressions they evaluate.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class HeaderStmt:
    """A compound-statement header lifted into the statement stream.

    ``kind`` names the construct ("if", "while", "for", "with",
    "match"); ``expr`` is the expression the header evaluates (the
    test, the iterable, the context manager) and ``node`` the original
    compound statement (for locations).  ``target`` is the assignment
    target a ``for``/``with`` binds, when there is one.
    """

    kind: str
    expr: Optional[ast.expr]
    node: ast.stmt
    target: Optional[ast.expr] = None


Stmt = Union[ast.stmt, HeaderStmt]


@dataclass
class BasicBlock:
    block_id: int
    statements: List[Stmt] = field(default_factory=list)
    successors: List[int] = field(default_factory=list)

    def add_successor(self, block_id: int) -> None:
        if block_id not in self.successors:
            self.successors.append(block_id)


@dataclass
class CFG:
    """Control-flow graph of one function body."""

    name: str
    entry: int
    exit: int
    blocks: Dict[int, BasicBlock]

    @property
    def predecessors(self) -> Dict[int, List[int]]:
        preds: Dict[int, List[int]] = {bid: [] for bid in self.blocks}
        for block in self.blocks.values():
            for succ in block.successors:
                preds[succ].append(block.block_id)
        return preds

    def reachable_blocks(self) -> List[int]:
        """Block ids reachable from the entry, in a deterministic
        (discovery) order — the worklist seed for the fixpoint."""
        seen: List[int] = []
        stack = [self.entry]
        visited = set()
        while stack:
            bid = stack.pop()
            if bid in visited:
                continue
            visited.add(bid)
            seen.append(bid)
            stack.extend(reversed(self.blocks[bid].successors))
        return seen


class _Builder:
    """One-pass recursive CFG construction.

    The builder threads a "current block" through the statement list;
    compound statements split it.  ``break``/``continue``/``return``/
    ``raise`` seal the current block (control never falls through), a
    sealed block simply accumulates no further successors.
    """

    def __init__(self, name: str):
        self.name = name
        self.blocks: Dict[int, BasicBlock] = {}
        self._next_id = 0
        self.entry = self._new_block()
        self.exit = self._new_block()
        # Innermost-first stacks of (loop-header block, loop-exit block).
        self._loop_stack: List[tuple] = []
        # Blocks a raise inside the active try body may jump to.
        self._handler_stack: List[List[int]] = []

    def _new_block(self) -> int:
        bid = self._next_id
        self._next_id += 1
        self.blocks[bid] = BasicBlock(bid)
        return bid

    def _link(self, src: int, dst: int) -> None:
        self.blocks[src].add_successor(dst)

    # -- statement dispatch -------------------------------------------

    def build(self, body: List[ast.stmt]) -> CFG:
        last = self._emit_body(body, self.entry)
        if last is not None:
            self._link(last, self.exit)
        return CFG(name=self.name, entry=self.entry, exit=self.exit,
                   blocks=self.blocks)

    def _emit_body(self, body: List[ast.stmt],
                   current: Optional[int]) -> Optional[int]:
        """Emit ``body`` starting in ``current``; return the open
        block control falls out of, or None when every path left."""
        for stmt in body:
            if current is None:
                # Unreachable code after return/raise/break: park it in
                # a fresh (entry-unreachable) block so locations still
                # resolve, then keep threading.
                current = self._new_block()
            current = self._emit_stmt(stmt, current)
        return current

    def _emit_stmt(self, stmt: ast.stmt,
                   current: int) -> Optional[int]:
        if isinstance(stmt, ast.If):
            return self._emit_if(stmt, current)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._emit_loop(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._emit_try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._emit_with(stmt, current)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self.blocks[current].statements.append(stmt)
            if isinstance(stmt, ast.Raise):
                for handlers in reversed(self._handler_stack):
                    for handler in handlers:
                        self._link(current, handler)
                    break  # nearest enclosing try only
                else:
                    self._link(current, self.exit)
            else:
                self._link(current, self.exit)
            return None
        if isinstance(stmt, ast.Break):
            self.blocks[current].statements.append(stmt)
            if self._loop_stack:
                self._link(current, self._loop_stack[-1][1])
            return None
        if isinstance(stmt, ast.Continue):
            self.blocks[current].statements.append(stmt)
            if self._loop_stack:
                self._link(current, self._loop_stack[-1][0])
            return None
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            # Nested definitions get their own CFG elsewhere; here the
            # def is just a binding statement.
            self.blocks[current].statements.append(stmt)
            return current
        # Simple statement.
        self.blocks[current].statements.append(stmt)
        if self._handler_stack and self._may_raise(stmt):
            for handler in self._handler_stack[-1]:
                self._link(current, handler)
        return current

    @staticmethod
    def _may_raise(stmt: ast.stmt) -> bool:
        """Whether a simple statement can transfer to a handler.
        Anything containing a call or subscript can; pure constant or
        name-to-name assignments cannot."""
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Call, ast.Subscript, ast.Attribute,
                                 ast.BinOp, ast.Assert)):
                return True
        return False

    # -- compound statements ------------------------------------------

    def _emit_if(self, stmt: ast.If, current: int) -> Optional[int]:
        self.blocks[current].statements.append(
            HeaderStmt("if", stmt.test, stmt))
        then_entry = self._new_block()
        self._link(current, then_entry)
        then_exit = self._emit_body(stmt.body, then_entry)
        if stmt.orelse:
            else_entry = self._new_block()
            self._link(current, else_entry)
            else_exit = self._emit_body(stmt.orelse, else_entry)
        else:
            else_exit = current
        if then_exit is None and else_exit is None:
            return None
        join = self._new_block()
        for tail in (then_exit, else_exit):
            if tail is not None:
                self._link(tail, join)
        return join

    def _emit_loop(self, stmt: Union[ast.While, ast.For, ast.AsyncFor],
                   current: int) -> Optional[int]:
        header = self._new_block()
        self._link(current, header)
        if isinstance(stmt, ast.While):
            self.blocks[header].statements.append(
                HeaderStmt("while", stmt.test, stmt))
        else:
            self.blocks[header].statements.append(
                HeaderStmt("for", stmt.iter, stmt, target=stmt.target))
        after = self._new_block()
        self._loop_stack.append((header, after))
        body_entry = self._new_block()
        self._link(header, body_entry)
        body_exit = self._emit_body(stmt.body, body_entry)
        if body_exit is not None:
            self._link(body_exit, header)  # back edge
        self._loop_stack.pop()
        if stmt.orelse:
            else_entry = self._new_block()
            self._link(header, else_entry)
            else_exit = self._emit_body(stmt.orelse, else_entry)
            if else_exit is not None:
                self._link(else_exit, after)
        else:
            self._link(header, after)
        return after

    def _emit_with(self, stmt: Union[ast.With, ast.AsyncWith],
                   current: int) -> Optional[int]:
        for item in stmt.items:
            self.blocks[current].statements.append(
                HeaderStmt("with", item.context_expr, stmt,
                           target=item.optional_vars))
        body_entry = self._new_block()
        self._link(current, body_entry)
        return self._emit_body(stmt.body, body_entry)

    def _emit_try(self, stmt: ast.Try, current: int) -> Optional[int]:
        handler_entries = [self._new_block() for _ in stmt.handlers]
        self._handler_stack.append(handler_entries)
        body_entry = self._new_block()
        self._link(current, body_entry)
        # Any statement in the body may raise before executing, so the
        # body entry itself can reach every handler.
        for handler in handler_entries:
            self._link(body_entry, handler)
        body_exit = self._emit_body(stmt.body, body_entry)
        self._handler_stack.pop()

        tails: List[Optional[int]] = []
        if body_exit is not None:
            if stmt.orelse:
                else_entry = self._new_block()
                self._link(body_exit, else_entry)
                tails.append(self._emit_body(stmt.orelse, else_entry))
            else:
                tails.append(body_exit)
        for handler, entry in zip(stmt.handlers, handler_entries):
            if handler.name:
                # Bind the caught exception as an assignment-like
                # header so the taint pass sees the name appear.
                self.blocks[entry].statements.append(
                    HeaderStmt("except", handler.type, handler))
            tails.append(self._emit_body(handler.body, entry))

        live = [t for t in tails if t is not None]
        if stmt.finalbody:
            final_entry = self._new_block()
            for tail in live:
                self._link(tail, final_entry)
            if not live:
                # Every path raised/returned; finally still runs.
                self._link(current, final_entry)
            final_exit = self._emit_body(stmt.finalbody, final_entry)
            return final_exit
        if not live:
            return None
        join = self._new_block()
        for tail in live:
            self._link(tail, join)
        return join


def build_cfg(func: FuncDef) -> CFG:
    """Build the CFG of one ``def``/``async def`` body."""
    return _Builder(func.name).build(func.body)

"""herdflow: CFG + fixpoint dataflow layered on the herdlint engine.

The pre-flow rules (HL001-HL006) are per-statement pattern matches;
they cannot see that a ``session_key`` returned from ``kdf.py``,
renamed twice, and f-stringed three calls later is still a secret, or
that a locally-constructed ``random.Random(x)`` is seeded by something
that never came from a :class:`~repro.api.SimConfig`.  herdflow adds
the machinery those *flow* properties need:

* :mod:`repro.lint.flow.cfg` — per-function control-flow graphs
  (branches, loops, ``try``/``except``/``finally``, ``with``);
* :mod:`repro.lint.flow.callgraph` — a module-resolution call graph
  over the scanned set (``repro.crypto.kdf.hkdf`` style ids);
* :mod:`repro.lint.flow.taint` — a powerset taint lattice with
  configurable sources/sinks/sanitizers, a forward fixpoint over the
  CFG, and per-function summaries (param→return, param→sink,
  return→labels) iterated to interprocedural convergence;
* :mod:`repro.lint.flow.program` — the whole-program view rules
  consume (:class:`FlowProgram`), built once per lint run;
* :mod:`repro.lint.flow.cache` — per-file summaries cached by content
  hash so whole-tree runs stay fast;
* :mod:`repro.lint.flow.rules` — the flow-sensitive rule family:
  HL004 (interprocedural secret taint), HL007 (determinism taint) and
  the HL10x concurrency-safety rules gating the sharded/asyncio
  planes (HL101-HL104).

DESIGN.md §12 documents the lattice, the summary algebra, and the
baseline workflow.
"""

from repro.lint.flow.cfg import CFG, BasicBlock, build_cfg
from repro.lint.flow.callgraph import CallGraph, FunctionInfo
from repro.lint.flow.program import FlowProgram
from repro.lint.flow.taint import (
    FunctionSummary,
    TaintSpec,
    TaintState,
    analyze_function,
)

__all__ = [
    "BasicBlock",
    "CFG",
    "CallGraph",
    "FlowProgram",
    "FunctionInfo",
    "FunctionSummary",
    "TaintSpec",
    "TaintState",
    "analyze_function",
    "build_cfg",
]

"""Call graph over the scanned file set.

Functions get stable qualified ids: ``<module>.<qualname>`` where the
module name is recovered from the filesystem (walking up through
``__init__.py`` packages, so ``src/repro/crypto/kdf.py`` becomes
``repro.crypto.kdf`` no matter what directory the linter was invoked
from) and the qualname nests classes (``repro.core.mix.Mix.forward``).

Resolution is necessarily partial — this is Python — and errs on the
side of *not* resolving: a call site maps to a
:class:`~repro.lint.flow.callgraph.FunctionInfo` only when the target
is a top-level function or method defined in the scanned set, reached
through a direct name, an import tracked by
:class:`~repro.lint.engine.ImportMap`, or ``self``/``cls``.  Unresolved
calls stay unresolved and the taint pass treats them conservatively.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.lint.engine import FileContext

FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path``, recovered from the package
    structure on disk (``__init__.py`` chain).  Loose files fall back
    to their stem."""
    try:
        resolved = path.resolve()
    except OSError:
        resolved = path
    parts = [resolved.stem] if resolved.stem != "__init__" else []
    parent = resolved.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        if parent.parent == parent:
            break
        parent = parent.parent
    if not parts:
        parts = [resolved.stem]
    return ".".join(reversed(parts))


@dataclass
class FunctionInfo:
    """One function or method in the scanned set."""

    qualified_id: str
    module: str
    qualname: str
    node: FuncDef
    ctx: FileContext
    is_async: bool
    class_name: Optional[str] = None
    #: Positional-or-keyword parameter names, in order (self/cls kept).
    params: Tuple[str, ...] = ()
    decorators: Tuple[str, ...] = ()

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class CallSite:
    """One resolved call edge with its AST node (for locations)."""

    caller: str
    callee: str
    node: ast.Call
    #: True when the call is a bare expression statement (its return
    #: value is discarded) — what HL103 keys on for dropped coroutines.
    is_statement: bool = False


class _FunctionCollector(ast.NodeVisitor):
    def __init__(self, module: str, ctx: FileContext):
        self.module = module
        self.ctx = ctx
        self.functions: List[FunctionInfo] = []
        self._scope: List[str] = []
        self._class_stack: List[str] = []

    def _decorator_names(self, node: FuncDef) -> Tuple[str, ...]:
        names = []
        for dec in node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            resolved = self.ctx.imports.qualified_name(target)
            if resolved is None:
                parts = []
                while isinstance(target, ast.Attribute):
                    parts.append(target.attr)
                    target = target.value
                if isinstance(target, ast.Name):
                    parts.append(target.id)
                resolved = ".".join(reversed(parts)) if parts else ""
            if resolved:
                names.append(resolved)
        return tuple(names)

    def _visit_func(self, node: FuncDef) -> None:
        qualname = ".".join([*self._scope, node.name])
        params = tuple(
            a.arg for a in [*node.args.posonlyargs, *node.args.args])
        self.functions.append(FunctionInfo(
            qualified_id=f"{self.module}.{qualname}",
            module=self.module,
            qualname=qualname,
            node=node,
            ctx=self.ctx,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            class_name=self._class_stack[-1] if self._class_stack else None,
            params=params,
            decorators=self._decorator_names(node)))
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scope.append(node.name)
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()
        self._scope.pop()


class CallGraph:
    """Function index + resolved call edges for the scanned set."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        #: module -> {top-level or method name -> qualified ids}
        self._by_module_name: Dict[Tuple[str, str], List[str]] = {}
        self.call_sites: List[CallSite] = []
        self.edges: Dict[str, Set[str]] = {}
        self.reverse_edges: Dict[str, Set[str]] = {}

    # -- construction -------------------------------------------------

    def add_file(self, ctx: FileContext) -> List[FunctionInfo]:
        module = module_name_for(ctx.path)
        collector = _FunctionCollector(module, ctx)
        collector.visit(ctx.tree)
        for info in collector.functions:
            self.functions[info.qualified_id] = info
            self._by_module_name.setdefault(
                (module, info.qualname), []).append(info.qualified_id)
        return collector.functions

    def resolve_calls(self, info: FunctionInfo) -> None:
        """Record edges for every call inside ``info`` that resolves
        to a scanned function.  One walk collects both the calls and
        the set of statement-expression calls (``is_statement``), so
        downstream rules need no second traversal."""
        calls: List[ast.Call] = []
        stmt_calls: Set[int] = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                calls.append(node)
            elif isinstance(node, ast.Expr) and \
                    isinstance(node.value, ast.Call):
                stmt_calls.add(id(node.value))
        for node in calls:
            callee = self.resolve_call_target(info, node)
            if callee is None:
                continue
            self.call_sites.append(CallSite(
                caller=info.qualified_id, callee=callee, node=node,
                is_statement=id(node) in stmt_calls))
            self.edges.setdefault(info.qualified_id, set()).add(callee)
            self.reverse_edges.setdefault(callee, set()).add(
                info.qualified_id)

    def resolve_call_target(self, caller: FunctionInfo,
                            node: ast.Call) -> Optional[str]:
        func = node.func
        module = caller.module
        # Direct name: local function in the same module, or an
        # import tracked by the ImportMap.
        if isinstance(func, ast.Name):
            local = self._lookup(module, func.id)
            if local:
                return local
            dotted = caller.ctx.imports.aliases.get(func.id)
            if dotted:
                return self._lookup_dotted(dotted)
            return None
        if isinstance(func, ast.Attribute):
            # self.method() / cls.method() within a class.
            if (isinstance(func.value, ast.Name)
                    and func.value.id in ("self", "cls")
                    and caller.class_name):
                return self._lookup(
                    module, f"{caller.class_name}.{func.attr}")
            # module-attribute call through an import.
            dotted = caller.ctx.imports.qualified_name(func)
            if dotted:
                return self._lookup_dotted(dotted)
        return None

    def _lookup(self, module: str, qualname: str) -> Optional[str]:
        ids = self._by_module_name.get((module, qualname))
        return ids[0] if ids else None

    def _lookup_dotted(self, dotted: str) -> Optional[str]:
        """Resolve ``pkg.mod.func`` / ``pkg.mod.Class.method`` against
        the function index by trying every module/qualname split."""
        if dotted in self.functions:
            return dotted
        parts = dotted.split(".")
        for split in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:split])
            qualname = ".".join(parts[split:])
            found = self._lookup(module, qualname)
            if found:
                return found
        return None

    # -- queries ------------------------------------------------------

    def callees(self, qualified_id: str) -> Set[str]:
        return self.edges.get(qualified_id, set())

    def callers(self, qualified_id: str) -> Set[str]:
        return self.reverse_edges.get(qualified_id, set())

    def topo_order(self) -> List[str]:
        """Callee-before-caller order (cycles broken arbitrarily but
        deterministically) — the summary computation schedule."""
        order: List[str] = []
        visited: Dict[str, int] = {}  # 0 = in progress, 1 = done

        def visit(fid: str) -> None:
            stack = [(fid, iter(sorted(self.callees(fid))))]
            visited[fid] = 0
            while stack:
                current, children = stack[-1]
                advanced = False
                for child in children:
                    if child in visited or child not in self.functions:
                        continue
                    visited[child] = 0
                    stack.append(
                        (child, iter(sorted(self.callees(child)))))
                    advanced = True
                    break
                if not advanced:
                    visited[current] = 1
                    order.append(current)
                    stack.pop()

        for fid in sorted(self.functions):
            if fid not in visited:
                visit(fid)
        return order

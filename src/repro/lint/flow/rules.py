"""The flow-sensitive rule family (HL004-flow, HL007, HL101-HL104).

These rules consume the :class:`~repro.lint.flow.program.FlowProgram`
built once per lint run — CFGs, the call graph, and converged
interprocedural taint summaries — and exist to gate the two planes the
roadmap is about to land: zone-sharded worker processes (shared
mutable state, pickling) and the real-UDP asyncio transport (blocking
calls, dropped coroutines).  DESIGN.md §12 has the rule table.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import (
    FileContext,
    Finding,
    FlowRule,
    register,
)
from repro.lint.flow.callgraph import FunctionInfo, module_name_for
from repro.lint.flow.program import MODULE_FUNC, FlowProgram

#: Directory segments that make up the shardable protocol plane —
#: anything here runs inside zone worker processes once open item 1
#: (ROADMAP) lands, so module-level mutable state is unshardable.
#: ``net`` (the real-UDP transport) forks into receive workers under
#: ``--processes``, so it is held to the same standard.
_PROTOCOL_SCOPE = ("core", "netsim", "simulation", "scenario", "net")

_SINK_DESCRIPTIONS = {
    "fstring": "interpolated into an f-string",
    "logging": "passed to a logging call",
    "repr": "passed to repr()",
    "str.format": "passed to str.format()",
    "exception": "passed into an exception message",
}


def _via_suffix(via: Tuple[str, ...]) -> str:
    if not via:
        return ""
    chain = " -> ".join(f"{name}()" for name in via)
    return f" (crosses {len(via)} function boundar" \
           f"{'y' if len(via) == 1 else 'ies'}: via {chain})"


def _own_nodes(root: ast.AST) -> Iterable[ast.AST]:
    """Walk ``root`` without descending into nested function/class
    definitions (those are analysed as their own functions)."""
    stack = [root]
    first = True
    while stack:
        node = stack.pop()
        if not first and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef,
                       ast.ClassDef)):
            continue
        first = False
        yield node
        stack.extend(ast.iter_child_nodes(node))


@register
class SecretFlowRule(FlowRule):
    """HL004: secret values must not reach an observable text sink —
    now flow-sensitive and interprocedural.

    The pre-flow HL004 matched secret-*named* identifiers at the sink;
    this version tracks the taint itself, so a key returned from
    ``kdf.py``, renamed twice, and f-stringed three calls later is
    still caught, and a helper that logs its argument flags every call
    site that passes it a secret.  (The legacy matcher survives as
    :class:`repro.lint.rules.SecretLeakRule` for the regression test
    pinning the coverage gap.)
    """

    rule_id = "HL004"
    title = "secret value reaches a text sink (flow-tracked)"
    rationale = ("Invariant I2/key hygiene: session and onion keys "
                 "must never reach logs, f-strings, repr, or "
                 "tracebacks — tracked through renames, data "
                 "structures, and call boundaries.")

    def check_flow(self, program: FlowProgram,
                   contexts: Sequence[FileContext]) -> Iterable[Finding]:
        for ctx in contexts:
            for fid, events in sorted(
                    program.file_events(ctx.display_path).items()):
                for hit in events.sink_hits:
                    if hit.label != "secret":
                        continue
                    sink = _SINK_DESCRIPTIONS.get(hit.kind, hit.kind)
                    yield Finding(
                        rule_id=self.rule_id,
                        message=(f"secret '{hit.origin}' {sink}"
                                 f"{_via_suffix(hit.via)}"),
                        path=ctx.display_path, line=hit.line,
                        col=hit.col, severity=self.severity)


@register
class DeterminismTaintRule(FlowRule):
    """HL007: every RNG must be seeded by a value that data-flows from
    a seeded configuration (a ``seed`` parameter/field, a constant, or
    another seeded RNG) — closing the HL002 gap for locally
    constructed ``random.Random(x)`` where ``x`` is entropy."""

    rule_id = "HL007"
    title = "RNG not traceable to a seeded config"
    rationale = ("Determinism contract: one seed reproduces a run "
                 "only if every RNG's seed data-flows from the seeded "
                 "SimConfig/scenario surface; os.urandom/time/uuid "
                 "seeds (or untraceable ones) silently break replay.")

    def check_flow(self, program: FlowProgram,
                   contexts: Sequence[FileContext]) -> Iterable[Finding]:
        for ctx in contexts:
            for fid, events in sorted(
                    program.file_events(ctx.display_path).items()):
                for hit in events.probe_hits:
                    if hit.probe != "rng":
                        continue
                    finding = self._judge(ctx, hit)
                    if finding is not None:
                        yield finding

    def _judge(self, ctx: FileContext, hit) -> Optional[Finding]:
        if not hit.arg_labels:
            if hit.callee == "random.Random":
                return None  # HL002 already owns the no-arg case
            return Finding(
                rule_id=self.rule_id,
                message=(f"{hit.callee}() constructed without a seed "
                         f"draws OS entropy; pass a seed derived from "
                         f"the run's seeded config"),
                path=ctx.display_path, line=hit.line, col=hit.col,
                severity=self.severity)
        labels = hit.arg_labels[0]
        params = hit.arg_params[0] if hit.arg_params else ()
        if "seeded" in labels or params:
            # Seeded, or deferred to the call sites of the enclosing
            # function (judged there with the caller's labels).
            return None
        if "nondet" in labels:
            reason = ("is seeded from a nondeterministic source "
                      "(entropy/clock/pid)")
        else:
            reason = ("has no data-flow path from a seeded config "
                      "value (seed parameter, constant, or seeded RNG)")
        return Finding(
            rule_id=self.rule_id,
            message=f"seed argument of {hit.callee}() {reason}",
            path=ctx.display_path, line=hit.line, col=hit.col,
            severity=self.severity)


_MUTATING_METHODS = {
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "sort", "reverse",
}
_MUTABLE_CONSTRUCTORS = {
    "dict", "list", "set", "bytearray", "defaultdict", "deque",
    "Counter", "OrderedDict",
}


def _constant_styled(name: str) -> bool:
    stripped = name.strip("_")
    return bool(stripped) and stripped == stripped.upper()


@register
class SharedMutableStateRule(FlowRule):
    """HL101: no mutable module-level state reachable from protocol
    code — it cannot be sharded across zone worker processes.

    Module-level mutable containers in the protocol scope are flagged
    when (a) any function in the scanned set mutates or rebinds them
    (shared mutable state, the hard error), or (b) they are not
    CONSTANT_STYLED (the naming convention that marks a module-level
    container as a frozen lookup table, like the ``*_DISPATCH``
    machines).  Frozen-by-convention constants stay legal until a
    mutation is observed anywhere in the tree.
    """

    rule_id = "HL101"
    title = "mutable module-level state in protocol code"
    rationale = ("Zone sharding (ROADMAP item 1) forks the protocol "
                 "plane into worker processes; module-level mutable "
                 "state silently diverges per worker instead of being "
                 "shared, so it must live on an instance that crosses "
                 "the shard boundary explicitly.")
    scope = _PROTOCOL_SCOPE

    def check_flow(self, program: FlowProgram,
                   contexts: Sequence[FileContext]) -> Iterable[Finding]:
        bindings = self._collect_bindings(contexts)
        if not bindings:
            return
        mutations = self._collect_mutations(program, set(bindings))
        for (module, name), (ctx, node) in sorted(bindings.items()):
            mutated_at = mutations.get((module, name))
            if mutated_at is not None:
                where, line = mutated_at
                yield Finding(
                    rule_id=self.rule_id,
                    message=(f"module-level '{name}' is mutated from "
                             f"{where}:{line}; shared mutable state "
                             f"cannot be sharded across zone workers "
                             f"— move it onto the loop/manager "
                             f"instance"),
                    path=ctx.display_path,
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0) + 1,
                    severity=self.severity)
            elif not _constant_styled(name):
                yield Finding(
                    rule_id=self.rule_id,
                    message=(f"module-level mutable '{name}' in "
                             f"protocol code; make it CONSTANT_STYLED "
                             f"and frozen, or move it onto an "
                             f"instance that crosses the shard "
                             f"boundary explicitly"),
                    path=ctx.display_path,
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0) + 1,
                    severity=self.severity)

    def _collect_bindings(
            self, contexts: Sequence[FileContext],
    ) -> Dict[Tuple[str, str], Tuple[FileContext, ast.stmt]]:
        bindings: Dict[Tuple[str, str],
                       Tuple[FileContext, ast.stmt]] = {}
        for ctx in contexts:
            module = module_name_for(ctx.path)
            for node in ctx.tree.body:
                target = None
                if isinstance(node, ast.Assign) and \
                        len(node.targets) == 1 and \
                        isinstance(node.targets[0], ast.Name):
                    target, value = node.targets[0].id, node.value
                elif isinstance(node, ast.AnnAssign) and \
                        isinstance(node.target, ast.Name) and \
                        node.value is not None:
                    target, value = node.target.id, node.value
                else:
                    continue
                if target.startswith("__") and target.endswith("__"):
                    continue  # __all__ and friends: read-only idiom
                if self._is_mutable_value(value):
                    bindings[(module, target)] = (ctx, node)
        return bindings

    @staticmethod
    def _is_mutable_value(value: ast.expr) -> bool:
        if isinstance(value, (ast.Dict, ast.List, ast.Set,
                              ast.ListComp, ast.SetComp, ast.DictComp)):
            return True
        return (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in _MUTABLE_CONSTRUCTORS)

    def _collect_mutations(
            self, program: FlowProgram,
            bindings: Set[Tuple[str, str]],
    ) -> Dict[Tuple[str, str], Tuple[str, int]]:
        """First observed mutation site per binding, looking at every
        scanned file (a mutation of core state from anywhere counts)."""
        mutations: Dict[Tuple[str, str], Tuple[str, int]] = {}

        def record(key: Tuple[str, str], ctx: FileContext,
                   node: ast.AST) -> None:
            if key in bindings and key not in mutations:
                mutations[key] = (ctx.display_path,
                                  getattr(node, "lineno", 1))

        # A file can only touch a binding whose name appears in its
        # text (direct name, attribute access, or the import that
        # created an alias) — skip the AST scan everywhere else.
        names = {name for (_, name) in bindings}
        for path, infos in sorted(
                program.functions_by_file.items()):
            if not infos or not any(
                    name in infos[0].ctx.source for name in names):
                continue
            for info in infos:
                globals_declared: Set[str] = set()
                candidates: List[ast.AST] = []
                for node in _own_nodes(info.node):
                    if isinstance(node, ast.Global):
                        globals_declared |= set(node.names)
                    elif isinstance(node, (ast.Call, ast.Assign,
                                           ast.AugAssign, ast.Delete)):
                        candidates.append(node)
                for node in candidates:
                    self._scan_node(node, info, globals_declared,
                                    record)
        return mutations

    def _scan_node(self, node: ast.AST, info: FunctionInfo,
                   globals_declared: Set[str], record) -> None:
        module = info.module
        ctx = info.ctx

        def resolve(base: ast.expr) -> Optional[Tuple[str, str]]:
            if isinstance(base, ast.Name):
                dotted = ctx.imports.aliases.get(base.id)
                if dotted and "." in dotted:
                    mod, _, name = dotted.rpartition(".")
                    return (mod, name)
                return (module, base.id)
            if isinstance(base, ast.Attribute):
                dotted = ctx.imports.qualified_name(base)
                if dotted and "." in dotted:
                    mod, _, name = dotted.rpartition(".")
                    return (mod, name)
            return None

        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in _MUTATING_METHODS:
            key = resolve(node.func.value)
            if key is not None:
                record(key, ctx, node)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target] if isinstance(
                           node, ast.AugAssign) else node.targets)
            for target in targets:
                if isinstance(target, ast.Subscript):
                    key = resolve(target.value)
                    if key is not None:
                        record(key, ctx, node)
                elif isinstance(target, ast.Name) and \
                        info.qualname != MODULE_FUNC and \
                        target.id in globals_declared:
                    record((module, target.id), ctx, node)


@register
class BlockingAsyncRule(FlowRule):
    """HL102: no blocking calls inside ``async def`` — directly or
    through any chain of scanned sync helpers."""

    rule_id = "HL102"
    title = "blocking call inside async def"
    rationale = ("The asyncio transport plane (ROADMAP item 3) runs "
                 "mixes/SPs/clients as cooperative coroutines; one "
                 "time.sleep/sync-socket/subprocess call stalls every "
                 "peer in the process and destroys the constant-rate "
                 "wire image (I6).")

    def check_flow(self, program: FlowProgram,
                   contexts: Sequence[FileContext]) -> Iterable[Finding]:
        for ctx in contexts:
            events = program.file_events(ctx.display_path)
            for info in program.functions_in(ctx.display_path):
                if not info.is_async:
                    continue
                function_events = events.get(info.qualified_id)
                if function_events is None:
                    continue
                for call in function_events.blocking_calls:
                    via = (f" via {' -> '.join(n + '()' for n in call.via)}"
                           if call.via else "")
                    yield Finding(
                        rule_id=self.rule_id,
                        message=(f"blocking call {call.callee}() "
                                 f"inside async def "
                                 f"{info.name}(){via}; use the "
                                 f"asyncio equivalent (await "
                                 f"asyncio.sleep, loop.sock_*, "
                                 f"run_in_executor)"),
                        path=ctx.display_path, line=call.line,
                        col=call.col, severity=self.severity)


@register
class UnawaitedCoroutineRule(FlowRule):
    """HL103: a bare call to an ``async def`` creates a coroutine and
    drops it — the code never runs and Python only warns at GC time,
    nondeterministically."""

    rule_id = "HL103"
    title = "un-awaited coroutine call"
    rationale = ("A dropped coroutine is protocol logic that silently "
                 "never executes (join never sent, chaff never "
                 "scheduled); RuntimeWarning at GC time is "
                 "nondeterministic and invisible to tests.")

    def check_flow(self, program: FlowProgram,
                   contexts: Sequence[FileContext]) -> Iterable[Finding]:
        # The call graph already resolved every call site during its
        # construction pass and marked the statement-level ones; keying
        # off that index avoids re-walking every function body.  Outer
        # functions also record their nested defs' calls, so dedup by
        # location.
        by_file: Dict[str, List] = {}
        for site in program.graph.call_sites:
            if not site.is_statement:
                continue
            callee = program.function(site.callee)
            if callee is None or not callee.is_async:
                continue
            caller = program.function(site.caller)
            if caller is None:
                continue
            by_file.setdefault(
                caller.ctx.display_path, []).append((site, callee))
        for ctx in contexts:
            seen: Set[Tuple[int, int, str]] = set()
            for site, callee in by_file.get(ctx.display_path, ()):
                line = getattr(site.node, "lineno", 1)
                col = getattr(site.node, "col_offset", 0) + 1
                key = (line, col, site.callee)
                if key in seen:
                    continue
                seen.add(key)
                yield Finding(
                    rule_id=self.rule_id,
                    message=(f"coroutine {callee.name}() is "
                             f"called but never awaited; await "
                             f"it or hand it to "
                             f"asyncio.create_task/TaskGroup"),
                    path=ctx.display_path, line=line, col=col,
                    severity=self.severity)


#: Annotation names that cannot cross a pickle boundary.
_UNPICKLABLE_ANNOTATIONS = {
    "Callable", "Lambda", "IO", "TextIO", "BinaryIO", "TextIOWrapper",
    "BufferedReader", "BufferedWriter", "socket", "Socket", "Thread",
    "Lock", "RLock", "Condition", "Event", "Semaphore",
    "BoundedSemaphore", "Barrier", "Generator", "Coroutine",
    "EventLoop", "AbstractEventLoop", "Task", "Future",
}


@register
class ShardCrossingPicklableRule(FlowRule):
    """HL104: dataclasses declared shard-crossing (decorated with
    ``@shard_crossing`` or carrying ``__shard_crossing__ = True``)
    must hold only picklable fields — no callables/lambdas, open
    handles, sockets, locks, loops, or locally-defined classes."""

    rule_id = "HL104"
    title = "non-picklable field in a shard-crossing dataclass"
    rationale = ("Zone sharding serialises these records between "
                 "worker processes and the merge step; a lambda, "
                 "open handle, or local class raises PicklingError "
                 "at fan-out time, in production, not at review "
                 "time.")

    def check_flow(self, program: FlowProgram,
                   contexts: Sequence[FileContext]) -> Iterable[Finding]:
        for ctx in contexts:
            # Cheap textual gate: both marker forms (the decorator and
            # the ``__shard_crossing__`` dunder) contain this substring,
            # so files without it cannot declare a shard-crossing class
            # and skip the AST walk entirely.
            if "shard_crossing" not in ctx.source:
                continue
            local_classes: Optional[Set[str]] = None
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.ClassDef) and \
                        self._is_shard_crossing(ctx, node):
                    if local_classes is None:
                        local_classes = self._local_classes(ctx)
                    yield from self._check_class(ctx, node,
                                                 local_classes)

    @staticmethod
    def _local_classes(ctx: FileContext) -> Set[str]:
        """Names of classes defined inside functions (unpicklable:
        pickle resolves classes by module attribute path)."""
        names: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
                for sub in ast.walk(node):
                    if isinstance(sub, ast.ClassDef):
                        names.add(sub.name)
        return names

    def _is_shard_crossing(self, ctx: FileContext,
                           node: ast.ClassDef) -> bool:
        for dec in node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            name = ctx.imports.qualified_name(target)
            if name is None and isinstance(target, ast.Name):
                name = target.id
            if name is None and isinstance(target, ast.Attribute):
                name = target.attr
            if name and name.split(".")[-1] == "shard_crossing":
                return True
        for stmt in node.body:
            if isinstance(stmt, ast.Assign) and \
                    len(stmt.targets) == 1 and \
                    isinstance(stmt.targets[0], ast.Name) and \
                    stmt.targets[0].id == "__shard_crossing__" and \
                    isinstance(stmt.value, ast.Constant) and \
                    stmt.value.value is True:
                return True
        return False

    def _check_class(self, ctx: FileContext, node: ast.ClassDef,
                     local_classes: Set[str]) -> Iterable[Finding]:
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign) or \
                    not isinstance(stmt.target, ast.Name):
                continue
            field_name = stmt.target.id
            bad = self._unpicklable_annotation(stmt.annotation,
                                               local_classes)
            if bad is not None:
                yield Finding(
                    rule_id=self.rule_id,
                    message=(f"field '{field_name}' of shard-crossing "
                             f"dataclass {node.name} is typed "
                             f"'{bad}', which cannot cross a pickle "
                             f"boundary; carry an id/bytes form and "
                             f"rebuild on the far side"),
                    path=ctx.display_path, line=stmt.lineno,
                    col=stmt.col_offset + 1, severity=self.severity)
                continue
            if stmt.value is not None and \
                    self._has_lambda_default(stmt.value):
                yield Finding(
                    rule_id=self.rule_id,
                    message=(f"field '{field_name}' of shard-crossing "
                             f"dataclass {node.name} defaults to a "
                             f"lambda, which cannot cross a pickle "
                             f"boundary"),
                    path=ctx.display_path, line=stmt.lineno,
                    col=stmt.col_offset + 1, severity=self.severity)

    @staticmethod
    def _unpicklable_annotation(annotation: ast.expr,
                                local_classes: Set[str]) -> Optional[str]:
        for node in ast.walk(annotation):
            name = None
            if isinstance(node, ast.Name):
                name = node.id
            elif isinstance(node, ast.Attribute):
                name = node.attr
            elif isinstance(node, ast.Constant) and \
                    isinstance(node.value, str):
                name = node.value.split("[")[0].split(".")[-1]
            if name is None:
                continue
            if name in _UNPICKLABLE_ANNOTATIONS or \
                    name in local_classes:
                return name
        return None

    @staticmethod
    def _has_lambda_default(value: ast.expr) -> bool:
        if isinstance(value, ast.Lambda):
            return True
        # field(default_factory=lambda: ...) is fine: instances hold
        # the factory's *result*, which is what crosses the boundary.
        if isinstance(value, ast.Call) and \
                isinstance(value.func, ast.Name) and \
                value.func.id == "field":
            return False
        return any(isinstance(sub, ast.Lambda)
                   for sub in ast.walk(value))

"""herdlint engine: file discovery, AST contexts, suppression, rule driver.

The linter exists because two of Herd's load-bearing contracts are
invisible to generic tooling:

* **Determinism** — every simulation result must be bit-for-bit
  reproducible from a seed (the chaos benchmarks publish a
  "determinism key").  Wall-clock reads and the global RNG silently
  break that.
* **Crypto hygiene** — invariants I1-I8 (§3.7 of the paper) assume
  constant-time MAC checks, secrets that never reach logs, and mixes
  that reject every message they don't explicitly understand.

Rules (see :mod:`repro.lint.rules`) encode those contracts as AST
checks.  This module is the machinery: it walks the input paths,
parses each file once, indexes ``# herdlint: disable=...`` comments,
runs every registered rule, and returns a sorted, deduplicated
:class:`LintResult`.

Suppression syntax (matched anywhere on a physical line)::

    x = time.time()          # herdlint: disable=HL001
    y = random.random()      # herdlint: disable          (all rules)
    # herdlint: disable-file=HL004                        (whole file)
"""

from __future__ import annotations

import ast
import fnmatch
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
#: Informational findings never affect the exit code (e.g. HL006's
#: partial-tree explanation).
SEVERITY_NOTE = "note"

#: Pseudo-rule id for files the engine cannot parse.
PARSE_ERROR_ID = "HL000"


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule firing at a location."""

    rule_id: str
    message: str
    path: str
    line: int
    col: int
    severity: str = SEVERITY_ERROR
    suppressed: bool = False
    #: Waived by the checked-in baseline file (pre-existing debt being
    #: burned down explicitly) rather than by an in-source comment.
    baselined: bool = False

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)


class ImportMap:
    """Resolves names in one module back to dotted import paths.

    ``import time`` / ``from time import monotonic as mono`` /
    ``import numpy as np`` all resolve call sites to canonical names
    ("time.time", "time.monotonic", "numpy.random.seed") so rules match
    the *module function*, not the spelling.
    """

    def __init__(self, tree: ast.AST):
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
                    else:
                        # ``import a.b`` binds ``a`` to package ``a``.
                        root = alias.name.split(".")[0]
                        self.aliases[root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.level or not node.module:
                    continue  # relative imports are project-local
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.aliases[bound] = f"{node.module}.{alias.name}"

    def qualified_name(self, node: ast.AST) -> Optional[str]:
        """Dotted name of an expression rooted at an imported module,
        or None when the root is a local binding."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))


_SUPPRESS_RE = re.compile(
    r"#\s*herdlint:\s*disable(?P<filewide>-file)?"
    r"(?:\s*=\s*(?P<ids>[A-Za-z0-9_,\s]+?))?\s*(?:#|$)")


class SuppressionIndex:
    """Per-line and file-wide ``# herdlint: disable`` comments."""

    def __init__(self, source: str):
        #: line -> None (all rules) or the set of suppressed rule ids.
        self.by_line: Dict[int, Optional[Set[str]]] = {}
        self.file_wide: Optional[Set[str]] = set()
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(text)
            if not match:
                continue
            ids_text = match.group("ids")
            ids = (None if ids_text is None else
                   {i.strip().upper() for i in ids_text.split(",")
                    if i.strip()})
            if match.group("filewide"):
                if ids is None or self.file_wide is None:
                    self.file_wide = None  # everything, whole file
                else:
                    self.file_wide |= ids
            else:
                if ids is None or self.by_line.get(lineno, set()) is None:
                    self.by_line[lineno] = None
                else:
                    existing = self.by_line.setdefault(lineno, set())
                    assert existing is not None
                    existing |= ids

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if self.file_wide is None or rule_id in (self.file_wide or ()):
            return True
        if line in self.by_line:
            ids = self.by_line[line]
            return ids is None or rule_id in ids
        return False


@dataclass
class FileContext:
    """Everything a rule needs about one parsed file."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    imports: ImportMap
    suppressions: SuppressionIndex

    @property
    def segments(self) -> Tuple[str, ...]:
        return tuple(p.lower() for p in Path(self.display_path).parts)


class Rule:
    """Base class for per-file rules.  Subclasses set the metadata
    class attributes and implement :meth:`check_file`."""

    rule_id: str = ""
    title: str = ""
    #: One-line rationale tying the rule to a paper invariant or the
    #: determinism contract; rendered into SARIF rule metadata.
    rationale: str = ""
    severity: str = SEVERITY_ERROR
    #: Directory segments the rule is scoped to (None = everywhere).
    scope: Optional[Tuple[str, ...]] = None

    def applies_to(self, ctx: FileContext) -> bool:
        if self.scope is None:
            return True
        return any(seg in ctx.segments for seg in self.scope)

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def finding(self, ctx: FileContext, node: ast.AST,
                message: str) -> Finding:
        return Finding(rule_id=self.rule_id, message=message,
                       path=ctx.display_path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       severity=self.severity)


class ProjectRule(Rule):
    """A rule that needs the whole scanned set at once (cross-module
    checks such as wire-dispatch exhaustiveness)."""

    def check_project(self,
                      contexts: Sequence[FileContext]) -> Iterable[Finding]:
        return ()


class FlowRule(Rule):
    """A rule driven by the herdflow dataflow analysis
    (:class:`repro.lint.flow.FlowProgram`): CFGs, the call graph, and
    converged interprocedural taint summaries over the scanned set."""

    def check_flow(self, program,
                   contexts: Sequence[FileContext]) -> Iterable[Finding]:
        return ()


_REGISTRY: Dict[str, Rule] = {}


def register(cls):
    """Class decorator adding a rule to the global registry."""
    instance = cls()
    if not instance.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if instance.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {instance.rule_id}")
    _REGISTRY[instance.rule_id] = instance
    return cls


def all_rules() -> List[Rule]:
    """Registered rules, ordered by id."""
    # Importing the rule modules populates the registry on first use.
    from repro.lint import rules as _rules  # noqa: F401
    from repro.lint.flow import rules as _flow_rules  # noqa: F401
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


@dataclass(frozen=True)
class LintConfig:
    """Engine options (reporter/exit-code policy lives in the CLI)."""

    select: Optional[Tuple[str, ...]] = None
    ignore: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()
    #: Run the herdflow dataflow rules (HL004-flow, HL007, HL10x).
    #: Disabling skips building the FlowProgram entirely.
    flow: bool = True
    #: Persist/reuse per-file flow summaries here (None = no cache).
    cache_path: Optional[str] = None
    #: Waive findings recorded in this baseline file (None = no
    #: baseline; a missing file is treated as an empty baseline).
    baseline_path: Optional[str] = None

    def rule_enabled(self, rule_id: str) -> bool:
        if self.select is not None and rule_id not in self.select:
            return False
        return rule_id not in self.ignore


@dataclass
class LintResult:
    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    #: Files whose flow analysis was reused from / recomputed into the
    #: summary cache (0, 0 when no flow rules or no cache ran).
    flow_cache_hits: int = 0
    flow_cache_misses: int = 0

    @property
    def active(self) -> List[Finding]:
        """Findings that gate the exit code: not suppressed in source,
        not waived by the baseline, and not informational notes."""
        return [f for f in self.findings
                if not f.suppressed and not f.baselined
                and f.severity != SEVERITY_NOTE]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def baselined(self) -> List[Finding]:
        return [f for f in self.findings
                if f.baselined and not f.suppressed]

    @property
    def notes(self) -> List[Finding]:
        return [f for f in self.findings
                if f.severity == SEVERITY_NOTE and not f.suppressed
                and not f.baselined]


def _iter_python_files(paths: Sequence[str],
                       exclude: Tuple[str, ...]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    out: List[Path] = []
    seen: Set[Path] = set()
    for f in files:
        if "__pycache__" in f.parts or f in seen:
            continue
        seen.add(f)
        posix = f.as_posix()
        if any(fnmatch.fnmatch(posix, pat) for pat in exclude):
            continue
        out.append(f)
    return out


def _display_path(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def _parse_file(path: Path) -> Tuple[Optional[FileContext],
                                     Optional[Finding]]:
    display = _display_path(path)
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (SyntaxError, UnicodeDecodeError, OSError) as exc:
        line = getattr(exc, "lineno", 1) or 1
        return None, Finding(rule_id=PARSE_ERROR_ID,
                             message=f"could not parse file: {exc}",
                             path=display, line=line, col=1)
    ctx = FileContext(path=path, display_path=display, source=source,
                      tree=tree, imports=ImportMap(tree),
                      suppressions=SuppressionIndex(source))
    return ctx, None


def run_lint(paths: Sequence[str],
             config: Optional[LintConfig] = None) -> LintResult:
    """Lint ``paths`` (files or directories) and return every finding,
    suppressed ones included, sorted by location."""
    config = config or LintConfig()
    result = LintResult()
    contexts: List[FileContext] = []
    for path in _iter_python_files(paths, config.exclude):
        ctx, error = _parse_file(path)
        result.files_scanned += 1
        if error is not None:
            result.findings.append(error)
        if ctx is not None:
            contexts.append(ctx)

    by_path = {ctx.display_path: ctx for ctx in contexts}
    rules = [r for r in all_rules() if config.rule_enabled(r.rule_id)]

    program = None
    flow_rules = [r for r in rules if isinstance(r, FlowRule)]
    if flow_rules and config.flow:
        # Imported here so the engine stays importable without the
        # flow package (and so flow/rules.py can import the engine).
        from repro.lint.flow.cache import FlowCache
        from repro.lint.flow.program import FlowProgram
        cache = None
        if config.cache_path is not None:
            cache = FlowCache(config.cache_path).load()
        program = FlowProgram.build(contexts, cache=cache)
        if cache is not None:
            cache.save()
            result.flow_cache_hits = program.cache_hits
            result.flow_cache_misses = program.cache_misses

    raw: List[Finding] = []
    for rule in rules:
        if isinstance(rule, FlowRule):
            if program is not None:
                raw.extend(rule.check_flow(
                    program,
                    [c for c in contexts if rule.applies_to(c)]))
        elif isinstance(rule, ProjectRule):
            raw.extend(rule.check_project(
                [c for c in contexts if rule.applies_to(c)]))
        else:
            for ctx in contexts:
                if rule.applies_to(ctx):
                    raw.extend(rule.check_file(ctx))

    seen: Set[Tuple[str, int, int, str, str]] = set()
    for finding in raw:
        key = (finding.path, finding.line, finding.col,
               finding.rule_id, finding.message)
        if key in seen:
            continue
        seen.add(key)
        ctx = by_path.get(finding.path)
        if ctx is not None and ctx.suppressions.is_suppressed(
                finding.rule_id, finding.line):
            finding = Finding(**{**finding.__dict__, "suppressed": True})
        result.findings.append(finding)

    if config.baseline_path is not None:
        from repro.lint.baseline import apply_baseline, load_baseline
        result.findings = apply_baseline(
            result.findings, load_baseline(config.baseline_path))

    result.findings.sort(key=Finding.sort_key)
    return result

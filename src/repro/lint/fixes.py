"""Autofixes: mechanical rewrites for findings with one right answer.

``repro lint --fix`` applies these before linting.  Only HL003 has an
autofix today — ``a == b`` / ``a != b`` on MAC/digest operands becomes
``hmac.compare_digest(a, b)`` / ``not hmac.compare_digest(a, b)`` —
because it is the one rule whose remediation is a pure, local,
semantics-preserving rewrite (plus an ``import hmac`` when missing).

Fixes are applied to exact source spans (``end_col_offset`` slicing,
bottom-up so earlier spans stay valid), never by re-serialising the
AST: untouched code keeps its formatting and comments byte-for-byte.
The rewrite is idempotent — ``hmac.compare_digest(...)`` is a call,
not a ``Compare``, so a second ``--fix`` pass finds nothing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

from repro.lint.rules import _is_digest_operand


@dataclass
class FileFix:
    """Outcome of fixing one file."""

    path: str
    sites_fixed: int
    added_import: bool


def _segment(lines: List[str], node: ast.expr) -> Optional[str]:
    """Exact source text of ``node`` (multi-line safe)."""
    if node.end_lineno is None or node.end_col_offset is None:
        return None
    if node.lineno == node.end_lineno:
        return lines[node.lineno - 1][node.col_offset:node.end_col_offset]
    parts = [lines[node.lineno - 1][node.col_offset:]]
    parts.extend(lines[node.lineno:node.end_lineno - 1])
    parts.append(lines[node.end_lineno - 1][:node.end_col_offset])
    return "\n".join(parts)


def _digest_compare_sites(tree: ast.Module) -> List[ast.Compare]:
    """The HL003-fixable compares: a single ``==``/``!=`` between two
    operands, at least one digest-shaped.  Chained comparisons are
    left for a human (the rewrite would change evaluation order)."""
    sites = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        if len(node.ops) != 1 or not isinstance(
                node.ops[0], (ast.Eq, ast.NotEq)):
            continue
        operands = [node.left, node.comparators[0]]
        if any(isinstance(op, ast.Constant) and op.value is None
               for op in operands):
            continue  # `mac is not None` style guards, spelled with ==
        if any(_is_digest_operand(op) for op in operands):
            sites.append(node)
    return sites


def _has_hmac_import(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(alias.name == "hmac" and alias.asname is None
                   for alias in node.names):
                return True
    return False


def _import_insert_line(tree: ast.Module) -> int:
    """0-based line index to insert ``import hmac`` at: after the last
    top-level import, else after the module docstring, else line 0."""
    last_import = None
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            last_import = node
    if last_import is not None:
        return (last_import.end_lineno or last_import.lineno)
    if (tree.body and isinstance(tree.body[0], ast.Expr)
            and isinstance(tree.body[0].value, ast.Constant)
            and isinstance(tree.body[0].value.value, str)):
        return tree.body[0].end_lineno or tree.body[0].lineno
    return 0


def fix_source(source: str) -> Tuple[str, int]:
    """Rewrite every fixable HL003 site in ``source``.  Returns the
    new source and the number of sites rewritten (0 leaves the source
    untouched, byte-for-byte)."""
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return source, 0
    sites = _digest_compare_sites(tree)
    if not sites:
        return source, 0
    lines = source.splitlines()
    trailing_newline = source.endswith("\n")
    # Bottom-up so earlier spans keep their coordinates.
    sites.sort(key=lambda n: (n.lineno, n.col_offset), reverse=True)
    fixed = 0
    for node in sites:
        left = _segment(lines, node.left)
        right = _segment(lines, node.comparators[0])
        if left is None or right is None or node.end_lineno is None:
            continue
        call = f"hmac.compare_digest({left}, {right})"
        if isinstance(node.ops[0], ast.NotEq):
            # Parenthesised so the rewrite is safe in any expression
            # context (`not` binds looser than a comparison did).
            call = f"(not {call})"
        start, end = node.lineno - 1, node.end_lineno - 1
        prefix = lines[start][:node.col_offset]
        suffix = lines[end][node.end_col_offset:]
        lines[start:end + 1] = [prefix + call + suffix]
        fixed += 1
    if fixed and not _has_hmac_import(tree):
        lines.insert(_import_insert_line(tree), "import hmac")
    return "\n".join(lines) + ("\n" if trailing_newline else ""), fixed


def fix_paths(paths: List[Path]) -> List[FileFix]:
    """Apply :func:`fix_source` to each file in place, returning one
    :class:`FileFix` per file that changed."""
    results: List[FileFix] = []
    for path in paths:
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            continue
        had_import = True
        try:
            had_import = _has_hmac_import(ast.parse(source))
        except SyntaxError:
            pass
        new_source, fixed = fix_source(source)
        if fixed:
            path.write_text(new_source, encoding="utf-8")
            results.append(FileFix(path=path.as_posix(),
                                   sites_fixed=fixed,
                                   added_import=not had_import))
    return results

"""herdlint command line: ``python -m repro.lint`` / ``repro lint``.

Exit codes: 0 clean (or ``--warn-only``), 1 unsuppressed findings.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.lint.engine import LintConfig, all_rules, run_lint
from repro.lint.reporters import RENDERERS, render_text


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach herdlint's options to ``parser`` (shared between the
    standalone entry point and the ``repro lint`` subcommand)."""
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint "
                             "(default: src)")
    parser.add_argument("--format", choices=sorted(RENDERERS),
                        default="text", dest="output_format",
                        help="report format (default: text)")
    parser.add_argument("--output", metavar="FILE", default=None,
                        help="write the report to FILE instead of "
                             "stdout")
    parser.add_argument("--select", metavar="IDS", default=None,
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--ignore", metavar="IDS", default=None,
                        help="comma-separated rule ids to skip")
    parser.add_argument("--exclude", metavar="GLOB", action="append",
                        default=[],
                        help="glob of paths to skip (repeatable)")
    parser.add_argument("--warn-only", action="store_true",
                        help="report findings but always exit 0")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="include suppressed findings in text "
                             "output")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule registry and exit")


def _split_ids(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [part.strip().upper() for part in raw.split(",")
            if part.strip()]


def run(args: argparse.Namespace) -> int:
    """Execute a lint run described by a parsed namespace."""
    if args.list_rules:
        for rule in all_rules():
            scope = ("everywhere" if rule.scope is None
                     else "/".join(rule.scope))
            print(f"{rule.rule_id}  {rule.title}  [{scope}]")
        return 0
    select = _split_ids(args.select)
    ignore = _split_ids(args.ignore) or []
    config = LintConfig(
        select=tuple(select) if select is not None else None,
        ignore=tuple(ignore),
        exclude=tuple(args.exclude))
    result = run_lint(args.paths, config)
    renderer = RENDERERS[args.output_format]
    if renderer is render_text:
        report = render_text(result,
                             show_suppressed=args.show_suppressed)
    else:
        report = renderer(result)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        if result.active and not args.warn_only:
            print(f"herdlint: {len(result.active)} findings "
                  f"(report: {args.output})", file=sys.stderr)
    else:
        sys.stdout.write(report)
    if args.warn_only:
        return 0
    return 1 if result.active else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="herdlint: protocol-aware static analysis for the "
                    "Herd reproduction (determinism + crypto hygiene)")
    add_lint_arguments(parser)
    return run(parser.parse_args(argv))

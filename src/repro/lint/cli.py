"""herdlint command line: ``python -m repro.lint`` / ``repro lint``.

Exit codes: 0 clean (or ``--warn-only``), 1 unsuppressed findings.

Beyond the basic gate the CLI mounts the herdflow workflow surface:

* ``--no-flow`` skips the dataflow rules (HL004/HL007/HL10x) and runs
  only the syntactic rule set — the pre-flow behaviour;
* ``--cache [PATH]`` persists per-file flow summaries keyed by content
  hash, so an unchanged file (whose callees are also unchanged) is
  never re-analysed;
* ``--changed [REF]`` lints only files git reports as modified against
  ``REF`` (default HEAD) plus untracked ones — the incremental mode CI
  uses on pull requests (whole-tree rules like HL006 downgrade to
  notes on a partial scan);
* ``--baseline [PATH]`` waives findings recorded in a checked-in
  baseline file; ``--update-baseline`` rewrites it from the current
  findings;
* ``--fix`` applies the mechanical autofixes (HL003: rewrite ``==`` on
  digests to ``hmac.compare_digest``) before linting.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.engine import LintConfig, all_rules, run_lint

_BASELINE_DEFAULT = ".herdlint-baseline.json"
_CACHE_DEFAULT = ".herdlint-cache.json"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach herdlint's options to ``parser`` (shared between the
    standalone entry point and the ``repro lint`` subcommand)."""
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint "
                             "(default: src)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", dest="output_format",
                        help="report format (default: text)")
    parser.add_argument("--output", metavar="FILE", default=None,
                        help="write the report to FILE instead of "
                             "stdout")
    parser.add_argument("--select", metavar="IDS", default=None,
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--ignore", metavar="IDS", default=None,
                        help="comma-separated rule ids to skip")
    parser.add_argument("--exclude", metavar="GLOB", action="append",
                        default=[],
                        help="glob of paths to skip (repeatable)")
    parser.add_argument("--warn-only", action="store_true",
                        help="report findings but always exit 0")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="include suppressed findings in text "
                             "output")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule registry and exit")
    flow = parser.add_argument_group(
        "dataflow analysis (herdflow)")
    flow.add_argument("--no-flow", action="store_true",
                      help="skip the dataflow rules (HL004/HL007/"
                           "HL10x); syntactic rules only")
    flow.add_argument("--cache", metavar="PATH", nargs="?",
                      const=_CACHE_DEFAULT, default=None,
                      help="cache flow summaries by content hash "
                           f"(default path: {_CACHE_DEFAULT}); "
                           "unchanged files are not re-analysed")
    flow.add_argument("--changed", metavar="REF", nargs="?",
                      const="HEAD", default=None,
                      help="lint only files modified vs. the git REF "
                           "(default HEAD) plus untracked files, "
                           "restricted to the given paths")
    flow.add_argument("--baseline", metavar="PATH", nargs="?",
                      const=_BASELINE_DEFAULT, default=None,
                      help="waive findings recorded in the baseline "
                           f"file (default: {_BASELINE_DEFAULT}); "
                           "they render as '(baselined)' and do not "
                           "fail the gate")
    flow.add_argument("--update-baseline", action="store_true",
                      help="rewrite the baseline file from the "
                           "current findings and exit 0")
    flow.add_argument("--fix", action="store_true",
                      help="apply mechanical autofixes first (HL003: "
                           "digest ==/!= becomes hmac.compare_digest)")


def _split_ids(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [part.strip().upper() for part in raw.split(",")
            if part.strip()]


def _git_changed_files(ref: str, paths: List[str]) -> Optional[List[str]]:
    """Python files changed vs. ``ref`` (tracked) or untracked, under
    the requested paths.  None when git is unavailable (the caller
    falls back to a full scan)."""
    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", "-z", ref, "--"],
            capture_output=True, text=True, check=True)
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard", "-z"],
            capture_output=True, text=True, check=True)
    except (OSError, subprocess.CalledProcessError):
        return None
    candidates = {
        name for out in (diff.stdout, untracked.stdout)
        for name in out.split("\0") if name.endswith(".py")}
    roots = [Path(p).resolve() for p in paths]
    selected: List[str] = []
    for name in sorted(candidates):
        path = Path(name)
        if not path.exists():
            continue  # deleted files have nothing to lint
        resolved = path.resolve()
        for root in roots:
            if resolved == root or root in resolved.parents:
                selected.append(name)
                break
    return selected


def run(args: argparse.Namespace) -> int:
    """Execute a lint run described by a parsed namespace."""
    # Imported lazily: reporters/fixes pull in the whole rule set.
    from repro.lint.reporters import RENDERERS, render_text

    if args.list_rules:
        for rule in all_rules():
            scope = ("everywhere" if rule.scope is None
                     else "/".join(rule.scope))
            print(f"{rule.rule_id}  {rule.title}  [{scope}]")
        return 0

    paths = list(args.paths)
    if args.changed is not None:
        changed = _git_changed_files(args.changed, paths)
        if changed is None:
            print("herdlint: --changed needs git; scanning the full "
                  "paths instead", file=sys.stderr)
        elif not changed:
            print(f"herdlint: no python files changed vs. "
                  f"{args.changed}")
            return 0
        else:
            paths = changed

    if args.fix:
        from repro.lint.engine import _iter_python_files
        from repro.lint.fixes import fix_paths
        fixes = fix_paths(_iter_python_files(
            paths, tuple(args.exclude)))
        for fix in fixes:
            extra = (" (+ import hmac)" if fix.added_import else "")
            print(f"herdlint: fixed {fix.sites_fixed} digest "
                  f"comparison{'s' if fix.sites_fixed != 1 else ''} "
                  f"in {fix.path}{extra}")

    select = _split_ids(args.select)
    ignore = _split_ids(args.ignore) or []
    config = LintConfig(
        select=tuple(select) if select is not None else None,
        ignore=tuple(ignore),
        exclude=tuple(args.exclude),
        flow=not args.no_flow,
        cache_path=args.cache,
        baseline_path=(None if args.update_baseline
                       else args.baseline))
    result = run_lint(paths, config)

    if args.update_baseline:
        from repro.lint.baseline import save_baseline
        baseline_path = args.baseline or _BASELINE_DEFAULT
        payload = save_baseline(
            baseline_path,
            [f for f in result.findings
             if not f.suppressed and f.severity != "note"])
        print(f"herdlint: wrote {len(payload['findings'])} baseline "
              f"entries to {baseline_path}")
        return 0

    renderer = RENDERERS[args.output_format]
    if renderer is render_text:
        report = render_text(result,
                             show_suppressed=args.show_suppressed)
    else:
        report = renderer(result)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        if result.active and not args.warn_only:
            print(f"herdlint: {len(result.active)} findings "
                  f"(report: {args.output})", file=sys.stderr)
    else:
        sys.stdout.write(report)
    if args.cache is not None:
        hits, misses = result.flow_cache_hits, result.flow_cache_misses
        print(f"herdlint: flow cache {hits} reused / {misses} "
              f"analysed", file=sys.stderr)
    if args.warn_only:
        return 0
    return 1 if result.active else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="herdlint: protocol-aware static analysis for the "
                    "Herd reproduction — syntactic rules plus the "
                    "herdflow dataflow engine (taint tracking, "
                    "determinism, concurrency safety)")
    add_lint_arguments(parser)
    return run(parser.parse_args(argv))

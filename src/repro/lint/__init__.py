"""herdlint: protocol-aware static analysis for the Herd tree.

Public surface:

* :func:`run_lint` / :class:`LintConfig` / :class:`LintResult` — run
  the rule set as a library.
* :func:`all_rules` — the registry (HL001-HL006, see
  :mod:`repro.lint.rules`).
* reporters in :mod:`repro.lint.reporters` (text / JSON / SARIF).
* ``python -m repro.lint`` and ``repro lint`` — the CLI gate used in
  CI.
"""

from repro.lint.engine import (
    Finding,
    LintConfig,
    LintResult,
    all_rules,
    run_lint,
)

__all__ = [
    "Finding",
    "LintConfig",
    "LintResult",
    "all_rules",
    "run_lint",
]

"""The herdlint rule set (HL001-HL006).

Each rule encodes one contract the Herd reproduction depends on;
DESIGN.md §7 ties every rule to the paper invariant or evaluation
property it protects.  Rules are registered with the engine via the
``@register`` decorator and discovered through
:func:`repro.lint.engine.all_rules`.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import (
    SEVERITY_NOTE,
    FileContext,
    Finding,
    ProjectRule,
    Rule,
    register,
)

# Directory segments that must run exclusively on the virtual clock:
# the protocol core, every simulator, fault injection, the
# discrete-event engine itself, and the observability layer (metric
# timestamps and trace spans must be seed-replayable too).
_VIRTUAL_TIME_SCOPE = ("core", "simulation", "faults", "netsim", "obs")

_WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: The HL001 allowlist: path suffixes (as lowercased segment tuples)
#: that may read the host clock.  Exactly one file is sanctioned —
#: the herdprof perfclock module, which exists so that *profiling*
#: wall-time reads have a single auditable funnel (DESIGN.md §11).
#: Everything else in the virtual-time scope, including the rest of
#: ``obs/prof/``, still fails the gate.
WALL_CLOCK_ALLOWED_FILES: Tuple[Tuple[str, ...], ...] = (
    ("obs", "prof", "perfclock.py"),
)


@register
class WallClockRule(Rule):
    """HL001: the simulation core must read time from the virtual
    :class:`~repro.netsim.engine.EventLoop` clock, never the host —
    except the sanctioned profiling clock module
    (:data:`WALL_CLOCK_ALLOWED_FILES`)."""

    rule_id = "HL001"
    title = "wall-clock read in virtual-time code"
    rationale = ("Determinism contract: replayable runs require every "
                 "timestamp to come from EventLoop.now, not the host "
                 "clock.  Profiling is the one sanctioned exception, "
                 "funneled through obs/prof/perfclock.py.")
    scope = _VIRTUAL_TIME_SCOPE

    def applies_to(self, ctx: FileContext) -> bool:
        if not super().applies_to(ctx):
            return False
        segments = ctx.segments
        for suffix in WALL_CLOCK_ALLOWED_FILES:
            if segments[-len(suffix):] == suffix:
                return False
        return True

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.imports.qualified_name(node.func)
            if name in _WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx, node,
                    f"{name}() reads the wall clock; use the "
                    f"EventLoop virtual clock (loop.now) instead")


# Module-level functions of ``random`` that draw from the hidden global
# Mersenne Twister.  Random/SystemRandom construction is fine (that is
# exactly how a seeded RNG gets threaded through).
_GLOBAL_RANDOM_FNS = {
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate",
    "paretovariate", "randbytes", "randint", "random", "randrange",
    "sample", "seed", "shuffle", "triangular", "uniform",
    "vonmisesvariate", "weibullvariate",
}
# Legacy numpy global-state API; np.random.default_rng is the
# explicitly-seeded replacement.
_NUMPY_GLOBAL_FNS = {
    "seed", "rand", "randn", "randint", "random", "random_sample",
    "choice", "shuffle", "permutation", "uniform", "normal", "poisson",
    "exponential", "binomial",
}


@register
class GlobalRngRule(Rule):
    """HL002: randomness must flow through an explicitly seeded
    ``random.Random`` (or ``numpy`` Generator), never the process-global
    RNG and never an unseeded ``random.Random()``."""

    rule_id = "HL002"
    title = "global or unseeded RNG"
    rationale = ("Determinism contract: one seed must reproduce a whole "
                 "run; the global RNG is shared mutable state any import "
                 "can perturb.")

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.imports.qualified_name(node.func)
            if name is None:
                continue
            if (name.startswith("random.")
                    and name.split(".", 1)[1] in _GLOBAL_RANDOM_FNS):
                yield self.finding(
                    ctx, node,
                    f"{name}() uses the process-global RNG; thread an "
                    f"explicitly seeded random.Random through instead")
            elif name == "random.Random" and not node.args:
                yield self.finding(
                    ctx, node,
                    "random.Random() without a seed draws entropy from "
                    "the OS; pass an explicit seed")
            elif (name.startswith("numpy.random.")
                    and name.split(".")[-1] in _NUMPY_GLOBAL_FNS):
                yield self.finding(
                    ctx, node,
                    f"{name}() uses numpy's global RNG state; use "
                    f"numpy.random.default_rng(seed) instead")


_DIGESTY_NAME = re.compile(r"(^|_)(mac|tag|digest|confirmation|hmac)s?$")


def _terminal_identifier(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_digest_operand(node: ast.AST) -> bool:
    if (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("digest", "hexdigest")):
        return True
    name = _terminal_identifier(node)
    return name is not None and _DIGESTY_NAME.search(name.lower()) is not None


@register
class DigestEqualityRule(Rule):
    """HL003: MAC/digest comparison must be constant-time."""

    rule_id = "HL003"
    title = "non-constant-time digest comparison"
    rationale = ("Invariants I1/I6: `==` on MACs leaks how many leading "
                 "bytes matched; an active adversary can forge tags "
                 "byte-by-byte.  Use hmac.compare_digest.")

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq))
                       for op in node.ops):
                continue
            for operand in [node.left, *node.comparators]:
                if isinstance(operand, ast.Constant) and \
                        operand.value is None:
                    continue
                if _is_digest_operand(operand):
                    label = (_terminal_identifier(operand)
                             or "digest()")
                    yield self.finding(
                        ctx, node,
                        f"'{label}' compared with ==/!=; use "
                        f"hmac.compare_digest for MAC/digest equality")
                    break


_SECRET_EXACT = {"ikm", "prk", "okm", "secret", "shared_secret",
                 "key_material", "secret_material"}
_SECRET_SUFFIXES = ("_key", "_secret", "_ikm", "_prk")
# Names that are only secret inside crypto/ (an ed25519 "seed" is key
# material; a simulation "seed" is a public experiment parameter).
_CRYPTO_ONLY_SECRETS = {"seed", "private_bytes"}
_LOG_METHODS = {"debug", "info", "warning", "warn", "error",
                "exception", "critical", "log"}
_LOGGERISH_ROOTS = {"logger", "log", "_logger", "_log"}


def _is_secret_name(name: str, in_crypto: bool) -> bool:
    lowered = name.lower()
    if "public" in lowered or "verify" in lowered:
        return False
    if lowered in _SECRET_EXACT:
        return True
    if any(lowered.endswith(suffix) for suffix in _SECRET_SUFFIXES):
        return True
    return in_crypto and lowered in _CRYPTO_ONLY_SECRETS


def _secret_names_in(node: ast.AST, in_crypto: bool) -> List[str]:
    """Secret-named identifiers reachable from ``node``, ignoring
    ``len(...)`` subtrees (a length reveals no key material)."""
    names: List[str] = []
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        if (isinstance(current, ast.Call)
                and isinstance(current.func, ast.Name)
                and current.func.id == "len"):
            continue
        name = _terminal_identifier(current)
        if name and _is_secret_name(name, in_crypto):
            names.append(name)
        stack.extend(ast.iter_child_nodes(current))
    return names


class SecretLeakRule(Rule):
    """HL004 (legacy matcher): key/secret-named values must not flow
    into log calls, f-strings, ``repr``/``format``, or exception
    messages.

    No longer registered: superseded by the flow-sensitive
    :class:`repro.lint.flow.rules.SecretFlowRule`, which tracks the
    taint through renames and call boundaries instead of matching
    names at the sink.  The class is kept so the regression suite can
    pin the exact coverage gap the flow version closes
    (``tests/test_lint_flow.py``).
    """

    rule_id = "HL004"
    title = "secret value formatted into text"
    rationale = ("Invariant I2/key hygiene: session and onion keys must "
                 "never reach logs or tracebacks, where they outlive the "
                 "session and escape the threat model.")

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        in_crypto = "crypto" in ctx.segments
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.JoinedStr):
                for part in node.values:
                    if not isinstance(part, ast.FormattedValue):
                        continue
                    for name in _secret_names_in(part.value, in_crypto):
                        yield self.finding(
                            ctx, node,
                            f"secret '{name}' interpolated into an "
                            f"f-string")
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, in_crypto)
            elif isinstance(node, ast.Raise) and \
                    isinstance(node.exc, ast.Call):
                for arg in node.exc.args:
                    if isinstance(arg, ast.JoinedStr):
                        continue  # reported by the f-string branch
                    for name in _secret_names_in(arg, in_crypto):
                        yield self.finding(
                            ctx, node,
                            f"secret '{name}' passed into an exception "
                            f"message")

    def _check_call(self, ctx: FileContext, node: ast.Call,
                    in_crypto: bool) -> Iterable[Finding]:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "repr":
            sink = "repr()"
        elif isinstance(func, ast.Attribute) and func.attr == "format" \
                and isinstance(func.value, ast.Constant) \
                and isinstance(func.value.value, str):
            sink = "str.format()"
        elif isinstance(func, ast.Attribute) and func.attr in _LOG_METHODS:
            root = ctx.imports.qualified_name(func)
            rooted_in_logging = root is not None and \
                root.startswith("logging.")
            loggerish = (isinstance(func.value, ast.Name)
                         and func.value.id.lower() in _LOGGERISH_ROOTS)
            if not (rooted_in_logging or loggerish):
                return
            sink = f"logging call .{func.attr}()"
        else:
            return
        for arg in [*node.args, *(kw.value for kw in node.keywords)]:
            if isinstance(arg, ast.JoinedStr):
                continue  # reported by the f-string branch
            for name in _secret_names_in(arg, in_crypto):
                yield self.finding(
                    ctx, node,
                    f"secret '{name}' passed to {sink}")


@register
class BlockingSleepRule(Rule):
    """HL005: no blocking sleeps — delay is modelled by scheduling
    events on the loop, never by stalling the process."""

    rule_id = "HL005"
    title = "blocking time.sleep"
    rationale = ("Determinism contract: time.sleep inside an event-loop "
                 "callback stalls the single simulation thread and ties "
                 "results to host scheduling; use loop.schedule(delay, "
                 "fn).")

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if ctx.imports.qualified_name(node.func) == "time.sleep":
                yield self.finding(
                    ctx, node,
                    "time.sleep() blocks the event loop; model delay "
                    "with loop.schedule(delay, callback)")


def _single_assign_target(node: ast.stmt) -> Optional[ast.Name]:
    """The Name bound by a plain or annotated top-level assignment."""
    if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
            isinstance(node.targets[0], ast.Name):
        return node.targets[0]
    if isinstance(node, ast.AnnAssign) and node.value is not None and \
            isinstance(node.target, ast.Name):
        return node.target
    return None


def _wire_message_constants(ctx: FileContext) -> Dict[str, int]:
    constants: Dict[str, int] = {}
    for node in ctx.tree.body:
        target = _single_assign_target(node)
        if target is None or not target.id.startswith("MSG_"):
            continue
        value = node.value
        if isinstance(value, ast.Constant) and \
                isinstance(value.value, int):
            constants[target.id] = value.value
    return constants


def _dispatch_tables(ctx: FileContext) -> List[Tuple[ast.stmt, str,
                                                     Set[str]]]:
    tables = []
    for node in ctx.tree.body:
        target = _single_assign_target(node)
        if target is None or not target.id.endswith("_DISPATCH"):
            continue
        if not isinstance(node.value, ast.Dict):
            continue
        keys: Set[str] = set()
        for key in node.value.keys:
            name = _terminal_identifier(key) if key is not None else None
            if name and name.startswith("MSG_"):
                keys.add(name)
        tables.append((node, target.id, keys))
    return tables


@register
class WireExhaustivenessRule(ProjectRule):
    """HL006: every ``MSG_*`` type defined in ``wire.py`` must be
    handled — or explicitly rejected — by every ``*_DISPATCH`` table in
    the scanned set.

    Conventions this rule understands:

    * message types are top-level ``MSG_NAME = <int>`` assignments in a
      file named ``wire.py``;
    * a dispatch state machine is a top-level dict literal assigned to a
      name ending in ``_DISPATCH`` whose keys are ``MSG_*`` constants
      (map a type to the ``REJECT`` sentinel to refuse it explicitly).

    Exhaustiveness is a whole-tree property: linting ``wire.py`` alone
    reports that no dispatch table covers its types.
    """

    rule_id = "HL006"
    title = "wire message type unhandled in dispatch"
    rationale = ("Strict decoding (\"a mix must never act on a malformed "
                 "message\") is only half the contract: a role must also "
                 "decide, for every defined type, whether it handles or "
                 "rejects it.")

    def check_project(self,
                      contexts: Sequence[FileContext]) -> Iterable[Finding]:
        wire_contexts = [c for c in contexts if c.path.name == "wire.py"]
        message_names: Set[str] = set()
        for ctx in wire_contexts:
            message_names |= set(_wire_message_constants(ctx))
        if not message_names:
            return
        tables = [(ctx, node, name, keys)
                  for ctx in contexts
                  for node, name, keys in _dispatch_tables(ctx)]
        if not tables:
            ctx = wire_contexts[0]
            if self._is_partial_tree(ctx, contexts):
                # Exhaustiveness is a whole-tree property; on a
                # partial scan (single file, --changed subset) the
                # absence of a dispatch table says nothing.  Explain
                # instead of failing.
                yield Finding(
                    rule_id=self.rule_id,
                    message=(f"partial scan: {len(message_names)} wire "
                             f"message types are defined here but "
                             f"exhaustiveness can only be checked "
                             f"against the whole tree (sibling "
                             f"modules were not scanned); lint the "
                             f"full tree to enforce HL006"),
                    path=ctx.display_path, line=1, col=1,
                    severity=SEVERITY_NOTE)
                return
            yield Finding(
                rule_id=self.rule_id,
                message=(f"no *_DISPATCH table in the scanned files "
                         f"handles the {len(message_names)} wire message "
                         f"types (lint the whole tree, or add a "
                         f"dispatch state machine)"),
                path=ctx.display_path, line=1, col=1,
                severity=self.severity)
            return
        for ctx, node, name, keys in tables:
            missing = sorted(message_names - keys)
            if missing:
                yield self.finding(
                    ctx, node,
                    f"dispatch table {name} does not handle "
                    f"{', '.join(missing)}; add handlers or explicit "
                    f"REJECT entries")

    @staticmethod
    def _is_partial_tree(wire_ctx: FileContext,
                         contexts: Sequence[FileContext]) -> bool:
        """True when ``wire.py``'s own package has sibling modules
        that are not in the scanned set — the dispatch tables may
        simply live in files we were not asked to look at."""
        scanned = {c.path.resolve() for c in contexts}
        try:
            siblings = list(wire_ctx.path.resolve().parent.glob("*.py"))
        except OSError:
            return False
        return any(s.resolve() not in scanned for s in siblings)

"""Baseline file support: land new rules enforcing from day one.

A baseline is a checked-in JSON file (``.herdlint-baseline.json``)
listing findings that pre-date a rule's introduction.  Findings that
match a baseline entry are reported as *baselined* — visible in every
reporter, excluded from the exit code — so a new rule can gate ``src/``
immediately while the pre-existing debt is burned down explicitly
(shrinking the baseline is a reviewable diff; growing it is too).

Matching is by ``(rule, path, message)`` multiset, deliberately
ignoring line numbers: moving code around must not resurrect waived
findings, but a *new* instance of the same message in the same file
beyond the baselined count does fail the gate.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.lint.engine import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_PATH = ".herdlint-baseline.json"

#: The multiset key a finding is matched by.
BaselineKey = Tuple[str, str, str]


def _key(finding: Finding) -> BaselineKey:
    return (finding.rule_id, finding.path, finding.message)


def load_baseline(path: str) -> Counter:
    """Load a baseline into a multiset of keys.  A missing or
    unreadable file is an empty baseline (nothing waived)."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return Counter()
    if data.get("version") != BASELINE_VERSION:
        return Counter()
    counts: Counter = Counter()
    for entry in data.get("findings", []):
        try:
            counts[(entry["rule"], entry["path"],
                    entry["message"])] += int(entry.get("count", 1))
        except (KeyError, TypeError, ValueError):
            continue
    return counts


def apply_baseline(findings: Sequence[Finding],
                   baseline: Counter) -> List[Finding]:
    """Mark findings covered by the baseline.  Each baseline entry
    waives at most ``count`` occurrences of its key; suppressed
    findings never consume baseline budget."""
    remaining = Counter(baseline)
    out: List[Finding] = []
    for finding in findings:
        if not finding.suppressed and remaining[_key(finding)] > 0:
            remaining[_key(finding)] -= 1
            finding = Finding(
                **{**finding.__dict__, "baselined": True})
        out.append(finding)
    return out


def save_baseline(path: str, findings: Iterable[Finding]) -> Dict:
    """Write the current unsuppressed findings as the new baseline
    (``--update-baseline``) and return the payload."""
    counts: Counter = Counter(
        _key(f) for f in findings if not f.suppressed)
    payload = {
        "version": BASELINE_VERSION,
        "tool": "herdlint",
        "findings": [
            {"rule": rule, "path": file_path, "message": message,
             "count": count}
            for (rule, file_path, message), count in sorted(
                counts.items())],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    return payload

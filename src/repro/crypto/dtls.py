"""A DTLS-like authenticated datagram channel (hop-by-hop encryption).

Herd §3.2: "Mixes maintain a Datagram TLS (DTLS) link to all other
mixes, SPs maintain a DTLS link to the mix they are attached to, and
clients maintain either one such link to a mix, or a small number of
links to SPs. All Herd traffic is transferred over these links. [...]
Mixes and users communicate via DTLS links encrypted with ephemeral key
*e*, sealing the traffic with perfect forward secrecy."

This module provides a minimal but complete handshake and record layer
with the properties Herd needs:

* mutual authentication via signed ephemeral keys (SIGMA-style: each
  side signs the handshake transcript with its long-term identity key),
* perfect forward secrecy (fresh X25519 ephemerals per link),
* a record layer using ChaCha20-Poly1305 with per-direction keys and
  explicit 64-bit sequence numbers (datagrams may arrive out of order,
  so the sequence number travels in the record header — the same place
  Herd carries circuit IDs "outside of layered encryption"),
* replay rejection via a sliding window.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.crypto.chacha20 import ChaCha20Poly1305
from repro.crypto.kdf import derive_keys
from repro.crypto.keys import IdentityKeyPair
from repro.crypto.x25519 import X25519PrivateKey
from repro.crypto.ed25519 import VerifyKey


class HandshakeError(Exception):
    """Raised when the DTLS-like handshake fails authentication."""


@dataclass(frozen=True)
class HandshakeMessage:
    """A signed ephemeral public key plus the sender's identity key."""

    ephemeral_public: bytes
    identity_public: bytes
    signature: bytes


class _HandshakeState:
    """One endpoint's half of the handshake."""

    def __init__(self, identity: IdentityKeyPair, is_initiator: bool,
                 rng=None):
        self._identity = identity
        self._ephemeral = X25519PrivateKey.generate(rng)
        self._is_initiator = is_initiator

    def hello(self) -> HandshakeMessage:
        role = b"init" if self._is_initiator else b"resp"
        transcript = b"herd-dtls-hello" + role + self._ephemeral.public_bytes
        return HandshakeMessage(
            ephemeral_public=self._ephemeral.public_bytes,
            identity_public=self._identity.public_bytes,
            signature=self._identity.sign(transcript),
        )

    def finish(self, peer: HandshakeMessage,
               expected_identity: bytes = None):
        peer_role = b"resp" if self._is_initiator else b"init"
        transcript = b"herd-dtls-hello" + peer_role + peer.ephemeral_public
        if not VerifyKey(peer.identity_public).verify(transcript,
                                                      peer.signature):
            raise HandshakeError("peer handshake signature invalid")
        if expected_identity is not None and \
                peer.identity_public != expected_identity:
            raise HandshakeError("peer identity key does not match "
                                 "the expected certificate")
        shared = self._ephemeral.exchange(peer.ephemeral_public)
        if self._is_initiator:
            context = self._ephemeral.public_bytes + peer.ephemeral_public
        else:
            context = peer.ephemeral_public + self._ephemeral.public_bytes
        keys = derive_keys(shared, ("client_write", "server_write"),
                           context=context)
        return keys


_HEADER = struct.Struct("<Q")  # explicit 64-bit sequence number
_REPLAY_WINDOW = 1024


class _ReceiveWindow:
    """Sliding anti-replay window for datagram sequence numbers."""

    def __init__(self, size: int = _REPLAY_WINDOW):
        self._size = size
        self._highest = -1
        self._seen = set()

    def check_and_update(self, seq: int) -> bool:
        """Return True if ``seq`` is fresh; record it."""
        if seq <= self._highest - self._size:
            return False
        if seq in self._seen:
            return False
        self._seen.add(seq)
        if seq > self._highest:
            self._highest = seq
            floor = self._highest - self._size
            self._seen = {s for s in self._seen if s > floor}
        return True


class DTLSLink:
    """One endpoint of an established DTLS-like link.

    Construct a connected pair with :func:`establish_link`, or drive
    the handshake manually with :class:`_HandshakeState`.  ``seal``
    produces a datagram (header || ciphertext || tag); ``open`` verifies
    and decrypts, raising :class:`ValueError` on forgery and returning
    ``None`` for replayed datagrams.
    """

    def __init__(self, send_key: bytes, recv_key: bytes):
        self._send_aead = ChaCha20Poly1305(send_key)
        self._recv_aead = ChaCha20Poly1305(recv_key)
        self._send_seq = 0
        self._window = _ReceiveWindow()
        self.bytes_sent = 0
        self.bytes_received = 0

    @staticmethod
    def _nonce(seq: int) -> bytes:
        return b"\x00" * 4 + struct.pack("<Q", seq)

    def seal(self, plaintext: bytes) -> bytes:
        header = _HEADER.pack(self._send_seq)
        body = self._send_aead.encrypt(self._nonce(self._send_seq),
                                       plaintext, aad=header)
        self._send_seq += 1
        datagram = header + body
        self.bytes_sent += len(datagram)
        return datagram

    def open(self, datagram: bytes):
        if len(datagram) < _HEADER.size:
            raise ValueError("datagram too short")
        header, body = datagram[:_HEADER.size], datagram[_HEADER.size:]
        (seq,) = _HEADER.unpack(header)
        plaintext = self._recv_aead.decrypt(self._nonce(seq), body,
                                            aad=header)
        if not self._window.check_and_update(seq):
            return None
        self.bytes_received += len(datagram)
        return plaintext

    @property
    def overhead(self) -> int:
        """Per-datagram byte overhead added by the record layer."""
        return _HEADER.size + ChaCha20Poly1305.TAG_LEN


def establish_link(initiator_identity: IdentityKeyPair,
                   responder_identity: IdentityKeyPair,
                   rng=None):
    """Run the full handshake and return (initiator_link, responder_link).

    The two returned :class:`DTLSLink` endpoints share directional keys:
    whatever one seals, the other opens.
    """
    init = _HandshakeState(initiator_identity, is_initiator=True, rng=rng)
    resp = _HandshakeState(responder_identity, is_initiator=False, rng=rng)
    init_hello = init.hello()
    resp_hello = resp.hello()
    init_keys = init.finish(resp_hello,
                            responder_identity.public_bytes)
    resp_keys = resp.finish(init_hello,
                            initiator_identity.public_bytes)
    if init_keys != resp_keys:
        raise HandshakeError("key schedule mismatch")
    initiator_link = DTLSLink(send_key=init_keys["client_write"],
                              recv_key=init_keys["server_write"])
    responder_link = DTLSLink(send_key=resp_keys["server_write"],
                              recv_key=resp_keys["client_write"])
    return initiator_link, responder_link
